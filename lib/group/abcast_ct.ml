open Sim

type id = int * int (* origin node, per-origin sequence number *)

type Msg.t +=
  | Inject of { gid : int; id : id; payload : Msg.t }
  | Progress of { gid : int; next_inst : int; from : int }
  | Catchup of { gid : int; instance : int; batch : (id * Msg.t) list }

let () =
  Msg.register_printer (function
    | Inject { payload; _ } -> Some ("Inject(" ^ Msg.name payload ^ ")")
    | Catchup { batch; _ } ->
        Some (Printf.sprintf "Catchup[%d]" (List.length batch))
    | _ -> None)

module Batch = struct
  type t = (id * Msg.t) list
end

module C = Consensus.Make (Batch)

type t = {
  gid : int;
  me : int;
  chan : Rchan.t;
  members : int list;
  cons : C.t;
  mutable next_send : int;
  mutable next_inst : int; (* next consensus instance to decide *)
  mutable proposed_for : int; (* highest instance we proposed for *)
  pending : (id, Msg.t) Hashtbl.t; (* injected, not yet delivered *)
  decided_ahead : (int, Batch.t) Hashtbl.t; (* out-of-order decisions *)
  decided_log : (int, Batch.t) Hashtbl.t; (* all decisions, for catch-up *)
  delivered_set : (id, unit) Hashtbl.t;
  mutable delivered_rev : id list;
  mutable deliver_cbs : (origin:int -> Msg.t -> unit) list;
  mutable opt_deliver_cbs : (origin:int -> Msg.t -> unit) list;
  mutable opt_delivered_rev : id list;
}

type group = {
  g_gid : int;
  g_members : int list;
  chan_group : Rchan.group;
  handles : (int, t) Hashtbl.t;
  mutable client_seq : (int, int ref) Hashtbl.t;
}

let next_gid = ref 0

let compare_id (o1, s1) (o2, s2) =
  match Int.compare o1 o2 with 0 -> Int.compare s1 s2 | c -> c

let maybe_propose t =
  if t.proposed_for < t.next_inst && Hashtbl.length t.pending > 0 then begin
    t.proposed_for <- t.next_inst;
    let batch =
      Hashtbl.fold (fun id payload acc -> (id, payload) :: acc) t.pending []
      |> List.sort (fun (a, _) (b, _) -> compare_id a b)
    in
    C.propose t.cons ~instance:t.next_inst batch
  end

let rec apply_decisions t =
  match Hashtbl.find_opt t.decided_ahead t.next_inst with
  | None -> ()
  | Some batch ->
      Hashtbl.remove t.decided_ahead t.next_inst;
      List.iter
        (fun ((origin, _) as id, payload) ->
          Hashtbl.remove t.pending id;
          if not (Hashtbl.mem t.delivered_set id) then begin
            Hashtbl.replace t.delivered_set id ();
            t.delivered_rev <- id :: t.delivered_rev;
            List.iter (fun f -> f ~origin payload) (List.rev t.deliver_cbs)
          end)
        batch;
      t.next_inst <- t.next_inst + 1;
      maybe_propose t;
      apply_decisions t

let inject t id payload =
  if
    (not (Hashtbl.mem t.delivered_set id))
    && not (Hashtbl.mem t.pending id)
  then begin
    Hashtbl.replace t.pending id payload;
    t.opt_delivered_rev <- id :: t.opt_delivered_rev;
    List.iter
      (fun f -> f ~origin:(fst id) payload)
      (List.rev t.opt_deliver_cbs);
    maybe_propose t
  end

let broadcast t msg =
  let id = (t.me, t.next_send) in
  t.next_send <- t.next_send + 1;
  Rchan.mcast t.chan ~dsts:t.members (Inject { gid = t.gid; id; payload = msg })

let broadcast_from group ~src msg =
  let seq_ref =
    match Hashtbl.find_opt group.client_seq src with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace group.client_seq src r;
        r
  in
  let id = (src, !seq_ref) in
  incr seq_ref;
  let chan = Rchan.handle group.chan_group ~me:src in
  Rchan.mcast chan ~dsts:group.g_members
    (Inject { gid = group.g_gid; id; payload = msg })

let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs
let on_opt_deliver t f = t.opt_deliver_cbs <- f :: t.opt_deliver_cbs
let delivered t = List.rev t.delivered_rev
let opt_delivered t = List.rev t.opt_delivered_rev

let create_group net ~members ?(clients = []) ?fd ?rto ?passthrough () =
  incr next_gid;
  let gid = !next_gid in
  let fd_group =
    match fd with Some g -> g | None -> Fd.create_group net ~members ()
  in
  let chan_group =
    Rchan.create_group net ~nodes:(members @ clients) ?rto ?passthrough ()
  in
  let cons_group =
    C.create_group net ~members ~fd:fd_group ?rto ?passthrough ()
  in
  let handles = Hashtbl.create 8 in
  List.iter
    (fun me ->
      let t =
        {
          gid;
          me;
          chan = Rchan.handle chan_group ~me;
          members;
          cons = C.handle cons_group ~me;
          next_send = 0;
          next_inst = 0;
          proposed_for = -1;
          pending = Hashtbl.create 32;
          decided_ahead = Hashtbl.create 8;
          decided_log = Hashtbl.create 64;
          delivered_set = Hashtbl.create 64;
          delivered_rev = [];
          deliver_cbs = [];
          opt_deliver_cbs = [];
          opt_delivered_rev = [];
        }
      in
      (match Network.timeseries net with
      | Some ts ->
          Timeseries.register ts ~name:"abcast_pending" ~replica:me
            ~kind:Timeseries.Queue ~unit_:"messages" (fun () ->
              float_of_int (Hashtbl.length t.pending))
      | None -> ());
      Rchan.on_deliver t.chan (fun ~src msg ->
          ignore src;
          match msg with
          | Inject { gid = g; id; payload } when g = gid -> inject t id payload
          | Progress { gid = g; next_inst; from } when g = gid ->
              (* A member that lags behind us missed decided instances
                 (e.g. it was partitioned past the retransmission budget):
                 replay the decisions it needs. *)
              if next_inst < t.next_inst then
                for instance = next_inst to min (t.next_inst - 1) (next_inst + 9) do
                  match Hashtbl.find_opt t.decided_log instance with
                  | Some batch ->
                      Rchan.send t.chan ~dst:from
                        (Catchup { gid = t.gid; instance; batch })
                  | None -> ()
                done
          | Catchup { gid = g; instance; batch } when g = gid ->
              if instance >= t.next_inst
                 && not (Hashtbl.mem t.decided_ahead instance)
              then begin
                Hashtbl.replace t.decided_ahead instance batch;
                apply_decisions t
              end
          | _ -> ());
      C.on_decide t.cons (fun ~instance batch ->
          Hashtbl.replace t.decided_ahead instance batch;
          Hashtbl.replace t.decided_log instance batch;
          apply_decisions t);
      ignore
        (Engine.periodic (Network.engine net) ~label:"abcast:poll" ~every:(Simtime.of_ms 100)
           (Network.guard net me (fun () ->
                Rchan.mcast t.chan ~dsts:t.members
                  (Progress { gid = t.gid; next_inst = t.next_inst; from = t.me }))));
      Hashtbl.replace handles me t)
    members;
  { g_gid = gid; g_members = members; chan_group; handles; client_seq = Hashtbl.create 8 }

let handle group ~me = Hashtbl.find group.handles me
