open Sim

module Iset = Set.Make (Int)

type vmsg = { origin : int; vseq : int; payload : Msg.t }

module Flush = struct
  type t = { f_members : int list; f_msgs : vmsg list }
end

module C = Consensus.Make (Flush)

type Msg.t +=
  | Vs_msg of { gid : int; view : int; origin : int; vseq : int; payload : Msg.t }
  | Vs_ack of { gid : int; view : int; origin : int; vseq : int; from : int }
  | Join_req of { gid : int; joiner : int }
  | View_probe of { gid : int; view_id : int }

let () =
  Msg.register_printer (function
    | Vs_msg { payload; _ } -> Some ("Vs(" ^ Msg.name payload ^ ")")
    | _ -> None)

type t = {
  gid : int;
  me : int;
  net : Network.t;
  fd : Fd.t;
  chan : Rchan.t;
  cons : C.t;
  mutable view : View.t;
  mutable excluded : bool;
  mutable joining : bool; (* excluded member asking to come back *)
  mutable stale_polls : int; (* consecutive polls with unreachable future *)
  mutable polls : int;
  mutable pending_joins : Iset.t;
  all_members : int list; (* the group's full potential membership *)
  mutable next_vseq : int; (* our per-view send sequence *)
  (* Messages of the current view, keyed by (origin, vseq). *)
  buffered : (int * int, vmsg) Hashtbl.t;
  acks : (int * int, Iset.t ref) Hashtbl.t;
  delivered : (int * int * int, unit) Hashtbl.t; (* (view, origin, vseq) *)
  next_expected : (int, int) Hashtbl.t; (* per-origin FIFO cursor *)
  mutable view_log : vmsg list; (* all messages seen in the current view *)
  mutable own_unstable : vmsg list; (* our sends not yet known delivered *)
  mutable future : (int * vmsg) list; (* messages for views we lag behind *)
  pending_views : (int, Flush.t) Hashtbl.t; (* decisions awaiting their turn *)
  mutable proposed_for : int;
  mutable deliver_cbs : (origin:int -> Msg.t -> unit) list;
  mutable view_cbs : (View.t -> unit) list;
}

type group = { handles : (int, t) Hashtbl.t }

let next_gid = ref 0
let current_view t = t.view
let in_view t = (not t.excluded) && View.is_member t.view t.me
let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs
let on_view_change t f = t.view_cbs <- f :: t.view_cbs

let ack_set t key =
  match Hashtbl.find_opt t.acks key with
  | Some s -> s
  | None ->
      let s = ref Iset.empty in
      Hashtbl.replace t.acks key s;
      s

let deliver_one t m =
  let key = (t.view.id, m.origin, m.vseq) in
  if not (Hashtbl.mem t.delivered key) then begin
    Hashtbl.replace t.delivered key ();
    if m.origin = t.me then
      t.own_unstable <-
        List.filter (fun u -> u.vseq <> m.vseq) t.own_unstable;
    List.iter (fun f -> f ~origin:m.origin m.payload) (List.rev t.deliver_cbs)
  end

(* Deliver, per origin in vseq order, every buffered message acknowledged by
   all current-view members. *)
let rec try_deliver t =
  let progressed = ref false in
  Hashtbl.iter
    (fun (origin, vseq) m ->
      let expected =
        Option.value ~default:0 (Hashtbl.find_opt t.next_expected origin)
      in
      if vseq = expected then begin
        let ackers = !(ack_set t (origin, vseq)) in
        if List.for_all (fun p -> Iset.mem p ackers) t.view.members then begin
          Hashtbl.replace t.next_expected origin (vseq + 1);
          Hashtbl.remove t.buffered (origin, vseq);
          deliver_one t m;
          progressed := true
        end
      end)
    (Hashtbl.copy t.buffered);
  if !progressed then try_deliver t

let mcast_view t msg =
  List.iter (fun dst -> Rchan.send t.chan ~dst msg) t.view.members

let send_vmsg t m =
  mcast_view t
    (Vs_msg
       {
         gid = t.gid;
         view = t.view.id;
         origin = m.origin;
         vseq = m.vseq;
         payload = m.payload;
       })

let broadcast t payload =
  if in_view t then begin
    let m = { origin = t.me; vseq = t.next_vseq; payload } in
    t.next_vseq <- t.next_vseq + 1;
    t.own_unstable <- t.own_unstable @ [ m ];
    send_vmsg t m
  end

(* Propose the next view: current members minus suspects plus joiners,
   flushing every view message we know about (delivered or buffered). *)
let propose_change t =
  if in_view t && t.proposed_for < t.view.id + 1 then begin
    let suspects = List.filter (Fd.suspected t.fd) t.view.members in
    (* A join request from a node that is still in our view means it
       crashed and recovered faster than the failure detector noticed:
       its standing in the current view is void, and it needs a fresh
       view (same membership) to jump to. *)
    let joins =
      Iset.elements
        (Iset.filter (fun j -> not (Fd.suspected t.fd j)) t.pending_joins)
    in
    if suspects <> [] || joins <> [] then begin
      t.proposed_for <- t.view.id + 1;
      let members =
        List.filter (fun m -> not (List.mem m suspects)) t.view.members
        @ List.filter (fun j -> not (View.is_member t.view j)) joins
      in
      (* The flush set must contain every message we have seen in this view
         — including ones we already delivered — so that whichever proposal
         wins, it is a superset of anything anyone delivered (delivery
         requires all-member acknowledgement, hence everyone saw it). *)
      C.propose t.cons ~instance:(t.view.id + 1)
        { Flush.f_members = members; f_msgs = t.view_log }
    end
  end

let rec install t (flush : Flush.t) =
  (* Deliver the agreed flush set (FIFO per origin) before installing. *)
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare a.origin b.origin with
        | 0 -> Int.compare a.vseq b.vseq
        | c -> c)
      flush.f_msgs
  in
  List.iter (fun m -> deliver_one t m) sorted;
  let old_unsent =
    if List.mem t.me flush.f_members then
      List.filter
        (fun u ->
          not
            (List.exists
               (fun m -> m.origin = t.me && m.vseq = u.vseq)
               flush.f_msgs))
        t.own_unstable
    else []
  in
  t.view <- View.next t.view ~members:flush.f_members;
  if not (View.is_member t.view t.me) then t.excluded <- true
  else begin
    t.excluded <- false;
    t.joining <- false
  end;
  t.pending_joins <-
    Iset.filter (fun j -> not (View.is_member t.view j)) t.pending_joins;
  Hashtbl.reset t.buffered;
  Hashtbl.reset t.acks;
  Hashtbl.reset t.next_expected;
  t.next_vseq <- 0;
  t.view_log <- [];
  t.own_unstable <- [];
  List.iter (fun f -> f t.view) (List.rev t.view_cbs);
  (* Rebroadcast our messages that were dropped by the view change. *)
  if in_view t then
    List.iter (fun u -> broadcast t u.payload) old_unsent;
  (* Process messages that arrived early for this view. *)
  let ready, still_future =
    List.partition (fun (v, _) -> v = t.view.id) t.future
  in
  t.future <- still_future;
  List.iter
    (fun (_, m) ->
      Hashtbl.replace t.buffered (m.origin, m.vseq) m;
      t.view_log <- m :: t.view_log;
      mcast_view t
        (Vs_ack
           { gid = t.gid; view = t.view.id; origin = m.origin; vseq = m.vseq; from = t.me }))
    ready;
  try_deliver t;
  (* Cascade: members that crashed during the flush still need removing. *)
  propose_change t;
  apply_pending_views t

and apply_pending_views t =
  (if not t.excluded then
     match Hashtbl.find_opt t.pending_views (t.view.id + 1) with
     | Some flush ->
         Hashtbl.remove t.pending_views (t.view.id + 1);
         install t flush
     | None -> ());
  if t.joining then begin
    (* A recovering member cannot replay the views it missed; it jumps to
       the first decided view that readmits it (the application is
       responsible for state transfer, cf. Passive replication). *)
    let target =
      Hashtbl.fold
        (fun instance (flush : Flush.t) acc ->
          if instance > t.view.id && List.mem t.me flush.f_members then
            match acc with
            | Some (i, _) when i <= instance -> acc
            | _ -> Some (instance, flush)
          else acc)
        t.pending_views None
    in
    match target with
    | None -> ()
    | Some (instance, flush) ->
        Hashtbl.remove t.pending_views instance;
        Hashtbl.reset t.buffered;
        Hashtbl.reset t.acks;
        Hashtbl.reset t.next_expected;
        t.view_log <- [];
        t.own_unstable <- [];
        t.future <- [];
        t.next_vseq <- 0;
        (* Normalise exactly like [View.next] does on the sequential
           install path — every member must agree on the member order
           (Passive replication derives primaryship from the head). *)
        t.view <-
          {
            View.id = instance;
            members = List.sort_uniq Int.compare flush.Flush.f_members;
          };
        t.excluded <- false;
        t.joining <- false;
        t.stale_polls <- 0;
        t.proposed_for <- instance;
        List.iter (fun f -> f t.view) (List.rev t.view_cbs);
        apply_pending_views t
  end

let rec handle_msg t msg =
  (match msg with
  | Join_req { gid; joiner } when gid = t.gid ->
      if joiner <> t.me then t.pending_joins <- Iset.add joiner t.pending_joins
  | View_probe { gid; view_id } when gid = t.gid ->
      (* Someone installed a view we never saw: we were cut off past the
         retransmission budget (crash or partition). Ask to be readmitted;
         harmless if we are merely lagging a decision in flight. *)
      if view_id > t.view.id && not t.joining then request_join t
  | _ -> ());
  if not t.excluded then
    match msg with
    | Vs_msg { gid; view; origin; vseq; payload } when gid = t.gid ->
        let m = { origin; vseq; payload } in
        if view = t.view.id then begin
          if
            (not (Hashtbl.mem t.delivered (view, origin, vseq)))
            && not (Hashtbl.mem t.buffered (origin, vseq))
          then begin
            Hashtbl.replace t.buffered (origin, vseq) m;
            t.view_log <- m :: t.view_log;
            mcast_view t
              (Vs_ack { gid = t.gid; view; origin; vseq; from = t.me })
          end;
          try_deliver t
        end
        else if view > t.view.id then t.future <- (view, m) :: t.future
    | Vs_ack { gid; view; origin; vseq; from } when gid = t.gid ->
        if view = t.view.id then begin
          let s = ack_set t (origin, vseq) in
          s := Iset.add from !s;
          try_deliver t
        end
    | _ -> ()

(* Ask the group to readmit this (recovered or left-behind) member. The
   request is repeated by [poll] until a view containing us is
   installed. *)
and request_join t =
  t.joining <- true;
  List.iter
    (fun dst ->
      if dst <> t.me then
        Rchan.send t.chan ~dst (Join_req { gid = t.gid; joiner = t.me }))
    t.all_members;
  apply_pending_views t

let probe_period = 6 (* polls between view probes: ~180ms *)

let poll t =
  t.polls <- t.polls + 1;
  if in_view t && t.polls mod probe_period = 0 then
    List.iter
      (fun dst ->
        if dst <> t.me then
          Rchan.send t.chan ~dst (View_probe { gid = t.gid; view_id = t.view.id }))
      t.all_members;
  if t.joining then request_join t
  else if in_view t then begin
    propose_change t;
    (* A member holding messages of future views it cannot reach missed
       one or more view installations (it was crashed while the group
       moved on): rejoin. *)
    if List.exists (fun (v, _) -> v > t.view.id) t.future then begin
      t.stale_polls <- t.stale_polls + 1;
      if t.stale_polls > 10 then request_join t
    end
    else t.stale_polls <- 0
  end

let create_group net ~members ?fd ?rto ?passthrough () =
  incr next_gid;
  let gid = !next_gid in
  let fd_group =
    match fd with Some g -> g | None -> Fd.create_group net ~members ()
  in
  let chan_group = Rchan.create_group net ~nodes:members ?rto ?passthrough () in
  let cons_group =
    C.create_group net ~members ~fd:fd_group ?rto ?passthrough ()
  in
  let handles = Hashtbl.create 8 in
  List.iter
    (fun me ->
      let t =
        {
          gid;
          me;
          net;
          fd = Fd.handle fd_group ~me;
          chan = Rchan.handle chan_group ~me;
          cons = C.handle cons_group ~me;
          view = View.initial members;
          excluded = false;
          joining = false;
          stale_polls = 0;
          polls = 0;
          pending_joins = Iset.empty;
          all_members = members;
          next_vseq = 0;
          buffered = Hashtbl.create 32;
          acks = Hashtbl.create 32;
          delivered = Hashtbl.create 64;
          next_expected = Hashtbl.create 8;
          view_log = [];
          own_unstable = [];
          future = [];
          pending_views = Hashtbl.create 4;
          proposed_for = 0;
          deliver_cbs = [];
          view_cbs = [];
        }
      in
      (match Network.timeseries net with
      | Some ts ->
          Timeseries.register ts ~name:"vscast_view" ~replica:me
            ~kind:Timeseries.Level ~unit_:"view" (fun () -> float_of_int t.view.View.id);
          Timeseries.register ts ~name:"vscast_flushing" ~replica:me
            ~kind:Timeseries.Flag ~unit_:"bool" (fun () ->
              if t.proposed_for > t.view.View.id || t.joining then 1. else 0.);
          Timeseries.register ts ~name:"vscast_buffered" ~replica:me
            ~kind:Timeseries.Queue ~unit_:"messages" (fun () ->
              float_of_int (Hashtbl.length t.buffered))
      | None -> ());
      Rchan.on_deliver t.chan (fun ~src msg ->
          ignore src;
          handle_msg t msg);
      (* A recovering member must not resume its pre-crash view: messages
         may have been delivered (or views installed) without it while it
         was down, so its standing is void. It re-enters through the
         join/jump path like any left-behind member. *)
      Network.on_recover net (fun node ->
          if node = t.me then begin
            t.excluded <- true;
            t.stale_polls <- 0;
            request_join t
          end);
      C.on_decide t.cons (fun ~instance flush ->
          Hashtbl.replace t.pending_views instance flush;
          apply_pending_views t);
      ignore
        (Engine.periodic (Network.engine net) ~label:"vscast:poll" ~every:(Simtime.of_ms 30)
           (Network.guard net me (fun () -> poll t)));
      Hashtbl.replace handles me t)
    members;
  { handles }

let handle group ~me = Hashtbl.find group.handles me
