open Sim

module Iset = Set.Make (Int)

type id = int * int (* origin node, per-origin seq; origin -1 = no-op filler *)

type Msg.t +=
  | Inject of { gid : int; id : id; payload : Msg.t }
  | Order of { gid : int; epoch : int; seq : int; id : id }
  | Fetch of { gid : int; id : id }
  | Fetch_reply of { gid : int; id : id; payload : Msg.t }
  | Order_ack of { gid : int; seq : int; id : id; from : int }

let () =
  Msg.register_printer (function
    | Inject { payload; _ } -> Some ("Inject(" ^ Msg.name payload ^ ")")
    | Fetch_reply { payload; _ } -> Some ("Fetch_reply(" ^ Msg.name payload ^ ")")
    | _ -> None)

type t = {
  gid : int;
  me : int;
  net : Network.t;
  members : int list;
  fd : Fd.t;
  chan : Rchan.t;
  mutable epoch : int;
  mutable next_send : int; (* per-origin seq for our own broadcasts *)
  mutable next_order : int; (* as leader: next global slot *)
  mutable next_deliver : int;
  mutable ack_floor : int; (* slots below this are acked by every member *)
  known : (id, Msg.t) Hashtbl.t;
  pending : (id, unit) Hashtbl.t; (* known, not yet ordered under cur epoch *)
  slots : (int, id * int) Hashtbl.t; (* seq -> (id, epoch) *)
  acks : (int * id, Iset.t ref) Hashtbl.t;
  delivered_set : (id, unit) Hashtbl.t;
  mutable delivered_rev : id list;
  mutable noop_seq : int;
  mutable deliver_cbs : (origin:int -> Msg.t -> unit) list;
  mutable opt_deliver_cbs : (origin:int -> Msg.t -> unit) list;
  mutable opt_delivered_rev : id list;
}

type group = {
  g_gid : int;
  g_members : int list;
  chan_group : Rchan.group;
  handles : (int, t) Hashtbl.t;
  client_seq : (int, int ref) Hashtbl.t;
}

let next_gid = ref 0
let nth_member t e = List.nth t.members (e mod List.length t.members)
let leader t = nth_member t t.epoch
let is_leader t = leader t = t.me
let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs
let on_opt_deliver t f = t.opt_deliver_cbs <- f :: t.opt_deliver_cbs
let delivered t = List.rev t.delivered_rev
let opt_delivered t = List.rev t.opt_delivered_rev

let mcast t msg = Rchan.mcast t.chan ~dsts:t.members msg

let ack_set t seq id =
  match Hashtbl.find_opt t.acks (seq, id) with
  | Some s -> s
  | None ->
      let s = ref Iset.empty in
      Hashtbl.replace t.acks (seq, id) s;
      s

(* A member that suspects a majority of the group is far more likely to be
   the partitioned minority (or freshly recovered with a stale detector)
   than the survivor; such a member must neither shrink the stability
   quorum, order messages, nor start an epoch change — any of those lets
   it deliver in an order the majority never agreed on. *)
let quorate t = 2 * List.length (Fd.trusted t.fd) > List.length t.members

let stable t seq id =
  let ackers = !(ack_set t seq id) in
  if quorate t then
    List.for_all
      (fun m -> Iset.mem m ackers || Fd.suspected t.fd m)
      t.members
  else List.for_all (fun m -> Iset.mem m ackers) t.members

let rec try_deliver t =
  match Hashtbl.find_opt t.slots t.next_deliver with
  | None -> ()
  | Some (((origin, _) as id), _epoch) ->
      if stable t t.next_deliver id then begin
        let payload_ready =
          origin = -1 (* no-op filler: deliver nothing *)
          || Hashtbl.mem t.delivered_set id
          || Hashtbl.mem t.known id
        in
        if payload_ready then begin
          if origin <> -1 && not (Hashtbl.mem t.delivered_set id) then begin
            Hashtbl.replace t.delivered_set id ();
            t.delivered_rev <- id :: t.delivered_rev;
            let payload = Hashtbl.find t.known id in
            List.iter (fun f -> f ~origin payload) (List.rev t.deliver_cbs)
          end;
          Hashtbl.remove t.pending id;
          t.next_deliver <- t.next_deliver + 1;
          try_deliver t
        end
        else
          (* Stable slot but payload missing: ask the group. *)
          mcast t (Fetch { gid = t.gid; id })
      end

let assign t id =
  let seq = t.next_order in
  t.next_order <- t.next_order + 1;
  mcast t (Order { gid = t.gid; epoch = t.epoch; seq; id })

(* As the new leader of [epoch]: re-announce everything we know, fill the
   holes with no-ops, then order any pending messages. *)
let takeover t =
  let max_seq = Hashtbl.fold (fun seq _ acc -> max seq acc) t.slots (-1) in
  for seq = 0 to max_seq do
    match Hashtbl.find_opt t.slots seq with
    | Some (id, _) -> mcast t (Order { gid = t.gid; epoch = t.epoch; seq; id })
    | None ->
        t.noop_seq <- t.noop_seq + 1;
        mcast t
          (Order { gid = t.gid; epoch = t.epoch; seq; id = (-1, t.noop_seq) })
  done;
  t.next_order <- max_seq + 1;
  Hashtbl.iter (fun id () -> assign t id) t.pending

let adopt_epoch t e =
  if e > t.epoch then begin
    t.epoch <- e;
    if is_leader t then takeover t
    else
      (* Make sure the new leader knows about everything we still expect to
         see ordered. *)
      Hashtbl.iter
        (fun id () ->
          match Hashtbl.find_opt t.known id with
          | Some payload ->
              Rchan.send t.chan ~dst:(leader t)
                (Inject { gid = t.gid; id; payload })
          | None -> ())
        t.pending
  end

(* Leader anti-entropy: keep re-announcing slots that some trusted member
   has not acknowledged, together with their payloads, so members that
   were unreachable longer than the stubborn channels' retry budget still
   catch up after a partition heals or a crashed member recovers. The
   scan starts at [ack_floor] — not at the leader's own delivery cursor,
   which races ahead of an absent member the moment the detector suspects
   it and shrinks the stability quorum. *)
let anti_entropy t =
  if is_leader t then begin
    (* Advance the floor past slots every member has acknowledged. *)
    let all_acked seq =
      match Hashtbl.find_opt t.slots seq with
      | None -> false
      | Some (id, _) ->
          let ackers = !(ack_set t seq id) in
          List.for_all (fun m -> Iset.mem m ackers) t.members
    in
    while t.ack_floor < t.next_order && all_acked t.ack_floor do
      t.ack_floor <- t.ack_floor + 1
    done;
    let resent = ref 0 in
    let horizon = t.next_order - 1 in
    let s = ref (min t.ack_floor t.next_deliver) in
    while !resent < 20 && !s <= horizon do
      (match Hashtbl.find_opt t.slots !s with
      | Some (id, epoch) ->
          let ackers = !(ack_set t !s id) in
          let missing =
            List.exists
              (fun m -> (not (Iset.mem m ackers)) && not (Fd.suspected t.fd m))
              t.members
          in
          if missing then begin
            incr resent;
            mcast t (Order { gid = t.gid; epoch; seq = !s; id });
            match Hashtbl.find_opt t.known id with
            | Some payload -> mcast t (Inject { gid = t.gid; id; payload })
            | None -> ()
          end
      | None -> ());
      incr s
    done
  end

let poll t =
  if Fd.suspected t.fd (leader t) && quorate t then adopt_epoch t (t.epoch + 1);
  anti_entropy t;
  (* Suspicions shrink the stability quorum, which can make blocked slots
     deliverable without any new message arriving. *)
  try_deliver t

let inject t id payload =
  if not (Hashtbl.mem t.known id) then begin
    Hashtbl.replace t.known id payload;
    (* Optimistic delivery: the spontaneous receipt order, before the
       total order is fixed (KPAS99a). *)
    t.opt_delivered_rev <- id :: t.opt_delivered_rev;
    List.iter
      (fun f -> f ~origin:(fst id) payload)
      (List.rev t.opt_deliver_cbs);
    if not (Hashtbl.mem t.delivered_set id) then begin
      Hashtbl.replace t.pending id ();
      if is_leader t && quorate t then begin
        (* Order it unless some slot already holds it. *)
        let already =
          Hashtbl.fold
            (fun _ (slot_id, _) acc -> acc || slot_id = id)
            t.slots false
        in
        if not already then assign t id
      end
    end;
    try_deliver t
  end

let broadcast t msg =
  let id = (t.me, t.next_send) in
  t.next_send <- t.next_send + 1;
  Rchan.mcast t.chan ~dsts:t.members (Inject { gid = t.gid; id; payload = msg })

let handle_msg t msg =
  match msg with
  | Inject { gid; id; payload } when gid = t.gid -> inject t id payload
  | Order { gid; epoch; seq; id } when gid = t.gid ->
      if epoch >= t.epoch then begin
        adopt_epoch t epoch;
        if seq >= t.next_deliver then begin
          (match Hashtbl.find_opt t.slots seq with
          | Some (old_id, old_epoch) when old_epoch < epoch && old_id <> id ->
              (* Overridden assignment: the old message must be re-ordered. *)
              if
                (not (Hashtbl.mem t.delivered_set old_id)) && fst old_id <> -1
              then Hashtbl.replace t.pending old_id ()
          | _ -> ());
          let accept =
            match Hashtbl.find_opt t.slots seq with
            | Some (_, old_epoch) -> epoch >= old_epoch
            | None -> true
          in
          if accept then begin
            Hashtbl.replace t.slots seq (id, epoch);
            mcast t (Order_ack { gid = t.gid; seq; id; from = t.me })
          end
        end
        else begin
          (* Slot already delivered here. Re-acknowledge it anyway: a
             recovered member replaying this slot needs a full ack set to
             reach stability, and everyone who was present when it first
             stabilised has long stopped talking about it. *)
          match Hashtbl.find_opt t.slots seq with
          | Some (sid, _) when sid = id ->
              mcast t (Order_ack { gid = t.gid; seq; id; from = t.me })
          | _ -> ()
        end;
        try_deliver t
      end
  | Order_ack { gid; seq; id; from } when gid = t.gid ->
      let s = ack_set t seq id in
      s := Iset.add from !s;
      try_deliver t
  | Fetch { gid; id } when gid = t.gid -> (
      match Hashtbl.find_opt t.known id with
      | Some payload ->
          (* Reply point-to-point is impossible without the requester id in
             the message; broadcast the payload instead (idempotent). *)
          mcast t (Fetch_reply { gid = t.gid; id; payload })
      | None -> ())
  | Fetch_reply { gid; id; payload } when gid = t.gid ->
      if not (Hashtbl.mem t.known id) then Hashtbl.replace t.known id payload;
      try_deliver t
  | _ -> ()

let broadcast_from group ~src msg =
  let seq_ref =
    match Hashtbl.find_opt group.client_seq src with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace group.client_seq src r;
        r
  in
  let id = (src, !seq_ref) in
  incr seq_ref;
  let chan = Rchan.handle group.chan_group ~me:src in
  Rchan.mcast chan ~dsts:group.g_members
    (Inject { gid = group.g_gid; id; payload = msg })

let create_group net ~members ?(clients = []) ?fd ?rto ?passthrough () =
  incr next_gid;
  let gid = !next_gid in
  let fd_group =
    match fd with Some g -> g | None -> Fd.create_group net ~members ()
  in
  let chan_group =
    Rchan.create_group net ~nodes:(members @ clients) ?rto ?passthrough ()
  in
  let handles = Hashtbl.create 8 in
  List.iter
    (fun me ->
      let t =
        {
          gid;
          me;
          net;
          members;
          fd = Fd.handle fd_group ~me;
          chan = Rchan.handle chan_group ~me;
          epoch = 0;
          next_send = 0;
          next_order = 0;
          next_deliver = 0;
          ack_floor = 0;
          known = Hashtbl.create 64;
          pending = Hashtbl.create 32;
          slots = Hashtbl.create 64;
          acks = Hashtbl.create 64;
          delivered_set = Hashtbl.create 64;
          delivered_rev = [];
          noop_seq = 0;
          deliver_cbs = [];
          opt_deliver_cbs = [];
          opt_delivered_rev = [];
        }
      in
      (match Network.timeseries net with
      | Some ts ->
          Timeseries.register ts ~name:"abcast_pending" ~replica:me
            ~kind:Timeseries.Queue ~unit_:"messages" (fun () ->
              float_of_int (Hashtbl.length t.pending));
          Timeseries.register ts ~name:"abcast_undelivered" ~replica:me
            ~kind:Timeseries.Queue ~unit_:"messages" (fun () ->
              float_of_int
                (Hashtbl.fold
                   (fun seq _ acc -> if seq >= t.next_deliver then acc + 1 else acc)
                   t.slots 0))
      | None -> ());
      Rchan.on_deliver t.chan (fun ~src msg ->
          ignore src;
          handle_msg t msg);
      ignore
        (Engine.periodic (Network.engine net) ~every:(Simtime.of_ms 25)
           (Network.guard net me (fun () -> poll t)));
      Hashtbl.replace handles me t)
    members;
  { g_gid = gid; g_members = members; chan_group; handles; client_seq = Hashtbl.create 8 }

let handle group ~me = Hashtbl.find group.handles me
