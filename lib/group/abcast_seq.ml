open Sim

module Iset = Set.Make (Int)

type id = int * int (* origin node, per-origin seq; origin -1 = no-op filler *)

type Msg.t +=
  | Inject of { gid : int; id : id; payload : Msg.t }
  | Order of { gid : int; epoch : int; seq : int; ids : id list }
  | Fetch of { gid : int; id : id }
  | Fetch_reply of { gid : int; id : id; payload : Msg.t }
  | Order_ack of { gid : int; seq : int; ids : id list; from : int }

let () =
  Msg.register_printer (function
    | Inject { payload; _ } -> Some ("Inject(" ^ Msg.name payload ^ ")")
    | Fetch_reply { payload; _ } -> Some ("Fetch_reply(" ^ Msg.name payload ^ ")")
    | Order { ids; _ } when List.length ids > 1 ->
        Some (Printf.sprintf "Order[%d]" (List.length ids))
    | _ -> None)

type t = {
  gid : int;
  me : int;
  net : Network.t;
  members : int list;
  fd : Fd.t;
  chan : Rchan.t;
  batch_window : Simtime.t;
  mutable epoch : int;
  mutable next_send : int; (* per-origin seq for our own broadcasts *)
  mutable next_order : int; (* as leader: next global slot *)
  mutable next_deliver : int;
  mutable ack_floor : int; (* slots below this are acked by every member *)
  known : (id, Msg.t) Hashtbl.t;
  pending : (id, unit) Hashtbl.t; (* known, not yet ordered under cur epoch *)
  slots : (int, id list * int) Hashtbl.t; (* seq -> (ids, epoch) *)
  acks : (int * id list, Iset.t ref) Hashtbl.t;
  delivered_set : (id, unit) Hashtbl.t;
  mutable delivered_rev : id list;
  mutable noop_seq : int;
  mutable batch_rev : id list; (* leader: injects awaiting the window flush *)
  mutable batch_armed : bool;
  mutable deliver_cbs : (origin:int -> Msg.t -> unit) list;
  mutable opt_deliver_cbs : (origin:int -> Msg.t -> unit) list;
  mutable opt_delivered_rev : id list;
}

type group = {
  g_gid : int;
  g_members : int list;
  chan_group : Rchan.group;
  handles : (int, t) Hashtbl.t;
  client_seq : (int, int ref) Hashtbl.t;
}

let next_gid = ref 0
let nth_member t e = List.nth t.members (e mod List.length t.members)
let leader t = nth_member t t.epoch
let is_leader t = leader t = t.me
let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs
let on_opt_deliver t f = t.opt_deliver_cbs <- f :: t.opt_deliver_cbs
let delivered t = List.rev t.delivered_rev
let opt_delivered t = List.rev t.opt_delivered_rev

let mcast t msg = Rchan.mcast t.chan ~dsts:t.members msg

let ack_set t seq ids =
  match Hashtbl.find_opt t.acks (seq, ids) with
  | Some s -> s
  | None ->
      let s = ref Iset.empty in
      Hashtbl.replace t.acks (seq, ids) s;
      s

(* A member that suspects a majority of the group is far more likely to be
   the partitioned minority (or freshly recovered with a stale detector)
   than the survivor; such a member must neither shrink the stability
   quorum, order messages, nor start an epoch change — any of those lets
   it deliver in an order the majority never agreed on. *)
let quorate t = 2 * List.length (Fd.trusted t.fd) > List.length t.members

let stable t seq ids =
  let ackers = !(ack_set t seq ids) in
  if quorate t then
    List.for_all
      (fun m -> Iset.mem m ackers || Fd.suspected t.fd m)
      t.members
  else List.for_all (fun m -> Iset.mem m ackers) t.members

(* Is [id] already assigned to some slot? Batched slots hold several. *)
let slotted t id =
  Hashtbl.fold
    (fun _ (slot_ids, _) acc -> acc || List.mem id slot_ids)
    t.slots false

let rec try_deliver t =
  match Hashtbl.find_opt t.slots t.next_deliver with
  | None -> ()
  | Some (ids, _epoch) ->
      if stable t t.next_deliver ids then begin
        let payload_ready id =
          fst id = -1 (* no-op filler: deliver nothing *)
          || Hashtbl.mem t.delivered_set id
          || Hashtbl.mem t.known id
        in
        if List.for_all payload_ready ids then begin
          (* One slot may hold a whole batch: deliver its messages in
             batch order, each exactly once. *)
          List.iter
            (fun ((origin, _) as id) ->
              if origin <> -1 && not (Hashtbl.mem t.delivered_set id) then begin
                Hashtbl.replace t.delivered_set id ();
                t.delivered_rev <- id :: t.delivered_rev;
                let payload = Hashtbl.find t.known id in
                List.iter (fun f -> f ~origin payload) (List.rev t.deliver_cbs)
              end;
              Hashtbl.remove t.pending id)
            ids;
          t.next_deliver <- t.next_deliver + 1;
          try_deliver t
        end
        else
          (* Stable slot but a payload missing: ask the group. *)
          List.iter
            (fun id ->
              if not (payload_ready id) then mcast t (Fetch { gid = t.gid; id }))
            ids
      end

let assign t ids =
  let seq = t.next_order in
  t.next_order <- t.next_order + 1;
  mcast t (Order { gid = t.gid; epoch = t.epoch; seq; ids })

(* Batched ordering: instead of assigning each injected message its own
   slot (one Order + one all-to-all ack wave per request), the leader
   buffers injects for [batch_window] of virtual time and assigns the
   whole buffer to a single slot — one ordering round amortised over the
   batch (the sequencer-side mirror of {!Abcast_ct}'s per-instance
   batches). *)
let flush_batch t =
  t.batch_armed <- false;
  let ids =
    List.rev t.batch_rev
    |> List.filter (fun id ->
           Hashtbl.mem t.pending id && not (slotted t id))
  in
  t.batch_rev <- [];
  if ids <> [] && is_leader t && quorate t then assign t ids

let enqueue_for_order t id =
  if Simtime.equal t.batch_window Simtime.zero then assign t [ id ]
  else begin
    t.batch_rev <- id :: t.batch_rev;
    if not t.batch_armed then begin
      t.batch_armed <- true;
      ignore
        (Engine.schedule (Network.engine t.net) ~label:"abcast:batch" ~after:t.batch_window
           (Network.guard t.net t.me (fun () -> flush_batch t)))
    end
  end

(* As the new leader of [epoch]: re-announce everything we know, fill the
   holes with no-ops, then order any pending messages. *)
let takeover t =
  let max_seq = Hashtbl.fold (fun seq _ acc -> max seq acc) t.slots (-1) in
  for seq = 0 to max_seq do
    match Hashtbl.find_opt t.slots seq with
    | Some (ids, _) -> mcast t (Order { gid = t.gid; epoch = t.epoch; seq; ids })
    | None ->
        t.noop_seq <- t.noop_seq + 1;
        mcast t
          (Order { gid = t.gid; epoch = t.epoch; seq; ids = [ (-1, t.noop_seq) ] })
  done;
  t.next_order <- max_seq + 1;
  Hashtbl.iter (fun id () -> if not (slotted t id) then assign t [ id ]) t.pending

let adopt_epoch t e =
  if e > t.epoch then begin
    t.epoch <- e;
    if is_leader t then takeover t
    else
      (* Make sure the new leader knows about everything we still expect to
         see ordered. *)
      Hashtbl.iter
        (fun id () ->
          match Hashtbl.find_opt t.known id with
          | Some payload ->
              Rchan.send t.chan ~dst:(leader t)
                (Inject { gid = t.gid; id; payload })
          | None -> ())
        t.pending
  end

(* Leader anti-entropy: keep re-announcing slots that some trusted member
   has not acknowledged, together with their payloads, so members that
   were unreachable longer than the stubborn channels' retry budget still
   catch up after a partition heals or a crashed member recovers. The
   scan starts at [ack_floor] — not at the leader's own delivery cursor,
   which races ahead of an absent member the moment the detector suspects
   it and shrinks the stability quorum. *)
let anti_entropy t =
  if is_leader t then begin
    (* Advance the floor past slots every member has acknowledged. *)
    let all_acked seq =
      match Hashtbl.find_opt t.slots seq with
      | None -> false
      | Some (ids, _) ->
          let ackers = !(ack_set t seq ids) in
          List.for_all (fun m -> Iset.mem m ackers) t.members
    in
    while t.ack_floor < t.next_order && all_acked t.ack_floor do
      t.ack_floor <- t.ack_floor + 1
    done;
    let resent = ref 0 in
    let horizon = t.next_order - 1 in
    let s = ref (min t.ack_floor t.next_deliver) in
    while !resent < 20 && !s <= horizon do
      (match Hashtbl.find_opt t.slots !s with
      | Some (ids, epoch) ->
          let ackers = !(ack_set t !s ids) in
          let missing =
            List.exists
              (fun m -> (not (Iset.mem m ackers)) && not (Fd.suspected t.fd m))
              t.members
          in
          if missing then begin
            incr resent;
            mcast t (Order { gid = t.gid; epoch; seq = !s; ids });
            List.iter
              (fun id ->
                match Hashtbl.find_opt t.known id with
                | Some payload -> mcast t (Inject { gid = t.gid; id; payload })
                | None -> ())
              ids
          end
      | None -> ());
      incr s
    done
  end

let poll t =
  if Fd.suspected t.fd (leader t) && quorate t then adopt_epoch t (t.epoch + 1);
  anti_entropy t;
  (* Suspicions shrink the stability quorum, which can make blocked slots
     deliverable without any new message arriving. *)
  try_deliver t

let inject t id payload =
  if not (Hashtbl.mem t.known id) then begin
    Hashtbl.replace t.known id payload;
    (* Optimistic delivery: the spontaneous receipt order, before the
       total order is fixed (KPAS99a). *)
    t.opt_delivered_rev <- id :: t.opt_delivered_rev;
    List.iter
      (fun f -> f ~origin:(fst id) payload)
      (List.rev t.opt_deliver_cbs);
    if not (Hashtbl.mem t.delivered_set id) then begin
      Hashtbl.replace t.pending id ();
      if is_leader t && quorate t then
        (* Order it unless some slot already holds it. *)
        if not (slotted t id) then enqueue_for_order t id
    end;
    try_deliver t
  end

let broadcast t msg =
  let id = (t.me, t.next_send) in
  t.next_send <- t.next_send + 1;
  Rchan.mcast t.chan ~dsts:t.members (Inject { gid = t.gid; id; payload = msg })

let handle_msg t msg =
  match msg with
  | Inject { gid; id; payload } when gid = t.gid -> inject t id payload
  | Order { gid; epoch; seq; ids } when gid = t.gid ->
      if epoch >= t.epoch then begin
        adopt_epoch t epoch;
        if seq >= t.next_deliver then begin
          (match Hashtbl.find_opt t.slots seq with
          | Some (old_ids, old_epoch) when old_epoch < epoch && old_ids <> ids
            ->
              (* Overridden assignment: the old messages must be re-ordered. *)
              List.iter
                (fun old_id ->
                  if
                    (not (Hashtbl.mem t.delivered_set old_id))
                    && fst old_id <> -1
                  then Hashtbl.replace t.pending old_id ())
                old_ids
          | _ -> ());
          let accept =
            match Hashtbl.find_opt t.slots seq with
            | Some (_, old_epoch) -> epoch >= old_epoch
            | None -> true
          in
          if accept then begin
            Hashtbl.replace t.slots seq (ids, epoch);
            mcast t (Order_ack { gid = t.gid; seq; ids; from = t.me })
          end
        end
        else begin
          (* Slot already delivered here. Re-acknowledge it anyway: a
             recovered member replaying this slot needs a full ack set to
             reach stability, and everyone who was present when it first
             stabilised has long stopped talking about it. *)
          match Hashtbl.find_opt t.slots seq with
          | Some (sids, _) when sids = ids ->
              mcast t (Order_ack { gid = t.gid; seq; ids; from = t.me })
          | _ -> ()
        end;
        try_deliver t
      end
  | Order_ack { gid; seq; ids; from } when gid = t.gid ->
      let s = ack_set t seq ids in
      s := Iset.add from !s;
      try_deliver t
  | Fetch { gid; id } when gid = t.gid -> (
      match Hashtbl.find_opt t.known id with
      | Some payload ->
          (* Reply point-to-point is impossible without the requester id in
             the message; broadcast the payload instead (idempotent). *)
          mcast t (Fetch_reply { gid = t.gid; id; payload })
      | None -> ())
  | Fetch_reply { gid; id; payload } when gid = t.gid ->
      if not (Hashtbl.mem t.known id) then Hashtbl.replace t.known id payload;
      try_deliver t
  | _ -> ()

let broadcast_from group ~src msg =
  let seq_ref =
    match Hashtbl.find_opt group.client_seq src with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace group.client_seq src r;
        r
  in
  let id = (src, !seq_ref) in
  incr seq_ref;
  let chan = Rchan.handle group.chan_group ~me:src in
  Rchan.mcast chan ~dsts:group.g_members
    (Inject { gid = group.g_gid; id; payload = msg })

let create_group net ~members ?(clients = []) ?fd ?rto ?passthrough
    ?(batch_window = Simtime.zero) () =
  incr next_gid;
  let gid = !next_gid in
  let fd_group =
    match fd with Some g -> g | None -> Fd.create_group net ~members ()
  in
  let chan_group =
    Rchan.create_group net ~nodes:(members @ clients) ?rto ?passthrough ()
  in
  let handles = Hashtbl.create 8 in
  List.iter
    (fun me ->
      let t =
        {
          gid;
          me;
          net;
          members;
          fd = Fd.handle fd_group ~me;
          chan = Rchan.handle chan_group ~me;
          batch_window;
          epoch = 0;
          next_send = 0;
          next_order = 0;
          next_deliver = 0;
          ack_floor = 0;
          known = Hashtbl.create 64;
          pending = Hashtbl.create 32;
          slots = Hashtbl.create 64;
          acks = Hashtbl.create 64;
          delivered_set = Hashtbl.create 64;
          delivered_rev = [];
          noop_seq = 0;
          batch_rev = [];
          batch_armed = false;
          deliver_cbs = [];
          opt_deliver_cbs = [];
          opt_delivered_rev = [];
        }
      in
      (match Network.timeseries net with
      | Some ts ->
          Timeseries.register ts ~name:"abcast_pending" ~replica:me
            ~kind:Timeseries.Queue ~unit_:"messages" (fun () ->
              float_of_int (Hashtbl.length t.pending));
          Timeseries.register ts ~name:"abcast_undelivered" ~replica:me
            ~kind:Timeseries.Queue ~unit_:"messages" (fun () ->
              float_of_int
                (Hashtbl.fold
                   (fun seq _ acc -> if seq >= t.next_deliver then acc + 1 else acc)
                   t.slots 0))
      | None -> ());
      Rchan.on_deliver t.chan (fun ~src msg ->
          ignore src;
          handle_msg t msg);
      ignore
        (Engine.periodic (Network.engine net) ~label:"abcast:poll" ~every:(Simtime.of_ms 25)
           (Network.guard net me (fun () -> poll t)));
      Hashtbl.replace handles me t)
    members;
  { g_gid = gid; g_members = members; chan_group; handles; client_seq = Hashtbl.create 8 }

let handle group ~me = Hashtbl.find group.handles me
