open Sim

module Iset = Set.Make (Int)

type Msg.t += Heartbeat of { gid : int; from : int }

type t = {
  net : Network.t;
  gid : int;
  me : int;
  members : int list;
  timeout : Simtime.t;
  last_heard : (int, Simtime.t) Hashtbl.t;
  mutable suspects : Iset.t;
  mutable suspect_cbs : (int -> unit) list;
  mutable trust_cbs : (int -> unit) list;
}

type group = { g_members : int list; handles : (int, t) Hashtbl.t }

let next_gid = ref 0

let now t = Engine.now (Network.engine t.net)

let hear t peer =
  Hashtbl.replace t.last_heard peer (now t);
  if Iset.mem peer t.suspects then begin
    t.suspects <- Iset.remove peer t.suspects;
    List.iter (fun f -> f peer) t.trust_cbs
  end

let check t =
  let horizon = Simtime.sub (now t) t.timeout in
  List.iter
    (fun peer ->
      if peer <> t.me && not (Iset.mem peer t.suspects) then
        match Hashtbl.find_opt t.last_heard peer with
        | Some last when Simtime.(last >= horizon) -> ()
        | _ ->
            t.suspects <- Iset.add peer t.suspects;
            List.iter (fun f -> f peer) t.suspect_cbs)
    t.members

let create_member net ~gid ~members ~heartbeat_every ~timeout me =
  let t =
    {
      net;
      gid;
      me;
      members;
      timeout;
      last_heard = Hashtbl.create 8;
      suspects = Iset.empty;
      suspect_cbs = [];
      trust_cbs = [];
    }
  in
  let engine = Network.engine net in
  List.iter
    (fun peer ->
      if peer <> me then Hashtbl.replace t.last_heard peer (Engine.now engine))
    members;
  Network.add_handler net me (fun ~src msg ->
      match msg with
      | Heartbeat { gid = g; from } when g = gid ->
          ignore src;
          hear t from;
          true
      | _ -> false);
  let beat () =
    List.iter
      (fun peer ->
        if peer <> me then
          Network.send net ~src:me ~dst:peer (Heartbeat { gid; from = me }))
      members
  in
  ignore (Engine.periodic engine ~label:"fd:heartbeat" ~every:heartbeat_every (Network.guard net me beat));
  ignore
    (Engine.periodic engine ~label:"fd:check" ~every:heartbeat_every
       (Network.guard net me (fun () -> check t)));
  (* Recovery voids the detector's timing assumptions: every peer looks
     silent for the whole outage. Restart the deadlines and trust everyone
     until a fresh [timeout] elapses, so a recovering node does not act on
     an epoch of universal (and almost surely wrong) suspicion. *)
  Network.on_recover net (fun node ->
      if node = me then begin
        List.iter
          (fun peer ->
            if peer <> me then Hashtbl.replace t.last_heard peer (now t))
          members;
        let frozen = t.suspects in
        t.suspects <- Iset.empty;
        Iset.iter (fun peer -> List.iter (fun f -> f peer) t.trust_cbs) frozen
      end);
  t

let create_group net ~members ?(heartbeat_every = Simtime.of_ms 20)
    ?(timeout = Simtime.of_ms 100) () =
  incr next_gid;
  let gid = !next_gid in
  let handles = Hashtbl.create 8 in
  List.iter
    (fun me ->
      Hashtbl.replace handles me
        (create_member net ~gid ~members ~heartbeat_every ~timeout me))
    members;
  { g_members = members; handles }

let handle group ~me = Hashtbl.find group.handles me
let me t = t.me
let members t = t.members
let suspected t peer = Iset.mem peer t.suspects
let trusted t = List.filter (fun p -> not (Iset.mem p t.suspects)) t.members
let on_suspect t f = t.suspect_cbs <- f :: t.suspect_cbs
let on_trust t f = t.trust_cbs <- f :: t.trust_cbs
