open Sim

type Msg.t += Fifo_msg of { fseq : int; payload : Msg.t }

let () =
  Msg.register_printer (function
    | Fifo_msg { payload; _ } -> Some ("Fifo(" ^ Msg.name payload ^ ")")
    | _ -> None)

type t = {
  rb : Rbcast.t;
  mutable next_send : int;
  expected : (int, int) Hashtbl.t; (* origin -> next fseq to deliver *)
  holdback : (int * int, Msg.t) Hashtbl.t; (* (origin, fseq) -> payload *)
  mutable deliver_cbs : (origin:int -> Msg.t -> unit) list;
}

type group = { handles : (int, t) Hashtbl.t }

let broadcast t msg =
  let fseq = t.next_send in
  t.next_send <- t.next_send + 1;
  Rbcast.broadcast t.rb (Fifo_msg { fseq; payload = msg })

let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs

let rec drain t origin =
  let next = Option.value ~default:0 (Hashtbl.find_opt t.expected origin) in
  match Hashtbl.find_opt t.holdback (origin, next) with
  | None -> ()
  | Some payload ->
      Hashtbl.remove t.holdback (origin, next);
      Hashtbl.replace t.expected origin (next + 1);
      List.iter (fun f -> f ~origin payload) (List.rev t.deliver_cbs);
      drain t origin

let create_group net ~members ?rto ?passthrough () =
  let rb_group = Rbcast.create_group net ~members ?rto ?passthrough () in
  let handles = Hashtbl.create 8 in
  List.iter
    (fun me ->
      let rb = Rbcast.handle rb_group ~me in
      let t =
        {
          rb;
          next_send = 0;
          expected = Hashtbl.create 8;
          holdback = Hashtbl.create 32;
          deliver_cbs = [];
        }
      in
      Rbcast.on_deliver rb (fun ~origin msg ->
          match msg with
          | Fifo_msg { fseq; payload } ->
              Hashtbl.replace t.holdback (origin, fseq) payload;
              drain t origin
          | _ -> ());
      Hashtbl.replace handles me t)
    members;
  { handles }

let handle group ~me = Hashtbl.find group.handles me
