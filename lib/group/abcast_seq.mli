(** Uniform atomic broadcast with a fixed sequencer and epoch-based
    failover (a ZooKeeper-atomic-broadcast-style design).

    The current leader (the [epoch mod n]-th member) assigns a global
    sequence number to each injected message; members acknowledge
    assignments to everybody and deliver a sequence slot only once every
    trusted member has acknowledged it ({e uniform} delivery). On leader
    crash the next member re-announces, under a higher epoch, every
    assignment it knows — because delivered slots were acknowledged by all,
    the delivered prefix is always re-announced unchanged — plugs the holes
    it cannot account for with no-ops, and continues numbering.

    Failover is safe under {e accurate} crash detection (the synchronous
    model of paper §2.1); with wrong suspicions the consensus-based engine
    ({!Abcast_ct}) must be used instead. This engine exists because it is
    the latency-optimal common case (2 message delays) and serves as the
    ablation baseline against consensus-based ordering.

    With a non-zero [batch_window], the leader coalesces every message
    injected within that virtual-time window into a single ordering round
    (one sequence slot holding the whole batch): the Order message and
    its all-to-all stability acks are paid once per batch instead of once
    per message — the sequencer-side mirror of {!Abcast_ct}'s
    per-instance batches. [batch_window = 0] (the default) orders each
    message immediately, preserving the latency-optimal §5 behaviour. *)

type t
type group

val create_group :
  Sim.Network.t ->
  members:int list ->
  ?clients:int list ->
  ?fd:Fd.group ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  ?batch_window:Sim.Simtime.t ->
  unit ->
  group

val handle : group -> me:int -> t
val broadcast : t -> Sim.Msg.t -> unit
val broadcast_from : group -> src:int -> Sim.Msg.t -> unit
val on_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Optimistic delivery (the optimistic atomic broadcast of [KPAS99a],
    which the paper's introduction credits with hiding group-communication
    overheads behind transaction execution): fires as soon as a message is
    {e received}, in the spontaneous network order, before its place in
    the total order is fixed. Consumers may start processing
    optimistically and must confirm or repair when [on_deliver] later
    fixes the definitive order. *)
val on_opt_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Ids (origin, per-origin seq) delivered so far, oldest first (tests). *)
val delivered : t -> (int * int) list

(** Ids optimistically delivered so far, in spontaneous order. *)
val opt_delivered : t -> (int * int) list

(** Current leader from this member's point of view (tests). *)
val leader : t -> int
