type impl = Sequencer | Consensus_based

type t = Seq of Abcast_seq.t | Ct of Abcast_ct.t
type group = Gseq of Abcast_seq.group | Gct of Abcast_ct.group

(* [batch_window] only concerns the sequencer engine: the consensus
   engine already batches naturally (every consensus instance decides on
   the full set of pending messages). *)
let create_group net ~members ?clients ?(impl = Sequencer) ?fd ?rto
    ?passthrough ?batch_window () =
  match impl with
  | Sequencer ->
      Gseq
        (Abcast_seq.create_group net ~members ?clients ?fd ?rto ?passthrough
           ?batch_window ())
  | Consensus_based ->
      Gct (Abcast_ct.create_group net ~members ?clients ?fd ?rto ?passthrough ())

let handle group ~me =
  match group with
  | Gseq g -> Seq (Abcast_seq.handle g ~me)
  | Gct g -> Ct (Abcast_ct.handle g ~me)

let broadcast t msg =
  match t with
  | Seq h -> Abcast_seq.broadcast h msg
  | Ct h -> Abcast_ct.broadcast h msg

let broadcast_from group ~src msg =
  match group with
  | Gseq g -> Abcast_seq.broadcast_from g ~src msg
  | Gct g -> Abcast_ct.broadcast_from g ~src msg

let on_deliver t f =
  match t with
  | Seq h -> Abcast_seq.on_deliver h f
  | Ct h -> Abcast_ct.on_deliver h f

let on_opt_deliver t f =
  match t with
  | Seq h -> Abcast_seq.on_opt_deliver h f
  | Ct h -> Abcast_ct.on_opt_deliver h f

let opt_delivered t =
  match t with
  | Seq h -> Abcast_seq.opt_delivered h
  | Ct h -> Abcast_ct.opt_delivered h

let delivered t =
  match t with Seq h -> Abcast_seq.delivered h | Ct h -> Abcast_ct.delivered h
