open Sim

module Iset = Set.Make (Int)

module Make (V : sig
  type t
end) =
struct
  type Msg.t +=
    | Est of { gid : int; inst : int; round : int; est : V.t option; ts : int; from : int }
    | Proposal of { gid : int; inst : int; round : int; v : V.t }
    | Reply of { gid : int; inst : int; round : int; from : int; ok : bool }
    | Abort of { gid : int; inst : int; round : int }
    | Decide of { gid : int; inst : int; v : V.t }

  (* Disambiguate from other layers' like-named constructors (the client
     reply in Protocols.Common is also "Reply"). *)
  let () =
    Msg.register_printer (function
      | Est _ -> Some "Cons_est"
      | Proposal _ -> Some "Cons_proposal"
      | Reply _ -> Some "Cons_reply"
      | Abort _ -> Some "Cons_abort"
      | Decide _ -> Some "Cons_decide"
      | _ -> None)

  type inst = {
    id : int;
    mutable est : V.t option;
    mutable ts : int;
    mutable round : int; (* -1 until started *)
    mutable decided : V.t option;
    (* Coordinator-side per-round bookkeeping. *)
    estimates : (int, (int, V.t option * int) Hashtbl.t) Hashtbl.t;
    proposals : (int, V.t) Hashtbl.t;
    replies : (int, Iset.t ref * Iset.t ref) Hashtbl.t; (* acks, nacks *)
    mutable aborted : Iset.t; (* rounds this coordinator gave up on *)
  }

  type t = {
    net : Network.t;
    gid : int;
    me : int;
    members : int array;
    majority : int;
    fd : Fd.t;
    chan : Rchan.t;
    insts : (int, inst) Hashtbl.t;
    mutable decide_cbs : (instance:int -> V.t -> unit) list;
  }

  type group = { handles : (int, t) Hashtbl.t }

  let next_gid = ref 0
  let coord t round = t.members.(round mod Array.length t.members)

  let get_inst t id =
    match Hashtbl.find_opt t.insts id with
    | Some inst -> inst
    | None ->
        let inst =
          {
            id;
            est = None;
            ts = 0;
            round = -1;
            decided = None;
            estimates = Hashtbl.create 4;
            proposals = Hashtbl.create 4;
            replies = Hashtbl.create 4;
            aborted = Iset.empty;
          }
        in
        Hashtbl.replace t.insts id inst;
        inst

  let round_estimates inst round =
    match Hashtbl.find_opt inst.estimates round with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace inst.estimates round tbl;
        tbl

  let round_replies inst round =
    match Hashtbl.find_opt inst.replies round with
    | Some pair -> pair
    | None ->
        let pair = (ref Iset.empty, ref Iset.empty) in
        Hashtbl.replace inst.replies round pair;
        pair

  let mcast_members t msg =
    Array.iter (fun dst -> Rchan.send t.chan ~dst msg) t.members

  let decide t inst v =
    if inst.decided = None then begin
      inst.decided <- Some v;
      (* Relay so a coordinator crash mid-multicast cannot leave survivors
         undecided. *)
      mcast_members t (Decide { gid = t.gid; inst = inst.id; v });
      List.iter (fun f -> f ~instance:inst.id v) (List.rev t.decide_cbs)
    end

  (* As coordinator of [round], propose once a majority of estimates
     including at least one real value has arrived. *)
  let try_propose t inst round =
    if
      inst.decided = None
      && coord t round = t.me
      && (not (Hashtbl.mem inst.proposals round))
      && not (Iset.mem round inst.aborted)
    then begin
      let tbl = round_estimates inst round in
      if Hashtbl.length tbl >= t.majority then begin
        let best = ref None in
        Hashtbl.iter
          (fun _ (est, ts) ->
            match est with
            | None -> ()
            | Some v -> (
                match !best with
                | Some (_, best_ts) when best_ts >= ts -> ()
                | _ -> best := Some (v, ts)))
          tbl;
        match !best with
        | None -> () (* nobody proposed anything yet; wait *)
        | Some (v, _) ->
            Hashtbl.replace inst.proposals round v;
            mcast_members t (Proposal { gid = t.gid; inst = inst.id; round; v })
      end
    end

  let send_estimate t inst =
    let dst = coord t inst.round in
    if dst = t.me then begin
      (* Record our own estimate directly. *)
      let tbl = round_estimates inst inst.round in
      Hashtbl.replace tbl t.me (inst.est, inst.ts);
      try_propose t inst inst.round
    end
    else
      Rchan.send t.chan ~dst
        (Est
           {
             gid = t.gid;
             inst = inst.id;
             round = inst.round;
             est = inst.est;
             ts = inst.ts;
             from = t.me;
           })

  let start_round t inst round =
    if inst.decided = None && round > inst.round then begin
      inst.round <- round;
      send_estimate t inst
    end

  let propose t ~instance v =
    let inst = get_inst t instance in
    if inst.est = None then begin
      inst.est <- Some v;
      inst.ts <- 0
    end;
    if inst.round < 0 then start_round t inst 0
    else
      (* Already participating with est = None: refresh the coordinator. *)
      send_estimate t inst

  let participate t ~instance =
    let inst = get_inst t instance in
    if inst.round < 0 && inst.decided = None then start_round t inst 0

  let on_decide t f = t.decide_cbs <- f :: t.decide_cbs

  let decision t ~instance =
    match Hashtbl.find_opt t.insts instance with
    | None -> None
    | Some inst -> inst.decided

  (* Give up on blocked undecided instances whose coordinator is suspected. *)
  let poll t =
    Hashtbl.iter
      (fun _ inst ->
        if inst.decided = None && inst.round >= 0 then
          let c = coord t inst.round in
          if c <> t.me && Fd.suspected t.fd c then
            start_round t inst (inst.round + 1))
      t.insts

  let handle_msg t msg =
    match msg with
    | Est { gid; inst = id; round; est; ts; from } when gid = t.gid ->
        let inst = get_inst t id in
        (* A participant asking about an already-decided instance is a
           recovering process: tell it the outcome. *)
        (match inst.decided with
        | Some v ->
            Rchan.send t.chan ~dst:from (Decide { gid = t.gid; inst = id; v })
        | None -> ());
        if inst.decided = None then begin
          if inst.round < 0 then inst.round <- 0;
          let tbl = round_estimates inst round in
          Hashtbl.replace tbl from (est, ts);
          (* A higher round from a peer means earlier rounds failed. *)
          if round > inst.round then begin
            inst.round <- round;
            send_estimate t inst
          end;
          try_propose t inst round
        end
    | Proposal { gid; inst = id; round; v } when gid = t.gid ->
        let inst = get_inst t id in
        if inst.decided = None && round >= inst.round then begin
          inst.round <- round;
          inst.est <- Some v;
          inst.ts <- round;
          Rchan.send t.chan ~dst:(coord t round)
            (Reply { gid = t.gid; inst = id; round; from = t.me; ok = true })
        end
        else if inst.decided = None then
          (* Stale proposal: tell the old coordinator to give up. *)
          Rchan.send t.chan ~dst:(coord t round)
            (Reply { gid = t.gid; inst = id; round; from = t.me; ok = false })
    | Reply { gid; inst = id; round; from; ok } when gid = t.gid ->
        let inst = get_inst t id in
        if inst.decided = None && coord t round = t.me then begin
          let acks, nacks = round_replies inst round in
          if ok then acks := Iset.add from !acks else nacks := Iset.add from !nacks;
          if Iset.cardinal !acks >= t.majority then
            match Hashtbl.find_opt inst.proposals round with
            | Some v -> decide t inst v
            | None -> ()
          else if
            Array.length t.members - Iset.cardinal !nacks < t.majority
            && not (Iset.mem round inst.aborted)
          then begin
            inst.aborted <- Iset.add round inst.aborted;
            mcast_members t (Abort { gid = t.gid; inst = id; round })
          end
        end
    | Abort { gid; inst = id; round } when gid = t.gid ->
        let inst = get_inst t id in
        if inst.decided = None && inst.round = round then
          start_round t inst (round + 1)
    | Decide { gid; inst = id; v } when gid = t.gid ->
        let inst = get_inst t id in
        if inst.decided = None then begin
          inst.decided <- Some v;
          mcast_members t (Decide { gid = t.gid; inst = id; v });
          List.iter (fun f -> f ~instance:id v) (List.rev t.decide_cbs)
        end
    | _ -> ()

  let create_group net ~members ~fd ?rto ?(poll_every = Simtime.of_ms 25)
      ?passthrough () =
    incr next_gid;
    let gid = !next_gid in
    let chan_group = Rchan.create_group net ~nodes:members ?rto ?passthrough () in
    let handles = Hashtbl.create 8 in
    let n = List.length members in
    List.iter
      (fun me ->
        let t =
          {
            net;
            gid;
            me;
            members = Array.of_list members;
            majority = (n / 2) + 1;
            fd = Fd.handle fd ~me;
            chan = Rchan.handle chan_group ~me;
            insts = Hashtbl.create 16;
            decide_cbs = [];
          }
        in
        (match Network.timeseries net with
        | Some ts ->
            Timeseries.register ts ~name:"consensus_open" ~replica:me
              ~kind:Timeseries.Queue ~unit_:"instances" (fun () ->
                float_of_int
                  (Hashtbl.fold
                     (fun _ inst acc ->
                       if inst.decided = None then acc + 1 else acc)
                     t.insts 0))
        | None -> ());
        Rchan.on_deliver t.chan (fun ~src msg ->
            ignore src;
            handle_msg t msg);
        ignore
          (Engine.periodic (Network.engine net) ~label:"consensus:poll" ~every:poll_every
             (Network.guard net me (fun () -> poll t)));
        Hashtbl.replace handles me t)
      members;
    { handles }

  let handle group ~me = Hashtbl.find group.handles me
end
