open Sim

type Msg.t +=
  | Data of { gid : int; src : int; seq : int; payload : Msg.t }
  | Ack of { gid : int; seq : int }

let () =
  Msg.register_printer (function
    | Data { payload; _ } -> Some ("Data(" ^ Msg.name payload ^ ")")
    | Ack _ -> Some "Ack"
    | _ -> None)

type t = {
  net : Network.t;
  gid : int;
  me : int;
  rto : Simtime.t;
  max_retries : int;
  passthrough : bool;
  mutable next_seq : int;
  (* Sender side: un-acked messages, keyed by our own seq. *)
  unacked : (int, unit -> unit) Hashtbl.t; (* seq -> cancel retransmit *)
  (* Receiver side: seqs already delivered, per source. *)
  seen : (int * int, unit) Hashtbl.t;
  mutable deliver_cbs : (src:int -> Msg.t -> unit) list;
}

type group = { handles : (int, t) Hashtbl.t }

let next_gid = ref 0

let deliver t ~src payload =
  List.iter (fun f -> f ~src payload) (List.rev t.deliver_cbs)

let send t ~dst msg =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let packet = Data { gid = t.gid; src = t.me; seq; payload = msg } in
  Network.send t.net ~src:t.me ~dst packet;
  if not t.passthrough then begin
    let engine = Network.engine t.net in
    let retries = ref 0 in
    let cancelled = ref false in
    let timer = ref None in
    let rec retransmit () =
      if (not !cancelled) && !retries < t.max_retries then begin
        incr retries;
        Network.send t.net ~src:t.me ~dst packet;
        timer :=
          Some (Engine.schedule engine ~label:"rchan:retransmit" ~after:t.rto (Network.guard t.net t.me retransmit))
      end
    in
    timer :=
      Some (Engine.schedule engine ~label:"rchan:retransmit" ~after:t.rto (Network.guard t.net t.me retransmit));
    Hashtbl.replace t.unacked seq (fun () ->
        cancelled := true;
        match !timer with Some tm -> Engine.cancel tm | None -> ())
  end

let mcast t ~dsts msg = List.iter (fun dst -> send t ~dst msg) dsts
let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs

let create_group net ~nodes ?(rto = Simtime.of_ms 10) ?(max_retries = 100)
    ?(passthrough = false) () =
  incr next_gid;
  let gid = !next_gid in
  let handles = Hashtbl.create 8 in
  List.iter
    (fun me ->
      let t =
        {
          net;
          gid;
          me;
          rto;
          max_retries;
          passthrough;
          next_seq = 0;
          unacked = Hashtbl.create 32;
          seen = Hashtbl.create 64;
          deliver_cbs = [];
        }
      in
      (match Network.timeseries net with
      | Some ts ->
          Timeseries.register ts ~name:"rchan_unacked" ~replica:me
            ~kind:Timeseries.Queue ~unit_:"messages" (fun () ->
              float_of_int (Hashtbl.length t.unacked))
      | None -> ());
      Network.add_handler net me (fun ~src msg ->
          match msg with
          | Data { gid = g; src = origin; seq; payload } when g = gid ->
              if not t.passthrough then
                Network.send net ~src:me ~dst:src (Ack { gid; seq });
              if not (Hashtbl.mem t.seen (origin, seq)) then begin
                Hashtbl.replace t.seen (origin, seq) ();
                deliver t ~src:origin payload
              end;
              true
          | Ack { gid = g; seq } when g = gid ->
              (match Hashtbl.find_opt t.unacked seq with
              | Some cancel ->
                  cancel ();
                  Hashtbl.remove t.unacked seq
              | None -> ());
              true
          | _ -> false);
      Hashtbl.replace handles me t)
    nodes;
  { handles }

let handle group ~me = Hashtbl.find group.handles me
