(** View Synchronous Broadcast (paper §3.1, [SS93]).

    Messages are broadcast within a view [vi(g)] and delivered only when
    every current-view member has acknowledged them (sender-FIFO order).
    When a member is suspected, the survivors agree — through
    {!Consensus} — on the next view and on the exact set of view-[i]
    messages to deliver before installing it. Because a message is
    delivered only when acknowledged by all members, any message delivered
    by {e anyone} in view [i] is in {e every} proposer's flush set, which
    yields the view-synchrony property: if some process delivers [m] in
    [vi(g)] before installing [v(i+1)(g)], every process that installs
    [v(i+1)(g)] first delivers [m].

    Messages of view [i] not in the agreed flush set are dropped
    everywhere; the sender (if it survives into the new view)
    automatically rebroadcasts them in the new view.

    A member that crash-recovers must not resume its pre-crash view:
    messages may have been delivered — and views installed — without it
    while it was down, so on recovery it marks itself excluded and
    re-enters through {!request_join} like any left-behind member. This
    holds even when it recovers before the failure detector excluded it:
    a join request from a current member forces a fresh view (with
    unchanged membership) for the joiner to jump to. *)

type t
type group

val create_group :
  Sim.Network.t ->
  members:int list ->
  ?fd:Fd.group ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  unit ->
  group

val handle : group -> me:int -> t

(** Broadcast to the current view. No-op for members excluded from it. *)
val broadcast : t -> Sim.Msg.t -> unit

val on_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Called after each new view is installed. *)
val on_view_change : t -> (View.t -> unit) -> unit

val current_view : t -> View.t

(** Whether this member is part of its current view (false once excluded). *)
val in_view : t -> bool

(** [request_join t] asks the group to readmit an excluded (e.g. crashed
    and recovered) member. The next view change includes it; because it
    cannot replay the views it missed, it {e jumps} to the readmitting
    view, and the application must transfer state (see the hot-standby
    recovery in the Passive protocol). Repeated automatically until a
    view containing the member is installed. *)
val request_join : t -> unit
