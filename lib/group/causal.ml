open Sim

type Msg.t += Causal_msg of { vc : int array; payload : Msg.t }

let () =
  Msg.register_printer (function
    | Causal_msg { payload; _ } -> Some ("Causal(" ^ Msg.name payload ^ ")")
    | _ -> None)

type t = {
  rb : Rbcast.t;
  me_idx : int;
  index_of : (int, int) Hashtbl.t; (* member id -> vector index *)
  vc : int array; (* vc.(i) = messages delivered from member i *)
  mutable pending : (int * int array * Msg.t) list; (* origin, vc, payload *)
  mutable deliver_cbs : (origin:int -> Msg.t -> unit) list;
}

type group = { handles : (int, t) Hashtbl.t }

let broadcast t msg =
  let vc = Array.copy t.vc in
  vc.(t.me_idx) <- vc.(t.me_idx) + 1;
  Rbcast.broadcast t.rb (Causal_msg { vc; payload = msg })

let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs
let clock t = Array.copy t.vc

let deliverable t ~origin_idx vc =
  let ok = ref (vc.(origin_idx) = t.vc.(origin_idx) + 1) in
  Array.iteri
    (fun i v -> if i <> origin_idx && v > t.vc.(i) then ok := false)
    vc;
  !ok

let rec drain t =
  let progressed = ref false in
  let still_pending =
    List.filter
      (fun (origin, vc, payload) ->
        let origin_idx = Hashtbl.find t.index_of origin in
        if deliverable t ~origin_idx vc then begin
          t.vc.(origin_idx) <- t.vc.(origin_idx) + 1;
          List.iter (fun f -> f ~origin payload) (List.rev t.deliver_cbs);
          progressed := true;
          false
        end
        else true)
      t.pending
  in
  t.pending <- still_pending;
  if !progressed then drain t

let create_group net ~members ?rto ?passthrough () =
  let rb_group = Rbcast.create_group net ~members ?rto ?passthrough () in
  let n = List.length members in
  let handles = Hashtbl.create 8 in
  List.iteri
    (fun idx me ->
      let rb = Rbcast.handle rb_group ~me in
      let index_of = Hashtbl.create 8 in
      List.iteri (fun i m -> Hashtbl.replace index_of m i) members;
      let t =
        {
          rb;
          me_idx = idx;
          index_of;
          vc = Array.make n 0;
          pending = [];
          deliver_cbs = [];
        }
      in
      Rbcast.on_deliver rb (fun ~origin msg ->
          match msg with
          | Causal_msg { vc; payload } ->
              t.pending <- t.pending @ [ (origin, vc, payload) ];
              drain t
          | _ -> ());
      Hashtbl.replace handles me t)
    members;
  { handles }

let handle group ~me = Hashtbl.find group.handles me
