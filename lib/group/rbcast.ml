open Sim

type Msg.t += Rb of { gid : int; origin : int; seq : int; payload : Msg.t }

let () =
  Msg.register_printer (function
    | Rb { payload; _ } -> Some ("Rb(" ^ Msg.name payload ^ ")")
    | _ -> None)

type t = {
  gid : int;
  me : int;
  members : int list;
  chan : Rchan.t;
  mutable next_seq : int;
  seen : (int * int, unit) Hashtbl.t; (* (origin, seq) already delivered *)
  mutable deliver_cbs : (origin:int -> Msg.t -> unit) list;
}

type group = { handles : (int, t) Hashtbl.t }

let next_gid = ref 0

let deliver_local t ~origin ~seq payload =
  if not (Hashtbl.mem t.seen (origin, seq)) then begin
    Hashtbl.replace t.seen (origin, seq) ();
    (* Relay before delivering: if this member crashes mid-protocol the
       relayed copies preserve agreement among the survivors. *)
    let others = List.filter (fun p -> p <> t.me) t.members in
    Rchan.mcast t.chan ~dsts:others
      (Rb { gid = t.gid; origin; seq; payload });
    List.iter (fun f -> f ~origin payload) (List.rev t.deliver_cbs)
  end

let broadcast t msg =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  deliver_local t ~origin:t.me ~seq msg

let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs
let last_seq t = t.next_seq - 1

let create_group net ~members ?rto ?passthrough () =
  incr next_gid;
  let gid = !next_gid in
  let chan_group = Rchan.create_group net ~nodes:members ?rto ?passthrough () in
  let handles = Hashtbl.create 8 in
  List.iter
    (fun me ->
      let chan = Rchan.handle chan_group ~me in
      let t =
        {
          gid;
          me;
          members;
          chan;
          next_seq = 0;
          seen = Hashtbl.create 64;
          deliver_cbs = [];
        }
      in
      (* [seen] is a monotone dedup table, not a backlog — a Level, so
         the queue-growth detector ignores it. *)
      (match Network.timeseries net with
      | Some ts ->
          Timeseries.register ts ~name:"rbcast_seen" ~replica:me
            ~kind:Timeseries.Level ~unit_:"messages" (fun () ->
              float_of_int (Hashtbl.length t.seen))
      | None -> ());
      Rchan.on_deliver chan (fun ~src msg ->
          ignore src;
          match msg with
          | Rb { gid = g; origin; seq; payload } when g = gid ->
              deliver_local t ~origin ~seq payload
          | _ -> ());
      Hashtbl.replace handles me t)
    members;
  { handles }

let handle group ~me = Hashtbl.find group.handles me
