(** Atomic broadcast facade over the two ordering engines.

    [Sequencer] is the latency-optimal engine, safe under accurate crash
    detection ({!Abcast_seq}); [Consensus_based] works with an
    eventually-accurate detector ({!Abcast_ct}). Both provide the same
    interface: total order, agreement, at-most-once delivery. *)

type impl = Sequencer | Consensus_based

type t
type group

(** [batch_window] (default 0): sequencer-side request batching — see
    {!Abcast_seq.create_group}. Ignored by the consensus engine, which
    already batches per instance. *)
val create_group :
  Sim.Network.t ->
  members:int list ->
  ?clients:int list ->
  ?impl:impl ->
  ?fd:Fd.group ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  ?batch_window:Sim.Simtime.t ->
  unit ->
  group

val handle : group -> me:int -> t
val broadcast : t -> Sim.Msg.t -> unit
val broadcast_from : group -> src:int -> Sim.Msg.t -> unit
val on_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Optimistic delivery in spontaneous receipt order, before the total
    order is fixed ([KPAS99a]; see {!Abcast_seq.on_opt_deliver}). *)
val on_opt_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Delivered ids (origin, per-origin seq), oldest first. *)
val delivered : t -> (int * int) list

(** Optimistically delivered ids, in spontaneous order. *)
val opt_delivered : t -> (int * int) list
