(** Deterministic keyspace partitioning for sharded replication groups.

    A shard map assigns every logical data item to exactly one of [k]
    shards, so that each shard can be replicated by its own group of
    replicas (partial replication: no replica outside the owning group
    ever holds or coordinates on the item). Two placement strategies:

    - {!Hash}: FNV-1a over the key string, modulo [k]. Spreads any key
      population evenly; placement depends only on the key bytes, so it
      is stable across runs, processes and cluster sizes.
    - {!Range}: contiguous bands over a numeric keyspace. Keys carry
      their index as a trailing decimal suffix (the workload generator's
      ["k0042"] convention); key [i] of a [space]-key database lands in
      shard [i * k / space]. Keys without a numeric suffix fall back to
      hash placement.

    The map also classifies transactions: {!shards_of_request} is the
    set of shards a request touches (its {e concerned groups}), and
    {!split_request} decomposes the operation list into per-shard
    sub-lists preserving the original operation order within each
    shard. *)

type strategy = Hash | Range of { space : int }

type t

(** [create ?strategy ~shards ()] — [shards] must be >= 1 (raises
    [Invalid_argument] otherwise). Default strategy: [Hash]. *)
val create : ?strategy:strategy -> shards:int -> unit -> t

val shards : t -> int
val strategy : t -> strategy

(** The shard owning [key], in [0 .. shards-1]. Deterministic: depends
    only on the map parameters and the key bytes. *)
val shard_of_key : t -> Operation.key -> int

(** Distinct shards touched by the request's operations, ascending.
    A request with no operations maps to shard 0. *)
val shards_of_request : t -> Operation.request -> int list

(** [(shard, ops)] for every concerned shard, ascending by shard, each
    [ops] in the original relative order. *)
val split_request : t -> Operation.request -> (int * Operation.op list) list

(** The shard owning the last operation that reads (the one whose reply
    value the client observes), when the request reads at all. *)
val shard_of_last_read : t -> Operation.request -> int option
