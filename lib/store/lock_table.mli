(** Strict two-phase locking (paper §4.4.1, [BHG87]).

    Shared/exclusive locks with FIFO wait queues. A request that would wait
    is first checked against the waits-for graph; if enqueueing it would
    close a cycle the request is refused with [`Deadlock] and not enqueued
    (the caller is expected to abort the transaction). Locks are held until
    [release_all] — strictness is the caller's obligation: release only at
    commit or abort. *)

type mode = S | X

type grant = [ `Granted | `Waiting | `Deadlock ]

type t

val create : unit -> t

(** [acquire t ~txn ~key mode ~granted] requests a lock. [`Granted] means
    the lock is held now ([granted] was already called synchronously);
    [`Waiting] means [granted] fires when the lock is eventually conferred;
    [`Deadlock] means the request was refused. Lock upgrades (S held, X
    requested) are supported. Re-acquiring a held lock in the same or a
    weaker mode is granted immediately. *)
val acquire :
  t -> txn:int -> key:Operation.key -> mode -> granted:(unit -> unit) -> grant

(** Release every lock held or requested by [txn], conferring pending
    requests that become grantable. *)
val release_all : t -> txn:int -> unit

(** Current holders of [key], sorted by transaction id (for tests). *)
val holders : t -> Operation.key -> (int * mode) list

(** Number of requests currently waiting (for tests/stats). *)
val waiting_count : t -> int

(** Total (txn, key) locks currently held, over all keys. *)
val held_count : t -> int

(** All transactions currently holding or awaiting at least one lock. *)
val active_txns : t -> int list
