(* Deterministic keyspace partitioning. Placement must be a pure
   function of (map parameters, key bytes): the router, the workload
   generator and the tests all recompute it independently and have to
   agree, and a given seed must shard identically on every run. *)

type strategy = Hash | Range of { space : int }

type t = { k : int; strategy : strategy }

let create ?(strategy = Hash) ~shards () =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Shard_map.create: shards must be >= 1, got %d" shards);
  (match strategy with
  | Range { space } when space < 1 ->
      invalid_arg
        (Printf.sprintf "Shard_map.create: range space must be >= 1, got %d" space)
  | _ -> ());
  { k = shards; strategy }

let shards t = t.k
let strategy t = t.strategy

(* FNV-1a, 32-bit: tiny, well distributed on short ASCII keys, and
   specified byte-for-byte so the placement is stable across OCaml
   versions (unlike [Hashtbl.hash]). *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x7fffffff)
    s;
  !h

(* Trailing decimal suffix of a key ("k0042" -> 42), if any. *)
let numeric_suffix key =
  let n = String.length key in
  let rec start i =
    if i > 0 && key.[i - 1] >= '0' && key.[i - 1] <= '9' then start (i - 1)
    else i
  in
  let s = start n in
  if s = n then None else int_of_string_opt (String.sub key s (n - s))

let shard_of_key t key =
  if t.k = 1 then 0
  else
    match t.strategy with
    | Hash -> fnv1a key mod t.k
    | Range { space } -> (
        match numeric_suffix key with
        | Some i -> min (t.k - 1) (i * t.k / space)
        | None -> fnv1a key mod t.k)

let touched_shards t (r : Operation.request) =
  List.concat_map
    (fun op -> List.map (shard_of_key t) (Operation.read_keys op @ Operation.write_keys op))
    r.Operation.ops
  |> List.sort_uniq compare

let shards_of_request t r =
  match touched_shards t r with [] -> [ 0 ] | shards -> shards

let split_request t (r : Operation.request) =
  let shards = shards_of_request t r in
  List.map
    (fun s ->
      ( s,
        List.filter
          (fun op ->
            List.exists
              (fun key -> shard_of_key t key = s)
              (Operation.read_keys op @ Operation.write_keys op))
          r.Operation.ops ))
    shards
  |> List.filter (fun (_, ops) -> ops <> [])

let shard_of_last_read t (r : Operation.request) =
  List.fold_left
    (fun acc op ->
      match Operation.read_keys op with
      | key :: _ -> Some (shard_of_key t key)
      | [] -> acc)
    None r.Operation.ops
