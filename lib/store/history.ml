type record = {
  tid : int;
  reads : (Operation.key * int) list;
  writes : (Operation.key * int) list;
  replica : int;
  committed_at : Sim.Simtime.t;
}

type t = {
  mutable rev_records : record list;
  mutable size : int;
  mutable subscribers : (record -> unit) list;
  parent_of : (int, int) Hashtbl.t;  (* sub tid -> cross-shard parent tid *)
  subs_of : (int, int list) Hashtbl.t;  (* parent tid -> sub tids, rev order *)
}

let create () =
  {
    rev_records = [];
    size = 0;
    subscribers = [];
    parent_of = Hashtbl.create 16;
    subs_of = Hashtbl.create 16;
  }

let add t r =
  t.rev_records <- r :: t.rev_records;
  t.size <- t.size + 1;
  List.iter (fun f -> f r) t.subscribers

let add_result t ~tid ~replica ~at (result : Apply.result) =
  add t
    {
      tid;
      reads = List.map (fun (k, _, version) -> (k, version)) result.reads;
      writes = List.map (fun (k, _, version) -> (k, version)) result.writes;
      replica;
      committed_at = at;
    }

let on_add t f = t.subscribers <- f :: t.subscribers

let link_parent t ~parent ~sub =
  Hashtbl.replace t.parent_of sub parent;
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.subs_of parent) in
  Hashtbl.replace t.subs_of parent (sub :: prev)

let parent_of t ~sub = Hashtbl.find_opt t.parent_of sub

let subs_of t ~parent =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.subs_of parent))

let records t = List.rev t.rev_records
let length t = t.size

let pp_record ppf r =
  let pp_kv ppf (k, v) = Format.fprintf ppf "%s@v%d" k v in
  Format.fprintf ppf "T%d r[%a] w[%a] @%a (replica %d)" r.tid
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_kv)
    r.reads
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_kv)
    r.writes Sim.Simtime.pp r.committed_at r.replica
