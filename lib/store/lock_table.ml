type mode = S | X

type grant = [ `Granted | `Waiting | `Deadlock ]

type waiter = { w_txn : int; w_mode : mode; w_cb : unit -> unit }

type entry = {
  holders : (int, mode) Hashtbl.t; (* txn -> strongest mode held *)
  mutable queue : waiter list; (* FIFO *)
}

type t = { entries : (Operation.key, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e = { holders = Hashtbl.create 4; queue = [] } in
      Hashtbl.replace t.entries key e;
      e

let compatible a b = a = S && b = S

let held_mode e txn = Hashtbl.find_opt e.holders txn

(* Can [txn] acquire [mode] given current holders (ignoring the queue)? *)
let grantable e ~txn ~mode =
  Hashtbl.fold
    (fun holder hmode ok ->
      ok && (holder = txn || compatible mode hmode))
    e.holders true

let do_grant e ~txn ~mode =
  let strongest =
    match held_mode e txn with
    | Some X -> X
    | Some S -> if mode = X then X else S
    | None -> mode
  in
  Hashtbl.replace e.holders txn strongest

(* ---- waits-for graph -------------------------------------------------- *)

(* [txn] (as a waiter with [mode]) waits for: conflicting holders, and
   conflicting earlier waiters (they will be granted first). *)
let blockers e ~txn ~mode =
  let holding =
    Hashtbl.fold
      (fun h hm acc ->
        if h <> txn && not (compatible mode hm) then h :: acc else acc)
      e.holders []
  in
  let queued =
    List.filter_map
      (fun w ->
        if w.w_txn <> txn && not (compatible mode w.w_mode) then Some w.w_txn
        else None)
      e.queue
  in
  holding @ queued

(* Edges of the full waits-for graph. *)
let waits_for t =
  Hashtbl.fold
    (fun _ e acc ->
      List.fold_left
        (fun acc w ->
          let bs = blockers e ~txn:w.w_txn ~mode:w.w_mode in
          List.fold_left (fun acc b -> (w.w_txn, b) :: acc) acc bs)
        acc e.queue)
    t.entries []

(* Would adding edges [txn -> b] for each blocker close a cycle back to
   [txn]? *)
let creates_cycle t ~txn new_blockers =
  let edges = waits_for t in
  let adj = Hashtbl.create 16 in
  let add (a, b) =
    let cur = Option.value ~default:[] (Hashtbl.find_opt adj a) in
    Hashtbl.replace adj a (b :: cur)
  in
  List.iter add edges;
  List.iter (fun b -> add (txn, b)) new_blockers;
  (* DFS from txn looking for a path back to txn. *)
  let visited = Hashtbl.create 16 in
  let rec reachable_from node =
    if Hashtbl.mem visited node then false
    else begin
      Hashtbl.replace visited node ();
      let succs = Option.value ~default:[] (Hashtbl.find_opt adj node) in
      List.exists (fun s -> s = txn || reachable_from s) succs
    end
  in
  let starts = Option.value ~default:[] (Hashtbl.find_opt adj txn) in
  List.exists (fun s -> s = txn || reachable_from s) starts

(* ---- granting --------------------------------------------------------- *)

(* After a release, confer queued requests in FIFO order while possible.
   An upgrade request (holder of S waiting for X) is considered first
   regardless of position, since it blocks everyone else anyway. *)
let rec confer e =
  match e.queue with
  | [] -> ()
  | w :: rest ->
      if grantable e ~txn:w.w_txn ~mode:w.w_mode then begin
        e.queue <- rest;
        do_grant e ~txn:w.w_txn ~mode:w.w_mode;
        w.w_cb ();
        confer e
      end

let acquire t ~txn ~key mode ~granted =
  let e = entry t key in
  match held_mode e txn with
  | Some X ->
      granted ();
      `Granted
  | Some S when mode = S ->
      granted ();
      `Granted
  | held -> (
      ignore held;
      let empty_queue_ahead =
        (* Fairness: even a compatible request waits behind earlier
           waiters, except lock upgrades which jump the queue. *)
        e.queue = [] || held_mode e txn <> None
      in
      if empty_queue_ahead && grantable e ~txn ~mode then begin
        do_grant e ~txn ~mode;
        granted ();
        `Granted
      end
      else
        let bs = blockers e ~txn ~mode in
        if creates_cycle t ~txn bs then `Deadlock
        else begin
          let w = { w_txn = txn; w_mode = mode; w_cb = granted } in
          (* Upgrades go to the front of the queue. *)
          if held_mode e txn <> None then e.queue <- w :: e.queue
          else e.queue <- e.queue @ [ w ];
          `Waiting
        end)

let release_all t ~txn =
  Hashtbl.iter
    (fun _ e ->
      Hashtbl.remove e.holders txn;
      e.queue <- List.filter (fun w -> w.w_txn <> txn) e.queue;
      confer e)
    t.entries

(* Sorted by txn so callers see a deterministic view regardless of hash
   bucket order. *)
let holders t key =
  match Hashtbl.find_opt t.entries key with
  | Some e ->
      Hashtbl.fold (fun txn m acc -> (txn, m) :: acc) e.holders []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  | None -> []

let waiting_count t =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.queue) t.entries 0

let held_count t =
  Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.holders) t.entries 0

let active_txns t =
  Hashtbl.fold
    (fun _ e acc ->
      Hashtbl.fold (fun txn _ acc -> txn :: acc) e.holders acc
      @ List.map (fun w -> w.w_txn) e.queue)
    t.entries []
  |> List.sort_uniq Int.compare
