(** Per-replica versioned key-value store.

    Each logical item [X] has a physical copy [Xi] on every replica (paper
    §4.1). A copy carries a version number that increases by one per
    installed write; replication protocols that keep copies consistent
    install identical (value, version) pairs everywhere, which is what the
    serializability checker and the convergence checker rely on. *)

type t

val create : unit -> t

(** [read t k] is the current (value, version) of [k]; missing items read
    as [(0, 0)]. *)
val read : t -> Operation.key -> int * int

(** [write t k v] installs [v] as the next version of [k] and returns that
    version number. *)
val write : t -> Operation.key -> int -> int

(** [install t k ~value ~version] forces a specific version, used when
    applying another replica's writeset. Installing a version older than
    the current one is ignored (last-writer-wins on version). *)
val install : t -> Operation.key -> value:int -> version:int -> unit

(** [force t k ~value ~version] overwrites the copy unconditionally, even
    with an older version. Reconciliation uses this to make the agreed
    after-commit order authoritative over tentative local commits. *)
val force : t -> Operation.key -> value:int -> version:int -> unit

(** [reset t] drops every copy. A replica rejoining after a crash uses
    this to discard tentative writes that never reached the group before
    a state transfer rebuilds the database from a surviving copy. *)
val reset : t -> unit

val version : t -> Operation.key -> int
val keys : t -> Operation.key list

(** Sorted (key, (value, version)) dump, for convergence comparison. *)
val snapshot : t -> (Operation.key * (int * int)) list

val equal : t -> t -> bool

(** [copy t] duplicates the copies but not the watchers: a copy is
    scratch state (state transfer, convergence snapshots), not a live
    replica store. *)
val copy : t -> t

(** [on_update t f] registers [f] to run whenever a copy actually
    changes: on every {!write}, on an {!install} that is not ignored,
    and on every {!force}. The consistency audit layer uses this to
    observe per-replica apply times without the protocols knowing. *)
val on_update : t -> (Operation.key -> value:int -> version:int -> unit) -> unit

val pp : Format.formatter -> t -> unit
