(* A record rather than a bare hashtable so observers (the consistency
   audit layer) can watch every installed write without the protocols
   knowing: [write]/[install]/[force] notify the watchers exactly when
   the copy actually changes. *)
type t = {
  table : (Operation.key, int * int) Hashtbl.t;
  mutable watchers : (Operation.key -> value:int -> version:int -> unit) list;
}

let create () = { table = Hashtbl.create 64; watchers = [] }

let on_update t f = t.watchers <- f :: t.watchers

let notify t k ~value ~version =
  List.iter (fun f -> f k ~value ~version) t.watchers

let read t k =
  match Hashtbl.find_opt t.table k with Some vv -> vv | None -> (0, 0)

let write t k v =
  let _, version = read t k in
  let version = version + 1 in
  Hashtbl.replace t.table k (v, version);
  notify t k ~value:v ~version;
  version

let install t k ~value ~version =
  let _, current = read t k in
  if version >= current then begin
    Hashtbl.replace t.table k (value, version);
    notify t k ~value ~version
  end

let force t k ~value ~version =
  Hashtbl.replace t.table k (value, version);
  notify t k ~value ~version

let reset t = Hashtbl.reset t.table

let version t k = snd (read t k)
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table []

let snapshot t =
  Hashtbl.fold (fun k vv acc -> (k, vv) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let equal a b = snapshot a = snapshot b

(* Copies are scratch state (state transfer, convergence checks); they
   do not inherit the original's watchers. *)
let copy t = { table = Hashtbl.copy t.table; watchers = [] }

let pp ppf t =
  Format.fprintf ppf "{";
  List.iter
    (fun (k, (v, ver)) -> Format.fprintf ppf "%s=%d@v%d; " k v ver)
    (snapshot t);
  Format.fprintf ppf "}"
