type t = (Operation.key, int * int) Hashtbl.t

let create () = Hashtbl.create 64

let read t k =
  match Hashtbl.find_opt t k with Some vv -> vv | None -> (0, 0)

let write t k v =
  let _, version = read t k in
  let version = version + 1 in
  Hashtbl.replace t k (v, version);
  version

let install t k ~value ~version =
  let _, current = read t k in
  if version >= current then Hashtbl.replace t k (value, version)

let force t k ~value ~version = Hashtbl.replace t k (value, version)
let reset t = Hashtbl.reset t

let version t k = snd (read t k)
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []

let snapshot t =
  Hashtbl.fold (fun k vv acc -> (k, vv) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let equal a b = snapshot a = snapshot b

let copy t = Hashtbl.copy t

let pp ppf t =
  Format.fprintf ppf "{";
  List.iter
    (fun (k, (v, ver)) -> Format.fprintf ppf "%s=%d@v%d; " k v ver)
    (snapshot t);
  Format.fprintf ppf "}"
