(** Global history of committed transactions (paper §5.1).

    Each record notes, for one committed transaction, the versions of the
    logical items it read and the versions its writes installed. Protocol
    implementations report these from the replica where the transaction
    executed; {!Serializability.check} decides whether the resulting
    history is 1-copy serializable. *)

type record = {
  tid : int;
  reads : (Operation.key * int) list;  (** version read *)
  writes : (Operation.key * int) list;  (** version installed *)
  replica : int;  (** where the transaction executed *)
  committed_at : Sim.Simtime.t;
}

type t

val create : unit -> t
val add : t -> record -> unit

(** Convenience: record a commit from an {!Apply.result}. *)
val add_result :
  t -> tid:int -> replica:int -> at:Sim.Simtime.t -> Apply.result -> unit

val records : t -> record list
val length : t -> int

(** [on_add t f] runs [f] on every subsequently added record — the
    consistency audit layer indexes commits incrementally this way. *)
val on_add : t -> (record -> unit) -> unit

(** Cross-shard transactions split into per-group sub-transactions under
    fresh tids; {!Protocols.Sharded} records the parentage here so
    post-hoc analyses (snapshot-skew detection, session checkers) can
    reassemble the client-visible transaction from its parts. *)
val link_parent : t -> parent:int -> sub:int -> unit

val parent_of : t -> sub:int -> int option

(** Sub tids of a cross-shard parent, in creation order. *)
val subs_of : t -> parent:int -> int list

val pp_record : Format.formatter -> record -> unit
