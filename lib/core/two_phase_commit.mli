(** Two-phase commit (paper §4.3–§4.4, [GR93]).

    The coordinator sends PREPARE to every participant; each participant
    votes by consulting the [vote] function supplied at group creation; on
    unanimous yes the coordinator broadcasts COMMIT, otherwise ABORT, and
    each participant's [learn] function fires with the decision.

    The protocol is deliberately {e blocking}, as the paper notes database
    protocols are (§2.1): if the coordinator crashes after PREPARE and
    never comes back, the prepared participants wait indefinitely — no
    third party can decide for them. A cooperative {e termination
    protocol} covers the recoverable cases: an in-doubt participant (voted
    YES, decision never arrived — dropped by a partition, or lost past the
    stubborn channel's retry budget) periodically re-requests the decision
    from the coordinator, which answers from its durable outcome log. This
    resolves the in-doubt window whenever the coordinator is reachable
    again; it does not (and cannot) unblock participants of a permanently
    dead coordinator. Participants that are unreachable are treated
    according to [participant_timeout]: when set, the coordinator counts a
    missing vote as a NO after that delay (presumed abort) and the same
    period paces the participants' decision re-requests; when [None], the
    coordinator blocks too and participants never re-ask. *)

type decision = Commit | Abort

type group

val create_group :
  Sim.Network.t ->
  nodes:int list ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  ?participant_timeout:Sim.Simtime.t ->
  vote:(me:int -> txn:int -> bool) ->
  learn:(me:int -> txn:int -> decision -> unit) ->
  unit ->
  group

(** Run one 2PC round. [on_complete] fires at the coordinator once the
    decision is made (before all participants have necessarily learned
    it — they learn via their [learn] callback). *)
val start :
  group ->
  coordinator:int ->
  participants:int list ->
  txn:int ->
  on_complete:(decision -> unit) ->
  unit

(** Number of rounds decided [Commit] / [Abort] (stats, tests). *)
val commits : group -> int

val aborts : group -> int

(** Number of transactions [me] has voted YES for without yet learning the
    decision. A node with in-doubt transactions holds an incomplete view
    of the committed state — state-transfer donors use this to defer
    snapshots until the doubt resolves. *)
val in_doubt : group -> me:int -> int
