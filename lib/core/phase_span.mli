(** Structured phase spans per transaction.

    This is the span-shaped counterpart of {!Phase_trace}: protocols feed
    the same phase marks to both, and this recorder turns them into a
    well-nested {!Sim.Span} tree — one root span ("txn") per request with
    one child span per {!Phase} occurrence. Consecutive marks of the same
    phase (e.g. EX on every replica) fold into the open span as point
    events; a mark of a different phase closes the open span and opens the
    next one; a {!Phase.Response} mark records the instant END span and
    closes the root. Marks arriving after Response (the lazy-propagation
    tail) open further children and stretch the root, so traces remain
    well nested. *)

type t

(** [create ?on_phase_close ()] — the callback fires whenever a phase span
    closes, with its replica attribution and duration in milliseconds
    (used to feed per-phase latency histograms in {!Sim.Metrics}). *)
val create :
  ?on_phase_close:(phase:Phase.t -> replica:int option -> float -> unit) ->
  unit ->
  t

(** The underlying span collection, for exporters ({!Sim.Trace_export}). *)
val collector : t -> Sim.Span.t

val mark :
  t -> rid:int -> ?replica:int -> ?note:string -> Phase.t -> Sim.Simtime.t -> unit

(** Close every span still open (flush at end of run / quiescence). *)
val finalize : t -> at:Sim.Simtime.t -> unit

(** Transaction ids in first-seen order. *)
val rids : t -> int list

(** The Response span has been recorded for [rid]. *)
val responded : t -> rid:int -> bool

(** Phase spans of [rid] in start order. *)
val phase_spans : t -> rid:int -> (Phase.t * Sim.Span.span) list

(** First-occurrence phase order — the transaction's Figure-16 row, equal
    to {!Phase_trace.signature} over the same marks. *)
val signature : t -> rid:int -> Phase.t list

(** [(phase, duration_ms)] per closed phase span, in start order. *)
val durations : t -> rid:int -> (Phase.t * float) list

(** Well-nestedness of the {e phase} spans of [rid]: every phase span is
    closed, a child of the root, and fits inside the root's interval.
    Message spans sharing the collector are ignored — causal chains
    overlap by construction. *)
val well_nested : t -> rid:int -> bool

(** The id of [rid]'s root ("txn") span, once the first mark created it.
    Sends performed under this context (see {!Sim.Engine.ctx}) parent
    their message spans to the transaction root. *)
val root : t -> rid:int -> Sim.Span.id option
