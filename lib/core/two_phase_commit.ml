open Sim

type decision = Commit | Abort

type Msg.t +=
  | Prepare of { gid : int; txn : int; coordinator : int }
  | Vote of { gid : int; txn : int; from : int; yes : bool }
  | Decision of { gid : int; txn : int; decision : decision }
  | Decision_req of { gid : int; txn : int; from : int }

type round = {
  participants : int list;
  mutable yes_votes : int list;
  mutable decided : decision option;
  on_complete : decision -> unit;
  timeout_timer : Engine.timer option;
}

type t = {
  gid : int;
  me : int;
  chan : Group.Rchan.t;
  vote : me:int -> txn:int -> bool;
  learn : me:int -> txn:int -> decision -> unit;
  rounds : (int, round) Hashtbl.t; (* coordinator-side, by txn *)
  learned : (int, decision) Hashtbl.t; (* participant-side dedup *)
  prepared : (int, int) Hashtbl.t;
      (* in-doubt participant-side: txn -> coordinator. Voted YES, no
         decision learned yet — drives the termination protocol. *)
}

type group = {
  g_gid : int;
  net : Network.t;
  chan_group : Group.Rchan.group;
  handles : (int, t) Hashtbl.t;
  participant_timeout : Simtime.t option;
  mutable n_commits : int;
  mutable n_aborts : int;
}

let next_gid = ref 0

let decide group t ~txn round decision =
  if round.decided = None then begin
    round.decided <- Some decision;
    (match round.timeout_timer with Some tm -> Engine.cancel tm | None -> ());
    (match decision with
    | Commit -> group.n_commits <- group.n_commits + 1
    | Abort -> group.n_aborts <- group.n_aborts + 1);
    List.iter
      (fun dst ->
        if dst <> t.me then
          Group.Rchan.send t.chan ~dst (Decision { gid = t.gid; txn; decision }))
      round.participants;
    (* The coordinator learns synchronously, before [on_complete], so a
       caller that starts dependent work from [on_complete] sees the
       decision's effects already applied locally. *)
    if not (Hashtbl.mem t.learned txn) then begin
      Hashtbl.replace t.learned txn decision;
      Hashtbl.remove t.prepared txn;
      t.learn ~me:t.me ~txn decision
    end;
    round.on_complete decision
  end

let handle_msg group t msg =
  match msg with
  | Prepare { gid; txn; coordinator } when gid = t.gid ->
      let yes = t.vote ~me:t.me ~txn in
      if yes && not (Hashtbl.mem t.learned txn) then
        Hashtbl.replace t.prepared txn coordinator;
      Group.Rchan.send t.chan ~dst:coordinator
        (Vote { gid = t.gid; txn; from = t.me; yes })
  | Vote { gid; txn; from; yes } when gid = t.gid -> (
      match Hashtbl.find_opt t.rounds txn with
      | None -> ()
      | Some round ->
          if round.decided = None then
            if not yes then decide group t ~txn round Abort
            else begin
              if not (List.mem from round.yes_votes) then
                round.yes_votes <- from :: round.yes_votes;
              if List.length round.yes_votes = List.length round.participants
              then decide group t ~txn round Commit
            end)
  | Decision { gid; txn; decision } when gid = t.gid ->
      if not (Hashtbl.mem t.learned txn) then begin
        Hashtbl.replace t.learned txn decision;
        Hashtbl.remove t.prepared txn;
        t.learn ~me:t.me ~txn decision
      end
  | Decision_req { gid; txn; from } when gid = t.gid -> (
      match Hashtbl.find_opt t.learned txn with
      | Some decision ->
          Group.Rchan.send t.chan ~dst:from
            (Decision { gid = t.gid; txn; decision })
      | None -> () (* still undecided here; the participant keeps asking *))
  | _ -> ()

let create_group net ~nodes ?rto ?passthrough ?participant_timeout ~vote ~learn
    () =
  incr next_gid;
  let gid = !next_gid in
  let chan_group = Group.Rchan.create_group net ~nodes ?rto ?passthrough () in
  let group =
    {
      g_gid = gid;
      net;
      chan_group;
      handles = Hashtbl.create 8;
      participant_timeout;
      n_commits = 0;
      n_aborts = 0;
    }
  in
  List.iter
    (fun me ->
      let t =
        {
          gid;
          me;
          chan = Group.Rchan.handle chan_group ~me;
          vote;
          learn;
          rounds = Hashtbl.create 16;
          learned = Hashtbl.create 16;
          prepared = Hashtbl.create 16;
        }
      in
      (match Network.timeseries net with
      | Some ts ->
          (* In-doubt is healthy only for the round trip between vote
             and decision; a Window series so overruns are findings. *)
          Timeseries.register ts ~name:"tpc_in_doubt" ~replica:me
            ~kind:Timeseries.Window ~unit_:"transactions" (fun () ->
              float_of_int (Hashtbl.length t.prepared))
      | None -> ());
      Group.Rchan.on_deliver t.chan (fun ~src msg ->
          ignore src;
          handle_msg group t msg);
      (* Termination protocol: an in-doubt participant (voted YES, heard
         no decision — e.g. the decision was in flight when a partition
         or crash cut it off) periodically asks the coordinator again.
         Without this, a participant that misses the stubborn channel's
         retry window holds its prepared state forever even after the
         coordinator becomes reachable. *)
      Option.iter
        (fun delay ->
          ignore
            (Engine.periodic (Network.engine net) ~label:"commit:timer" ~every:delay
               (Network.guard net me (fun () ->
                    Hashtbl.iter
                      (fun txn coordinator ->
                        Group.Rchan.send t.chan ~dst:coordinator
                          (Decision_req { gid; txn; from = me }))
                      t.prepared))))
        participant_timeout;
      Hashtbl.replace group.handles me t)
    nodes;
  group

let start group ~coordinator ~participants ~txn ~on_complete =
  let t = Hashtbl.find group.handles coordinator in
  let timeout_timer =
    match group.participant_timeout with
    | None -> None
    | Some delay ->
        Some
          (Engine.schedule (Network.engine group.net) ~label:"commit:timer" ~after:delay (fun () ->
               match Hashtbl.find_opt t.rounds txn with
               | Some round when round.decided = None ->
                   (* Presumed abort: missing votes count as NO. *)
                   decide group t ~txn round Abort
               | _ -> ()))
  in
  let round =
    { participants; yes_votes = []; decided = None; on_complete; timeout_timer }
  in
  Hashtbl.replace t.rounds txn round;
  List.iter
    (fun dst ->
      Group.Rchan.send t.chan ~dst (Prepare { gid = t.gid; txn; coordinator }))
    participants

let commits group = group.n_commits
let aborts group = group.n_aborts

let in_doubt group ~me =
  match Hashtbl.find_opt group.handles me with
  | Some t -> Hashtbl.length t.prepared
  | None -> 0
