type txn = {
  root : Sim.Span.id;
  mutable current : (Phase.t * Sim.Span.id) option;
  mutable closed : bool;  (** the Response span has been recorded *)
}

type t = {
  spans : Sim.Span.t;
  txns : (int, txn) Hashtbl.t;
  on_phase_close : (phase:Phase.t -> replica:int option -> float -> unit) option;
}

let create ?on_phase_close () =
  { spans = Sim.Span.create (); txns = Hashtbl.create 64; on_phase_close }

let collector t = t.spans

let span_duration_ms t sid =
  match Sim.Span.find t.spans sid with
  | None -> 0.
  | Some s -> Option.value ~default:0. (Sim.Span.duration_ms s)

let close_phase t txn phase sid time =
  Sim.Span.finish t.spans sid time;
  (* Post-response spans (the lazy-propagation tail) stretch the
     transaction root so the trace stays well nested. *)
  if txn.closed then Sim.Span.finish t.spans txn.root time;
  match t.on_phase_close with
  | None -> ()
  | Some f -> (
      match Sim.Span.find t.spans sid with
      | None -> ()
      | Some s -> f ~phase ~replica:s.Sim.Span.track (span_duration_ms t sid))

let mark t ~rid ?replica ?(note = "") phase time =
  let txn =
    match Hashtbl.find_opt t.txns rid with
    | Some txn -> txn
    | None ->
        let root =
          Sim.Span.start_span t.spans ~trace:rid ~name:"txn" time
        in
        let txn = { root; current = None; closed = false } in
        Hashtbl.replace t.txns rid txn;
        txn
  in
  match txn.current with
  | Some (p, sid) when Phase.equal p phase ->
      (* Same phase marked again (e.g. EX on each replica, or a request
         resubmission): fold into the open span as a point event. *)
      Sim.Span.add_event t.spans sid ~at:time ?track:replica note
  | current -> (
      (match current with
      | Some (p, sid) -> close_phase t txn p sid time
      | None -> ());
      let sid =
        Sim.Span.start_span t.spans ~trace:rid ~parent:txn.root ?track:replica
          ~name:(Phase.code phase) time
      in
      if note <> "" then Sim.Span.add_event t.spans sid ~at:time ?track:replica note;
      match phase with
      | Phase.Response ->
          (* END is an instant: the client observed the outcome. *)
          txn.current <- None;
          txn.closed <- true;
          close_phase t txn phase sid time;
          Sim.Span.finish t.spans txn.root time
      | _ -> txn.current <- Some (phase, sid))

(* A span still open at flush time closes at the last mark it absorbed,
   not at the flush instant — otherwise a lazy-propagation tail that
   nothing else closes would appear to last until quiescence. *)
let natural_stop t sid =
  match Sim.Span.find t.spans sid with
  | None -> None
  | Some s ->
      Some
        (List.fold_left
           (fun acc (e : Sim.Span.event) -> Sim.Simtime.max acc e.Sim.Span.at)
           s.Sim.Span.start
           (Sim.Span.events s))

let finalize t ~at =
  Hashtbl.iter
    (fun _rid txn ->
      (match txn.current with
      | Some (p, sid) ->
          let stop = Option.value ~default:at (natural_stop t sid) in
          close_phase t txn p sid stop;
          txn.current <- None;
          Sim.Span.finish t.spans txn.root stop
      | None -> ());
      if not txn.closed then begin
        Sim.Span.finish t.spans txn.root at;
        txn.closed <- true
      end)
    t.txns

let rids t = Sim.Span.traces t.spans

let responded t ~rid =
  match Hashtbl.find_opt t.txns rid with Some txn -> txn.closed | None -> false

let phase_spans t ~rid =
  Sim.Span.trace_spans t.spans ~trace:rid
  |> List.filter_map (fun (s : Sim.Span.span) ->
         match Phase.of_code s.Sim.Span.name with
         | Some p -> Some (p, s)
         | None -> None)

let signature t ~rid =
  phase_spans t ~rid
  |> List.fold_left
       (fun acc (p, _) -> if List.exists (Phase.equal p) acc then acc else p :: acc)
       []
  |> List.rev

let durations t ~rid =
  phase_spans t ~rid
  |> List.filter_map (fun (p, s) ->
         Option.map (fun d -> (p, d)) (Sim.Span.duration_ms s))

let root t ~rid =
  match Hashtbl.find_opt t.txns rid with
  | Some txn -> Some txn.root
  | None -> None

(* Nesting is a property of the phase-span tree only: message spans
   recorded into the same collector (see {!Sim.Network.set_msg_spans})
   deliberately overlap — a reaction to a message starts at its parent's
   stop — so they are excluded here. *)
let well_nested t ~rid =
  match Hashtbl.find_opt t.txns rid with
  | None -> false
  | Some txn -> (
      match Sim.Span.find t.spans txn.root with
      | None | Some { Sim.Span.stop = None; _ } -> false
      | Some root ->
          let root_stop = Option.get root.Sim.Span.stop in
          Sim.Span.trace_spans t.spans ~trace:rid
          |> List.filter (fun (s : Sim.Span.span) ->
                 Phase.of_code s.Sim.Span.name <> None)
          |> List.for_all (fun (s : Sim.Span.span) ->
                 s.Sim.Span.parent = Some txn.root
                 && Sim.Simtime.(s.Sim.Span.start >= root.Sim.Span.start)
                 &&
                 match s.Sim.Span.stop with
                 | Some stop -> Sim.Simtime.(stop <= root_stop)
                 | None -> false))
