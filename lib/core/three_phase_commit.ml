open Sim

type decision = Commit | Abort

(* Participant's view of a transaction's progress. *)
type state =
  | Uncertain (* voted yes, pre-commit not yet seen *)
  | Precommitted
  | Done of decision

type Msg.t +=
  | Can_commit of {
      gid : int;
      txn : int;
      coordinator : int;
      participants : int list;
    }
  | Vote3 of { gid : int; txn : int; from : int; yes : bool }
  | Pre_commit of { gid : int; txn : int }
  | Pre_ack of { gid : int; txn : int; from : int }
  | Do_decide of { gid : int; txn : int; decision : decision }
  | State_req of { gid : int; txn : int; from : int }
  | State_rsp of { gid : int; txn : int; from : int; state : state }

type round = {
  participants : int list;
  mutable yes_votes : int list;
  mutable pre_acks : int list;
  mutable decided : decision option;
  on_complete : decision -> unit;
}

type t = {
  gid : int;
  me : int;
  net : Network.t;
  chan : Group.Rchan.t;
  fd : Group.Fd.t;
  vote : me:int -> txn:int -> bool;
  learn : me:int -> txn:int -> decision -> unit;
  rounds : (int, round) Hashtbl.t; (* coordinator side *)
  states : (int, state) Hashtbl.t; (* participant side *)
  coordinator_of : (int, int) Hashtbl.t;
  participants_of : (int, int list) Hashtbl.t;
  recovery_states : (int, (int * state) list ref) Hashtbl.t;
  recovering : (int, unit) Hashtbl.t;
}

type group = {
  g_gid : int;
  handles : (int, t) Hashtbl.t;
  mutable n_commits : int;
  mutable n_aborts : int;
}

let next_gid = ref 0

let learn_decision t ~txn decision =
  match Hashtbl.find_opt t.states txn with
  | Some (Done _) -> ()
  | _ ->
      Hashtbl.replace t.states txn (Done decision);
      t.learn ~me:t.me ~txn decision

let set_decided group t ~txn round decision =
  if round.decided = None then begin
    round.decided <- Some decision;
    (match decision with
    | Commit -> group.n_commits <- group.n_commits + 1
    | Abort -> group.n_aborts <- group.n_aborts + 1);
    List.iter
      (fun dst ->
        if dst <> t.me then
          Group.Rchan.send t.chan ~dst (Do_decide { gid = t.gid; txn; decision }))
      round.participants;
    learn_decision t ~txn decision;
    round.on_complete decision
  end

(* Recovery coordinator: poll survivor states and terminate the protocol
   (the non-blocking termination rule). *)
let try_finish_recovery group t ~txn =
  match Hashtbl.find_opt t.recovery_states txn with
  | None -> ()
  | Some collected ->
      let participants =
        Option.value ~default:[] (Hashtbl.find_opt t.participants_of txn)
      in
      let expected =
        List.filter
          (fun p -> p = t.me || not (Group.Fd.suspected t.fd p))
          participants
      in
      if List.for_all (fun p -> List.mem_assoc p !collected) expected then begin
        let decision =
          if
            List.exists
              (fun (_, s) -> s = Precommitted || s = Done Commit)
              !collected
          then Commit
          else Abort
        in
        Hashtbl.remove t.recovery_states txn;
        (match decision with
        | Commit -> group.n_commits <- group.n_commits + 1
        | Abort -> group.n_aborts <- group.n_aborts + 1);
        learn_decision t ~txn decision;
        List.iter
          (fun dst ->
            if dst <> t.me then
              Group.Rchan.send t.chan ~dst
                (Do_decide { gid = t.gid; txn; decision }))
          participants
      end

let start_recovery t ~txn =
  if not (Hashtbl.mem t.recovering txn) then begin
    Hashtbl.replace t.recovering txn ();
    let participants =
      Option.value ~default:[] (Hashtbl.find_opt t.participants_of txn)
    in
    Hashtbl.replace t.recovery_states txn
      (ref
         [
           ( t.me,
             Option.value ~default:Uncertain (Hashtbl.find_opt t.states txn) );
         ]);
    List.iter
      (fun dst ->
        if dst <> t.me then
          Group.Rchan.send t.chan ~dst (State_req { gid = t.gid; txn; from = t.me }))
      participants
  end

(* Periodic non-blocking termination check at every participant. *)
let poll group t =
  Hashtbl.iter
    (fun txn state ->
      match state with
      | Done _ -> ()
      | Uncertain | Precommitted -> (
          match Hashtbl.find_opt t.coordinator_of txn with
          | Some coordinator when Group.Fd.suspected t.fd coordinator ->
              (* Elect: the lowest unsuspected participant recovers. *)
              let participants =
                Option.value ~default:[]
                  (Hashtbl.find_opt t.participants_of txn)
              in
              let electable =
                List.filter
                  (fun p -> p = t.me || not (Group.Fd.suspected t.fd p))
                  participants
              in
              (match electable with
              | leader :: _ when leader = t.me ->
                  start_recovery t ~txn;
                  try_finish_recovery group t ~txn
              | _ -> ())
          | _ -> ()))
    (Hashtbl.copy t.states)

let handle_msg group t msg =
  match msg with
  | Can_commit { gid; txn; coordinator; participants } when gid = t.gid ->
      Hashtbl.replace t.coordinator_of txn coordinator;
      Hashtbl.replace t.participants_of txn participants;
      if not (Hashtbl.mem t.states txn) then begin
        let yes = t.vote ~me:t.me ~txn in
        if yes then Hashtbl.replace t.states txn Uncertain
        else begin
          Hashtbl.replace t.states txn (Done Abort);
          t.learn ~me:t.me ~txn Abort
        end;
        Group.Rchan.send t.chan ~dst:coordinator
          (Vote3 { gid = t.gid; txn; from = t.me; yes })
      end
  | Vote3 { gid; txn; from; yes } when gid = t.gid -> (
      match Hashtbl.find_opt t.rounds txn with
      | None -> ()
      | Some round ->
          if round.decided = None then
            if not yes then set_decided group t ~txn round Abort
            else begin
              if not (List.mem from round.yes_votes) then
                round.yes_votes <- from :: round.yes_votes;
              let needed =
                List.filter
                  (fun p -> p = t.me || not (Group.Fd.suspected t.fd p))
                  round.participants
              in
              if List.for_all (fun p -> List.mem p round.yes_votes) needed
              then
                (* Including ourselves: the coordinator is a participant
                   too, and its own pre-ack counts. *)
                List.iter
                  (fun dst ->
                    Group.Rchan.send t.chan ~dst (Pre_commit { gid = t.gid; txn }))
                  round.participants
            end)
  | Pre_commit { gid; txn } when gid = t.gid ->
      (match Hashtbl.find_opt t.states txn with
      | Some Uncertain -> Hashtbl.replace t.states txn Precommitted
      | _ -> ());
      (match Hashtbl.find_opt t.coordinator_of txn with
      | Some coordinator ->
          Group.Rchan.send t.chan ~dst:coordinator
            (Pre_ack { gid = t.gid; txn; from = t.me })
      | None -> ())
  | Pre_ack { gid; txn; from } when gid = t.gid -> (
      match Hashtbl.find_opt t.rounds txn with
      | None -> ()
      | Some round ->
          if round.decided = None then begin
            if not (List.mem from round.pre_acks) then
              round.pre_acks <- from :: round.pre_acks;
            let needed =
              List.filter
                (fun p -> p = t.me || not (Group.Fd.suspected t.fd p))
                round.participants
            in
            if List.for_all (fun p -> List.mem p round.pre_acks) needed then
              set_decided group t ~txn round Commit
          end)
  | Do_decide { gid; txn; decision } when gid = t.gid ->
      learn_decision t ~txn decision
  | State_req { gid; txn; from } when gid = t.gid ->
      let state =
        Option.value ~default:Uncertain (Hashtbl.find_opt t.states txn)
      in
      Group.Rchan.send t.chan ~dst:from
        (State_rsp { gid = t.gid; txn; from = t.me; state })
  | State_rsp { gid; txn; from; state } when gid = t.gid -> (
      match Hashtbl.find_opt t.recovery_states txn with
      | None -> ()
      | Some collected ->
          if not (List.mem_assoc from !collected) then
            collected := (from, state) :: !collected;
          try_finish_recovery group t ~txn)
  | _ -> ()

let create_group net ~nodes ?fd ?rto ?passthrough
    ?(decision_timeout = Simtime.of_ms 150) ~vote ~learn () =
  incr next_gid;
  let gid = !next_gid in
  let fd_group =
    match fd with Some g -> g | None -> Group.Fd.create_group net ~members:nodes ()
  in
  let chan_group = Group.Rchan.create_group net ~nodes ?rto ?passthrough () in
  let group =
    { g_gid = gid; handles = Hashtbl.create 8; n_commits = 0; n_aborts = 0 }
  in
  List.iter
    (fun me ->
      let t =
        {
          gid;
          me;
          net;
          chan = Group.Rchan.handle chan_group ~me;
          fd = Group.Fd.handle fd_group ~me;
          vote;
          learn;
          rounds = Hashtbl.create 16;
          states = Hashtbl.create 16;
          coordinator_of = Hashtbl.create 16;
          participants_of = Hashtbl.create 16;
          recovery_states = Hashtbl.create 4;
          recovering = Hashtbl.create 4;
        }
      in
      Group.Rchan.on_deliver t.chan (fun ~src msg ->
          ignore src;
          handle_msg group t msg);
      ignore
        (Engine.periodic (Network.engine net) ~label:"commit:timer" ~every:decision_timeout
           (Network.guard net me (fun () -> poll group t)));
      Hashtbl.replace group.handles me t)
    nodes;
  group

let start group ~coordinator ~participants ~txn ~on_complete =
  let t = Hashtbl.find group.handles coordinator in
  Hashtbl.replace t.rounds txn
    { participants; yes_votes = []; pre_acks = []; decided = None; on_complete };
  Hashtbl.replace t.participants_of txn participants;
  List.iter
    (fun p ->
      Group.Rchan.send t.chan ~dst:p
        (Can_commit { gid = t.gid; txn; coordinator; participants }))
    participants

let commits group = group.n_commits
let aborts group = group.n_aborts
