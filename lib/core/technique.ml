(** The common interface and classification metadata of a replication
    technique.

    The metadata fields are the classification dimensions the paper uses:
    Figure 5 classifies distributed-systems techniques by failure
    transparency and server determinism, Figure 6 classifies database
    techniques by update propagation (eager/lazy) and update location
    (primary/update-everywhere), and Figure 16 gives each technique's phase
    sequence and consistency class. *)

type community = Distributed_systems | Databases

type propagation = Eager | Lazy

type ownership = Primary | Update_everywhere

type info = {
  name : string;
  community : community;
  propagation : propagation;
  ownership : ownership;
  requires_determinism : bool;
      (** replicas must produce identical results from identical inputs *)
  failure_transparent : bool;
      (** a replica crash is invisible to the client (no resubmission) *)
  strong_consistency : bool;
      (** linearisability (DS) or 1-copy serialisability (DB) *)
  expected_phases : Phase.t list;  (** the technique's Figure 16 row *)
  expected_messages : n:int -> int;
      (** §5 claim: point-to-point messages one update transaction costs
          with [n] replicas, as realised by this implementation's
          group-communication stack (transport acks excluded; see
          {!Sim.Msg_dag.summary}) *)
  expected_steps : int;
      (** §5 claim: communication-step depth of the critical path from
          the client's request to its reply *)
  section : string;  (** paper section describing it *)
}

(** The outcome of one request, delivered to the client's callback. *)
type reply = {
  rid : int;
  committed : bool;
  value : int option;  (** last value read, when the request read data *)
  at : Sim.Simtime.t;
  replica : int;  (** replica that produced the response *)
}

(** A running replicated system: the uniform handle the examples, tests and
    benchmarks drive. Each protocol module exposes
    [create : ... -> instance]. *)
type instance = {
  info : info;
  submit : client:int -> Store.Operation.request -> (reply -> unit) -> unit;
  read_at :
    (client:int ->
    replica:int ->
    Store.Operation.request ->
    (reply -> unit) ->
    unit)
    option;
      (** Explicit read path: execute a read-only request locally at a
          chosen replica, bypassing the technique's update machinery. The
          routing tier uses it for read/write splitting; [None] means the
          technique has no local read path and reads must go through
          [submit]. Calling it again with the same request id is a
          resend (retry-on-failover) — the first reply still wins. *)
  read_targets : Store.Operation.request -> int list;
      (** Replicas able to serve the given read-only request through
          [read_at]. Full replication: every replica; a sharded instance:
          the owning group for a single-shard read, [[]] for a
          cross-shard read (no single replica holds all the keys — the
          router must fall back to [submit]). *)
  replica_store : int -> Store.Kv.t;
  history : Store.History.t;
  phases : Phase_trace.t;
  spans : Phase_span.t;  (** structured per-transaction phase spans *)
  metrics : Sim.Metrics.t;  (** the instance's metrics registry *)
  replicas : int list;
  groups : int list list;
      (** replication groups: each inner list is the replica set holding
          one copy of (a partition of) the database, so convergence is
          judged within a group, never across groups. Full replication
          is the single group [[replicas]]; a sharded instance has one
          group per shard. *)
}

let pp_info ppf i =
  let propagation = match i.propagation with Eager -> "eager" | Lazy -> "lazy" in
  let ownership =
    match i.ownership with
    | Primary -> "primary copy"
    | Update_everywhere -> "update everywhere"
  in
  Format.fprintf ppf "%s (%s, %s, %s): %a" i.name
    (match i.community with
    | Distributed_systems -> "distributed systems"
    | Databases -> "databases")
    propagation ownership Phase.pp_sequence i.expected_phases
