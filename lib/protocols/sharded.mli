(** Sharded replication groups: partial replication over a partitioned
    keyspace.

    The wrapper splits the replica set into [shards] contiguous
    replication groups and runs one independent instance of the wrapped
    technique per group — its own sequencer / ABCAST stack / lock table,
    over that group's replicas only, holding only the keys its shard
    owns ({!Store.Shard_map}, hash placement). All groups report into
    one shared span collector, phase trace, metrics registry and
    history ({!Common.with_shared}), so the run reads as a single
    system.

    Transactions are routed client-side (the wrapper plays the
    middleware router of Cecchet et al.):

    - {e Single-shard} transactions — all keys in one shard — are
      forwarded verbatim to the owning group's instance. No other group
      sees a message, so their cost is the technique's cost at the
      {e group} size, independent of total replica count.
    - {e Cross-shard} transactions first run a 2PC round
      ({!Core.Two_phase_commit}) between the submitting client
      (coordinator) and the {e delegate} — lowest replica — of each
      concerned group only; on Commit, the request is split into
      per-shard sub-transactions, one per concerned group, each
      executed by its group's technique instance under a fresh rid.
      Message cost therefore scales with shards {e touched}, never with
      cluster size. A delegate that is crashed or partitioned misses
      the prepare deadline and the round presumed-aborts, so the client
      always learns an outcome.

    Known limitation (documented in PROTOCOLS.md): the prepare vote is
    about availability, not conflicts — a technique that can abort
    unilaterally (certification) may abort one sub-transaction after
    the cross-group commit, yielding a partial commit. The
    [cross_shard_partial_total] counter exposes exactly this.

    With [shards = 1] the {!Registry} does not interpose this wrapper
    at all, so the run is byte-identical to the unsharded protocol by
    construction. *)

(** [partition ~shards replicas] — contiguous groups, sizes differing by
    at most one (the first [n mod shards] groups get the extra
    replica). Raises [Invalid_argument] if [shards < 1] or
    [shards > length replicas]. *)
val partition : shards:int -> int list -> int list list

(** Size of the largest group when [n] replicas split into [shards]
    groups — what a single-shard transaction's message cost should be
    compared against (explain does this). *)
val probe_group_size : n:int -> shards:int -> int

(** [create ~shards ~info ?passthrough ~factory net ~replicas ~clients]
    builds the sharded instance: [factory] is invoked once per group
    (under the shared observability scope) with that group's replicas.
    [passthrough] is forwarded to the cross-group 2PC channels. *)
val create :
  shards:int ->
  info:Core.Technique.info ->
  ?passthrough:bool ->
  factory:
    (Sim.Network.t ->
    replicas:int list ->
    clients:int list ->
    Core.Technique.instance) ->
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  Core.Technique.instance
