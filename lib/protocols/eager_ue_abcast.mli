(** Eager update everywhere based on atomic broadcast (paper §4.4.2,
    [SR96, KA98, KPAS99a]).

    The client submits to its local server, which forwards the whole
    transaction through an ABCAST (the SC phase — note the contrast with
    active replication, where the {e client} broadcasts). Every replica
    executes transactions in delivery order; conflicting operations are
    thereby ordered identically everywhere and no agreement coordination is
    needed. The delegate alone answers the client. Figure 16 row:
    RE SC EX END. *)

type config = {
  abcast_impl : Group.Abcast.impl;
  client_retry : Sim.Simtime.t;
  passthrough : bool;
  batch_window : Sim.Simtime.t;
      (** sequencer-side request batching window (0 = off) *)
}

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

val info : Core.Technique.info
