(** All implemented techniques, for the benches, the CLI and the tests
    that sweep the whole taxonomy. Order follows Figure 16. *)

type factory =
  Sim.Network.t -> replicas:int list -> clients:int list -> Core.Technique.instance

type entry = {
  key : string;
  info : Core.Technique.info;
  schema : Config.schema;
  build : Config.t -> factory;
}

(* Every technique is shardable: its schema gains the shared [shards]
   key, and a shard count above 1 interposes the {!Sharded} wrapper —
   one instance of the technique per replication group, cross-group
   commits via 2PC. With [shards = 1] (the default) the raw factory is
   returned untouched, so an unsharded run is byte-identical to one
   that never had the key: the invariant holds by construction, not by
   testing alone. *)
let shardable e =
  {
    e with
    schema = e.schema @ [ Config.shards_key ];
    build =
      (fun cfg ->
        let shards =
          match List.assoc_opt "shards" cfg with
          | Some (Config.Int k) -> k
          | _ -> 1
        in
        let inner = e.build cfg in
        if shards <= 1 then inner
        else
          let passthrough =
            match List.assoc_opt "passthrough" cfg with
            | Some (Config.Bool b) -> b
            | _ -> false
          in
          Sharded.create ~shards ~info:e.info ~passthrough ~factory:inner);
  }

(* Every [build] resolves the technique's typed configuration into its
   concrete [config] record and closes over it — the single construction
   path shared by the CLI, the benches and the tests. *)
let raw : entry list =
  [
    {
      key = "active";
      info = Active.info;
      schema = Active.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Active.create net ~replicas ~clients ~config:(Active.config_of cfg) ());
    };
    {
      key = "passive";
      info = Passive.info;
      schema = Passive.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Passive.create net ~replicas ~clients ~config:(Passive.config_of cfg)
            ());
    };
    {
      key = "semi-active";
      info = Semi_active.info;
      schema = Semi_active.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Semi_active.create net ~replicas ~clients
            ~config:(Semi_active.config_of cfg) ());
    };
    {
      key = "semi-passive";
      info = Semi_passive.info;
      schema = Semi_passive.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Semi_passive.create net ~replicas ~clients
            ~config:(Semi_passive.config_of cfg) ());
    };
    {
      key = "eager-primary";
      info = Eager_primary.info;
      schema = Eager_primary.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Eager_primary.create net ~replicas ~clients
            ~config:(Eager_primary.config_of cfg) ());
    };
    {
      key = "eager-ue-locking";
      info = Eager_ue_locking.info;
      schema = Eager_ue_locking.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Eager_ue_locking.create net ~replicas ~clients
            ~config:(Eager_ue_locking.config_of cfg) ());
    };
    {
      key = "eager-ue-abcast";
      info = Eager_ue_abcast.info;
      schema = Eager_ue_abcast.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Eager_ue_abcast.create net ~replicas ~clients
            ~config:(Eager_ue_abcast.config_of cfg) ());
    };
    {
      key = "lazy-primary";
      info = Lazy_primary.info;
      schema = Lazy_primary.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Lazy_primary.create net ~replicas ~clients
            ~config:(Lazy_primary.config_of cfg) ());
    };
    {
      key = "lazy-ue";
      info = Lazy_ue.info;
      schema = Lazy_ue.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Lazy_ue.create net ~replicas ~clients ~config:(Lazy_ue.config_of cfg)
            ());
    };
    {
      key = "certification";
      info = Certification_based.info;
      schema = Certification_based.schema;
      build =
        (fun cfg net ~replicas ~clients ->
          Certification_based.create net ~replicas ~clients
            ~config:(Certification_based.config_of cfg) ());
    };
  ]

let all = List.map shardable raw

let keys = List.map (fun e -> e.key) all
let infos = List.map (fun e -> e.info) all

(* Keyed index over [all] — [find] is called per configured cell in
   sweeps and campaigns, so it should not rescan the list each time. *)
let by_key =
  lazy
    (let h = Hashtbl.create 16 in
     List.iter (fun e -> Hashtbl.replace h e.key e) all;
     h)

let find key = Hashtbl.find_opt (Lazy.force by_key) key

(* Unknown techniques must name the alternatives, exactly like unknown
   config keys do. *)
let find_res key =
  match find key with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown technique %S (valid techniques: %s)" key
           (String.concat ", " keys))

let default_config e = Config.defaults e.schema
let default_factory e = e.build (default_config e)

let configure e pairs =
  match Config.apply e.schema pairs with
  | Ok cfg -> Ok (cfg, e.build cfg)
  | Error msg -> Error (Printf.sprintf "technique %s: %s" e.key msg)

let configure_exn e pairs =
  match configure e pairs with
  | Ok (_, factory) -> factory
  | Error msg -> invalid_arg msg
