(** Typed technique configuration.

    Every protocol declares a {!schema}: one {!key} per field of its
    [config] record, with a type, a default and a doc string. The CLI
    resolves [--set technique.key=value] directives (and config-file
    lines of the same shape) against the schema, so every
    behaviour-defining parameter can be changed without recompilation,
    and the resolved configuration is echoed into each export's header
    record. Values round-trip through their string form. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Time of Sim.Simtime.t
  | Enum of string
  | Opt_int of int option

type ty = TBool | TInt | TFloat | TTime | TEnum of string list | TOpt_int

type key = { name : string; ty : ty; default : value; doc : string }
type schema = key list

(** A resolved configuration: every schema key bound to a value. *)
type t = (string * value) list

val ty_to_string : ty -> string
val value_to_string : value -> string

(** [parse_value ty s] — parse [s] according to [ty]. Times accept
    [500us] / [5ms] / [1.5s] and bare-integer milliseconds. *)
val parse_value : ty -> string -> (value, string) result

val find_key : schema -> string -> key option
val keys : schema -> string list

(** Every key bound to its declared default. *)
val defaults : schema -> t

(** [set schema t ~key ~value] rebinds [key] to the parsed [value]; an
    unknown key fails with a message listing the schema's valid keys. *)
val set : schema -> t -> key:string -> value:string -> (t, string) result

(** [apply schema pairs] — defaults overridden by [pairs], left to
    right. *)
val apply : schema -> (string * string) list -> (t, string) result

(** Typed accessors; raise [Invalid_argument] on a key/type mismatch
    (the schema and the protocol's [config_of] always agree). *)

val get_bool : t -> string -> bool
val get_int : t -> string -> int
val get_float : t -> string -> float
val get_time : t -> string -> Sim.Simtime.t
val get_enum : t -> string -> string
val get_opt_int : t -> string -> int option

(** ["sequencer"]/["consensus"] to the {!Group.Abcast.impl} it names. *)
val abcast_impl_of_enum : string -> Group.Abcast.impl

(** Shared key descriptors (identical across techniques). *)

val abcast_impl_key : key
val passthrough_key : key
val batch_window_key : key
val shards_key : key
val client_retry_key : default:Sim.Simtime.t -> key

(** String form of every binding, schema order. *)
val to_strings : t -> (string * string) list

(** The configuration as one JSON object (for export headers). *)
val to_json : t -> string

(** {2 CLI directives} *)

type directive = { technique : string; key : string; value : string }

(** Parse ["technique.key=value"]. *)
val parse_directive : string -> (directive, string) result

val directive_to_string : directive -> string

(** Parse a config file: one directive per line, ['#'] comments and
    blank lines ignored. *)
val parse_file : string -> (directive list, string) result

(** The [(key, value)] pairs of the directives naming [technique]. *)
val pairs_for : technique:string -> directive list -> (string * string) list
