open Sim

type Msg.t += Sreq of { cid : int; client : int; request : Store.Operation.request }

module Decision_value = struct
  type t = {
    rid : int;
    client : int;
    result : Store.Apply.result;
    value : int option;
  }
end

module C = Group.Consensus.Make (Decision_value)

type config = { passthrough : bool }

let default_config = { passthrough = false }

let schema : Config.schema = [ Config.passthrough_key ]

let config_of cfg = { passthrough = Config.get_bool cfg "passthrough" }

let info =
  {
    Core.Technique.name = "Semi-passive replication";
    community = Distributed_systems;
    propagation = Eager;
    ownership = Primary;
    requires_determinism = false;
    failure_transparent = true;
    strong_consistency = true;
    expected_phases = [ Request; Execution; Agreement_coordination; Response ];
    (* Measured §5 cost: the client multicasts to all replicas (n); one
       consensus instance — estimates to the coordinator (n-1), its
       proposal (n-1), participant replies (n-1) and an all-to-all
       decision flood (n(n-1)) — then every replica answers (n):
       n^2 + 4n - 3 protocol messages. *)
    expected_messages = (fun ~n -> (n * n) + (4 * n) - 3);
    (* Sreq -> Cons_est -> Cons_proposal -> Cons_reply -> Reply. *)
    expected_steps = 5;
    section = "3.5";
  }

type replica_state = {
  me : int;
  cons : C.t;
  fd : Group.Fd.t;
  pending : (int, int * Store.Operation.request) Hashtbl.t; (* rid -> client, req *)
  done_rids : (int, unit) Hashtbl.t;
  decisions : (int, Decision_value.t) Hashtbl.t; (* out-of-order buffer *)
  mutable next_instance : int;
  mutable proposed_for : int;
  mutable participated_for : int;
}

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let fd_group = Group.Fd.create_group net ~members:replicas () in
  let cons_group =
    C.create_group net ~members:replicas ~fd:fd_group
      ~passthrough:config.passthrough ()
  in
  let chan_group =
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  let states = Hashtbl.create 8 in
  (* The deferred-initial-value step: only when this replica believes it is
     the one in charge does it execute the oldest pending request and turn
     the outcome into a consensus proposal. *)
  let maybe_propose r =
    let st = Hashtbl.find states r in
    if Hashtbl.length st.pending > 0 then begin
      (* Every replica with pending work joins the instance (a majority of
         participants is needed for each consensus round) ... *)
      if st.participated_for < st.next_instance then begin
        st.participated_for <- st.next_instance;
        C.participate st.cons ~instance:st.next_instance
      end;
      (* ... but only the replica in charge executes and proposes. *)
      let in_charge =
        match Group.Fd.trusted st.fd with p :: _ -> p = r | [] -> false
      in
      if in_charge && st.proposed_for < st.next_instance then begin
        let oldest =
          Hashtbl.fold
            (fun rid cr acc ->
              match acc with
              | Some (rid', _) when rid' <= rid -> acc
              | _ -> Some (rid, cr))
            st.pending None
        in
        match oldest with
        | None -> ()
        | Some (rid, (client, request)) ->
            st.proposed_for <- st.next_instance;
            Common.phase_begin ctx ~rid ~replica:r
              ~note:"coordinator executes (deferred initial value)"
              Core.Phase.Execution;
            let choose k = Common.random_choice ctx k in
            let shadow = Store.Shadow.create (Common.store ctx r) in
            Store.Shadow.exec_ops ~choose shadow request.Store.Operation.ops;
            let result =
              {
                Store.Apply.reads = Store.Shadow.reads shadow;
                writes =
                  List.map
                    (fun (k, v) ->
                      (k, v, 1 + Store.Kv.version (Common.store ctx r) k))
                    (Store.Shadow.writes shadow);
              }
            in
            C.propose st.cons ~instance:st.next_instance
              {
                Decision_value.rid;
                client;
                result;
                value = Store.Shadow.last_read shadow;
              }
      end
    end
  in
  List.iter
    (fun r ->
      let st =
        {
          me = r;
          cons = C.handle cons_group ~me:r;
          fd = Group.Fd.handle fd_group ~me:r;
          pending = Hashtbl.create 16;
          done_rids = Hashtbl.create 64;
          decisions = Hashtbl.create 8;
          next_instance = 0;
          proposed_for = -1;
          participated_for = -1;
        }
      in
      Hashtbl.replace states r st;
      let chan = Group.Rchan.handle chan_group ~me:r in
      Group.Rchan.on_deliver chan (fun ~src msg ->
          ignore src;
          match msg with
          | Sreq { cid; client; request } when cid = ctx.Common.cid ->
              let rid = request.Store.Operation.rid in
              if not (Hashtbl.mem st.done_rids rid) then begin
                Hashtbl.replace st.pending rid (client, request);
                maybe_propose r
              end
          | _ -> ());
      let rec apply_decisions () =
        match Hashtbl.find_opt st.decisions st.next_instance with
        | None -> ()
        | Some { Decision_value.rid; client; result; value } ->
            Hashtbl.remove st.decisions st.next_instance;
            Common.count ctx
              ~labels:[ ("replica", string_of_int r) ]
              "consensus_decisions_total";
            Common.phase_begin ctx ~rid ~replica:r
              ~note:"consensus decides the update (SC/AC merged)"
              Core.Phase.Agreement_coordination;
            if not (Hashtbl.mem st.done_rids rid) then begin
              Hashtbl.replace st.done_rids rid ();
              Store.Apply.apply_writes (Common.store ctx r)
                result.Store.Apply.writes;
              Common.record_once ctx ~rid ~replica:r result;
              Common.send_reply ctx ~replica:r ~client ~rid ~committed:true
                ~value
            end;
            Hashtbl.remove st.pending rid;
            st.next_instance <- st.next_instance + 1;
            maybe_propose r;
            apply_decisions ()
      in
      C.on_decide st.cons (fun ~instance decision ->
          Hashtbl.replace st.decisions instance decision;
          apply_decisions ());
      ignore
        (Engine.periodic (Network.engine net) ~label:"proto:pump" ~every:(Simtime.of_ms 50)
           (Network.guard net r (fun () -> maybe_propose r))))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    let chan = Group.Rchan.handle chan_group ~me:client in
    List.iter
      (fun dst ->
        Group.Rchan.send chan ~dst
          (Sreq { cid = ctx.Common.cid; client; request }))
      replicas
  in
  Common.instance ctx ~info ~submit
