(** Lazy update everywhere replication (paper §4.6).

    Any replica accepts updates, executes and commits them locally, and
    answers the client immediately; the writeset propagates afterwards.
    Concurrent commits at different sites can conflict — the copies become
    "not only stale but inconsistent" — so the AC phase is a
    reconciliation: writesets are atomically broadcast and every replica
    applies them in the resulting {e after-commit order}
    ({!Core.Reconciliation}), which makes all copies converge; earlier
    conflicting transactions are the losers that "must be undone".
    Figure 16 row: RE EX END AC, weak consistency. *)

type config = {
  abcast_impl : Group.Abcast.impl;
  client_retry : Sim.Simtime.t;
  propagation_delay : Sim.Simtime.t;
  passthrough : bool;
}

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

(** Conflicts detected during reconciliation, summed over replicas —
    divided by the replica count this is the number of conflicting
    transaction pairs observed. *)
val conflicts : Core.Technique.instance -> int

val info : Core.Technique.info
