open Sim

type Msg.t +=
  | Req of {
      cid : int;
      client : int;
      request : Store.Operation.request;
      reply_from : int option; (* None: every replica answers *)
    }
  | Local_read of { cid : int; client : int; request : Store.Operation.request }

type config = {
  abcast_impl : Group.Abcast.impl;
  passthrough : bool;
  local_reads : bool;
  batch_window : Sim.Simtime.t;
}

let default_config =
  {
    abcast_impl = Group.Abcast.Sequencer;
    passthrough = false;
    local_reads = false;
    batch_window = Sim.Simtime.zero;
  }

let schema : Config.schema =
  [
    Config.abcast_impl_key;
    Config.passthrough_key;
    {
      Config.name = "local_reads";
      ty = Config.TBool;
      default = Config.Bool false;
      doc =
        "serve read-only requests from the client's local replica without \
         ordering (sequentially consistent, not linearizable)";
    };
    Config.batch_window_key;
  ]

let config_of cfg =
  {
    abcast_impl = Config.abcast_impl_of_enum (Config.get_enum cfg "abcast_impl");
    passthrough = Config.get_bool cfg "passthrough";
    local_reads = Config.get_bool cfg "local_reads";
    batch_window = Config.get_time cfg "batch_window";
  }

let info =
  {
    Core.Technique.name = "Active replication";
    community = Distributed_systems;
    propagation = Eager;
    ownership = Update_everywhere;
    requires_determinism = true;
    failure_transparent = true;
    strong_consistency = true;
    expected_phases =
      [ Request; Server_coordination; Execution; Response ];
    (* Measured §5 cost (sequencer ABCAST, `replisim explain`): the
       client injects the request at every member (n), the sequencer
       orders it (n-1), order stability is acked all-to-all (n(n-1)),
       and every replica answers (n): n^2 + 2n - 1 protocol messages. *)
    expected_messages = (fun ~n -> (n * n) + (2 * n) - 1);
    (* Inject -> Order -> Order_ack -> Reply. *)
    expected_steps = 4;
    section = "3.2";
  }

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let ab =
    Group.Abcast.create_group net ~members:replicas ~clients
      ~impl:config.abcast_impl ~passthrough:config.passthrough
      ~batch_window:config.batch_window ()
  in
  let chan_group =
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  List.iter
    (fun r ->
      let h = Group.Abcast.handle ab ~me:r in
      Group.Abcast.on_deliver h (fun ~origin msg ->
          ignore origin;
          match msg with
          | Req { cid; client; request; reply_from } when cid = ctx.Common.cid
            ->
              let rid = request.Store.Operation.rid in
              Common.phase_begin ctx ~rid ~replica:r
                ~note:"deterministic execution in delivery order"
                Core.Phase.Execution;
              let choose = Common.deterministic_choice ~rid in
              let result =
                Store.Apply.execute ~choose (Common.store ctx r)
                  request.Store.Operation.ops
              in
              Common.record_once ctx ~rid ~replica:r result;
              let should_reply =
                match reply_from with None -> true | Some only -> only = r
              in
              if should_reply then
                Common.send_reply ctx ~replica:r ~client ~rid ~committed:true
                  ~value:(Common.reply_value result)
          | _ -> ());
      let chan = Group.Rchan.handle chan_group ~me:r in
      Group.Rchan.on_deliver chan (fun ~src msg ->
          ignore src;
          match msg with
          | Local_read { cid; client; request } when cid = ctx.Common.cid ->
              let rid = request.Store.Operation.rid in
              Common.count ctx
                ~labels:[ ("replica", string_of_int r) ]
                "local_reads_total";
              Common.phase_begin ctx ~rid ~replica:r
                ~note:"local read without ordering (sequentially consistent)"
                Core.Phase.Execution;
              let result =
                Store.Apply.execute (Common.store ctx r)
                  request.Store.Operation.ops
              in
              Common.send_reply ctx ~replica:r ~client ~rid ~committed:true
                ~value:(Common.reply_value result)
          | _ -> ()))
    replicas;
  let local_replica_of client =
    List.nth ctx.Common.replicas (client mod List.length ctx.Common.replicas)
  in
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    if config.local_reads && not (Store.Operation.request_is_update request)
    then
      Group.Rchan.send
        (Group.Rchan.handle chan_group ~me:client)
        ~dst:(local_replica_of client)
        (Local_read { cid = ctx.Common.cid; client; request })
    else begin
      Common.phase_begin ctx ~rid:request.Store.Operation.rid
        ~note:"atomic broadcast to the group (merged with RE)"
        Core.Phase.Server_coordination;
      let reply_from =
        if config.local_reads then Some (local_replica_of client) else None
      in
      Group.Abcast.broadcast_from ab ~src:client
        (Req { cid = ctx.Common.cid; client; request; reply_from })
    end
  in
  Common.instance ctx ~info ~submit
