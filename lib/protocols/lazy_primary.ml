open Sim

type Msg.t +=
  | Lpreq of { cid : int; client : int; request : Store.Operation.request }
  | Refresh of {
      cid : int;
      rid : int;
      writes : (Store.Operation.key * int * int) list;
    }

type config = {
  client_retry : Simtime.t;
  propagation_delay : Simtime.t;
  passthrough : bool;
}

let default_config =
  {
    client_retry = Simtime.of_ms 400;
    propagation_delay = Simtime.of_ms 5;
    passthrough = false;
  }

let propagation_delay_key =
  {
    Config.name = "propagation_delay";
    ty = Config.TTime;
    default = Config.Time (Simtime.of_ms 5);
    doc = "lazy refresh delay after the reply (the paper's §5.3 window)";
  }

let schema : Config.schema =
  [
    Config.client_retry_key ~default:(Simtime.of_ms 400);
    propagation_delay_key;
    Config.passthrough_key;
  ]

let config_of cfg =
  {
    client_retry = Config.get_time cfg "client_retry";
    propagation_delay = Config.get_time cfg "propagation_delay";
    passthrough = Config.get_bool cfg "passthrough";
  }

let info =
  {
    Core.Technique.name = "Lazy primary copy";
    community = Databases;
    propagation = Lazy;
    ownership = Primary;
    requires_determinism = false;
    failure_transparent = false;
    strong_consistency = false;
    expected_phases = [ Request; Execution; Response; Agreement_coordination ];
    (* Measured §5 cost: request (1) and reply (1) frame the
       transaction; the refresh FIFO-broadcast floods the writeset
       everyone-to-everyone (n(n-1)) after the reply: n^2 - n + 2
       messages per transaction, but only 2 before the client returns. *)
    expected_messages = (fun ~n -> (n * n) - n + 2);
    (* Lpreq -> Reply: propagation is off the response path — the
       paper's defining property of lazy techniques (§5.3). *)
    expected_steps = 2;
    section = "4.5 / 5.3";
  }

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let fifo_group =
    Group.Fifo.create_group net ~members:replicas
      ~passthrough:config.passthrough ()
  in
  let chan_group =
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  let caches = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace caches r (Hashtbl.create 64)) replicas;
  let is_primary r = Common.lowest_alive ctx = r in
  List.iter
    (fun r ->
      let cache : (int, bool * int option) Hashtbl.t = Hashtbl.find caches r in
      let fifo = Group.Fifo.handle fifo_group ~me:r in
      Group.Fifo.on_deliver fifo (fun ~origin msg ->
          match msg with
          | Refresh { cid; rid; writes } when cid = ctx.Common.cid ->
              if origin <> r then begin
                Common.phase_begin ctx ~rid ~replica:r
                  ~note:"secondary applies propagated changes"
                  Core.Phase.Agreement_coordination;
                Store.Apply.apply_writes (Common.store ctx r) writes;
                Hashtbl.replace cache rid (true, None)
              end
          | _ -> ());
      let chan = Group.Rchan.handle chan_group ~me:r in
      Group.Rchan.on_deliver chan (fun ~src msg ->
          ignore src;
          match msg with
          | Lpreq { cid; client; request } when cid = ctx.Common.cid -> (
              let rid = request.Store.Operation.rid in
              match Hashtbl.find_opt cache rid with
              | Some (committed, value) ->
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed
                    ~value
              | None ->
                  if not (Store.Operation.request_is_update request) then begin
                    (* Local reads: response time is the whole point of
                       lazy replication — and the data may be stale. *)
                    Common.count ctx
                      ~labels:[ ("replica", string_of_int r) ]
                      "local_reads_total";
                    Common.phase_begin ctx ~rid ~replica:r
                      ~note:"local read (possibly stale)" Core.Phase.Execution;
                    let result =
                      Store.Apply.execute (Common.store ctx r)
                        request.Store.Operation.ops
                    in
                    Common.record_once ctx ~rid ~replica:r result;
                    Common.send_reply ctx ~replica:r ~client ~rid
                      ~committed:true ~value:(Common.reply_value result)
                  end
                  else if is_primary r then begin
                    Common.phase_begin ctx ~rid ~replica:r
                      ~note:"primary executes and commits locally"
                      Core.Phase.Execution;
                    let choose k = Common.random_choice ctx k in
                    let result =
                      Store.Apply.execute ~choose (Common.store ctx r)
                        request.Store.Operation.ops
                    in
                    let value = Common.reply_value result in
                    Hashtbl.replace cache rid (true, value);
                    Common.record_once ctx ~rid ~replica:r result;
                    (* Respond first ... *)
                    Common.send_reply ctx ~replica:r ~client ~rid
                      ~committed:true ~value;
                    (* ... and propagate afterwards (END before AC). *)
                    ignore
                      (Engine.schedule (Network.engine net) ~label:"proto:propagate"
                         ~after:config.propagation_delay
                         (Network.guard net r (fun () ->
                              Common.count ctx "propagations_total";
                              Common.phase_begin ctx ~rid ~replica:r
                                ~note:"change propagation after commit"
                                Core.Phase.Agreement_coordination;
                              Group.Fifo.broadcast fifo
                                (Refresh
                                   {
                                     cid = ctx.Common.cid;
                                     rid;
                                     writes = result.Store.Apply.writes;
                                   }))))
                  end)
          | _ -> ()))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    let rid = request.Store.Operation.rid in
    let local_replica =
      List.nth ctx.Common.replicas (client mod List.length ctx.Common.replicas)
    in
    let read_only = not (Store.Operation.request_is_update request) in
    let preferred () =
      if read_only && Network.alive net local_replica then local_replica
      else Common.lowest_alive ctx
    in
    let send ~dst =
      Group.Rchan.send
        (Group.Rchan.handle chan_group ~me:client)
        ~dst
        (Lpreq { cid = ctx.Common.cid; client; request })
    in
    send ~dst:(preferred ());
    Common.retry_until_replied ctx ~rid ~timeout:config.client_retry
      ~target:(fun ~attempt ->
        Common.cycling_target ctx ~preferred:(preferred ()) ~attempt)
      ~send
  in
  Common.instance ctx ~info ~submit
