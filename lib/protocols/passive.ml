open Sim

type Msg.t +=
  | Preq of { cid : int; client : int; request : Store.Operation.request }
  | Update of {
      cid : int;
      client : int;
      rid : int;
      result : Store.Apply.result;
      value : int option;
    }
  | Sync of {
      cid : int;
      entries : (Store.Operation.key * (int * int)) list;
      cache_entries : (int * (bool * int option)) list;
    }
  | Sync_req of { cid : int }

type config = { client_retry : Simtime.t; passthrough : bool }

let default_config =
  { client_retry = Simtime.of_ms 400; passthrough = false }

let schema : Config.schema =
  [ Config.client_retry_key ~default:(Simtime.of_ms 400); Config.passthrough_key ]

let config_of cfg =
  {
    client_retry = Config.get_time cfg "client_retry";
    passthrough = Config.get_bool cfg "passthrough";
  }

let info =
  {
    Core.Technique.name = "Passive replication";
    community = Distributed_systems;
    propagation = Eager;
    ownership = Primary;
    requires_determinism = false;
    failure_transparent = false;
    strong_consistency = true;
    expected_phases = [ Request; Execution; Agreement_coordination; Response ];
    (* Measured §5 cost: request to the primary (1), VSCAST of the
       update — reliable-broadcast relays flood it everyone-to-everyone
       (n(n-1)) and stability acks come back (n-1) — then the reply (1):
       n^2 + 1 protocol messages. *)
    expected_messages = (fun ~n -> (n * n) + 1);
    (* Preq -> Update broadcast -> stability ack -> Reply: the primary
       answers only once the update is stable at the backups. *)
    expected_steps = 4;
    section = "3.3";
  }

type replica_state = {
  me : int;
  vs : Group.Vscast.t;
  (* Results of requests whose update went stable, for resubmissions. *)
  cache : (int, bool * int option) Hashtbl.t;
  executing : (int, unit) Hashtbl.t;
      (* requests executed here, update not yet stable *)
  mutable prev_members : int list; (* membership of the last view we saw *)
  mutable last_view_id : int;
  mutable synced : bool; (* false between a rejoin jump and state transfer *)
}

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let vs_group = Group.Vscast.create_group net ~members:replicas ~passthrough:config.passthrough () in
  let chan_group =
    (* Stubborn client->primary channel so requests survive message loss. *)
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  let states = Hashtbl.create 8 in
  let is_primary st =
    st.synced
    && Group.Vscast.in_view st.vs
    &&
    match (Group.Vscast.current_view st.vs).Group.View.members with
    | [] -> false
    | p :: _ -> p = st.me
  in
  List.iter
    (fun r ->
      let vs = Group.Vscast.handle vs_group ~me:r in
      let st =
        {
          me = r;
          vs;
          cache = Hashtbl.create 32;
          executing = Hashtbl.create 8;
          prev_members = replicas;
          last_view_id = 0;
          synced = true;
        }
      in
      Hashtbl.replace states r st;
      let send_sync st ~dst =
        let chan = Group.Rchan.handle chan_group ~me:st.me in
        let entries = Store.Kv.snapshot (Common.store ctx st.me) in
        let cache_entries =
          Hashtbl.fold (fun rid v acc -> (rid, v) :: acc) st.cache []
        in
        Common.count ctx "state_transfers_total";
        Group.Rchan.send chan ~dst
          (Sync { cid = ctx.Common.cid; entries; cache_entries })
      in
      (* Crash recovery: whatever this replica executed right before the
         crash may never have reached the group — distrust it all and
         rebuild from a surviving copy once readmitted. *)
      Network.on_recover net (fun node ->
          if node = r then begin
            st.synced <- false;
            Hashtbl.reset st.executing;
            Store.Kv.reset (Common.store ctx r)
          end);
      (* Recovery: an excluded replica asks to rejoin; when a view readmits
         it, every surviving member (locally: anyone whose previous view is
         the new view's predecessor) sends it the database and reply cache,
         so it becomes a valid hot standby again. A member that is itself
         the readmitted joiner must not volunteer state, and it defers any
         claim to primaryship until a state transfer arrives. *)
      Group.Vscast.on_view_change vs (fun view ->
          Common.count ctx
            ~labels:[ ("replica", string_of_int r) ]
            "view_changes_total";
          let rejoined =
            (* Either the view id advanced past us while we were out, or
               the previous view we saw did not contain us: both mean we
               are the stale joiner being readmitted. *)
            view.Group.View.id > st.last_view_id + 1
            || not (List.mem r st.prev_members)
          in
          st.last_view_id <- view.Group.View.id;
          let joiners =
            List.filter
              (fun m -> not (List.mem m st.prev_members))
              view.Group.View.members
          in
          st.prev_members <- view.Group.View.members;
          if rejoined then begin
            st.synced <- false;
            (* Updates we executed whose stability died with the old view
               will be re-executed on resubmission. *)
            Hashtbl.reset st.executing;
            (* Tentative writes that never reached the group are void;
               the state transfer rebuilds the database. *)
            Store.Kv.reset (Common.store ctx r)
          end
          else if st.synced && joiners <> [] then
            List.iter (fun dst -> send_sync st ~dst) joiners);
      ignore
        (Engine.periodic (Network.engine net) ~label:"proto:rejoin" ~every:(Simtime.of_ms 150)
           (Network.guard net r (fun () ->
                if not (Group.Vscast.in_view vs) then
                  Group.Vscast.request_join vs)));
      (* Pull-based state transfer: membership diffs cannot always tell
         the survivors who rejoined (a member that crashes and recovers
         within a single view change reappears in a view with unchanged
         membership), so an unsynced member asks for the database itself
         until some synced member answers. *)
      ignore
        (Engine.periodic (Network.engine net) ~label:"proto:rejoin" ~every:(Simtime.of_ms 150)
           (Network.guard net r (fun () ->
                if (not st.synced) && Group.Vscast.in_view vs then
                  let chan = Group.Rchan.handle chan_group ~me:r in
                  List.iter
                    (fun dst ->
                      if dst <> r then
                        Group.Rchan.send chan ~dst
                          (Sync_req { cid = ctx.Common.cid }))
                    replicas)));
      (* Backups (and the primary itself) learn updates through VSCAST. *)
      Group.Vscast.on_deliver vs (fun ~origin msg ->
          match msg with
          | Update { cid; client; rid; result; value } when cid = ctx.Common.cid
            ->
              Common.phase_begin ctx ~rid ~replica:r
                ~note:"update stable via VSCAST" Core.Phase.Agreement_coordination;
              if origin <> r then
                (* Backup: apply the primary's writeset. *)
                Store.Apply.apply_writes (Common.store ctx r)
                  result.Store.Apply.writes;
              Hashtbl.replace st.cache rid (true, value);
              Hashtbl.remove st.executing rid;
              if origin = r then begin
                (* We executed it: record and answer the client. *)
                Common.record_once ctx ~rid ~replica:r result;
                Common.send_reply ctx ~replica:r ~client ~rid ~committed:true
                  ~value
              end
          | _ -> ());
      let chan = Group.Rchan.handle chan_group ~me:r in
      Group.Rchan.on_deliver chan (fun ~src msg ->
          match msg with
          | Sync_req { cid } when cid = ctx.Common.cid ->
              (* Only a synced member may act as a state-transfer donor. *)
              if st.synced then send_sync st ~dst:src
          | Sync { cid; entries; cache_entries } when cid = ctx.Common.cid ->
              List.iter
                (fun (k, (value, version)) ->
                  Store.Kv.install (Common.store ctx r) k ~value ~version)
                entries;
              List.iter
                (fun (rid, outcome) ->
                  if not (Hashtbl.mem st.cache rid) then
                    Hashtbl.replace st.cache rid outcome)
                cache_entries;
              st.synced <- true
          | Preq { cid; client; request } when cid = ctx.Common.cid -> (
              let rid = request.Store.Operation.rid in
              match Hashtbl.find_opt st.cache rid with
              | Some (committed, value) ->
                  (* Resubmission of an already-stable request. *)
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed
                    ~value
              | None ->
                  if is_primary st && not (Hashtbl.mem st.executing rid) then begin
                    Hashtbl.replace st.executing rid ();
                    Common.phase_begin ctx ~rid ~replica:r
                      ~note:"primary executes (non-determinism allowed)"
                      Core.Phase.Execution;
                    let choose _ = Common.random_choice ctx "" in
                    let result =
                      Store.Apply.execute ~choose (Common.store ctx r)
                        request.Store.Operation.ops
                    in
                    let value = Common.reply_value result in
                    Group.Vscast.broadcast vs
                      (Update { cid = ctx.Common.cid; client; rid; result; value })
                  end)
          | _ -> ()))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    let rid = request.Store.Operation.rid in
    let chan = Group.Rchan.handle chan_group ~me:client in
    let send ~dst =
      Group.Rchan.send chan ~dst (Preq { cid = ctx.Common.cid; client; request })
    in
    let preferred = Common.lowest_alive ctx in
    send ~dst:preferred;
    Common.retry_until_replied ctx ~rid ~timeout:config.client_retry
      ~target:(fun ~attempt -> Common.cycling_target ctx ~preferred ~attempt)
      ~send
  in
  Common.instance ctx ~info ~submit
