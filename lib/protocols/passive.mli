(** Passive replication — primary-backup (paper §3.3, [GS97]).

    Clients send requests to the primary, which executes them (possibly
    non-deterministically) and propagates the resulting update to the
    backups with a View Synchronous Broadcast; it replies once the update
    is stable. On a primary crash the group installs a new view, the next
    member becomes primary, and clients re-send after a timeout —
    duplicate resubmissions are absorbed by a per-request result cache, so
    each request takes effect exactly once.

    A replica that crash-recovers re-enters through the membership
    protocol (it must not trust its pre-crash view or state): it discards
    tentative writes that never reached the group and rebuilds from a
    state transfer — pushed by survivors that see it rejoin a view, and
    pulled by the joiner ([Sync_req]) when membership alone cannot reveal
    the rejoin. Until the transfer arrives it claims no primaryship.
    Figure 16 row: RE EX AC END. *)

type config = {
  client_retry : Sim.Simtime.t;  (** resubmission timeout *)
  passthrough : bool;
}

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

val info : Core.Technique.info
