open Sim

type Msg.t +=
  | Req of { cid : int; client : int; request : Store.Operation.request }
  | Choice of { cid : int; rid : int; choices : (Store.Operation.key * int) list }

type config = {
  abcast_impl : Group.Abcast.impl;
  passthrough : bool;
  batch_window : Sim.Simtime.t;
}

let default_config =
  {
    abcast_impl = Group.Abcast.Sequencer;
    passthrough = false;
    batch_window = Sim.Simtime.zero;
  }

let schema : Config.schema =
  [ Config.abcast_impl_key; Config.passthrough_key; Config.batch_window_key ]

let config_of cfg =
  {
    abcast_impl = Config.abcast_impl_of_enum (Config.get_enum cfg "abcast_impl");
    passthrough = Config.get_bool cfg "passthrough";
    batch_window = Config.get_time cfg "batch_window";
  }

let info =
  {
    Core.Technique.name = "Semi-active replication";
    community = Distributed_systems;
    propagation = Eager;
    ownership = Update_everywhere;
    requires_determinism = false;
    failure_transparent = true;
    strong_consistency = true;
    expected_phases =
      [
        Request; Server_coordination; Execution; Agreement_coordination; Response;
      ];
    (* Same RE->END message pattern as active replication: the leader's
       non-deterministic choices ride VSCAST off the reply path, so on a
       deterministic transaction the measured cost is the ABCAST cost —
       inject at every member (n), sequencer order (n-1), all-to-all
       order acks (n(n-1)), one reply per replica (n). *)
    expected_messages = (fun ~n -> (n * n) + (2 * n) - 1);
    (* Inject -> Order -> Order_ack -> Reply. *)
    expected_steps = 4;
    section = "3.4";
  }

let has_nondet (request : Store.Operation.request) =
  List.exists
    (function Store.Operation.Write_random _ -> true | _ -> false)
    request.ops

type replica_state = {
  me : int;
  (* Requests delivered by ABCAST, executed strictly in order. *)
  mutable queue : (int * Store.Operation.request) list; (* client, request *)
  choices : (int, (Store.Operation.key * int) list) Hashtbl.t; (* by rid *)
  generated : (int, unit) Hashtbl.t; (* choices we vscast, by rid *)
  ex_marked : (int, unit) Hashtbl.t; (* EX phase marked, by rid *)
}

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let ab =
    Group.Abcast.create_group net ~members:replicas ~clients
      ~impl:config.abcast_impl ~passthrough:config.passthrough
      ~batch_window:config.batch_window ()
  in
  let vs_group =
    Group.Vscast.create_group net ~members:replicas
      ~passthrough:config.passthrough ()
  in
  let states = Hashtbl.create 8 in
  (* Execute the queue head once its non-deterministic choices (if any)
     are available; the leader is the one that generates them. *)
  let rec pump r =
    let st = Hashtbl.find states r in
    match st.queue with
    | [] -> ()
    | (client, request) :: rest ->
        let rid = request.Store.Operation.rid in
        let leader = Common.lowest_alive ctx in
        let nondet = has_nondet request in
        let ready_choices = Hashtbl.find_opt st.choices rid in
        if not (Hashtbl.mem st.ex_marked rid) then begin
          Hashtbl.replace st.ex_marked rid ();
          Common.phase_begin ctx ~rid ~replica:r ~note:"execution in delivery order"
            Core.Phase.Execution
        end;
        if nondet && ready_choices = None && r = leader then begin
          if not (Hashtbl.mem st.generated rid) then begin
            Hashtbl.replace st.generated rid ();
            (* The leader makes the choice and informs the followers
               (the AC phase of Figure 4). *)
            let choices =
              List.filter_map
                (function
                  | Store.Operation.Write_random k ->
                      Some (k, Common.random_choice ctx k)
                  | _ -> None)
                request.ops
            in
            Common.count ctx
              ~labels:[ ("replica", string_of_int r) ]
              "nondet_choices_total";
            Common.phase_begin ctx ~rid ~replica:r
              ~note:"leader resolves non-deterministic choice via VSCAST"
              Core.Phase.Agreement_coordination;
            let vs = Group.Vscast.handle vs_group ~me:r in
            Group.Vscast.broadcast vs (Choice { cid = ctx.Common.cid; rid; choices })
          end
          (* Execute once our own VSCAST delivery loops back. *)
        end
        else if (not nondet) || ready_choices <> None then begin
          let choices = Option.value ~default:[] ready_choices in
          (* Consume choices positionally per key occurrence. *)
          let remaining = ref choices in
          let choose k =
            match !remaining with
            | (k', v) :: rest when String.equal k k' ->
                remaining := rest;
                v
            | _ -> Common.deterministic_choice ~rid k
          in
          let result =
            Store.Apply.execute ~choose (Common.store ctx r)
              request.Store.Operation.ops
          in
          Common.record_once ctx ~rid ~replica:r result;
          Common.send_reply ctx ~replica:r ~client ~rid ~committed:true
            ~value:(Common.reply_value result);
          st.queue <- rest;
          pump r
        end
  in
  List.iter
    (fun r ->
      let st =
        {
          me = r;
          queue = [];
          choices = Hashtbl.create 16;
          generated = Hashtbl.create 16;
          ex_marked = Hashtbl.create 16;
        }
      in
      Hashtbl.replace states r st;
      let h = Group.Abcast.handle ab ~me:r in
      Group.Abcast.on_deliver h (fun ~origin msg ->
          ignore origin;
          match msg with
          | Req { cid; client; request } when cid = ctx.Common.cid ->
              st.queue <- st.queue @ [ (client, request) ];
              pump r
          | _ -> ());
      let vs = Group.Vscast.handle vs_group ~me:r in
      Group.Vscast.on_deliver vs (fun ~origin msg ->
          ignore origin;
          match msg with
          | Choice { cid; rid; choices } when cid = ctx.Common.cid ->
              if not (Hashtbl.mem st.choices rid) then
                Hashtbl.replace st.choices rid choices;
              pump r
          | _ -> ());
      (* A leader crash before sending its choice stalls the head request:
         re-pump periodically so the next leader takes over. *)
      ignore
        (Engine.periodic (Network.engine net) ~label:"proto:pump" ~every:(Simtime.of_ms 50)
           (Network.guard net r (fun () -> pump r))))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    Common.phase_begin ctx ~rid:request.Store.Operation.rid
      ~note:"atomic broadcast to the group (merged with RE)"
      Core.Phase.Server_coordination;
    Group.Abcast.broadcast_from ab ~src:client
      (Req { cid = ctx.Common.cid; client; request })
  in
  Common.instance ctx ~info ~submit
