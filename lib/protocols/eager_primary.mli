(** Eager primary copy replication (paper §4.3 single-operation, §5.2
    multi-operation) — the hot-standby backup scheme of distributed INGRES
    lineage.

    Updates execute at the primary, which ships the resulting log records
    to the secondaries (FIFO change propagation) and then runs a 2PC round
    so all copies commit atomically before the client sees the commit
    notification. Read-only transactions run at the client's local replica
    and see the latest committed version. On primary failure, clients
    re-submit to the next replica after a timeout (the take-over that the
    paper attributes to operator intervention); a per-request outcome
    cache makes resubmission exactly-once.

    In [interactive] mode (Figure 12), each operation's changes are
    propagated as the transaction progresses (an EX/AC loop per
    operation) and only the final AC is a 2PC; otherwise the transaction
    is a stored procedure: one EX, one propagation, one 2PC (Figure 7). *)

type config = {
  interactive : bool;
  nonblocking_commit : bool;
      (** use three-phase commit for the final agreement round instead of
          the (blocking) two-phase commit — the §2.1 distributed-systems
          alternative. One more message round; a coordinator crash can no
          longer wedge prepared participants (see abl8). *)
  client_retry : Sim.Simtime.t;
  abort_probability : float;
      (** chance that a secondary votes NO, standing in for the paper's
          "load, consistency constraints, interactions with local
          operations" — deterministic per (request, replica) *)
  passthrough : bool;
}

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

val info : Core.Technique.info
