open Sim

type Msg.t +=
  | Areq of { cid : int; client : int; request : Store.Operation.request }
  | Ordered of {
      cid : int;
      client : int;
      delegate : int;
      ops : Store.Operation.op list; (* non-determinism resolved *)
      rid : int;
    }

type config = {
  abcast_impl : Group.Abcast.impl;
  client_retry : Simtime.t;
  passthrough : bool;
  batch_window : Simtime.t;
}

let default_config =
  {
    abcast_impl = Group.Abcast.Sequencer;
    client_retry = Simtime.of_ms 500;
    passthrough = false;
    batch_window = Simtime.zero;
  }

let schema : Config.schema =
  [
    Config.abcast_impl_key;
    Config.client_retry_key ~default:(Simtime.of_ms 500);
    Config.passthrough_key;
    Config.batch_window_key;
  ]

let config_of cfg =
  {
    abcast_impl = Config.abcast_impl_of_enum (Config.get_enum cfg "abcast_impl");
    client_retry = Config.get_time cfg "client_retry";
    passthrough = Config.get_bool cfg "passthrough";
    batch_window = Config.get_time cfg "batch_window";
  }

let info =
  {
    Core.Technique.name = "Eager update everywhere (ABCAST)";
    community = Databases;
    propagation = Eager;
    ownership = Update_everywhere;
    requires_determinism = false;
    failure_transparent = false;
    strong_consistency = true;
    expected_phases = [ Request; Server_coordination; Execution; Response ];
    (* Measured §5 cost: request to one replica (1), which atomically
       broadcasts the ordered operation — inject, sequencer order and
       all-to-all order acks, n^2 + n - 2 non-self messages — and a
       single reply (1): n^2 + n protocol messages. *)
    expected_messages = (fun ~n -> (n * n) + n);
    (* Areq -> Inject -> Order -> Order_ack -> Reply. *)
    expected_steps = 5;
    section = "4.4.2";
  }

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let ab =
    Group.Abcast.create_group net ~members:replicas ~impl:config.abcast_impl
      ~passthrough:config.passthrough ~batch_window:config.batch_window ()
  in
  let chan_group =
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  let forwarded = Hashtbl.create 64 in
  (* (replica, rid) -> outcome cache, for client resubmissions *)
  let caches = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace caches r (Hashtbl.create 64)) replicas;
  List.iter
    (fun r ->
      let cache : (int, bool * int option) Hashtbl.t = Hashtbl.find caches r in
      let h = Group.Abcast.handle ab ~me:r in
      Group.Abcast.on_deliver h (fun ~origin msg ->
          ignore origin;
          match msg with
          | Ordered { cid; client; delegate; ops; rid } when cid = ctx.Common.cid
            ->
              if not (Hashtbl.mem cache rid) then begin
                Common.phase_begin ctx ~rid ~replica:r
                  ~note:"execution in ABCAST delivery order" Core.Phase.Execution;
                let result =
                  Store.Apply.execute (Common.store ctx r) ops
                in
                Common.record_once ctx ~rid ~replica:r result;
                let value = Common.reply_value result in
                Hashtbl.replace cache rid (true, value);
                if delegate = r then
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed:true
                    ~value
              end
          | _ -> ());
      let chan = Group.Rchan.handle chan_group ~me:r in
      Group.Rchan.on_deliver chan (fun ~src msg ->
          ignore src;
          match msg with
          | Areq { cid; client; request } when cid = ctx.Common.cid -> (
              let rid = request.Store.Operation.rid in
              match Hashtbl.find_opt cache rid with
              | Some (committed, value) ->
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed
                    ~value
              | None ->
                  if not (Hashtbl.mem forwarded (r, rid)) then begin
                    Hashtbl.replace forwarded (r, rid) ();
                    Common.count ctx
                      ~labels:[ ("replica", string_of_int r) ]
                      "abcast_forwards_total";
                    Common.phase_begin ctx ~rid ~replica:r
                      ~note:"delegate forwards via atomic broadcast"
                      Core.Phase.Server_coordination;
                    (* The delegate resolves non-determinism so all sites
                       execute identical operations. *)
                    let ops =
                      List.map
                        (function
                          | Store.Operation.Write_random k ->
                              Store.Operation.Write
                                (k, Common.random_choice ctx k)
                          | op -> op)
                        request.Store.Operation.ops
                    in
                    Group.Abcast.broadcast h
                      (Ordered { cid = ctx.Common.cid; client; delegate = r; ops; rid })
                  end)
          | _ -> ()))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    let rid = request.Store.Operation.rid in
    let local_replica =
      List.nth ctx.Common.replicas (client mod List.length ctx.Common.replicas)
    in
    let preferred () =
      if Network.alive net local_replica then local_replica
      else Common.lowest_alive ctx
    in
    let send ~dst =
      Group.Rchan.send
        (Group.Rchan.handle chan_group ~me:client)
        ~dst
        (Areq { cid = ctx.Common.cid; client; request })
    in
    send ~dst:(preferred ());
    Common.retry_until_replied ctx ~rid ~timeout:config.client_retry
      ~target:(fun ~attempt ->
        Common.cycling_target ctx ~preferred:(preferred ()) ~attempt)
      ~send
  in
  Common.instance ctx ~info ~submit
