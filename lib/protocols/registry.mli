(** All implemented techniques, for the benches, the CLI and the tests
    that sweep the whole taxonomy. Order follows Figure 16. *)

type factory =
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  Core.Technique.instance

(** One technique: CLI key, classification metadata, configuration
    schema, and a constructor taking a resolved configuration. *)
type entry = {
  key : string;
  info : Core.Technique.info;
  schema : Config.schema;
  build : Config.t -> factory;
}

val all : entry list
val keys : string list
val infos : Core.Technique.info list

val find : string -> entry option

(** Like {!find}, but an unknown key's error message lists the valid
    technique keys. *)
val find_res : string -> (entry, string) result

(** The entry's schema defaults, resolved. *)
val default_config : entry -> Config.t

(** Constructor under the schema defaults. *)
val default_factory : entry -> factory

(** [configure e pairs] resolves raw [key=value] pairs against the
    entry's schema (unknown keys fail, listing the valid ones) and
    returns the resolved configuration together with the constructor. *)
val configure :
  entry -> (string * string) list -> (Config.t * factory, string) result

(** [configure] for static sweeps whose settings are known valid;
    raises [Invalid_argument] otherwise. *)
val configure_exn : entry -> (string * string) list -> factory
