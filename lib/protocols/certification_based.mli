(** Certification-based database replication (paper §5.4.2, [KA98]).

    The transaction executes optimistically on shadow copies at the
    client's local server — no coordination before or during execution.
    When it completes, its readset (with versions) and writeset travel in
    one atomic broadcast; on delivery every replica runs the same
    deterministic certification test in the same total order
    ({!Core.Certification}), so all sites commit or abort the transaction
    identically with no further agreement round. Aborts (certification
    failures) are the price of optimism under contention. The delegate
    reports the outcome to the client after certifying — the technique is
    eager despite its optimism. Observed signature: RE EX AC END. *)

type config = {
  abcast_impl : Group.Abcast.impl;
  client_retry : Sim.Simtime.t;
  passthrough : bool;
  certify_time : Sim.Simtime.t;
      (** simulated cost of the certification test at each replica
          (default 0: certification is instantaneous) *)
  optimistic : bool;
      (** process transactions at {e optimistic} delivery ([KPAS99a]): the
          certification test runs during the ordering protocol; if the
          spontaneous order matches the definitive one the transaction
          terminates without paying [certify_time] after delivery. The
          verdict is always computed against the definitive order, so
          correctness is unaffected — only latency. *)
  batch_window : Sim.Simtime.t;
      (** sequencer-side request batching window (0 = off) *)
}

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

(** Certification aborts observed at replica 0's certifier (identical at
    every replica). *)
val aborts : Core.Technique.instance -> int

val info : Core.Technique.info
