open Sim

type Msg.t +=
  | Lreq of { cid : int; client : int; request : Store.Operation.request }
  | Lock_req of {
      cid : int;
      rid : int;
      op_index : int;
      keys : (Store.Operation.key * Store.Lock_table.mode) list;
      delegate : int;
    }
  | Lock_grant of {
      cid : int;
      rid : int;
      op_index : int;
      from : int;
      copies : (Store.Operation.key * (int * int)) list;
          (* current (value, version) of the locked items at [from] —
             quorum mode reads the freshest copy among the grants *)
    }
  | Lock_refuse of { cid : int; rid : int; from : int }
  | Exec of {
      cid : int;
      rid : int;
      op_index : int;
      op : Store.Operation.op;
      delegate : int;
    }
  | Exec_ack of { cid : int; rid : int; op_index : int; from : int }
  | Complete of {
      cid : int;
      rid : int;
      delegate : int;
      writes : (Store.Operation.key * int * int) list;
          (* quorum mode ships the delegate-computed writeset; empty when
             every site executed the operations itself *)
    }
  | Complete_ack of { cid : int; rid : int; from : int }
  | Txn_abort of { cid : int; rid : int }
  | Sync_req of { cid : int; from : int }
  | Sync_state of {
      cid : int;
      entries : (Store.Operation.key * (int * int)) list;
      cache_entries : (int * (bool * int option)) list;
    }

type config = {
  read_one_write_all : bool;
  lock_quorum : int option;
  lock_timeout : Simtime.t;
  client_retry : Simtime.t;
  passthrough : bool;
}

let default_config =
  {
    read_one_write_all = false;
    lock_quorum = None;
    lock_timeout = Simtime.of_ms 250;
    client_retry = Simtime.of_ms 600;
    passthrough = false;
  }

let schema : Config.schema =
  [
    {
      Config.name = "read_one_write_all";
      ty = Config.TBool;
      default = Config.Bool false;
      doc = "lock and execute reads at the delegate only (ROWA)";
    };
    {
      Config.name = "lock_quorum";
      ty = Config.TOpt_int;
      default = Config.Opt_int None;
      doc =
        "grants needed before executing (quorum locking); none = all sites";
    };
    {
      Config.name = "lock_timeout";
      ty = Config.TTime;
      default = Config.Time (Simtime.of_ms 250);
      doc = "deadlock-avoidance timeout: abort and release after this wait";
    };
    Config.client_retry_key ~default:(Simtime.of_ms 600);
    Config.passthrough_key;
  ]

let config_of cfg =
  {
    read_one_write_all = Config.get_bool cfg "read_one_write_all";
    lock_quorum = Config.get_opt_int cfg "lock_quorum";
    lock_timeout = Config.get_time cfg "lock_timeout";
    client_retry = Config.get_time cfg "client_retry";
    passthrough = Config.get_bool cfg "passthrough";
  }

let info =
  {
    Core.Technique.name = "Eager update everywhere (distributed locking)";
    community = Databases;
    propagation = Eager;
    ownership = Update_everywhere;
    requires_determinism = false;
    failure_transparent = false;
    strong_consistency = true;
    expected_phases =
      [
        Request; Server_coordination; Execution; Agreement_coordination; Response;
      ];
    (* Measured §5 cost (single-operation transaction): every round is
       delegate <-> other replicas point-to-point, so the cost is linear
       rather than quadratic — Lock_req/Lock_grant, Exec/Exec_ack,
       Complete/Complete_ack, Prepare/Vote/Decision at n-1 each, framed
       by the request and the reply: 9(n-1) + 2 = 9n - 7 messages. *)
    expected_messages = (fun ~n -> (9 * n) - 7);
    (* Lreq -> Lock_req -> Lock_grant -> Exec -> Exec_ack -> Complete ->
       Complete_ack -> Prepare -> Vote -> Reply. Per-operation lock and
       execute round-trips make this by far the deepest technique —
       the paper's "one round per operation" scaling argument (§5.4.1). *)
    expected_steps = 10;
    section = "4.4.1 / 5.4.1";
  }

(* Keys and lock modes needed by one operation. *)
let op_locks op =
  let reads = Store.Operation.read_keys op in
  let writes = Store.Operation.write_keys op in
  let write_locks = List.map (fun k -> (k, Store.Lock_table.X)) writes in
  let read_locks =
    List.filter_map
      (fun k ->
        if List.mem k writes then None else Some (k, Store.Lock_table.S))
      reads
  in
  write_locks @ read_locks

type delegate_txn = {
  client : int;
  ops : Store.Operation.op list; (* non-determinism already resolved *)
  mutable op_index : int;
  mutable stage : [ `Locking | `Executing | `Completing | `Committing | `Done ];
  mutable grants : int list; (* replicas that granted the current op *)
  mutable exec_acks : int list;
  mutable complete_acks : int list;
  mutable lock_sites : int list; (* replicas the current op locks at *)
  mutable exec_sites : int list; (* replicas the current op executes at *)
  (* Quorum mode: the freshest copies seen among lock grants, the
     transaction's own writes, and the reads performed. *)
  q_base : (Store.Operation.key, int * int) Hashtbl.t;
  q_overlay : (Store.Operation.key, int) Hashtbl.t;
  mutable q_reads : (Store.Operation.key * int * int) list;
  mutable q_last_read : int option;
}

type replica_state = {
  me : int;
  locks : Store.Lock_table.t;
  shadows : (int, Store.Shadow.t) Hashtbl.t; (* rid -> overlay *)
  executed : (int * int, unit) Hashtbl.t; (* (rid, op_index) done here *)
  complete : (int, unit) Hashtbl.t; (* all operations processed *)
  quorum_writes : (int, (Store.Operation.key * int * int) list) Hashtbl.t;
  delegate_of : (int, int) Hashtbl.t; (* rid -> delegate replica *)
  cache : (int, bool * int option) Hashtbl.t;
  txns : (int, delegate_txn) Hashtbl.t; (* delegate side *)
  mutable synced : bool; (* false between recovery and state transfer *)
}

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let fd_group = Group.Fd.create_group net ~members:replicas () in
  let chan_group =
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  let states = Hashtbl.create 8 in
  let state r = Hashtbl.find states r in
  let chan r = Group.Rchan.handle chan_group ~me:r in
  let release_txn st rid =
    Store.Lock_table.release_all st.locks ~txn:rid;
    Hashtbl.remove st.shadows rid;
    Hashtbl.remove st.complete rid;
    Hashtbl.remove st.quorum_writes rid;
    Hashtbl.remove st.delegate_of rid;
    (* The per-op dedup entries must die with the shadow: if the
       transaction is ever re-driven (client resubmission after a delegate
       crash), every operation has to re-execute into the fresh shadow —
       stale entries would make this site ack ops it silently skipped and
       commit a partial writeset. *)
    let stale_ops =
      Hashtbl.fold
        (fun ((r, _) as key) () acc -> if r = rid then key :: acc else acc)
        st.executed []
    in
    List.iter (Hashtbl.remove st.executed) stale_ops
  in
  let tpc =
    Core.Two_phase_commit.create_group net ~nodes:replicas
      ~passthrough:config.passthrough
      ~participant_timeout:(Simtime.of_ms 300)
      ~vote:(fun ~me ~txn ->
        let st = state me in
        Hashtbl.mem st.complete txn)
      ~learn:(fun ~me ~txn decision ->
        let st = state me in
        (match
           (decision, Hashtbl.find_opt st.quorum_writes txn,
            Hashtbl.find_opt st.shadows txn)
         with
        | Core.Two_phase_commit.Commit, Some writes, _ ->
            (* Quorum mode: install the delegate-computed writeset with its
               explicit versions (stale copies catch up here). *)
            Store.Apply.apply_writes (Common.store ctx me) writes;
            if not (Hashtbl.mem st.cache txn) then
              Hashtbl.replace st.cache txn (true, None)
        | Core.Two_phase_commit.Commit, None, Some shadow ->
            let installed = Store.Shadow.install shadow in
            Hashtbl.replace st.cache txn (true, Store.Shadow.last_read shadow);
            Common.record_once ctx ~rid:txn ~replica:me
              (Store.Shadow.result shadow ~installed)
        | Core.Two_phase_commit.Commit, None, None -> ()
        | Core.Two_phase_commit.Abort, _, _ ->
            Hashtbl.replace st.cache txn (false, None));
        release_txn st txn)
      ()
  in
  (* Delegate side: abort the transaction everywhere. *)
  let abort_txn r rid =
    let st = state r in
    match Hashtbl.find_opt st.txns rid with
    | None -> ()
    | Some txn when txn.stage = `Committing || txn.stage = `Done -> ()
    | Some txn ->
        txn.stage <- `Done;
        Common.count ctx "lock_aborts_total";
        List.iter
          (fun dst ->
            Group.Rchan.send (chan r) ~dst (Txn_abort { cid = ctx.Common.cid; rid }))
          ctx.Common.replicas;
        Hashtbl.replace st.cache rid (false, None);
        Hashtbl.remove st.txns rid;
        Common.send_reply ctx ~replica:r ~client:txn.client ~rid
          ~committed:false ~value:None
  in
  (* Where the current operation's locks are requested. *)
  let lock_sites_for r op =
    if config.read_one_write_all && Store.Operation.write_keys op = [] then
      [ r ] (* read-one *)
    else
      let alive = List.filter (Network.alive net) ctx.Common.replicas in
      match config.lock_quorum with
      | None -> alive
      | Some q ->
          (* A rotating quorum starting at the delegate: any two quorums of
             size > n/2 intersect, which is what serialises conflicting
             transactions. *)
          let arr = Array.of_list ctx.Common.replicas in
          let n = Array.length arr in
          let start =
            match List.find_index (Int.equal r) ctx.Common.replicas with
            | Some i -> i
            | None -> 0
          in
          List.init n (fun i -> arr.((start + i) mod n))
          |> List.filter (Network.alive net)
          |> List.filteri (fun i _ -> i < q)
  (* Quorum mode: execute an operation at the delegate against the
     freshest quorum copies (base) plus the transaction's own writes. *)
  and exec_quorum_op txn op =
    let read k =
      match Hashtbl.find_opt txn.q_overlay k with
      | Some v ->
          txn.q_last_read <- Some v;
          v
      | None ->
          let v, version =
            Option.value ~default:(0, 0) (Hashtbl.find_opt txn.q_base k)
          in
          txn.q_reads <- (k, v, version) :: txn.q_reads;
          txn.q_last_read <- Some v;
          v
    in
    let write k v = Hashtbl.replace txn.q_overlay k v in
    match op with
    | Store.Operation.Read k -> ignore (read k)
    | Store.Operation.Write (k, v) -> write k v
    | Store.Operation.Incr (k, d) -> write k (read k + d)
    | Store.Operation.Write_random k -> write k (Common.random_choice ctx k)
  (* Where it executes: every copy must apply updates. *)
  and exec_sites_for r op =
    if config.read_one_write_all && Store.Operation.write_keys op = [] then
      [ r ]
    else List.filter (Network.alive net) ctx.Common.replicas
  in
  let rec next_op r rid =
    let st = state r in
    match Hashtbl.find_opt st.txns rid with
    | None -> ()
    | Some txn ->
        if txn.op_index >= List.length txn.ops then start_complete r rid
        else begin
          let op = List.nth txn.ops txn.op_index in
          txn.stage <- `Locking;
          txn.grants <- [];
          txn.exec_acks <- [];
          txn.lock_sites <- lock_sites_for r op;
          txn.exec_sites <- exec_sites_for r op;
          Common.phase_begin ctx ~rid ~replica:r
            ~note:"lock request at all replicas (2-phase locking)"
            Core.Phase.Server_coordination;
          List.iter
            (fun dst ->
              Group.Rchan.send (chan r) ~dst
                (Lock_req
                   {
                     cid = ctx.Common.cid;
                     rid;
                     op_index = txn.op_index;
                     keys = op_locks op;
                     delegate = r;
                   }))
            txn.lock_sites
        end
  and start_exec r rid =
    let st = state r in
    match Hashtbl.find_opt st.txns rid with
    | None -> ()
    | Some txn ->
        txn.stage <- `Executing;
        let op = List.nth txn.ops txn.op_index in
        Common.phase_begin ctx ~rid ~replica:r ~note:"operation executes at all sites"
          Core.Phase.Execution;
        List.iter
          (fun dst ->
            Group.Rchan.send (chan r) ~dst
              (Exec
                 {
                   cid = ctx.Common.cid;
                   rid;
                   op_index = txn.op_index;
                   op;
                   delegate = r;
                 }))
          txn.exec_sites
  and start_complete r rid =
    let st = state r in
    match Hashtbl.find_opt st.txns rid with
    | None -> ()
    | Some txn ->
        (* Synchronisation point: every replica confirms it has processed
           every operation before the 2PC begins, so no PREPARE can
           overtake an Exec in flight. *)
        txn.stage <- `Completing;
        txn.complete_acks <- [];
        let writes =
          if config.lock_quorum = None then []
          else
            Hashtbl.fold
              (fun k v acc ->
                let _, base_version =
                  Option.value ~default:(0, 0) (Hashtbl.find_opt txn.q_base k)
                in
                (k, v, base_version + 1) :: acc)
              txn.q_overlay []
        in
        List.iter
          (fun dst ->
            Group.Rchan.send (chan r) ~dst
              (Complete { cid = ctx.Common.cid; rid; delegate = r; writes }))
          (List.filter (Network.alive net) ctx.Common.replicas)
  and start_commit r rid =
    let st = state r in
    match Hashtbl.find_opt st.txns rid with
    | None -> ()
    | Some txn ->
        txn.stage <- `Committing;
        Common.phase_begin ctx ~rid ~replica:r ~note:"two-phase commit"
          Core.Phase.Agreement_coordination;
        let participants = List.filter (Network.alive net) ctx.Common.replicas in
        Core.Two_phase_commit.start tpc ~coordinator:r ~participants ~txn:rid
          ~on_complete:(fun decision ->
            let st = state r in
            (match Hashtbl.find_opt st.txns rid with
            | Some txn -> (
                txn.stage <- `Done;
                Hashtbl.remove st.txns rid;
                let committed = decision = Core.Two_phase_commit.Commit in
                if committed && config.lock_quorum <> None then begin
                  (* Quorum mode: the delegate knows the reads/writes. *)
                  let writes =
                    Hashtbl.fold
                      (fun k v acc ->
                        let _, base_version =
                          Option.value ~default:(0, 0)
                            (Hashtbl.find_opt txn.q_base k)
                        in
                        (k, v, base_version + 1) :: acc)
                      txn.q_overlay []
                  in
                  Common.record_once ctx ~rid ~replica:r
                    { Store.Apply.reads = List.rev txn.q_reads; writes };
                  Hashtbl.replace st.cache rid (true, txn.q_last_read);
                  Common.send_reply ctx ~replica:r ~client:txn.client ~rid
                    ~committed:true ~value:txn.q_last_read
                end
                else
                  (* The delegate's own learn callback has already fired
                     (coordinator is a participant), filling the cache. *)
                  match Hashtbl.find_opt st.cache rid with
                  | Some (committed, value) ->
                      Common.send_reply ctx ~replica:r ~client:txn.client ~rid
                        ~committed ~value
                  | None ->
                      Common.send_reply ctx ~replica:r ~client:txn.client ~rid
                        ~committed ~value:None)
            | None -> ()))
  in
  List.iter
    (fun r ->
      let st =
        {
          me = r;
          locks = Store.Lock_table.create ();
          shadows = Hashtbl.create 16;
          executed = Hashtbl.create 64;
          complete = Hashtbl.create 16;
          quorum_writes = Hashtbl.create 16;
          delegate_of = Hashtbl.create 16;
          cache = Hashtbl.create 64;
          txns = Hashtbl.create 8;
          synced = true;
        }
      in
      Hashtbl.replace states r st;
      (match Network.timeseries net with
      | Some ts ->
          Timeseries.register ts ~name:"lock_held" ~replica:r
            ~kind:Timeseries.Level ~unit_:"locks" (fun () ->
              float_of_int (Store.Lock_table.held_count st.locks));
          Timeseries.register ts ~name:"lock_waiters" ~replica:r
            ~kind:Timeseries.Waiters ~unit_:"requests" (fun () ->
              float_of_int (Store.Lock_table.waiting_count st.locks))
      | None -> ());
      (* Rejoin after a crash: the copy is stale and any pre-crash
         transaction context is dead (its delegates aborted or committed
         without us long ago). Drop that context, stop serving, and ask a
         surviving peer for the database + reply cache; service resumes
         when the transfer lands. *)
      Network.on_recover net (fun node ->
          if node = r then begin
            let stale_rids =
              Hashtbl.fold (fun rid _ acc -> rid :: acc) st.delegate_of []
              @ Hashtbl.fold (fun rid _ acc -> rid :: acc) st.txns []
            in
            List.iter (release_txn st) (List.sort_uniq compare stale_rids);
            Hashtbl.reset st.txns;
            (* The per-op dedup table must die with the shadows it guarded:
               a retransmitted Exec for a still-running transaction has to
               re-execute into the fresh shadow, or the shadow commits with
               that operation's write silently missing. Committed
               transactions stay deduped through the reply cache. *)
            Hashtbl.reset st.executed;
            match
              List.filter
                (fun p -> p <> r && Network.alive net p)
                ctx.Common.replicas
            with
            | [] -> () (* nobody to copy from: keep serving what we have *)
            | peer :: _ ->
                st.synced <- false;
                Common.count ctx "state_transfers_total";
                Group.Rchan.send (chan r) ~dst:peer
                  (Sync_req { cid = ctx.Common.cid; from = r })
          end);
      let fd = Group.Fd.handle fd_group ~me:r in
      (* Clean up transactions whose delegate crashed, so their locks do
         not block the system forever. In-doubt transactions — fully
         processed here, i.e. we may already have voted YES in the 2PC —
         are exempt: a prepared participant must hold its locks until it
         learns the decision (the textbook 2PC blocking window; the
         termination protocol in [Core.Two_phase_commit] resolves it once
         the coordinator is reachable again). *)
      ignore
        (Engine.periodic (Network.engine net) ~label:"proto:lock-sweep" ~every:(Simtime.of_ms 100)
           (Network.guard net r (fun () ->
                let stale =
                  Hashtbl.fold
                    (fun rid delegate acc ->
                      if
                        delegate <> r
                        && Group.Fd.suspected fd delegate
                        && not (Hashtbl.mem st.complete rid)
                      then rid :: acc
                      else acc)
                    st.delegate_of []
                in
                List.iter (fun rid -> release_txn st rid) stale)));
      Group.Rchan.on_deliver (chan r) (fun ~src msg ->
          ignore src;
          match msg with
          | Sync_req { cid; from } when cid = ctx.Common.cid && st.synced ->
              (* Don't serve a snapshot while we hold in-doubt transactions:
                 their writes are decided-but-not-yet-applied here, and a
                 snapshot taken now would hand the joiner a store missing
                 commits it will never hear about again. Wait for the
                 termination protocol to resolve the doubt first. *)
              let rec answer () =
                if not (st.synced && Network.alive net r) then ()
                else if Core.Two_phase_commit.in_doubt tpc ~me:r > 0 then
                  ignore
                    (Engine.schedule (Network.engine net) ~label:"commit:indoubt"
                       ~after:(Simtime.of_ms 50)
                       (Network.guard net r answer))
                else begin
                  let entries = Store.Kv.snapshot (Common.store ctx r) in
                  let cache_entries =
                    Hashtbl.fold (fun rid v acc -> (rid, v) :: acc) st.cache []
                  in
                  Group.Rchan.send (chan r) ~dst:from
                    (Sync_state { cid = ctx.Common.cid; entries; cache_entries })
                end
              in
              answer ()
          | Sync_state { cid; entries; cache_entries }
            when cid = ctx.Common.cid ->
              if not st.synced then begin
                List.iter
                  (fun (k, (value, version)) ->
                    Store.Kv.install (Common.store ctx r) k ~value ~version)
                  entries;
                List.iter
                  (fun (rid, outcome) ->
                    if not (Hashtbl.mem st.cache rid) then
                      Hashtbl.replace st.cache rid outcome)
                  cache_entries;
                st.synced <- true
              end
          | _ when not st.synced -> () (* mute until the transfer lands *)
          | Lreq { cid; client; request } when cid = ctx.Common.cid -> (
              let rid = request.Store.Operation.rid in
              match Hashtbl.find_opt st.cache rid with
              | Some (committed, value) ->
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed
                    ~value
              | None ->
                  if not (Hashtbl.mem st.txns rid) then begin
                    (* The delegate resolves non-determinism up front so all
                       sites execute identical operations. *)
                    let ops =
                      List.map
                        (function
                          | Store.Operation.Write_random k ->
                              Store.Operation.Write (k, Common.random_choice ctx k)
                          | op -> op)
                        request.Store.Operation.ops
                    in
                    let txn =
                      {
                        client;
                        ops;
                        op_index = 0;
                        stage = `Locking;
                        grants = [];
                        exec_acks = [];
                        complete_acks = [];
                        lock_sites = [];
                        exec_sites = [];
                        q_base = Hashtbl.create 8;
                        q_overlay = Hashtbl.create 8;
                        q_reads = [];
                        q_last_read = None;
                      }
                    in
                    Hashtbl.replace st.txns rid txn;
                    (* Lock timeout resolves distributed deadlocks. *)
                    ignore
                      (Engine.schedule (Network.engine net) ~label:"proto:lock-timeout"
                         ~after:config.lock_timeout
                         (Network.guard net r (fun () ->
                              match Hashtbl.find_opt st.txns rid with
                              | Some t
                                when t.stage = `Locking || t.stage = `Executing
                                ->
                                  abort_txn r rid
                              | _ -> ())));
                    next_op r rid
                  end)
          | Lock_req { cid; rid; op_index; keys; delegate } when cid = ctx.Common.cid
            ->
              if not (Hashtbl.mem st.cache rid) then begin
                Hashtbl.replace st.delegate_of rid delegate;
                let total = List.length keys in
                let send_grant () =
                  let copies =
                    List.map
                      (fun (key, _) ->
                        (key, Store.Kv.read (Common.store ctx r) key))
                      keys
                  in
                  Group.Rchan.send (chan r) ~dst:delegate
                    (Lock_grant
                       { cid = ctx.Common.cid; rid; op_index; from = r; copies })
                in
                if total = 0 then send_grant ()
                else begin
                  let granted = ref 0 in
                  let refused = ref false in
                  List.iter
                    (fun (key, mode) ->
                      if not !refused then
                        match
                          Store.Lock_table.acquire st.locks ~txn:rid ~key mode
                            ~granted:(fun () ->
                              incr granted;
                              if !granted = total then send_grant ())
                        with
                        | `Granted -> ()
                        | `Waiting ->
                            Common.count ctx
                              ~labels:[ ("replica", string_of_int r) ]
                              "lock_waits_total"
                        | `Deadlock ->
                            Common.count ctx
                              ~labels:[ ("replica", string_of_int r) ]
                              "deadlock_refusals_total";
                            refused := true;
                            Group.Rchan.send (chan r) ~dst:delegate
                              (Lock_refuse { cid = ctx.Common.cid; rid; from = r }))
                    keys
                end
              end
          | Lock_grant { cid; rid; op_index; from; copies }
            when cid = ctx.Common.cid -> (
              match Hashtbl.find_opt st.txns rid with
              | Some txn when txn.stage = `Locking && txn.op_index = op_index ->
                  if not (List.mem from txn.grants) then begin
                    txn.grants <- from :: txn.grants;
                    (* Keep the freshest copy of each item seen so far. *)
                    List.iter
                      (fun (k, (v, version)) ->
                        match Hashtbl.find_opt txn.q_base k with
                        | Some (_, cur) when cur >= version -> ()
                        | _ -> Hashtbl.replace txn.q_base k (v, version))
                      copies
                  end;
                  if List.for_all (fun s -> List.mem s txn.grants) txn.lock_sites
                  then
                    if config.lock_quorum <> None then begin
                      (* Quorum mode: the delegate executes against the
                         freshest quorum copies; other sites only install
                         the writeset at commit. *)
                      Common.phase_begin ctx ~rid ~replica:r
                        ~note:"operation executes on the freshest quorum copy"
                        Core.Phase.Execution;
                      exec_quorum_op txn (List.nth txn.ops txn.op_index);
                      txn.op_index <- txn.op_index + 1;
                      next_op r rid
                    end
                    else start_exec r rid
              | _ -> ())
          | Lock_refuse { cid; rid; from = _ } when cid = ctx.Common.cid ->
              abort_txn r rid
          | Exec { cid; rid; op_index; op; delegate } when cid = ctx.Common.cid
            ->
              if not (Hashtbl.mem st.cache rid) then begin
                Hashtbl.replace st.delegate_of rid delegate;
                let shadow =
                  match Hashtbl.find_opt st.shadows rid with
                  | Some s -> s
                  | None ->
                      let s = Store.Shadow.create (Common.store ctx r) in
                      Hashtbl.replace st.shadows rid s;
                      s
                in
                (* The delegate finishes each round before starting the
                   next, so arrival order equals operation order; dedup
                   guards against retransmissions. *)
                if not (Hashtbl.mem st.executed (rid, op_index)) then begin
                  Hashtbl.replace st.executed (rid, op_index) ();
                  Store.Shadow.exec_op shadow op
                end;
                Group.Rchan.send (chan r) ~dst:delegate
                  (Exec_ack { cid = ctx.Common.cid; rid; op_index; from = r })
              end
          | Exec_ack { cid; rid; op_index; from } when cid = ctx.Common.cid -> (
              match Hashtbl.find_opt st.txns rid with
              | Some txn when txn.stage = `Executing && txn.op_index = op_index
                ->
                  if not (List.mem from txn.exec_acks) then
                    txn.exec_acks <- from :: txn.exec_acks;
                  if
                    List.for_all
                      (fun s -> List.mem s txn.exec_acks)
                      txn.exec_sites
                  then begin
                    txn.op_index <- txn.op_index + 1;
                    next_op r rid
                  end
              | _ -> ())
          | Complete { cid; rid; delegate; writes } when cid = ctx.Common.cid ->
              if not (Hashtbl.mem st.cache rid) then begin
                Hashtbl.replace st.complete rid ();
                if writes <> [] then Hashtbl.replace st.quorum_writes rid writes;
                Hashtbl.replace st.delegate_of rid delegate
              end;
              Group.Rchan.send (chan r) ~dst:delegate
                (Complete_ack { cid = ctx.Common.cid; rid; from = r })
          | Complete_ack { cid; rid; from } when cid = ctx.Common.cid -> (
              match Hashtbl.find_opt st.txns rid with
              | Some txn when txn.stage = `Completing ->
                  if not (List.mem from txn.complete_acks) then
                    txn.complete_acks <- from :: txn.complete_acks;
                  let needed =
                    List.filter (Network.alive net) ctx.Common.replicas
                  in
                  if
                    List.for_all (fun s -> List.mem s txn.complete_acks) needed
                  then start_commit r rid
              | _ -> ())
          | Txn_abort { cid; rid } when cid = ctx.Common.cid ->
              release_txn st rid
          | _ -> ()))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    let rid = request.Store.Operation.rid in
    let local_replica =
      List.nth ctx.Common.replicas (client mod List.length ctx.Common.replicas)
    in
    let preferred () =
      if Network.alive net local_replica then local_replica
      else Common.lowest_alive ctx
    in
    let send ~dst =
      Group.Rchan.send
        (Group.Rchan.handle chan_group ~me:client)
        ~dst
        (Lreq { cid = ctx.Common.cid; client; request })
    in
    send ~dst:(preferred ());
    Common.retry_until_replied ctx ~rid ~timeout:config.client_retry
      ~target:(fun ~attempt ->
        Common.cycling_target ctx ~preferred:(preferred ()) ~attempt)
      ~send
  in
  Common.instance ctx ~info ~submit
