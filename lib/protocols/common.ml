(** Shared plumbing for the protocol implementations: per-replica stores,
    client-side reply routing, response de-duplication, phase marking and
    once-per-transaction history recording. *)

open Sim

type Msg.t +=
  | Reply of {
      cid : int; (* common-context id, to separate instances *)
      rid : int;
      committed : bool;
      value : int option;
      replica : int;
    }
  | Read_req of {
      cid : int;
      client : int;
      request : Store.Operation.request;
    }
      (* The routing tier's explicit read path: execute [request]
         read-only at the receiving replica and reply directly. Never
         sent unless a router is in front of the clients, so a run
         without one is byte-identical to the pre-router request path. *)

let () =
  Msg.register_printer (function
    | Reply _ -> Some "Reply"
    | Read_req _ -> Some "Read_req"
    | _ -> None)

type ctx = {
  cid : int;
  net : Network.t;
  replicas : int list;
  clients : int list;
  phases : Core.Phase_trace.t;
  spans : Core.Phase_span.t;
  metrics : Metrics.t;
  history : Store.History.t;
  stores : (int, Store.Kv.t) Hashtbl.t;
  reply_cbs : (int, Core.Technique.reply -> unit) Hashtbl.t;
  recorded : (int, unit) Hashtbl.t;
  submit_times : (int, Simtime.t) Hashtbl.t;
  rng : Rng.t;
}

let next_cid = ref 0

(** Observability objects that several contexts can share. A sharded
    technique builds one sub-instance per replication group; the groups
    must report into {e one} span collector, phase log, metrics registry
    and history so the run reads as a single system (and so message
    spans — routed through {!Sim.Network.set_msg_spans}, which keeps
    only the last collector installed — land in the collector every
    group uses). *)
type shared = {
  s_phases : Core.Phase_trace.t;
  s_spans : Core.Phase_span.t;
  s_metrics : Metrics.t;
  s_history : Store.History.t;
}

let spans_feeding metrics =
  Core.Phase_span.create
    ~on_phase_close:(fun ~phase ~replica:_ dur_ms ->
      let labels = [ ("phase", Core.Phase.code phase) ] in
      Metrics.observe metrics ~labels "phase_ms" dur_ms;
      Metrics.incr metrics ~labels "phase_spans_total")
    ()

let fresh_shared () =
  let s_metrics = Metrics.create () in
  {
    s_phases = Core.Phase_trace.create ();
    s_spans = spans_feeding s_metrics;
    s_metrics;
    s_history = Store.History.create ();
  }

let ambient_shared : shared option ref = ref None

(** [with_shared s f] — every {!make} during [f] adopts [s]'s phase
    trace, spans, metrics and history instead of creating its own
    (each context still gets a fresh cid, stores and reply routing). *)
let with_shared s f =
  let saved = !ambient_shared in
  ambient_shared := Some s;
  Fun.protect ~finally:(fun () -> ambient_shared := saved) f

let now ctx = Engine.now (Network.engine ctx.net)
let store ctx replica = Hashtbl.find ctx.stores replica

(** Mark the start of a functional-model phase: feeds both the flat mark
    log ({!Core.Phase_trace}) and the structured span recorder
    ({!Core.Phase_span}). Every phase transition in a protocol is a span
    boundary. A no-op while tracing is switched off
    ({!Sim.Network.set_tracing}) — marks never influence the event
    schedule, so skipping them is behaviour-preserving and is the main
    saving of a tracing-off run. *)
let phase_begin ctx ~rid ?replica ?note phase =
  if Network.tracing ctx.net then begin
    let at = now ctx in
    Core.Phase_trace.mark ctx.phases ~rid ?replica ?note phase at;
    Core.Phase_span.mark ctx.spans ~rid ?replica ?note phase at
  end

(** Bump a counter in the instance's metrics registry. *)
let count ctx ?labels ?by name = Metrics.incr ctx.metrics ?labels ?by name

(** Record a millisecond value into a histogram. *)
let observe_ms ctx ?labels name v = Metrics.observe ctx.metrics ?labels name v

(** Create the context and install the client-side handler that resolves
    replies: the first reply for a request wins (paper §3.2: "the client
    typically only waits for the first answer"). *)
let make net ~replicas ~clients =
  incr next_cid;
  let cid = !next_cid in
  let shared =
    match !ambient_shared with Some s -> s | None -> fresh_shared ()
  in
  let ctx =
    {
      cid;
      net;
      replicas;
      clients;
      phases = shared.s_phases;
      spans = shared.s_spans;
      metrics = shared.s_metrics;
      history = shared.s_history;
      stores = Hashtbl.create 8;
      reply_cbs = Hashtbl.create 64;
      recorded = Hashtbl.create 64;
      submit_times = Hashtbl.create 64;
      rng = Rng.split (Engine.rng (Network.engine net));
    }
  in
  (* Message spans share the phase-span collector: one id space per
     transaction, so message spans parent to phase spans and vice versa. *)
  Network.set_msg_spans net (Core.Phase_span.collector ctx.spans);
  List.iter
    (fun r -> Hashtbl.replace ctx.stores r (Store.Kv.create ()))
    replicas;
  (match Network.timeseries net with
  | Some ts ->
      Timeseries.register ts ~name:"active_txns" ~replica:(-1)
        ~kind:Timeseries.Queue ~unit_:"transactions" (fun () ->
          float_of_int (Hashtbl.length ctx.reply_cbs));
      List.iter
        (fun r ->
          let kv = Hashtbl.find ctx.stores r in
          Timeseries.register ts ~name:"kv_size" ~replica:r
            ~kind:Timeseries.Level ~unit_:"keys" (fun () ->
              float_of_int (List.length (Store.Kv.keys kv))))
        replicas
  | None -> ());
  List.iter
    (fun client ->
      Network.add_handler net client (fun ~src msg ->
          ignore src;
          match msg with
          | Reply { cid = c; rid; committed; value; replica } when c = cid -> (
              match Hashtbl.find_opt ctx.reply_cbs rid with
              | None -> true (* duplicate reply: already resolved *)
              | Some cb ->
                  Hashtbl.remove ctx.reply_cbs rid;
                  phase_begin ctx ~rid Core.Phase.Response;
                  count ctx
                    ~labels:[ ("replica", string_of_int replica) ]
                    (if committed then "txn_committed_total"
                     else "txn_aborted_total");
                  (match Hashtbl.find_opt ctx.submit_times rid with
                  | Some t0 ->
                      observe_ms ctx "txn_ms"
                        (Simtime.to_ms (Simtime.sub (now ctx) t0))
                  | None -> ());
                  cb
                    {
                      Core.Technique.rid;
                      committed;
                      value;
                      at = now ctx;
                      replica;
                    };
                  true)
          | _ -> false))
    clients;
  ctx

(** Register the client's callback and mark the RE phase. Also installs
    the transaction's causal context ({!Sim.Engine.set_ctx}): the sends
    the protocol performs next are attributed to this transaction's root
    span, and the network threads the context onward through deliveries. *)
let register_submit ctx ~client ~(request : Store.Operation.request) cb =
  ignore client;
  Hashtbl.replace ctx.reply_cbs request.rid cb;
  Hashtbl.replace ctx.submit_times request.rid (now ctx);
  count ctx "txn_submitted_total";
  phase_begin ctx ~rid:request.rid Core.Phase.Request;
  match Core.Phase_span.root ctx.spans ~rid:request.rid with
  | Some root ->
      Engine.set_ctx
        (Network.engine ctx.net)
        (Some { Engine.trace = request.rid; span = root })
  | None -> ()

(** Send the response back to the client (END happens when it arrives). *)
let send_reply ctx ~replica ~client ~rid ~committed ~value =
  Network.send ctx.net ~src:replica ~dst:client
    (Reply { cid = ctx.cid; rid; committed; value; replica })

(** Record the transaction in the global history exactly once, whichever
    replica calls first. *)
let record_once ctx ~rid ~replica (result : Store.Apply.result) =
  if not (Hashtbl.mem ctx.recorded rid) then begin
    Hashtbl.replace ctx.recorded rid ();
    Store.History.add_result ctx.history ~tid:rid ~replica ~at:(now ctx) result
  end

(** The lowest-numbered replica currently alive — used to pick the replica
    that records history/replies in symmetric techniques. *)
let lowest_alive ctx =
  match List.filter (Network.alive ctx.net) ctx.replicas with
  | [] -> List.hd ctx.replicas
  | r :: _ -> r

(** The value a request's reply carries: the last value read, if any
    (protocols call this with the execution result). *)
let reply_value (result : Store.Apply.result) =
  match List.rev result.reads with
  | (_, v, _) :: _ -> Some v
  | [] -> None

(** Deterministic resolution of [Write_random] for techniques that require
    determinism: a hash of the request id and key, so every replica picks
    the same value without coordination. *)
let deterministic_choice ~rid key =
  (rid * 1_000_003) + Hashtbl.hash key mod 997

(** Random resolution for techniques that allow non-determinism. *)
let random_choice ctx (_key : Store.Operation.key) = Rng.int ctx.rng 1_000_000

(** Client-side resubmission: if [rid] is still unresolved after
    [timeout], send it again towards [target ~attempt] (re-evaluated each
    try with a growing attempt counter, so the client works through the
    replicas instead of hammering one that is alive but unreachable), and
    keep retrying. This is the paper's §4.1 client behaviour: "clients can
    then be connected to another database server and re-submit the
    transaction" — the server failure is {e not} transparent. *)
let retry_until_replied ctx ~rid ~timeout ~target ~send =
  let engine = Network.engine ctx.net in
  let rec arm attempt =
    ignore
      (Engine.schedule engine ~label:"client:retry" ~after:timeout (fun () ->
           if Hashtbl.mem ctx.reply_cbs rid then begin
             count ctx "resubmissions_total";
             phase_begin ctx ~rid ~note:"resubmission after timeout"
               Core.Phase.Request;
             send ~dst:(target ~attempt);
             arm (attempt + 1)
           end))
  in
  arm 1

(** Default retry target: the first retry goes to the (re-evaluated)
    preferred replica — typically "the lowest replica currently believed
    alive" — and later retries cycle through the other live replicas, so
    an alive-but-unreachable server cannot capture the client forever. *)
let cycling_target ctx ~preferred ~attempt =
  let alive = List.filter (Network.alive ctx.net) ctx.replicas in
  let pool = if alive = [] then ctx.replicas else alive in
  let start =
    match List.find_index (Int.equal preferred) pool with
    | Some i -> i
    | None -> 0
  in
  List.nth pool ((start + attempt - 1) mod List.length pool)

(* The replica side of the routed read path: execute the (read-only)
   request against the local store, record it once, and answer the
   client directly — the same local read every lazy technique already
   performs, made available to the routing tier for every technique.
   Installing the handler is inert (no timer, no message), so a run
   without a router keeps its exact pre-router schedule. *)
let install_read_path ctx =
  List.iter
    (fun r ->
      Network.add_handler ctx.net r (fun ~src:_ msg ->
          match msg with
          | Read_req { cid = c; client; request } when c = ctx.cid ->
              let rid = request.Store.Operation.rid in
              count ctx
                ~labels:[ ("replica", string_of_int r) ]
                "routed_reads_total";
              phase_begin ctx ~rid ~replica:r ~note:"routed local read"
                Core.Phase.Execution;
              let result =
                Store.Apply.execute (store ctx r) request.Store.Operation.ops
              in
              record_once ctx ~rid ~replica:r result;
              send_reply ctx ~replica:r ~client ~rid ~committed:true
                ~value:(reply_value result);
              true
          | _ -> false))
    ctx.replicas

(** The client side of the routed read path: register (or, on a
    failover retry for an already-registered request id, just refresh)
    the reply callback and send the request to the chosen replica. *)
let read_at ctx ~client ~replica (request : Store.Operation.request) cb =
  let rid = request.Store.Operation.rid in
  if Hashtbl.mem ctx.reply_cbs rid then
    (* Resend after a router timeout: keep the original submit time and
       submitted counter; only the callback is refreshed. *)
    Hashtbl.replace ctx.reply_cbs rid cb
  else register_submit ctx ~client ~request cb;
  Network.send ctx.net ~src:client ~dst:replica
    (Read_req { cid = ctx.cid; client; request })

(** Build the uniform {!Core.Technique.instance} handle. *)
let instance ctx ~info ~submit =
  install_read_path ctx;
  {
    Core.Technique.info;
    submit;
    read_at = Some (fun ~client ~replica request cb ->
        read_at ctx ~client ~replica request cb);
    read_targets = (fun _request -> ctx.replicas);
    replica_store = (fun r -> store ctx r);
    history = ctx.history;
    phases = ctx.phases;
    spans = ctx.spans;
    metrics = ctx.metrics;
    replicas = ctx.replicas;
    groups = [ ctx.replicas ];
  }
