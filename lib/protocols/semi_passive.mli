(** Semi-passive replication (paper §3.5, [DSS98]).

    A primary-backup-style technique that needs no view-synchronous
    membership: requests go to all servers, and for each sequence slot the
    current coordinator of a consensus instance executes the oldest pending
    request — only then materialising its proposal (the "deferred initial
    value") — and proposes the resulting update. Whatever update the
    consensus decides is applied by all replicas, which then all answer
    the client. A crashed coordinator merely rotates the consensus
    coordinator: aggressive failure-detection timeouts cost extra rounds,
    never incorrect processing, so failures stay transparent to clients.

    The paper notes SC and AC collapse into the single consensus here; the
    observed phase signature is RE EX AC END. *)

type config = { passthrough : bool }

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

val info : Core.Technique.info
