open Sim

type Msg.t +=
  | Creq of { cid : int; client : int; request : Store.Operation.request }
  | Certify of {
      cid : int;
      rid : int;
      client : int;
      delegate : int;
      reads : (Store.Operation.key * int) list;
      writes : (Store.Operation.key * int * int) list;
      value : int option;
    }

type config = {
  abcast_impl : Group.Abcast.impl;
  client_retry : Simtime.t;
  passthrough : bool;
  certify_time : Simtime.t;
      (* simulated cost of the certification test at each replica *)
  optimistic : bool;
      (* start certifying at optimistic delivery (KPAS99a): if the
         tentative check is still valid when the total order arrives, the
         transaction terminates without paying [certify_time] again *)
  batch_window : Simtime.t;
}

let default_config =
  {
    abcast_impl = Group.Abcast.Sequencer;
    client_retry = Simtime.of_ms 500;
    passthrough = false;
    certify_time = Simtime.zero;
    optimistic = false;
    batch_window = Simtime.zero;
  }

let schema : Config.schema =
  [
    Config.abcast_impl_key;
    Config.client_retry_key ~default:(Simtime.of_ms 500);
    Config.passthrough_key;
    {
      Config.name = "certify_time";
      ty = Config.TTime;
      default = Config.Time Simtime.zero;
      doc = "simulated cost of the certification test at each replica";
    };
    {
      Config.name = "optimistic";
      ty = Config.TBool;
      default = Config.Bool false;
      doc =
        "certify at optimistic delivery (KPAS99a): the test overlaps the \
         ordering protocol and is not re-paid when the spontaneous order \
         holds";
    };
    Config.batch_window_key;
  ]

let config_of cfg =
  {
    abcast_impl = Config.abcast_impl_of_enum (Config.get_enum cfg "abcast_impl");
    client_retry = Config.get_time cfg "client_retry";
    passthrough = Config.get_bool cfg "passthrough";
    certify_time = Config.get_time cfg "certify_time";
    optimistic = Config.get_bool cfg "optimistic";
    batch_window = Config.get_time cfg "batch_window";
  }

let info =
  {
    Core.Technique.name = "Certification-based replication";
    community = Databases;
    propagation = Eager;
    ownership = Update_everywhere;
    requires_determinism = false;
    failure_transparent = false;
    strong_consistency = true;
    expected_phases = [ Request; Execution; Agreement_coordination; Response ];
    (* Measured §5 cost: request to one replica (1), which executes
       locally and atomically broadcasts the certification writeset —
       inject, sequencer order, all-to-all order acks: n^2 + n - 2
       non-self messages — then replies (1): n^2 + n protocol messages. *)
    expected_messages = (fun ~n -> (n * n) + n);
    (* Creq -> Inject -> Order -> Order_ack -> Reply: certification
       happens at delivery, adding no extra communication step. *)
    expected_steps = 5;
    section = "5.4.2";
  }

let abort_registry : (Store.History.t * (unit -> int)) list ref = ref []

let aborts (inst : Core.Technique.instance) =
  match
    List.find_opt (fun (h, _) -> h == inst.Core.Technique.history) !abort_registry
  with
  | Some (_, f) -> f ()
  | None -> 0

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let ab =
    Group.Abcast.create_group net ~members:replicas ~impl:config.abcast_impl
      ~passthrough:config.passthrough ~batch_window:config.batch_window ()
  in
  let chan_group =
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  let certifiers = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace certifiers r
        (Core.Certification.create (Common.store ctx r)))
    replicas;
  abort_registry :=
    ( ctx.Common.history,
      fun () ->
        Core.Certification.aborted (Hashtbl.find certifiers (List.hd replicas)) )
    :: !abort_registry;
  let caches = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace caches r (Hashtbl.create 64)) replicas;
  let engine = Network.engine net in
  List.iter
    (fun r ->
      let cache : (int, bool * int option) Hashtbl.t = Hashtbl.find caches r in
      let certifier = Hashtbl.find certifiers r in
      let h = Group.Abcast.handle ab ~me:r in
      (* The certifier is a serial resource: certifications run one after
         another in delivery order, each costing [certify_time] unless a
         still-valid optimistic pre-check already paid for it. *)
      let busy_until = ref Simtime.zero in
      let decision_floor = ref Simtime.zero in
      let commit_count = ref 0 in
      (* rid -> (completion time of the pre-check, commits seen when it
         started). The pre-check is valid if no commit intervened. *)
      let prechecks : (int, Simtime.t * int) Hashtbl.t = Hashtbl.create 32 in
      if config.optimistic && Simtime.(config.certify_time > Simtime.zero) then
        Group.Abcast.on_opt_deliver h (fun ~origin:_ msg ->
            match msg with
            | Certify { cid; rid; _ } when cid = ctx.Common.cid ->
                if not (Hashtbl.mem prechecks rid) then begin
                  let start = Simtime.max (Engine.now engine) !busy_until in
                  let finish = Simtime.add start config.certify_time in
                  busy_until := finish;
                  Hashtbl.replace prechecks rid (finish, !commit_count)
                end
            | _ -> ());
      Group.Abcast.on_deliver h (fun ~origin msg ->
          ignore origin;
          match msg with
          | Certify { cid; rid; client; delegate; reads; writes; value }
            when cid = ctx.Common.cid ->
              Common.phase_begin ctx ~rid ~replica:r
                ~note:"deterministic certification in delivery order"
                Core.Phase.Agreement_coordination;
              let now = Engine.now engine in
              let finish =
                if Simtime.equal config.certify_time Simtime.zero then now
                else
                  match Hashtbl.find_opt prechecks rid with
                  | Some (done_at, commits_at_start)
                    when commits_at_start = !commit_count ->
                      (* Valid optimistic pre-check: only wait for it to
                         finish if it has not already. *)
                      Simtime.max now done_at
                  | _ ->
                      let start = Simtime.max now !busy_until in
                      let f = Simtime.add start config.certify_time in
                      busy_until := f;
                      f
              in
              (* Decisions must land in delivery order even when a fast
                 pre-checked transaction follows a slow one — the shared
                 certification order is what keeps the replicas' verdicts
                 identical. *)
              let finish = Simtime.max finish !decision_floor in
              decision_floor := finish;
              Hashtbl.remove prechecks rid;
              let decide () =
                let outcome =
                  Core.Certification.offer certifier ~reads ~writes
                in
                let committed = outcome <> None in
                Common.count ctx
                  ~labels:[ ("replica", string_of_int r) ]
                  (if committed then "certification_commits_total"
                   else "certification_aborts_total");
                if committed then incr commit_count;
                (match outcome with
                | Some installed ->
                    Common.record_once ctx ~rid ~replica:r
                      {
                        Store.Apply.reads =
                          List.map (fun (k, v) -> (k, 0, v)) reads;
                        writes = installed;
                      }
                | None -> ());
                Hashtbl.replace cache rid (committed, value);
                if delegate = r then
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed
                    ~value:(if committed then value else None)
              in
              if Simtime.(finish <= now) then decide ()
              else
                ignore
                  (Engine.schedule_at engine ~label:"proto:decide" ~at:finish
                     (Network.guard net r decide))
          | _ -> ());
      let chan = Group.Rchan.handle chan_group ~me:r in
      Group.Rchan.on_deliver chan (fun ~src msg ->
          ignore src;
          match msg with
          | Creq { cid; client; request } when cid = ctx.Common.cid -> (
              let rid = request.Store.Operation.rid in
              match Hashtbl.find_opt cache rid with
              | Some (committed, value) ->
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed
                    ~value
              | None ->
                  Common.phase_begin ctx ~rid ~replica:r
                    ~note:"optimistic execution on shadow copies"
                    Core.Phase.Execution;
                  let shadow = Store.Shadow.create (Common.store ctx r) in
                  Store.Shadow.exec_ops
                    ~choose:(fun k -> Common.random_choice ctx k)
                    shadow request.Store.Operation.ops;
                  let reads =
                    List.map
                      (fun (k, _, version) -> (k, version))
                      (Store.Shadow.reads shadow)
                  in
                  let writes =
                    List.map (fun (k, v) -> (k, v, 0)) (Store.Shadow.writes shadow)
                  in
                  Group.Abcast.broadcast h
                    (Certify
                       {
                         cid = ctx.Common.cid;
                         rid;
                         client;
                         delegate = r;
                         reads;
                         writes;
                         value = Store.Shadow.last_read shadow;
                       }))
          | _ -> ()))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    let rid = request.Store.Operation.rid in
    let local_replica =
      List.nth ctx.Common.replicas (client mod List.length ctx.Common.replicas)
    in
    let preferred () =
      if Network.alive net local_replica then local_replica
      else Common.lowest_alive ctx
    in
    let send ~dst =
      Group.Rchan.send
        (Group.Rchan.handle chan_group ~me:client)
        ~dst
        (Creq { cid = ctx.Common.cid; client; request })
    in
    send ~dst:(preferred ());
    Common.retry_until_replied ctx ~rid ~timeout:config.client_retry
      ~target:(fun ~attempt ->
        Common.cycling_target ctx ~preferred:(preferred ()) ~attempt)
      ~send
  in
  Common.instance ctx ~info ~submit
