open Sim

type Msg.t +=
  | Ereq of { cid : int; client : int; request : Store.Operation.request }
  | Propagate of {
      cid : int;
      rid : int;
      writes : (Store.Operation.key * int * int) list;
      final : bool; (* last batch of the transaction *)
    }
  | Propagate_ack of { cid : int; rid : int; from : int }
  | Sync_req of { cid : int; from : int }
  | Sync_state of {
      cid : int;
      entries : (Store.Operation.key * (int * int)) list;
      cache_entries : (int * (bool * int option)) list;
    }

type config = {
  interactive : bool;
  nonblocking_commit : bool;
  client_retry : Simtime.t;
  abort_probability : float;
  passthrough : bool;
}

let default_config =
  {
    interactive = false;
    nonblocking_commit = false;
    client_retry = Simtime.of_ms 400;
    abort_probability = 0.0;
    passthrough = false;
  }

let schema : Config.schema =
  [
    {
      Config.name = "interactive";
      ty = Config.TBool;
      default = Config.Bool false;
      doc =
        "propagate each operation as it executes (statement-level \
         interaction) instead of one deferred writeset";
    };
    {
      Config.name = "nonblocking_commit";
      ty = Config.TBool;
      default = Config.Bool false;
      doc = "terminate with 3PC instead of 2PC (non-blocking commitment)";
    };
    Config.client_retry_key ~default:(Simtime.of_ms 400);
    {
      Config.name = "abort_probability";
      ty = Config.TFloat;
      default = Config.Float 0.0;
      doc = "probability that a site votes NO in the commitment phase";
    };
    Config.passthrough_key;
  ]

let config_of cfg =
  {
    interactive = Config.get_bool cfg "interactive";
    nonblocking_commit = Config.get_bool cfg "nonblocking_commit";
    client_retry = Config.get_time cfg "client_retry";
    abort_probability = Config.get_float cfg "abort_probability";
    passthrough = Config.get_bool cfg "passthrough";
  }

let info =
  {
    Core.Technique.name = "Eager primary copy";
    community = Databases;
    propagation = Eager;
    ownership = Primary;
    requires_determinism = false;
    failure_transparent = false;
    strong_consistency = true;
    expected_phases = [ Request; Execution; Agreement_coordination; Response ];
    (* Measured §5 cost: request to the primary (1), FIFO-broadcast of
       the writeset with everyone-to-everyone relays (n(n-1)), backup
       acks (n-1), then 2PC — Prepare, Vote and Decision rounds at n-1
       each — and the reply (1): n^2 + 3n - 2 protocol messages. *)
    expected_messages = (fun ~n -> (n * n) + (3 * n) - 2);
    (* Ereq -> Propagate -> Propagate_ack -> Prepare -> Vote -> Reply
       (the Decision round is concurrent with the reply). *)
    expected_steps = 6;
    section = "4.3 / 5.2";
  }

(* Deterministic stand-in for site-local abort causes. *)
let site_votes_no ~probability ~rid ~replica =
  probability > 0.0
  && Hashtbl.hash (rid, replica, "vote") mod 10_000
     < int_of_float (probability *. 10_000.)

type txn_state = {
  client : int;
  request : Store.Operation.request;
  shadow : Store.Shadow.t;
  mutable next_op : int;
  mutable propagated : (Store.Operation.key * int * int) list;
      (* writes already shipped (interactive mode) *)
  mutable acks : int list; (* replicas that acked the final batch *)
}

type replica_state = {
  me : int;
  (* Tentative writesets received from the primary, by rid. *)
  buffered : (int, (Store.Operation.key * int * int) list ref) Hashtbl.t;
  cache : (int, bool * int option) Hashtbl.t;
  active : (int, txn_state) Hashtbl.t; (* primary-side *)
  attempts : (int, int) Hashtbl.t; (* commit attempts per rid *)
  (* The primary serialises update transactions: one at a time. *)
  mutable run_queue : (int * int * Store.Operation.request) list;
      (* rid, client, request *)
  mutable busy : bool;
  mutable synced : bool; (* false between recovery and state transfer *)
}

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let fifo_group =
    Group.Fifo.create_group net ~members:replicas ~passthrough:config.passthrough ()
  in
  let chan_group =
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  let states = Hashtbl.create 8 in
  let state r = Hashtbl.find states r in
  (* A commit round gets a fresh id per (attempt, coordinator): a client
     resubmission after a primary crash re-runs the same rid, and the
     atomic-commitment protocols treat a round id as terminated forever —
     including rounds of the same attempt number started by the previous
     primary. Supports up to 63 attempts and 16 replicas. *)
  let coord_index r =
    match List.find_index (Int.equal r) ctx.Common.replicas with
    | Some i -> i
    | None -> 0
  in
  let round_of_rid rid attempt ~coordinator =
    (rid * 1024) + (attempt * 16) + coord_index coordinator
  in
  let rid_of_round round = round / 1024 in
  let vote ~me ~txn =
    let rid = rid_of_round txn in
    let st = state me in
    Hashtbl.mem st.buffered rid
    &&
    let no =
      site_votes_no ~probability:config.abort_probability ~rid ~replica:me
    in
    if no then
      Common.count ctx
        ~labels:[ ("replica", string_of_int me) ]
        "site_no_votes_total";
    not no
  in
  let learn_commit ~me ~txn committed =
    let rid = rid_of_round txn in
    let st = state me in
    (match Hashtbl.find_opt st.buffered rid with
    | Some writes when committed ->
        Store.Apply.apply_writes (Common.store ctx me) !writes
    | _ -> ());
    (* Remember committed outcomes at every participant: after a
       coordinator crash the non-blocking termination can commit a
       transaction whose reply never left, and the client's resubmission
       must find the outcome instead of re-executing (exactly-once). *)
    if committed && not (Hashtbl.mem st.cache rid) then
      Hashtbl.replace st.cache rid (true, None);
    Hashtbl.remove st.buffered rid
  in
  let tpc =
    Core.Two_phase_commit.create_group net ~nodes:replicas
      ~passthrough:config.passthrough
      ~participant_timeout:(Simtime.of_ms 300)
      ~vote
      ~learn:(fun ~me ~txn decision ->
        learn_commit ~me ~txn (decision = Core.Two_phase_commit.Commit))
      ()
  in
  let tpc3 =
    if config.nonblocking_commit then
      Some
        (Core.Three_phase_commit.create_group net ~nodes:replicas
           ~passthrough:config.passthrough ~vote
           ~learn:(fun ~me ~txn decision ->
             learn_commit ~me ~txn (decision = Core.Three_phase_commit.Commit))
           ())
    else None
  in
  let start_commit_round ~coordinator ~participants ~txn ~on_complete =
    match tpc3 with
    | Some g ->
        Core.Three_phase_commit.start g ~coordinator ~participants ~txn
          ~on_complete:(fun d ->
            on_complete (d = Core.Three_phase_commit.Commit))
    | None ->
        Core.Two_phase_commit.start tpc ~coordinator ~participants ~txn
          ~on_complete:(fun d -> on_complete (d = Core.Two_phase_commit.Commit))
  in
  (* The lowest alive replica owns the primary copy — but a freshly
     recovered copy is stale and must not reclaim ownership (or serve
     local reads) until a surviving peer ships it the database. *)
  let is_primary r = (state r).synced && Common.lowest_alive ctx = r in
  (* Primary-side transaction driver: execute the next operation; in
     interactive mode propagate its changes and wait for secondary acks
     before continuing; after the last operation run the 2PC. *)
  let rec advance r rid =
    let st = state r in
    match Hashtbl.find_opt st.active rid with
    | None -> ()
    | Some txn ->
        let ops = txn.request.Store.Operation.ops in
        if txn.next_op < List.length ops then begin
          let op = List.nth ops txn.next_op in
          txn.next_op <- txn.next_op + 1;
          Common.phase_begin ctx ~rid ~replica:r
            ~note:
              (if config.interactive then "primary executes one operation"
               else "primary executes the stored procedure")
            Core.Phase.Execution;
          Store.Shadow.exec_op
            ~choose:(fun k -> Common.random_choice ctx k)
            txn.shadow op;
          if config.interactive then propagate r rid ~final:false
          else if txn.next_op < List.length ops then advance r rid
          else propagate r rid ~final:true
        end
        else propagate r rid ~final:true
  and propagate r rid ~final =
    let st = state r in
    match Hashtbl.find_opt st.active rid with
    | None -> ()
    | Some txn ->
        (* Ship the writes accumulated so far but not yet propagated. *)
        let all_writes =
          List.map
            (fun (k, v) -> (k, v, 1 + Store.Kv.version (Common.store ctx r) k))
            (Store.Shadow.writes txn.shadow)
        in
        let fresh =
          List.filter (fun w -> not (List.mem w txn.propagated)) all_writes
        in
        txn.propagated <- all_writes;
        let final = final || txn.next_op >= List.length txn.request.ops in
        Common.phase_begin ctx ~rid ~replica:r
          ~note:(if final then "change propagation + 2PC" else "change propagation")
          Core.Phase.Agreement_coordination;
        txn.acks <- [ r ];
        let st_buf =
          match Hashtbl.find_opt st.buffered rid with
          | Some b -> b
          | None ->
              let b = ref [] in
              Hashtbl.replace st.buffered rid b;
              b
        in
        st_buf := !st_buf @ fresh;
        let fifo = Group.Fifo.handle fifo_group ~me:r in
        Group.Fifo.broadcast fifo
          (Propagate { cid = ctx.Common.cid; rid; writes = fresh; final });
        check_acks r rid ~final
  and check_acks r rid ~final =
    let st = state r in
    match Hashtbl.find_opt st.active rid with
    | None -> ()
    | Some txn ->
        let needed =
          List.filter (fun p -> Network.alive net p) ctx.Common.replicas
        in
        if List.for_all (fun p -> List.mem p txn.acks) needed then
          if final then begin
            let participants = needed in
            let attempt =
              let a = 1 + Option.value ~default:0 (Hashtbl.find_opt st.attempts rid) in
              Hashtbl.replace st.attempts rid a;
              a
            in
            start_commit_round ~coordinator:r ~participants
              ~txn:(round_of_rid rid attempt ~coordinator:r)
              ~on_complete:(fun committed ->
                let value =
                  if committed then Store.Shadow.last_read txn.shadow else None
                in
                if committed then begin
                  let installed = txn.propagated in
                  Common.record_once ctx ~rid ~replica:r
                    (Store.Shadow.result txn.shadow ~installed)
                end;
                Hashtbl.replace st.cache rid (committed, value);
                Hashtbl.remove st.active rid;
                Common.send_reply ctx ~replica:r ~client:txn.client ~rid
                  ~committed ~value;
                st.busy <- false;
                launch_next r)
          end
          else advance r rid
  and launch_next r =
    let st = state r in
    if not st.busy then
      match st.run_queue with
      | [] -> ()
      | (rid, client, request) :: rest ->
          st.run_queue <- rest;
          if Hashtbl.mem st.cache rid || Hashtbl.mem st.active rid then
            launch_next r
          else begin
            st.busy <- true;
            let txn =
              {
                client;
                request;
                shadow = Store.Shadow.create (Common.store ctx r);
                next_op = 0;
                propagated = [];
                acks = [];
              }
            in
            Hashtbl.replace st.active rid txn;
            advance r rid
          end
  in
  List.iter
    (fun r ->
      let st =
        {
          me = r;
          buffered = Hashtbl.create 32;
          cache = Hashtbl.create 64;
          active = Hashtbl.create 8;
          attempts = Hashtbl.create 8;
          run_queue = [];
          busy = false;
          synced = true;
        }
      in
      Hashtbl.replace states r st;
      (* Rejoin after a crash: pre-crash primary context is dead (the
         survivors took over and the clients resubmitted), tentative
         writesets may belong to rounds that resolved without us. Drop
         them and request a state transfer; primaryship and client
         service resume when it lands. *)
      Network.on_recover net (fun node ->
          if node = r then begin
            Hashtbl.reset st.active;
            Hashtbl.reset st.buffered;
            st.run_queue <- [];
            st.busy <- false;
            match
              List.filter
                (fun p -> p <> r && Network.alive net p)
                ctx.Common.replicas
            with
            | [] -> ()
            | peer :: _ ->
                st.synced <- false;
                Common.count ctx "state_transfers_total";
                let chan = Group.Rchan.handle chan_group ~me:r in
                Group.Rchan.send chan ~dst:peer
                  (Sync_req { cid = ctx.Common.cid; from = r })
          end);
      let fifo = Group.Fifo.handle fifo_group ~me:r in
      Group.Fifo.on_deliver fifo (fun ~origin msg ->
          match msg with
          | Propagate { cid; rid; writes; final } when cid = ctx.Common.cid ->
              if origin <> r then begin
                Common.phase_begin ctx ~rid ~replica:r ~note:"secondary applies log records"
                  Core.Phase.Agreement_coordination;
                let buf =
                  match Hashtbl.find_opt st.buffered rid with
                  | Some b -> b
                  | None ->
                      let b = ref [] in
                      Hashtbl.replace st.buffered rid b;
                      b
                in
                buf := !buf @ writes;
                let chan = Group.Rchan.handle chan_group ~me:r in
                Group.Rchan.send chan ~dst:origin
                  (Propagate_ack { cid = ctx.Common.cid; rid; from = r });
                ignore final
              end
          | _ -> ());
      let chan = Group.Rchan.handle chan_group ~me:r in
      Group.Rchan.on_deliver chan (fun ~src msg ->
          ignore src;
          match msg with
          | Sync_req { cid; from } when cid = ctx.Common.cid && st.synced ->
              (* Defer the snapshot while this copy is in-doubt in a 2PC —
                 a snapshot taken then would omit decided-but-unapplied
                 writes the joiner can never recover. *)
              let rec answer () =
                if not (st.synced && Network.alive net r) then ()
                else if Core.Two_phase_commit.in_doubt tpc ~me:r > 0 then
                  ignore
                    (Engine.schedule (Network.engine net) ~label:"commit:indoubt"
                       ~after:(Simtime.of_ms 50)
                       (Network.guard net r answer))
                else begin
                  let entries = Store.Kv.snapshot (Common.store ctx r) in
                  let cache_entries =
                    Hashtbl.fold (fun rid v acc -> (rid, v) :: acc) st.cache []
                  in
                  Group.Rchan.send chan ~dst:from
                    (Sync_state { cid = ctx.Common.cid; entries; cache_entries })
                end
              in
              answer ()
          | Sync_state { cid; entries; cache_entries }
            when cid = ctx.Common.cid ->
              if not st.synced then begin
                List.iter
                  (fun (k, (value, version)) ->
                    Store.Kv.install (Common.store ctx r) k ~value ~version)
                  entries;
                List.iter
                  (fun (rid, outcome) ->
                    if not (Hashtbl.mem st.cache rid) then
                      Hashtbl.replace st.cache rid outcome)
                  cache_entries;
                st.synced <- true
              end
          | _ when not st.synced ->
              () (* no client service until the transfer lands *)
          | Ereq { cid; client; request } when cid = ctx.Common.cid -> (
              let rid = request.Store.Operation.rid in
              match Hashtbl.find_opt st.cache rid with
              | Some (committed, value) ->
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed
                    ~value
              | None ->
                  if not (Store.Operation.request_is_update request) then begin
                    (* Read-only transactions run on any site (§4.3). *)
                    Common.count ctx
                      ~labels:[ ("replica", string_of_int r) ]
                      "local_reads_total";
                    Common.phase_begin ctx ~rid ~replica:r ~note:"local read"
                      Core.Phase.Execution;
                    let result =
                      Store.Apply.execute (Common.store ctx r)
                        request.Store.Operation.ops
                    in
                    Common.record_once ctx ~rid ~replica:r result;
                    Common.send_reply ctx ~replica:r ~client ~rid
                      ~committed:true ~value:(Common.reply_value result)
                  end
                  else if
                    is_primary r
                    && (not (Hashtbl.mem st.active rid))
                    && not
                         (List.exists
                            (fun (rid', _, _) -> rid' = rid)
                            st.run_queue)
                  then begin
                    st.run_queue <- st.run_queue @ [ (rid, client, request) ];
                    launch_next r
                  end)
          | Propagate_ack { cid; rid; from } when cid = ctx.Common.cid -> (
              match Hashtbl.find_opt st.active rid with
              | None -> ()
              | Some txn ->
                  if not (List.mem from txn.acks) then
                    txn.acks <- from :: txn.acks;
                  let final = txn.next_op >= List.length txn.request.ops in
                  check_acks r rid ~final)
          | _ -> ()))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    let rid = request.Store.Operation.rid in
    let chan = Group.Rchan.handle chan_group ~me:client in
    let read_only = not (Store.Operation.request_is_update request) in
    let local_replica =
      List.nth ctx.Common.replicas (client mod List.length ctx.Common.replicas)
    in
    let preferred () =
      if read_only && Network.alive net local_replica then local_replica
      else Common.lowest_alive ctx
    in
    let send ~dst =
      Group.Rchan.send chan ~dst (Ereq { cid = ctx.Common.cid; client; request })
    in
    send ~dst:(preferred ());
    Common.retry_until_replied ctx ~rid ~timeout:config.client_retry
      ~target:(fun ~attempt ->
        Common.cycling_target ctx ~preferred:(preferred ()) ~attempt)
      ~send
  in
  Common.instance ctx ~info ~submit
