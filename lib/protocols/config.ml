(* Typed technique configuration: every protocol declares a schema (key,
   type, default, doc) covering each field of its [config] record, and
   the CLI resolves `--set technique.key=value` directives / config-file
   lines against it. Values round-trip through their string form, so a
   printed configuration can be fed back verbatim. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Time of Sim.Simtime.t
  | Enum of string
  | Opt_int of int option

type ty = TBool | TInt | TFloat | TTime | TEnum of string list | TOpt_int

type key = { name : string; ty : ty; default : value; doc : string }
type schema = key list

(* A resolved configuration: every schema key bound to a value. *)
type t = (string * value) list

let ty_to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TTime -> "time"
  | TEnum choices -> "enum(" ^ String.concat "|" choices ^ ")"
  | TOpt_int -> "int|none"

(* Virtual-time literals: 500us, 5ms, 1.5s; a bare integer means
   milliseconds (matching --crash/--recover event syntax). *)
let parse_time s =
  if Filename.check_suffix s "us" then
    Option.map Sim.Simtime.of_us
      (int_of_string_opt (Filename.chop_suffix s "us"))
  else if Filename.check_suffix s "ms" then
    Option.map Sim.Simtime.of_ms (int_of_string_opt (Filename.chop_suffix s "ms"))
  else if Filename.check_suffix s "s" then
    Option.map Sim.Simtime.of_sec
      (float_of_string_opt (Filename.chop_suffix s "s"))
  else Option.map Sim.Simtime.of_ms (int_of_string_opt s)

let time_to_string t =
  let us = Sim.Simtime.to_us t in
  if us mod 1000 = 0 then string_of_int (us / 1000) ^ "ms"
  else string_of_int us ^ "us"

let value_to_string = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Time t -> time_to_string t
  | Enum s -> s
  | Opt_int None -> "none"
  | Opt_int (Some i) -> string_of_int i

let parse_value ty s =
  let s = String.trim s in
  match ty with
  | TBool -> (
      match bool_of_string_opt s with
      | Some b -> Ok (Bool b)
      | None -> Error (Printf.sprintf "expected true or false, got %S" s))
  | TInt -> (
      match int_of_string_opt s with
      | Some i -> Ok (Int i)
      | None -> Error (Printf.sprintf "expected an integer, got %S" s))
  | TFloat -> (
      match float_of_string_opt s with
      | Some f -> Ok (Float f)
      | None -> Error (Printf.sprintf "expected a number, got %S" s))
  | TTime -> (
      match parse_time s with
      | Some t -> Ok (Time t)
      | None ->
          Error
            (Printf.sprintf "expected a time (e.g. 500us, 5ms, 1.5s), got %S" s))
  | TEnum choices ->
      if List.mem s choices then Ok (Enum s)
      else
        Error
          (Printf.sprintf "expected one of %s, got %S"
             (String.concat ", " choices)
             s)
  | TOpt_int -> (
      if String.equal s "none" then Ok (Opt_int None)
      else
        match int_of_string_opt s with
        | Some i -> Ok (Opt_int (Some i))
        | None -> Error (Printf.sprintf "expected an integer or none, got %S" s))

let find_key schema name =
  List.find_opt (fun k -> String.equal k.name name) schema

let keys schema = List.map (fun k -> k.name) schema

let defaults schema = List.map (fun k -> (k.name, k.default)) schema

(* Unknown keys must name the alternatives: a typo in a sweep script
   should fail loudly with the fix in the message. *)
let set schema t ~key ~value =
  match find_key schema key with
  | None ->
      Error
        (Printf.sprintf "unknown config key %S (valid keys: %s)" key
           (String.concat ", " (keys schema)))
  | Some k -> (
      match parse_value k.ty value with
      | Error msg -> Error (Printf.sprintf "key %S: %s" key msg)
      | Ok v ->
          Ok (List.map (fun (n, old) -> if n = key then (n, v) else (n, old)) t))

let apply schema pairs =
  List.fold_left
    (fun acc (key, value) ->
      match acc with Error _ as e -> e | Ok t -> set schema t ~key ~value)
    (Ok (defaults schema))
    pairs

(* Typed accessors. A miss is a programming error (the schema and the
   protocol's [config_of] always agree), so these raise. *)

let get name t =
  match List.assoc_opt name t with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Config.get: unbound key %S" name)

let get_bool t name =
  match get name t with
  | Bool b -> b
  | _ -> invalid_arg (Printf.sprintf "Config.get_bool: %S is not a bool" name)

let get_int t name =
  match get name t with
  | Int i -> i
  | _ -> invalid_arg (Printf.sprintf "Config.get_int: %S is not an int" name)

let get_float t name =
  match get name t with
  | Float f -> f
  | _ -> invalid_arg (Printf.sprintf "Config.get_float: %S is not a float" name)

let get_time t name =
  match get name t with
  | Time v -> v
  | _ -> invalid_arg (Printf.sprintf "Config.get_time: %S is not a time" name)

let get_enum t name =
  match get name t with
  | Enum s -> s
  | _ -> invalid_arg (Printf.sprintf "Config.get_enum: %S is not an enum" name)

let get_opt_int t name =
  match get name t with
  | Opt_int v -> v
  | _ ->
      invalid_arg (Printf.sprintf "Config.get_opt_int: %S is not an int|none" name)

let abcast_impl_of_enum = function
  | "consensus" -> Group.Abcast.Consensus_based
  | _ -> Group.Abcast.Sequencer

let abcast_impl_key =
  {
    name = "abcast_impl";
    ty = TEnum [ "sequencer"; "consensus" ];
    default = Enum "sequencer";
    doc =
      "atomic-broadcast engine: fixed sequencer (latency-optimal, accurate \
       detection) or consensus-based (tolerates wrong suspicions)";
  }

let passthrough_key =
  {
    name = "passthrough";
    ty = TBool;
    default = Bool false;
    doc = "skip low-level channel acks on loss-free runs";
  }

let batch_window_key =
  {
    name = "batch_window";
    ty = TTime;
    default = Time Sim.Simtime.zero;
    doc =
      "sequencer batching: coalesce requests injected within this virtual-time \
       window into one ordering round (0 = order each request immediately)";
  }

let shards_key =
  {
    name = "shards";
    ty = TInt;
    default = Int 1;
    doc =
      "partition the keyspace into this many replication groups, each running \
       its own instance of the technique over a disjoint replica subset; \
       cross-shard transactions commit via 2PC across the concerned groups \
       (1 = full replication, byte-identical to the unsharded protocol)";
  }

let client_retry_key ~default =
  {
    name = "client_retry";
    ty = TTime;
    default = Time default;
    doc = "client resubmission timeout when no reply arrives";
  }

let to_strings t = List.map (fun (n, v) -> (n, value_to_string v)) t

let to_json t =
  "{"
  ^ String.concat ","
      (List.map
         (fun (n, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Sim.Metrics.json_escape n)
             (Sim.Metrics.json_escape (value_to_string v)))
         t)
  ^ "}"

(* ---- `--set technique.key=value` directives ------------------------- *)

type directive = { technique : string; key : string; value : string }

let parse_directive s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "expected TECHNIQUE.KEY=VALUE, got %S" s)
  | Some eq -> (
      let path = String.trim (String.sub s 0 eq) in
      let value =
        String.trim (String.sub s (eq + 1) (String.length s - eq - 1))
      in
      match String.index_opt path '.' with
      | None ->
          Error
            (Printf.sprintf
               "expected TECHNIQUE.KEY=VALUE (no '.' in %S); e.g. \
                active.batch_window=5ms"
               path)
      | Some dot ->
          let technique = String.sub path 0 dot in
          let key = String.sub path (dot + 1) (String.length path - dot - 1) in
          if technique = "" || key = "" then
            Error (Printf.sprintf "empty technique or key in %S" s)
          else Ok { technique; key; value })

let directive_to_string d =
  Printf.sprintf "%s.%s=%s" d.technique d.key d.value

(* Config files are one directive per line — `technique.key=value` —
   with '#' comments and blank lines ignored. *)
let parse_file path =
  match
    let ic = open_in path in
    let rec lines acc =
      match input_line ic with
      | line -> lines (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    lines []
  with
  | exception Sys_error e -> Error e
  | raw ->
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            let line =
              match String.index_opt line '#' with
              | Some i -> String.sub line 0 i
              | None -> line
            in
            let line = String.trim line in
            if line = "" then go (n + 1) acc rest
            else
              match parse_directive line with
              | Ok d -> go (n + 1) (d :: acc) rest
              | Error msg -> Error (Printf.sprintf "%s:%d: %s" path n msg))
      in
      go 1 [] raw

let pairs_for ~technique directives =
  List.filter_map
    (fun d ->
      if String.equal d.technique technique then Some (d.key, d.value) else None)
    directives
