(** Active replication — the state-machine approach (paper §3.2,
    [Sch90]).

    Clients address the server group through an atomic broadcast; every
    replica deterministically executes every request in delivery order and
    replies; the client takes the first answer. RE and SC merge into the
    broadcast; there is no agreement-coordination phase. Figure 16 row:
    RE SC EX END. Failures are fully transparent; the price is the
    determinism constraint (non-deterministic choices are resolved by a
    seed derived from the request id, identically at every replica). *)

type config = {
  abcast_impl : Group.Abcast.impl;
  passthrough : bool;  (** skip low-level acks on loss-free runs *)
  local_reads : bool;
      (** serve read-only requests directly from the client's local
          replica, without ordering, and acknowledge writes only once the
          {e local} replica has executed them. This keeps each client's
          program order intact at its own replica, so executions remain
          {e sequentially consistent} — but reads may return old values,
          so they are no longer {e linearizable}: exactly the §2.2
          distinction ("sequential consistency allows, under some
          conditions, to read old values"). Default [false]
          (linearizable). *)
  batch_window : Sim.Simtime.t;
      (** sequencer-side request batching window (0 = off); see
          {!Group.Abcast_seq.create_group} *)
}

val default_config : config

(** Declarative key/type/default/doc descriptors for every [config]
    field, resolved by the CLI's [--set active.key=value]. *)
val schema : Config.schema

(** Build the record from a resolved configuration. *)
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

val info : Core.Technique.info
