(** Eager update everywhere with distributed locking (paper §4.4.1
    single-operation, §5.4.1 multi-operation).

    The client's local server acts as delegate. For every operation it
    requests the operation's locks at {e all} replicas (the SC phase); once
    every replica granted them the operation executes at all sites on a
    per-transaction shadow (EX); the SC/EX pair repeats per operation.
    After the last operation a 2PC decides the transaction's fate at all
    sites (AC), locks are released, and the delegate answers the client.

    Local lock tables detect local waits-for cycles and refuse the closing
    request; genuinely distributed deadlocks (opposite grant orders at two
    sites) are resolved by the delegate's lock timeout. Both resolutions
    abort the transaction, which the client may resubmit as a new one.

    With [read_one_write_all] set, read operations lock and execute only at
    the delegate ([BHG87]'s read-one/write-all), halving the message load
    of read-heavy workloads — the quorum discussion of §5.4.1. *)

type config = {
  read_one_write_all : bool;
  lock_quorum : int option;
      (** lock at this many replicas instead of all of them (rotating from
          the delegate). Must exceed n/2 so that conflicting transactions'
          quorums intersect; execution, completion and 2PC still involve
          every replica — the paper's §5.4.1 point that "quorums only
          determine how many sites ... need to be contacted in order to
          obtain the locks; the phases of the protocol are the same".
          [None] (default) locks everywhere. *)
  lock_timeout : Sim.Simtime.t;
  client_retry : Sim.Simtime.t;
  passthrough : bool;
}

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

val info : Core.Technique.info
