(** Lazy primary copy replication (paper §4.5, §5.3).

    Updates execute and commit at the primary, which answers the client
    {e before} any coordination; the changes propagate to the secondaries
    afterwards (FIFO), where they are simply applied — ordering needs no
    further care because the primary already serialised everything.
    Read-only transactions run at the client's local replica and may
    observe stale data: this is the weak-consistency half of Figure 16
    (END before AC). Because transactions commit at the primary only,
    copies can be stale but never conflicting, and no reconciliation is
    needed. *)

type config = {
  client_retry : Sim.Simtime.t;
  propagation_delay : Sim.Simtime.t;
      (** how long the primary batches changes before propagating — 0
          propagates immediately; larger values model periodic refresh *)
  passthrough : bool;
}

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

val info : Core.Technique.info
