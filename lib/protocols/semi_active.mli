(** Semi-active replication (paper §3.4, Delta-4 [PCD91]).

    Requests are atomically broadcast as in active replication and executed
    by every replica in delivery order, but replicas need not be
    deterministic: whenever execution reaches a non-deterministic choice,
    the leader decides and sends its choice to the followers with a View
    Synchronous Broadcast; followers apply the leader's choice instead of
    making their own. Figure 16 row: RE SC EX AC END (the EX/AC pair
    repeats per non-deterministic choice; deterministic requests skip
    AC). *)

type config = {
  abcast_impl : Group.Abcast.impl;
  passthrough : bool;
  batch_window : Sim.Simtime.t;
      (** sequencer-side request batching window (0 = off) *)
}

val default_config : config
val schema : Config.schema
val config_of : Config.t -> config

val create :
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  ?config:config ->
  unit ->
  Core.Technique.instance

val info : Core.Technique.info
