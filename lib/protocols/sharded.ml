(* Sharded replication groups (see the .mli for the model). The wrapper
   is pure client-side middleware: it owns no replica, sends no payload
   messages of its own beyond the cross-group 2PC rounds, and builds the
   per-group instances through the wrapped technique's own factory. *)

open Sim

let partition ~shards replicas =
  let n = List.length replicas in
  if shards < 1 then
    invalid_arg (Printf.sprintf "Sharded: shards must be >= 1, got %d" shards);
  if shards > n then
    invalid_arg
      (Printf.sprintf
         "Sharded: %d shards need at least %d replicas, got %d (raise -n or \
          lower shards)"
         shards shards n);
  let arr = Array.of_list replicas in
  let base = n / shards and extra = n mod shards in
  let rec go i start acc =
    if i = shards then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      go (i + 1) (start + size) (Array.to_list (Array.sub arr start size) :: acc)
  in
  go 0 0 []

let probe_group_size ~n ~shards =
  (n / shards) + if n mod shards > 0 then 1 else 0

let create ~shards ~info ?(passthrough = false) ~factory net ~replicas ~clients
    =
  let groups = partition ~shards replicas in
  let map = Store.Shard_map.create ~shards () in
  let shared = Common.fresh_shared () in
  (* One technique instance per group, all reporting into the shared
     observability objects. Build order is group order, so rid/cid
     allocation stays deterministic. *)
  let subs =
    Common.with_shared shared (fun () ->
        List.map (fun g -> factory net ~replicas:g ~clients) groups)
  in
  let subs = Array.of_list subs in
  let groups_arr = Array.of_list groups in
  let delegate s = List.hd groups_arr.(s) in
  let engine = Network.engine net in
  let now () = Engine.now engine in
  let phase ~rid ?replica ?note p =
    if Network.tracing net then begin
      let at = now () in
      Core.Phase_trace.mark shared.Common.s_phases ~rid ?replica ?note p at;
      Core.Phase_span.mark shared.Common.s_spans ~rid ?replica ?note p at
    end
  in
  let count ?labels ?by name =
    Metrics.incr shared.Common.s_metrics ?labels ?by name
  in
  (* The cross-group commit protocol: one 2PC group spanning every
     delegate plus the clients (a cross-shard transaction's coordinator
     is the submitting client — the middleware tier — which never
     crashes in our campaigns, so no round blocks forever). The vote is
     an availability check: a crashed or partitioned delegate misses
     the deadline and the round presumed-aborts. *)
  let tpc =
    Core.Two_phase_commit.create_group net
      ~nodes:(List.init shards delegate @ clients)
      ~passthrough
      ~participant_timeout:(Simtime.of_ms 100)
      ~vote:(fun ~me:_ ~txn:_ -> true)
      ~learn:(fun ~me:_ ~txn:_ _ -> ())
      ()
  in
  (* Per-shard routing counters, exposed as time-series when sampling is
     on: shard identity rides in the [replica] slot (shards are the
     natural per-series axis of a sharded run). *)
  let routed = Array.make shards 0 in
  let cross_pending = ref 0 in
  (match Network.timeseries net with
  | Some ts ->
      Array.iteri
        (fun s _ ->
          Timeseries.register ts ~name:"shard_routed" ~replica:s
            ~kind:Timeseries.Level ~unit_:"transactions" (fun () ->
              float_of_int routed.(s)))
        subs;
      Timeseries.register ts ~name:"cross_shard_pending" ~replica:(-1)
        ~kind:Timeseries.Queue ~unit_:"transactions" (fun () ->
          float_of_int !cross_pending)
  | None -> ());
  let shard_label s = [ ("shard", string_of_int s) ] in
  let submit ~client (request : Store.Operation.request) cb =
    match Store.Shard_map.shards_of_request map request with
    | [ s ] ->
        (* Single-shard: the owning group runs the technique unchanged —
           same rid, same signature, no global coordination. *)
        routed.(s) <- routed.(s) + 1;
        count ~labels:(shard_label s) "single_shard_txns_total";
        subs.(s).Core.Technique.submit ~client request cb
    | concerned ->
        let m = List.length concerned in
        List.iter (fun s -> routed.(s) <- routed.(s) + 1) concerned;
        count
          ~labels:[ ("shards", string_of_int m) ]
          "cross_shard_txns_total";
        incr cross_pending;
        let rid = request.Store.Operation.rid in
        let shard_note =
          "shards " ^ String.concat "," (List.map string_of_int concerned)
        in
        phase ~rid ~note:("cross-shard request: " ^ shard_note)
          Core.Phase.Request;
        (match Core.Phase_span.root shared.Common.s_spans ~rid with
        | Some root ->
            Engine.set_ctx engine (Some { Engine.trace = rid; span = root })
        | None -> ());
        phase ~rid ~note:("cross-group 2PC: " ^ shard_note)
          Core.Phase.Agreement_coordination;
        let finish ~committed ~value =
          decr cross_pending;
          phase ~rid
            ~note:(if committed then "cross-shard commit" else "cross-shard abort")
            Core.Phase.Response;
          cb
            {
              Core.Technique.rid;
              committed;
              value;
              at = now ();
              replica = delegate (List.hd concerned);
            }
        in
        Core.Two_phase_commit.start tpc ~coordinator:client
          ~participants:(List.map delegate concerned) ~txn:rid
          ~on_complete:(fun decision ->
            match decision with
            | Core.Two_phase_commit.Abort ->
                count "cross_shard_abort_total";
                finish ~committed:false ~value:None
            | Core.Two_phase_commit.Commit ->
                count "cross_shard_commit_total";
                (* Every concerned group agreed to take its part: run one
                   sub-transaction per group, each under a fresh rid so
                   the group's protocol treats it as an ordinary (single-
                   shard) transaction. *)
                let parts = Store.Shard_map.split_request map request in
                let value_shard = Store.Shard_map.shard_of_last_read map request in
                let waiting = ref (List.length parts) in
                let all_committed = ref true in
                let value = ref None in
                List.iter
                  (fun (s, ops) ->
                    let sub = Store.Operation.request ~client ops in
                    Store.History.link_parent shared.Common.s_history
                      ~parent:rid ~sub:sub.Store.Operation.rid;
                    phase ~rid
                      ~note:
                        (Printf.sprintf "sub-txn %d on shard %d"
                           sub.Store.Operation.rid s)
                      Core.Phase.Execution;
                    subs.(s).Core.Technique.submit ~client sub
                      (fun (r : Core.Technique.reply) ->
                        if not r.committed then all_committed := false;
                        if value_shard = Some s then value := r.value;
                        decr waiting;
                        if !waiting = 0 then begin
                          count
                            (if !all_committed then "cross_shard_atomic_total"
                             else "cross_shard_partial_total");
                          finish ~committed:!all_committed ~value:!value
                        end))
                  parts)
  in
  {
    Core.Technique.info;
    submit;
    (* Routed reads: a single-shard read is served by the owning group's
       own read path; a cross-shard read has no single replica holding
       all its keys, so it falls back to the full (2PC) submit path. *)
    read_at =
      Some
        (fun ~client ~replica request cb ->
          match Store.Shard_map.shards_of_request map request with
          | [ s ] -> (
              match subs.(s).Core.Technique.read_at with
              | Some f -> f ~client ~replica request cb
              | None -> subs.(s).Core.Technique.submit ~client request cb)
          | _ -> submit ~client request cb);
    read_targets =
      (fun request ->
        match Store.Shard_map.shards_of_request map request with
        | [ s ] -> subs.(s).Core.Technique.read_targets request
        | _ -> []);
    replica_store =
      (fun r ->
        let rec owner s =
          if s >= shards then subs.(0).Core.Technique.replica_store r
          else if List.mem r groups_arr.(s) then
            subs.(s).Core.Technique.replica_store r
          else owner (s + 1)
        in
        owner 0);
    history = shared.Common.s_history;
    phases = shared.Common.s_phases;
    spans = shared.Common.s_spans;
    metrics = shared.Common.s_metrics;
    replicas;
    groups;
  }
