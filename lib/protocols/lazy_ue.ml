open Sim

type Msg.t +=
  | Ureq of { cid : int; client : int; request : Store.Operation.request }
  | Writeset of {
      cid : int;
      rid : int;
      writes : (Store.Operation.key * int * int) list;
    }

type config = {
  abcast_impl : Group.Abcast.impl;
  client_retry : Simtime.t;
  propagation_delay : Simtime.t;
  passthrough : bool;
}

let default_config =
  {
    abcast_impl = Group.Abcast.Sequencer;
    client_retry = Simtime.of_ms 400;
    propagation_delay = Simtime.of_ms 5;
    passthrough = false;
  }

let schema : Config.schema =
  [
    Config.abcast_impl_key;
    Config.client_retry_key ~default:(Simtime.of_ms 400);
    {
      Config.name = "propagation_delay";
      ty = Config.TTime;
      default = Config.Time (Simtime.of_ms 5);
      doc =
        "delay before the writeset's reconciliation broadcast (the lazy \
         window in which replicas diverge)";
    };
    Config.passthrough_key;
  ]

let config_of cfg =
  {
    abcast_impl = Config.abcast_impl_of_enum (Config.get_enum cfg "abcast_impl");
    client_retry = Config.get_time cfg "client_retry";
    propagation_delay = Config.get_time cfg "propagation_delay";
    passthrough = Config.get_bool cfg "passthrough";
  }

let info =
  {
    Core.Technique.name = "Lazy update everywhere";
    community = Databases;
    propagation = Lazy;
    ownership = Update_everywhere;
    requires_determinism = false;
    failure_transparent = false;
    strong_consistency = false;
    expected_phases = [ Request; Execution; Response; Agreement_coordination ];
    (* Measured §5 cost: request (1) and reply (1), plus the deferred
       ABCAST of the writeset for reconciliation — inject, sequencer
       order, all-to-all order acks: n^2 + n - 2 non-self messages —
       after the client already returned: n^2 + n messages total. *)
    expected_messages = (fun ~n -> (n * n) + n);
    (* Ureq -> Reply: same total cost as the eager ABCAST variant, but
       the ordering work is off the response path (§5.3 vs §5.4.2). *)
    expected_steps = 2;
    section = "4.6";
  }

(* Conflict counters are exposed through a side table keyed by the
   instance's history (a stable identity for the instance). *)
let conflict_registry : (Store.History.t * (unit -> int)) list ref = ref []

let conflicts (inst : Core.Technique.instance) =
  match
    List.find_opt (fun (h, _) -> h == inst.Core.Technique.history) !conflict_registry
  with
  | Some (_, f) -> f ()
  | None -> 0

let create net ~replicas ~clients ?(config = default_config) () =
  let ctx = Common.make net ~replicas ~clients in
  let ab =
    Group.Abcast.create_group net ~members:replicas ~impl:config.abcast_impl
      ~passthrough:config.passthrough ()
  in
  let chan_group =
    Group.Rchan.create_group net ~nodes:(replicas @ clients)
      ~passthrough:config.passthrough ()
  in
  let recons = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace recons r (Core.Reconciliation.create (Common.store ctx r)))
    replicas;
  conflict_registry :=
    ( ctx.Common.history,
      fun () ->
        Hashtbl.fold
          (fun _ rc acc -> acc + Core.Reconciliation.conflicts rc)
          recons 0 )
    :: !conflict_registry;
  let caches = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace caches r (Hashtbl.create 64)) replicas;
  List.iter
    (fun r ->
      let cache : (int, bool * int option) Hashtbl.t = Hashtbl.find caches r in
      let recon = Hashtbl.find recons r in
      let h = Group.Abcast.handle ab ~me:r in
      (* Redo log: writesets committed locally whose propagation broadcast
         has not fired yet. A crash inside the propagation delay would
         otherwise strand those updates on this copy forever — the classic
         lazy data-loss window. On recovery they are re-broadcast. *)
      let unsent : (int, (Store.Operation.key * int * int) list) Hashtbl.t =
        Hashtbl.create 8
      in
      Network.on_recover net (fun node ->
          if node = r then begin
            let backlog =
              Hashtbl.fold (fun rid ws acc -> (rid, ws) :: acc) unsent []
            in
            Hashtbl.reset unsent;
            List.iter
              (fun (rid, writes) ->
                Common.count ctx
                  ~labels:[ ("replica", string_of_int r) ]
                  "redo_rebroadcasts_total";
                Group.Abcast.broadcast h
                  (Writeset { cid = ctx.Common.cid; rid; writes }))
              backlog
          end);
      Group.Abcast.on_deliver h (fun ~origin msg ->
          ignore origin;
          match msg with
          | Writeset { cid; rid; writes } when cid = ctx.Common.cid ->
              Common.phase_begin ctx ~rid ~replica:r
                ~note:"reconciliation in after-commit order"
                Core.Phase.Agreement_coordination;
              let before = Core.Reconciliation.conflicts recon in
              ignore (Core.Reconciliation.deliver recon ~tid:rid ~writes);
              let after = Core.Reconciliation.conflicts recon in
              if after > before then
                Common.count ctx ~by:(after - before)
                  ~labels:[ ("replica", string_of_int r) ]
                  "reconciliation_conflicts_total"
          | _ -> ());
      let chan = Group.Rchan.handle chan_group ~me:r in
      Group.Rchan.on_deliver chan (fun ~src msg ->
          ignore src;
          match msg with
          | Ureq { cid; client; request } when cid = ctx.Common.cid -> (
              let rid = request.Store.Operation.rid in
              match Hashtbl.find_opt cache rid with
              | Some (committed, value) ->
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed
                    ~value
              | None ->
                  Common.phase_begin ctx ~rid ~replica:r
                    ~note:"local execution and commit" Core.Phase.Execution;
                  let choose k = Common.random_choice ctx k in
                  let result =
                    Store.Apply.execute ~choose (Common.store ctx r)
                      request.Store.Operation.ops
                  in
                  let value = Common.reply_value result in
                  Hashtbl.replace cache rid (true, value);
                  Common.record_once ctx ~rid ~replica:r result;
                  Common.send_reply ctx ~replica:r ~client ~rid ~committed:true
                    ~value;
                  if result.Store.Apply.writes <> [] then begin
                    Core.Reconciliation.local_commit recon ~tid:rid
                      ~writes:result.Store.Apply.writes;
                    Hashtbl.replace unsent rid result.Store.Apply.writes;
                    ignore
                      (Engine.schedule (Network.engine net) ~label:"proto:propagate"
                         ~after:config.propagation_delay
                         (Network.guard net r (fun () ->
                              Hashtbl.remove unsent rid;
                              Group.Abcast.broadcast h
                                (Writeset
                                   {
                                     cid = ctx.Common.cid;
                                     rid;
                                     writes = result.Store.Apply.writes;
                                   }))))
                  end)
          | _ -> ()))
    replicas;
  let submit ~client request cb =
    Common.register_submit ctx ~client ~request cb;
    let rid = request.Store.Operation.rid in
    let local_replica =
      List.nth ctx.Common.replicas (client mod List.length ctx.Common.replicas)
    in
    let preferred () =
      if Network.alive net local_replica then local_replica
      else Common.lowest_alive ctx
    in
    let send ~dst =
      Group.Rchan.send
        (Group.Rchan.handle chan_group ~me:client)
        ~dst
        (Ureq { cid = ctx.Common.cid; client; request })
    in
    send ~dst:(preferred ());
    Common.retry_until_replied ctx ~rid ~timeout:config.client_retry
      ~target:(fun ~attempt ->
        Common.cycling_target ctx ~preferred:(preferred ()) ~attempt)
      ~send
  in
  Common.instance ctx ~info ~submit
