(** Cross-run comparison/regression engine.

    Diffs two {!Run_record} sets — run-vs-run, or a sweep directory
    against a committed baseline — under per-metric relative thresholds,
    classifying every (cell, metric) pair as improved, regressed or
    unchanged. Cells are matched by {!Run_record.cell_id}; metrics flow
    through the records' flat metric view, so the engine is independent
    of the record schema. [replisim compare] exits non-zero unless
    {!ok}, which is how perf and msgs/txn regressions gate CI. *)

type direction = Lower_better | Higher_better

type rule = { metric : string; dir : direction; threshold : float }

(** Direction by metric-name family: throughput/committed/converged/
    serializable/drained are higher-better, everything else (latency,
    msgs/txn, drops, staleness windows, violation counts) lower-better. *)
val direction_of_metric : string -> direction

(** [rule metric] with the direction inferred from the name and a 20%
    relative threshold unless overridden. *)
val rule : ?dir:direction -> ?threshold:float -> string -> rule

(** The default CI gate: latency p50/p95 (20%), p99 (25%), throughput
    (20%) and msgs/txn (10%). *)
val default_rules : rule list

type verdict = Improved | Regressed | Unchanged

type finding = {
  cell : string;
  metric : string;
  base : float;
  cand : float;
  delta_pct : float;
  verdict : verdict;
}

type report = {
  findings : finding list;
  missing : string list;  (** baseline cells with no candidate record *)
  extra : string list;  (** candidate cells absent from the baseline *)
  cells : int;
}

(** [compare_sets ~base ~cand ()] diffs candidate against baseline;
    both sides are [(cell_id, metrics)] assoc lists. Only metrics
    present on both sides are judged. *)
val compare_sets :
  ?rules:rule list ->
  base:(string * (string * float) list) list ->
  cand:(string * (string * float) list) list ->
  unit ->
  report

val count : verdict -> report -> int

(** No regressions and no missing baseline cells. *)
val ok : report -> bool

val verdict_to_string : verdict -> string
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
