(** Workload parameters for the performance study the paper announces in
    §6 ("taking into account different workloads and failures
    assumptions"). *)

(** Transaction shape of a client session: [Mixed] is the original
    all-read-or-all-update single-key mix; [Tpcb] issues TPC-B-like
    two-key transfer transactions (debit one account, credit another)
    and two-key balance reads. *)
type shape = Mixed | Tpcb

(** A mid-run load spike with a re-skewed hot set: between [fc_at] and
    [fc_at + fc_duration] clients submit [fc_intensity] times faster and
    draw keys from a zipfian with theta [fc_skew] whose indices are
    rotated by [fc_shift] — the flash crowd hammers a different hot set
    than the steady phase warmed up. *)
type flash_crowd = {
  fc_at : Sim.Simtime.t;
  fc_duration : Sim.Simtime.t;
  fc_intensity : float;
  fc_skew : float;
  fc_shift : int;
}

type t = {
  n_keys : int;  (** size of the logical database *)
  key_skew : float;  (** zipfian skew; 0.0 = uniform access *)
  update_ratio : float;  (** fraction of transactions that write *)
  ops_per_txn : int;  (** operations per transaction (§5 model when > 1) *)
  txns_per_client : int;
  think_time : Sim.Simtime.t;  (** client pause between transactions *)
  shards : int;
      (** generate shard-aware transactions for this many shards
          (1 = shard-oblivious: the pre-sharding key choice, unchanged) *)
  cross_shard : float;
      (** fraction of multi-op transactions forced to touch >= 2 shards
          (the rest are confined to one shard); only read when
          [shards > 1] *)
  shape : shape;  (** session transaction shape *)
  flash_crowd : flash_crowd option;  (** optional mid-run spike phase *)
}

val default : t

(** The stock spike used when a flash crowd is requested without
    explicit parameters: 4x load with theta 1.2 on a hot set rotated by
    50 keys, from 50 ms for 100 ms. *)
val default_flash_crowd : flash_crowd

val shape_to_string : shape -> string
val shape_of_string : string -> (shape, string) result

(** Is virtual time [at] inside the flash-crowd window? Always [false]
    without one. *)
val in_flash : t -> at:Sim.Simtime.t -> bool

val flash_crowd_to_string : flash_crowd -> string
val pp : Format.formatter -> t -> unit
