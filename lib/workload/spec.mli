(** Workload parameters for the performance study the paper announces in
    §6 ("taking into account different workloads and failures
    assumptions"). *)

type t = {
  n_keys : int;  (** size of the logical database *)
  key_skew : float;  (** zipfian skew; 0.0 = uniform access *)
  update_ratio : float;  (** fraction of transactions that write *)
  ops_per_txn : int;  (** operations per transaction (§5 model when > 1) *)
  txns_per_client : int;
  think_time : Sim.Simtime.t;  (** client pause between transactions *)
  shards : int;
      (** generate shard-aware transactions for this many shards
          (1 = shard-oblivious: the pre-sharding key choice, unchanged) *)
  cross_shard : float;
      (** fraction of multi-op transactions forced to touch >= 2 shards
          (the rest are confined to one shard); only read when
          [shards > 1] *)
}

val default : t
val pp : Format.formatter -> t -> unit
