(** Consistency audit layer: client-visible staleness as a measured
    signal.

    The paper's eager/lazy split (§4–§5) is ultimately a claim about
    what clients observe — eager techniques pay coordination messages
    to keep the inconsistency window at zero, lazy ones trade it for a
    staleness window — but none of the other instrumentation measures
    that window. This module does, from the outside of the protocols:

    - every installed write is identified by its (key, version, value)
      triple; the first install anywhere stamps its {e origin}, and
      each later install at another replica yields one {e visibility
      latency} sample (how long that site stayed stale for the write);
    - a per-replica [version_lag] gauge (registered on the shared
      {!Sim.Timeseries} sampler) counts the installed versions a
      replica is still missing relative to its group — the
      [lag_undrained] saturation detector fires if it never reaches
      zero;
    - online session-guarantee checkers per client session —
      {e read-your-writes} and {e monotonic reads} — using interval
      order (operation A precedes B only if A's reply preceded B's
      submission), with violation counters in the instance's
      {!Sim.Metrics} registry;
    - a cross-shard {e snapshot-skew} detector counting committed
      cross-shard read pairs that observed a torn cross-shard write
      (the read-side face of the certification partial-commit caveat
      in PROTOCOLS.md).

    Two windows appear in the summary, and they gate differently:

    - [session_window_max_ms] — the largest real-time staleness behind
      a session-guarantee violation. Eager techniques must measure
      exactly zero here ([replisim audit --check] enforces it): their
      agreement phase runs before the reply, so a client can never
      miss its own covered writes. It is the measured form of the
      paper's zero inconsistency window.
    - [post_commit_max_ms] — the largest gap between a write's commit
      reply and its last install inside its group. Lazy techniques
      must measure strictly positive here (propagation runs after the
      reply, by definition); eager ones typically measure ~0 but may
      show sub-millisecond residue because the final decision round is
      concurrent with the reply under jittered links. That residue is
      reported, not gated — it is exactly the theory/practice gap
      Cecchet et al. describe.

    Global (cross-session) stale reads are reported with their
    real-time staleness distribution but never gated: a stale local
    read at an eager primary-copy system is still 1-copy serializable
    (it serializes before the write), which is why it survives the
    paper's correctness criterion while being observably stale. *)

type t

type summary = {
  writes : int;  (** distinct installed (key, version, value) triples *)
  fully_replicated : int;  (** triples installed at every group member *)
  visibility_ms : Stats.summary;  (** origin-to-other-replica install lag *)
  visibility_by_replica : (int * Stats.summary) list;
  post_commit_max_ms : float;
      (** worst commit-reply-to-last-install gap (the lazy window) *)
  stale_reads : int;
      (** committed reads that missed a write whose commit preceded
          their submission (any session) *)
  staleness_ms : Stats.summary;  (** real-time staleness of those reads *)
  ryw_violations : int;  (** read-your-writes violations (per session) *)
  mr_violations : int;  (** monotonic-reads violations (per session) *)
  session_window_max_ms : float;
      (** largest staleness behind a session violation — the gated
          inconsistency window; exactly 0 for eager techniques *)
  reads_checked : int;
  commits : int;
  skew_pairs : int;  (** torn cross-shard (reader, writer) pairs *)
  cross_txns : int;  (** committed cross-shard transactions examined *)
  final_lag : (int * int) list;
      (** per-replica residual version lag after quiescence *)
  drained : bool;  (** every replica's final lag is zero *)
}

(** [create ~engine ~metrics ~history ~groups ~store_of ()] hooks the
    audit into a built instance: installs a {!Store.Kv.on_update}
    watcher on every replica's store and a {!Store.History.on_add}
    subscription. Must run before any transaction is submitted.
    [shards] > 1 additionally arms the snapshot-skew detector with the
    run's {!Store.Shard_map} placement. *)
val create :
  engine:Sim.Engine.t ->
  metrics:Sim.Metrics.t ->
  history:Store.History.t ->
  groups:int list list ->
  store_of:(int -> Store.Kv.t) ->
  ?shards:int ->
  unit ->
  t

(** Register the per-replica [version_lag] gauge on a sampler. *)
val register_series : t -> Sim.Timeseries.t -> unit

(** [note_reply t ~client ~rid ~committed ~submitted_at ~at] feeds one
    client reply through the checkers. Aborted replies are ignored;
    committed cross-shard parents are reassembled from their linked
    sub-transactions (see {!Store.History.subs_of}). *)
val note_reply :
  t ->
  client:int ->
  rid:int ->
  committed:bool ->
  submitted_at:Sim.Simtime.t ->
  at:Sim.Simtime.t ->
  unit

(** Residual version lag of one replica against its group, from the
    live stores. *)
val replica_lag : t -> int -> int

(** Summarise after the run (including its quiescence drain): computes
    the replication/skew aggregates and updates the audit gauges in the
    metrics registry. *)
val finalize : t -> summary
