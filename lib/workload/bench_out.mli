(** Machine-readable bench results.

    Each perf* experiment accumulates (metric, technique, params, value)
    rows and writes [BENCH_<name>.json]:

    {v
    {"type":"bench","version":"1.1.0","bench":"perf1","seed":11,
     "n_replicas":3,
     "results":[{"metric":"latency_mean","technique":"active",
                 "unit":"ms","params":{"n":"3"},"value":4.2}, ...]}
    v}

    The schema checker used by [replisim bench-check] lives here too
    (with a minimal JSON parser — no external JSON dependency). *)

type t

(** [config] (default empty): non-default technique settings the bench
    ran under, echoed as a ["config"] object in the file header. *)
val create :
  ?config:(string * string) list ->
  bench:string -> seed:int -> n_replicas:int -> unit -> t

val add :
  t ->
  metric:string ->
  technique:string ->
  ?unit_:string ->
  ?params:(string * string) list ->
  float ->
  unit

val to_json : t -> string
val filename : t -> string

(** Write [BENCH_<bench>.json] into [dir] (default ["."]); returns the
    path. *)
val write : ?dir:string -> t -> string

(** {2 Validation} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result

(** Metrics a given bench's file must report (e.g. perf15 must carry
    [events_per_sec], [txns_per_sec] and [peak_heap_words]); empty for
    benches without extra requirements. Enforced by {!validate_json}. *)
val required_metrics : string -> string list

val validate_json : json -> (unit, string) result
val validate_file : string -> (unit, string) result

(** [check_floor doc ~metric ~min_value] succeeds with the best (max)
    value of [metric] across the result rows when it is at least
    [min_value] — the CI throughput gate. The failure message reports
    the observed value and its margin below the floor. *)
val check_floor :
  json -> metric:string -> min_value:float -> (float, string) result

(** [check_ceiling doc ~metric ~max_value] — the floor's mirror:
    succeeds with the worst (max) value of [metric] when it is at most
    [max_value] — how msgs/txn and staleness-window metrics are gated
    from above. *)
val check_ceiling :
  json -> metric:string -> max_value:float -> (float, string) result
