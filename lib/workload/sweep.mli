(** Sweep orchestration: grid algebra, aggregate manifest and matrix
    rendering for cross-run studies.

    A sweep is a declared grid — techniques × shards × load ×
    update-ratio × zipf skew × seeds, plus any per-technique config axis
    — expanded into {!cell}s in a fixed deterministic order. The caller
    ([replisim sweep], bench perf18) runs each cell through the shared
    {!Builder} path and produces one {!Run_record} per cell; this module
    renders the record set as an ASCII heatmap or Markdown matrix over
    any record metric (the measured form of the paper's Figure-6
    technique × workload matrix) and emits the aggregate manifest. *)

type axes = {
  techniques : string list;
  shards : int list;
  loads : float list;  (** transactions/s; [0.] = closed loop *)
  updates : float list;
  zipfs : float list;
  seeds : int list;
  vary : (string * string * string list) list;
      (** [(technique, key, values)]: a config axis applying only to
          cells of the named technique *)
}

(** Single-point axes everywhere ([shards=\[1\]], [loads=\[0.\]],
    [updates=\[0.5\]], [zipfs=\[0.6\]], [seeds=\[11\]]) and no
    techniques — the caller fills in what it sweeps. *)
val default_axes : axes

type cell = {
  technique : string;
  shards : int;
  load : float;
  updates : float;
  zipf : float;
  seed : int;
  vary : (string * string) list;
}

(** Deterministic grid expansion: techniques outermost, seeds innermost. *)
val cells : axes -> cell list

val arrival_of_cell : cell -> Runner.arrival

(** The sweep directory's aggregate document: declared axes, record
    files in cell order, and min/max-with-winner aggregates for
    [metrics]. [records] pairs each record with its file name. *)
val manifest_json :
  axes -> records:(string * Run_record.t) list -> metrics:string list -> string

type matrix = {
  metric : string;
  rows : string list;
      (** technique plus whichever non-load dimensions vary *)
  cols : string list;  (** arrival loads *)
  values : float option array array;  (** [values.(row).(col)] *)
}

val matrix : metric:string -> Run_record.t list -> matrix
val render_ascii : matrix -> string
val render_markdown : matrix -> string
