(** Latency/throughput statistics for the benchmark harness.

    The summary record and percentile arithmetic live in {!Sim.Summary};
    this module re-exports them (the record equation makes the fields
    accessible under [Workload.Stats]) and adds the incremental
    recorder the runner feeds response times into. *)

type summary = Sim.Summary.t = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

(** The [count = 0] sentinel (all statistics [0.]). *)
val empty_summary : summary

(** Nearest-rank quantile of a sorted array, clamped to the ends. *)
val percentile : float array -> float -> float

(** Summarise a batch of samples (order-independent). Empty input yields
    {!empty_summary}; a single sample is every quantile of itself. *)
val summarize : float list -> summary

(** Incremental recorder. *)
type recorder

val recorder : unit -> recorder
val record : recorder -> float -> unit
val summary : recorder -> summary
val pp_summary : Format.formatter -> summary -> unit
