(** Latency/throughput statistics for the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

val empty_summary : summary

(** Summarise a batch of samples (order-independent). *)
val summarize : float list -> summary

(** Incremental recorder. *)
type recorder

val recorder : unit -> recorder
val record : recorder -> float -> unit
val summary : recorder -> summary
val pp_summary : Format.formatter -> summary -> unit
