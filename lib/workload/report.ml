(* Tool version, stamped into every machine-readable export. *)
let version = "1.2.0"

(* Every JSONL export (run, campaign, metrics, explain, timeline) opens
   with this header record so a file is self-describing: which tool
   version, seed, cluster shape — and, when any technique parameter was
   set, exactly which configuration — produced it. [config] is a list of
   (key, value) strings, e.g. the resolved technique configuration or
   the applied --set directives. *)
let header_json ?(extra = []) ?(config = []) ~seed ~technique ~n_replicas () =
  let extra =
    extra
    |> List.map (fun (k, v) -> Printf.sprintf ",\"%s\":%s" (Sim.Metrics.json_escape k) v)
    |> String.concat ""
  in
  let config =
    match config with
    | [] -> ""
    | kvs ->
        ",\"config\":{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "\"%s\":\"%s\"" (Sim.Metrics.json_escape k)
                   (Sim.Metrics.json_escape v))
               kvs)
        ^ "}"
  in
  Printf.sprintf
    "{\"type\":\"header\",\"version\":\"%s\",\"seed\":%d,\"technique\":\"%s\",\"n_replicas\":%d%s%s}"
    version seed
    (Sim.Metrics.json_escape technique)
    n_replicas config extra

(* RFC 4180-style quoting: labels like "active,n=3,upd=0.5" must not
   break the column count, so any field containing a comma, quote or
   newline is wrapped in double quotes with inner quotes doubled. *)
let csv_escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let csv_header =
  "label,committed,aborted,unanswered,throughput_tps,lat_mean_ms,lat_p50_ms,\
   lat_p90_ms,lat_p95_ms,lat_p99_ms,lat_max_ms,upd_lat_mean_ms,\
   read_lat_mean_ms,makespan_ms,messages,messages_per_txn,\
   max_response_gap_ms,converged,serializable"

let csv_row ~label (r : Runner.result) =
  Printf.sprintf
    "%s,%d,%d,%d,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%d,%.2f,%.2f,%b,%b"
    (csv_escape label) r.committed r.aborted r.unanswered r.throughput
    r.latency_ms.Stats.mean r.latency_ms.Stats.p50 r.latency_ms.Stats.p90
    r.latency_ms.Stats.p95 r.latency_ms.Stats.p99 r.latency_ms.Stats.max
    r.update_latency_ms.Stats.mean r.read_latency_ms.Stats.mean
    (Sim.Simtime.to_ms r.makespan)
    r.messages r.messages_per_txn
    (Sim.Simtime.to_ms r.max_response_gap)
    r.converged r.serializable

(* One-line wall-clock summary for `replisim run`. Sub-millisecond runs
   have no meaningful rate at gettimeofday resolution — report "n/a"
   rather than divide by (near-)zero. Wall time is deliberately absent
   from the CSV/JSONL exports, which must stay byte-deterministic. *)
let engine_summary (r : Runner.result) =
  if r.wall_s > 0.000_5 then
    Printf.sprintf "%d events in %.3f s wall (%.0f events/s)" r.events r.wall_s
      (float_of_int r.events /. r.wall_s)
  else Printf.sprintf "%d events (wall n/a)" r.events

let to_csv ppf rows =
  Format.fprintf ppf "%s@." csv_header;
  List.iter
    (fun (label, result) -> Format.fprintf ppf "%s@." (csv_row ~label result))
    rows

let phase_csv_header =
  "label,phase,count,mean_ms,p50_ms,p90_ms,p95_ms,p99_ms,max_ms"

let phase_csv_rows ~label (r : Runner.result) =
  List.map
    (fun (phase, (s : Stats.summary)) ->
      Printf.sprintf "%s,%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f" (csv_escape label)
        (Core.Phase.code phase) s.Stats.count s.Stats.mean s.Stats.p50
        s.Stats.p90 s.Stats.p95 s.Stats.p99 s.Stats.max)
    r.phase_ms

let phases_to_csv ppf rows =
  Format.fprintf ppf "%s@." phase_csv_header;
  List.iter
    (fun (label, result) ->
      List.iter
        (fun row -> Format.fprintf ppf "%s@." row)
        (phase_csv_rows ~label result))
    rows
