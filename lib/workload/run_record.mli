(** The canonical run record: one finished run distilled into a single
    versioned, byte-deterministic JSON document.

    Every observability signal the repo measures feeds this one schema:
    throughput and percentile latency from the {!Runner}, msgs/txn plus
    the single-transaction causal census from {!Sim.Msg_dag}, drop
    counters, saturation findings over the sampled series, the
    consistency-audit staleness summary and the engine's deterministic
    event counter. Sweeps ([replisim sweep]) write one record per cell,
    baselines are committed directories of records, and the comparison
    engine ([replisim compare], {!Compare}) diffs record sets — so the
    record is the unit of cross-run observability.

    After {!normalize} (which zeroes the only wall-clock-derived field)
    a same-seed re-run renders byte-identically via {!to_json}. *)

(** Bumped on any field change; {!of_json} refuses other versions so a
    stale baseline fails loudly instead of comparing garbage. *)
val schema_version : int

type workload = {
  keys : int;
  zipf : float;  (** zipfian key-popularity skew theta; 0 = uniform *)
  updates : float;
  ops : int;
  txns_per_client : int;
  shards : int;
  cross : float;
  arrival : string;  (** ["closed"] or ["poisson:<rate>"] *)
  shape : string;  (** ["mixed"] or ["tpcb"] *)
  flash : string option;
      (** rendered flash-crowd phase ({!Spec.flash_crowd_to_string}),
          when the workload declared one *)
}

(** Routing-tier section (schema v2): the sticky config echo plus the
    router's own counters, present when the run was routed. *)
type router = {
  sticky : bool;
  reads_routed : int;
  writes_routed : int;
  sticky_reads : int;
  fallback_reads : int;
  router_retries : int;
  failovers : int;
  gave_up : int;
  primary_moves : int;
}

type audit = {
  visibility_p95_ms : float;
  post_commit_max_ms : float;
  session_window_max_ms : float;
  stale_reads : int;
  ryw_violations : int;
  mr_violations : int;
  skew_pairs : int;
  drained : bool;
}

type t = {
  technique : string;
  config : (string * string) list;  (** non-default settings, sorted *)
  seed : int;
  n_replicas : int;
  n_clients : int;
  workload : workload;
  committed : int;
  aborted : int;
  unanswered : int;
  converged : bool;
  serializable : bool;
  throughput : float;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_p99_ms : float;
  latency_max_ms : float;
  messages : int;
  msgs_per_txn : float;
  census : (int * int) option;
      (** single-transaction causal census (messages, steps), when a
          probe was run alongside the workload *)
  drops : int;
  drops_loss : int;
  drops_crashed : int;
  drops_partitioned : int;
  saturation_findings : int;
  events : int;  (** engine events executed — deterministic *)
  wall_s : float;  (** the one nondeterministic field; see {!normalize} *)
  audit : audit option;
  router : router option;
}

(** Distill a finished run. [config] is the resolved non-default
    technique configuration (see [Cli.config_pairs]); [census] the
    optional probe-measured (messages, steps) pair. *)
val of_run :
  technique:string ->
  config:(string * string) list ->
  seed:int ->
  n_replicas:int ->
  n_clients:int ->
  arrival:Runner.arrival ->
  spec:Spec.t ->
  ?census:int * int ->
  Runner.result ->
  t

(** Zero the wall-clock field; normalized same-seed records render
    byte-identically. *)
val normalize : t -> t

val to_json : t -> string
val of_json : Bench_out.json -> (t, string) result
val of_string : string -> (t, string) result
val load_file : string -> (t, string) result

(** The record's cell identity — everything the experimenter chose
    (technique, config, workload, seed, cluster shape), nothing the run
    produced. Compare matches baseline and candidate records on it. *)
val cell_id : t -> string

(** Filesystem-safe file name derived from {!cell_id}. *)
val filename : t -> string

(** Write [filename t] into [dir] (default ["."]); returns the path. *)
val save : ?dir:string -> t -> string

(** {2 Flat metric view}

    The (name, value) view cross-run consumers work from: the sweep
    heatmap's [--cell] axis and the compare engine's rules both index
    records by these names. *)

val metrics : t -> (string * float) list
val metric : t -> string -> float option

(** Every name {!metrics} can emit (census/audit/router names appear
    only when those sections are present in the record). *)
val metric_names : string list
