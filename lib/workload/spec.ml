(** Workload parameters for the performance study the paper announces in
    §6 ("taking into account different workloads and failures
    assumptions"). *)

type t = {
  n_keys : int;  (** size of the logical database *)
  key_skew : float;  (** zipfian skew; 0.0 = uniform access *)
  update_ratio : float;  (** fraction of transactions that write *)
  ops_per_txn : int;  (** operations per transaction (§5 model when > 1) *)
  txns_per_client : int;
  think_time : Sim.Simtime.t;  (** client pause between transactions *)
  shards : int;
      (** generate shard-aware transactions for this many shards
          (1 = shard-oblivious: the pre-sharding key choice, unchanged) *)
  cross_shard : float;
      (** fraction of multi-op transactions forced to touch >= 2 shards
          (the rest are confined to one shard); only read when
          [shards > 1] *)
}

let default =
  {
    n_keys = 100;
    key_skew = 0.6;
    update_ratio = 0.5;
    ops_per_txn = 1;
    txns_per_client = 50;
    think_time = Sim.Simtime.of_ms 1;
    shards = 1;
    cross_shard = 0.;
  }

let pp ppf t =
  Format.fprintf ppf
    "keys=%d skew=%.2f updates=%.0f%% ops/txn=%d txns/client=%d" t.n_keys
    t.key_skew (100. *. t.update_ratio) t.ops_per_txn t.txns_per_client;
  if t.shards > 1 then
    Format.fprintf ppf " shards=%d cross=%.0f%%" t.shards
      (100. *. t.cross_shard)
