(** Workload parameters for the performance study the paper announces in
    §6 ("taking into account different workloads and failures
    assumptions"). *)

type shape = Mixed | Tpcb

type flash_crowd = {
  fc_at : Sim.Simtime.t;  (** when the crowd arrives *)
  fc_duration : Sim.Simtime.t;
  fc_intensity : float;
      (** load multiplier during the spike: open-loop arrival rates are
          multiplied by it, closed-loop think times divided by it *)
  fc_skew : float;  (** zipfian theta while the crowd lasts *)
  fc_shift : int;
      (** hot-set rotation: key indices drawn during the spike are
          offset by this amount mod n_keys, so the crowd hammers a
          {e different} hot set than the steady phase warmed up *)
}

type t = {
  n_keys : int;  (** size of the logical database *)
  key_skew : float;  (** zipfian skew; 0.0 = uniform access *)
  update_ratio : float;  (** fraction of transactions that write *)
  ops_per_txn : int;  (** operations per transaction (§5 model when > 1) *)
  txns_per_client : int;
  think_time : Sim.Simtime.t;  (** client pause between transactions *)
  shards : int;
      (** generate shard-aware transactions for this many shards
          (1 = shard-oblivious: the pre-sharding key choice, unchanged) *)
  cross_shard : float;
      (** fraction of multi-op transactions forced to touch >= 2 shards
          (the rest are confined to one shard); only read when
          [shards > 1] *)
  shape : shape;
      (** session profile: [Mixed] is the all-read-or-all-update
          single-key mix; [Tpcb] issues TPC-B-like two-key transfers
          (debit one account, credit another) and two-key balance reads *)
  flash_crowd : flash_crowd option;
      (** when set, a mid-run phase that spikes load and re-skews the
          hot set (see {!flash_crowd}) *)
}

let default =
  {
    n_keys = 100;
    key_skew = 0.6;
    update_ratio = 0.5;
    ops_per_txn = 1;
    txns_per_client = 50;
    think_time = Sim.Simtime.of_ms 1;
    shards = 1;
    cross_shard = 0.;
    shape = Mixed;
    flash_crowd = None;
  }

let default_flash_crowd =
  {
    fc_at = Sim.Simtime.of_ms 50;
    fc_duration = Sim.Simtime.of_ms 100;
    fc_intensity = 4.;
    fc_skew = 1.2;
    fc_shift = 50;
  }

let shape_to_string = function Mixed -> "mixed" | Tpcb -> "tpcb"

let shape_of_string = function
  | "mixed" -> Ok Mixed
  | "tpcb" -> Ok Tpcb
  | s -> Error (Printf.sprintf "unknown shape %S (valid: mixed, tpcb)" s)

let in_flash t ~at =
  match t.flash_crowd with
  | None -> false
  | Some fc ->
      Sim.Simtime.(at >= fc.fc_at)
      && Sim.Simtime.(at < Sim.Simtime.add fc.fc_at fc.fc_duration)

let flash_crowd_to_string fc =
  Printf.sprintf "at=%s,dur=%s,x=%g,zipf=%g,shift=%d"
    (Sim.Simtime.to_string fc.fc_at)
    (Sim.Simtime.to_string fc.fc_duration)
    fc.fc_intensity fc.fc_skew fc.fc_shift

let pp ppf t =
  Format.fprintf ppf
    "keys=%d skew=%.2f updates=%.0f%% ops/txn=%d txns/client=%d" t.n_keys
    t.key_skew (100. *. t.update_ratio) t.ops_per_txn t.txns_per_client;
  if t.shape <> Mixed then
    Format.fprintf ppf " shape=%s" (shape_to_string t.shape);
  if t.shards > 1 then
    Format.fprintf ppf " shards=%d cross=%.0f%%" t.shards
      (100. *. t.cross_shard);
  match t.flash_crowd with
  | Some fc -> Format.fprintf ppf " flash[%s]" (flash_crowd_to_string fc)
  | None -> ()
