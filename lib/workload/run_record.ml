(* The canonical run record: one finished run distilled into a single
   versioned, byte-deterministic JSON document. Every observability
   signal the repo measures feeds this one schema — throughput and
   percentile latency (Runner), msgs/txn plus the single-transaction
   causal census (Msg_dag), drop counters (Network), saturation findings
   (Saturation over the sampled series), the consistency-audit staleness
   summary (Audit) and the engine's deterministic event counter — so
   that sweeps, baselines and cross-run comparisons all speak about the
   same object. [normalize] zeroes the only wall-clock-derived field,
   after which a same-seed re-run renders byte-identically. *)

(* Bump when a field is added/renamed; [of_json] accepts only this
   version, so a stale baseline fails loudly instead of comparing
   garbage. v2 added the session-workload fields (shape, flash) and the
   routing-tier section. *)
let schema_version = 2

type workload = {
  keys : int;
  zipf : float;  (* zipfian skew theta; 0 = uniform *)
  updates : float;
  ops : int;
  txns_per_client : int;
  shards : int;
  cross : float;
  arrival : string;  (* "closed" or "poisson:<rate>" *)
  shape : string;  (* "mixed" or "tpcb" *)
  flash : string option;  (* flash-crowd phase, when declared *)
}

(* Routing-tier section: config echo plus the router's own counters. *)
type router = {
  sticky : bool;
  reads_routed : int;
  writes_routed : int;
  sticky_reads : int;
  fallback_reads : int;
  router_retries : int;
  failovers : int;
  gave_up : int;
  primary_moves : int;
}

type audit = {
  visibility_p95_ms : float;
  post_commit_max_ms : float;
  session_window_max_ms : float;
  stale_reads : int;
  ryw_violations : int;
  mr_violations : int;
  skew_pairs : int;
  drained : bool;
}

type t = {
  technique : string;
  config : (string * string) list;  (* non-default settings, sorted *)
  seed : int;
  n_replicas : int;
  n_clients : int;
  workload : workload;
  committed : int;
  aborted : int;
  unanswered : int;
  converged : bool;
  serializable : bool;
  throughput : float;  (* committed / virtual makespan — deterministic *)
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_p99_ms : float;
  latency_max_ms : float;
  messages : int;
  msgs_per_txn : float;
  census : (int * int) option;  (* probe (messages, steps), when measured *)
  drops : int;
  drops_loss : int;
  drops_crashed : int;
  drops_partitioned : int;
  saturation_findings : int;
  events : int;  (* engine events executed — deterministic *)
  wall_s : float;  (* wall time — the one nondeterministic field *)
  audit : audit option;
  router : router option;
}

let arrival_to_string = function
  | `Closed -> "closed"
  | `Poisson rate -> Printf.sprintf "poisson:%g" rate

let of_run ~technique ~config ~seed ~n_replicas ~n_clients ~arrival
    ~(spec : Spec.t) ?census (r : Runner.result) =
  {
    technique;
    config = List.sort compare config;
    seed;
    n_replicas;
    n_clients;
    workload =
      {
        keys = spec.Spec.n_keys;
        zipf = spec.Spec.key_skew;
        updates = spec.Spec.update_ratio;
        ops = spec.Spec.ops_per_txn;
        txns_per_client = spec.Spec.txns_per_client;
        shards = spec.Spec.shards;
        cross = spec.Spec.cross_shard;
        arrival = arrival_to_string arrival;
        shape = Spec.shape_to_string spec.Spec.shape;
        flash = Option.map Spec.flash_crowd_to_string spec.Spec.flash_crowd;
      };
    committed = r.Runner.committed;
    aborted = r.Runner.aborted;
    unanswered = r.Runner.unanswered;
    converged = r.Runner.converged;
    serializable = r.Runner.serializable;
    throughput = r.Runner.throughput;
    latency_mean_ms = r.Runner.latency_ms.Stats.mean;
    latency_p50_ms = r.Runner.latency_ms.Stats.p50;
    latency_p95_ms = r.Runner.latency_ms.Stats.p95;
    latency_p99_ms = r.Runner.latency_ms.Stats.p99;
    latency_max_ms = r.Runner.latency_ms.Stats.max;
    messages = r.Runner.messages;
    msgs_per_txn = r.Runner.messages_per_txn;
    census;
    drops = r.Runner.dropped;
    drops_loss = r.Runner.dropped_loss;
    drops_crashed = r.Runner.dropped_crashed;
    drops_partitioned = r.Runner.dropped_partitioned;
    saturation_findings =
      List.length (Sim.Saturation.analyze r.Runner.series);
    events = r.Runner.events;
    wall_s = r.Runner.wall_s;
    audit =
      Option.map
        (fun (a : Audit.summary) ->
          {
            visibility_p95_ms = a.Audit.visibility_ms.Stats.p95;
            post_commit_max_ms = a.Audit.post_commit_max_ms;
            session_window_max_ms = a.Audit.session_window_max_ms;
            stale_reads = a.Audit.stale_reads;
            ryw_violations = a.Audit.ryw_violations;
            mr_violations = a.Audit.mr_violations;
            skew_pairs = a.Audit.skew_pairs;
            drained = a.Audit.drained;
          })
        r.Runner.audit;
    router =
      Option.map
        (fun (s : Router.stats) ->
          {
            sticky = s.Router.sticky;
            reads_routed = s.Router.reads_routed;
            writes_routed = s.Router.writes_routed;
            sticky_reads = s.Router.sticky_reads;
            fallback_reads = s.Router.fallback_reads;
            router_retries = s.Router.retries;
            failovers = s.Router.failovers;
            gave_up = s.Router.gave_up;
            primary_moves = s.Router.primary_moves;
          })
        r.Runner.router;
  }

let normalize t = { t with wall_s = 0. }

(* ---- rendering ------------------------------------------------------- *)

let esc = Sim.Metrics.json_escape
let jf = Sim.Metrics.json_float

let config_json config =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v))
         config)
  ^ "}"

let to_json t =
  let w = t.workload in
  let census =
    match t.census with
    | None -> ""
    | Some (m, s) ->
        Printf.sprintf ",\"census\":{\"messages\":%d,\"steps\":%d}" m s
  in
  let audit =
    match t.audit with
    | None -> ""
    | Some a ->
        Printf.sprintf
          ",\"audit\":{\"visibility_p95_ms\":%s,\"post_commit_max_ms\":%s,\
           \"session_window_max_ms\":%s,\"stale_reads\":%d,\
           \"ryw_violations\":%d,\"mr_violations\":%d,\"skew_pairs\":%d,\
           \"drained\":%b}"
          (jf a.visibility_p95_ms) (jf a.post_commit_max_ms)
          (jf a.session_window_max_ms)
          a.stale_reads a.ryw_violations a.mr_violations a.skew_pairs
          a.drained
  in
  let router =
    match t.router with
    | None -> ""
    | Some r ->
        Printf.sprintf
          ",\"router\":{\"sticky\":%b,\"reads_routed\":%d,\
           \"writes_routed\":%d,\"sticky_reads\":%d,\"fallback_reads\":%d,\
           \"retries\":%d,\"failovers\":%d,\"gave_up\":%d,\
           \"primary_moves\":%d}"
          r.sticky r.reads_routed r.writes_routed r.sticky_reads
          r.fallback_reads r.router_retries r.failovers r.gave_up
          r.primary_moves
  in
  let flash =
    match w.flash with
    | None -> ""
    | Some f -> Printf.sprintf ",\"flash\":\"%s\"" (esc f)
  in
  Printf.sprintf
    "{\"type\":\"run_record\",\"record_version\":%d,\"tool_version\":\"%s\",\
     \"technique\":\"%s\",\"seed\":%d,\"n_replicas\":%d,\"n_clients\":%d,\
     \"config\":%s,\
     \"workload\":{\"keys\":%d,\"zipf\":%s,\"updates\":%s,\"ops\":%d,\
     \"txns_per_client\":%d,\"shards\":%d,\"cross\":%s,\"arrival\":\"%s\",\
     \"shape\":\"%s\"%s},\
     \"outcome\":{\"committed\":%d,\"aborted\":%d,\"unanswered\":%d,\
     \"converged\":%b,\"serializable\":%b},\
     \"perf\":{\"throughput_tps\":%s,\"latency_ms\":{\"mean\":%s,\"p50\":%s,\
     \"p95\":%s,\"p99\":%s,\"max\":%s},\"messages\":%d,\"msgs_per_txn\":%s}\
     %s,\
     \"drops\":{\"total\":%d,\"loss\":%d,\"crashed\":%d,\"partitioned\":%d},\
     \"saturation_findings\":%d,\
     \"engine\":{\"events\":%d,\"wall_s\":%s}%s%s}"
    schema_version Report.version (esc t.technique) t.seed t.n_replicas
    t.n_clients
    (config_json t.config)
    w.keys (jf w.zipf) (jf w.updates) w.ops w.txns_per_client w.shards
    (jf w.cross) (esc w.arrival) (esc w.shape) flash t.committed t.aborted
    t.unanswered t.converged t.serializable (jf t.throughput)
    (jf t.latency_mean_ms) (jf t.latency_p50_ms) (jf t.latency_p95_ms)
    (jf t.latency_p99_ms) (jf t.latency_max_ms) t.messages
    (jf t.msgs_per_txn) census t.drops t.drops_loss t.drops_crashed
    t.drops_partitioned t.saturation_findings t.events (jf t.wall_s) audit
    router

(* ---- parsing --------------------------------------------------------- *)

let member k = function
  | Bench_out.Obj fields -> List.assoc_opt k fields
  | _ -> None

let of_json doc =
  let ( let* ) = Result.bind in
  let str k j =
    match member k j with
    | Some (Bench_out.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing or non-string field %S" k)
  in
  let num k j =
    match member k j with
    | Some (Bench_out.Num v) -> Ok v
    | _ -> Error (Printf.sprintf "missing or non-number field %S" k)
  in
  let int_ k j = Result.map int_of_float (num k j) in
  let bool_ k j =
    match member k j with
    | Some (Bench_out.Bool b) -> Ok b
    | _ -> Error (Printf.sprintf "missing or non-bool field %S" k)
  in
  let obj k j =
    match member k j with
    | Some (Bench_out.Obj _ as o) -> Ok o
    | _ -> Error (Printf.sprintf "missing or non-object field %S" k)
  in
  let* () =
    match member "type" doc with
    | Some (Bench_out.Str "run_record") -> Ok ()
    | _ -> Error "\"type\" must be \"run_record\""
  in
  let* v = int_ "record_version" doc in
  let* () =
    if v = schema_version then Ok ()
    else
      Error
        (Printf.sprintf "record_version %d (this tool reads version %d)" v
           schema_version)
  in
  let* technique = str "technique" doc in
  let* seed = int_ "seed" doc in
  let* n_replicas = int_ "n_replicas" doc in
  let* n_clients = int_ "n_clients" doc in
  let* config =
    match member "config" doc with
    | Some (Bench_out.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Bench_out.Str s -> Ok ((k, s) :: acc)
            | _ -> Error (Printf.sprintf "non-string config value for %S" k))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "missing \"config\" object"
  in
  let* w = obj "workload" doc in
  let* keys = int_ "keys" w in
  let* zipf = num "zipf" w in
  let* updates = num "updates" w in
  let* ops = int_ "ops" w in
  let* txns_per_client = int_ "txns_per_client" w in
  let* shards = int_ "shards" w in
  let* cross = num "cross" w in
  let* arrival = str "arrival" w in
  let* shape = str "shape" w in
  let* flash =
    match member "flash" w with
    | None -> Ok None
    | Some (Bench_out.Str s) -> Ok (Some s)
    | Some _ -> Error "non-string field \"flash\""
  in
  let* o = obj "outcome" doc in
  let* committed = int_ "committed" o in
  let* aborted = int_ "aborted" o in
  let* unanswered = int_ "unanswered" o in
  let* converged = bool_ "converged" o in
  let* serializable = bool_ "serializable" o in
  let* p = obj "perf" doc in
  let* throughput = num "throughput_tps" p in
  let* lat = obj "latency_ms" p in
  let* latency_mean_ms = num "mean" lat in
  let* latency_p50_ms = num "p50" lat in
  let* latency_p95_ms = num "p95" lat in
  let* latency_p99_ms = num "p99" lat in
  let* latency_max_ms = num "max" lat in
  let* messages = int_ "messages" p in
  let* msgs_per_txn = num "msgs_per_txn" p in
  let* census =
    match member "census" doc with
    | None -> Ok None
    | Some c ->
        let* m = int_ "messages" c in
        let* s = int_ "steps" c in
        Ok (Some (m, s))
  in
  let* d = obj "drops" doc in
  let* drops = int_ "total" d in
  let* drops_loss = int_ "loss" d in
  let* drops_crashed = int_ "crashed" d in
  let* drops_partitioned = int_ "partitioned" d in
  let* saturation_findings = int_ "saturation_findings" doc in
  let* e = obj "engine" doc in
  let* events = int_ "events" e in
  let* wall_s = num "wall_s" e in
  let* audit =
    match member "audit" doc with
    | None -> Ok None
    | Some a ->
        let* visibility_p95_ms = num "visibility_p95_ms" a in
        let* post_commit_max_ms = num "post_commit_max_ms" a in
        let* session_window_max_ms = num "session_window_max_ms" a in
        let* stale_reads = int_ "stale_reads" a in
        let* ryw_violations = int_ "ryw_violations" a in
        let* mr_violations = int_ "mr_violations" a in
        let* skew_pairs = int_ "skew_pairs" a in
        let* drained = bool_ "drained" a in
        Ok
          (Some
             {
               visibility_p95_ms;
               post_commit_max_ms;
               session_window_max_ms;
               stale_reads;
               ryw_violations;
               mr_violations;
               skew_pairs;
               drained;
             })
  in
  let* router =
    match member "router" doc with
    | None -> Ok None
    | Some r ->
        let* sticky = bool_ "sticky" r in
        let* reads_routed = int_ "reads_routed" r in
        let* writes_routed = int_ "writes_routed" r in
        let* sticky_reads = int_ "sticky_reads" r in
        let* fallback_reads = int_ "fallback_reads" r in
        let* router_retries = int_ "retries" r in
        let* failovers = int_ "failovers" r in
        let* gave_up = int_ "gave_up" r in
        let* primary_moves = int_ "primary_moves" r in
        Ok
          (Some
             {
               sticky;
               reads_routed;
               writes_routed;
               sticky_reads;
               fallback_reads;
               router_retries;
               failovers;
               gave_up;
               primary_moves;
             })
  in
  Ok
    {
      technique;
      config;
      seed;
      n_replicas;
      n_clients;
      workload =
        {
          keys;
          zipf;
          updates;
          ops;
          txns_per_client;
          shards;
          cross;
          arrival;
          shape;
          flash;
        };
      committed;
      aborted;
      unanswered;
      converged;
      serializable;
      throughput;
      latency_mean_ms;
      latency_p50_ms;
      latency_p95_ms;
      latency_p99_ms;
      latency_max_ms;
      messages;
      msgs_per_txn;
      census;
      drops;
      drops_loss;
      drops_crashed;
      drops_partitioned;
      saturation_findings;
      events;
      wall_s;
      audit;
      router;
    }

let of_string s =
  match Bench_out.parse (String.trim s) with
  | Error e -> Error ("parse error: " ^ e)
  | Ok doc -> of_json doc

let load_file path =
  match
    In_channel.with_open_bin path In_channel.input_all
  with
  | exception Sys_error e -> Error e
  | contents -> of_string contents

(* ---- identity -------------------------------------------------------- *)

(* What makes two records "the same cell" for comparison purposes:
   everything the experimenter chose, nothing the run produced. *)
let cell_id t =
  let w = t.workload in
  Printf.sprintf
    "%s n=%d m=%d seed=%d keys=%d zipf=%g u=%g ops=%d txns=%d shards=%d \
     cross=%g %s%s%s%s%s"
    t.technique t.n_replicas t.n_clients t.seed w.keys w.zipf w.updates w.ops
    w.txns_per_client w.shards w.cross w.arrival
    (if w.shape = "mixed" then "" else " shape=" ^ w.shape)
    (match w.flash with None -> "" | Some f -> " flash[" ^ f ^ "]")
    (match t.router with
    | None -> ""
    | Some r -> if r.sticky then " router=sticky" else " router=on")
    (match t.config with
    | [] -> ""
    | kvs ->
        " "
        ^ String.concat ","
            (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))

(* Filesystem-safe name derived from the cell identity. *)
let filename t =
  let id = cell_id t in
  let buf = Buffer.create (String.length id) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' ->
          Buffer.add_char buf c
      | ' ' | ',' -> Buffer.add_char buf '_'
      | '=' -> Buffer.add_char buf '-'
      | _ -> Buffer.add_char buf '_')
    id;
  Buffer.contents buf ^ ".json"

let save ?(dir = ".") t =
  let path = Filename.concat dir (filename t) in
  let oc = open_out path in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc;
  path

(* ---- flat metric view ------------------------------------------------- *)

(* The flat (name, value) view every cross-run consumer works from: the
   sweep heatmap's [--cell] axis and the compare engine's rules both
   index records by these names. *)
let metrics t =
  let base =
    [
      ("committed", float_of_int t.committed);
      ("aborted", float_of_int t.aborted);
      ("unanswered", float_of_int t.unanswered);
      ("throughput", t.throughput);
      ("latency_mean", t.latency_mean_ms);
      ("latency_p50", t.latency_p50_ms);
      ("latency_p95", t.latency_p95_ms);
      ("latency_p99", t.latency_p99_ms);
      ("latency_max", t.latency_max_ms);
      ("messages", float_of_int t.messages);
      ("msgs_per_txn", t.msgs_per_txn);
      ("drops", float_of_int t.drops);
      ("drops_loss", float_of_int t.drops_loss);
      ("drops_crashed", float_of_int t.drops_crashed);
      ("drops_partitioned", float_of_int t.drops_partitioned);
      ("saturation_findings", float_of_int t.saturation_findings);
      ("events", float_of_int t.events);
      ("converged", if t.converged then 1. else 0.);
      ("serializable", if t.serializable then 1. else 0.);
    ]
  in
  let census =
    match t.census with
    | None -> []
    | Some (m, s) ->
        [
          ("census_msgs", float_of_int m); ("census_steps", float_of_int s);
        ]
  in
  let audit =
    match t.audit with
    | None -> []
    | Some a ->
        [
          ("visibility_p95_ms", a.visibility_p95_ms);
          ("post_commit_max_ms", a.post_commit_max_ms);
          ("session_window_max_ms", a.session_window_max_ms);
          ("stale_reads", float_of_int a.stale_reads);
          ("ryw_violations", float_of_int a.ryw_violations);
          ("mr_violations", float_of_int a.mr_violations);
          ("skew_pairs", float_of_int a.skew_pairs);
          ("drained", if a.drained then 1. else 0.);
        ]
  in
  let router =
    match t.router with
    | None -> []
    | Some r ->
        [
          ("router_sticky", if r.sticky then 1. else 0.);
          ("router_reads", float_of_int r.reads_routed);
          ("router_writes", float_of_int r.writes_routed);
          ("router_sticky_reads", float_of_int r.sticky_reads);
          ("router_fallback_reads", float_of_int r.fallback_reads);
          ("router_retries", float_of_int r.router_retries);
          ("router_failovers", float_of_int r.failovers);
          ("router_gave_up", float_of_int r.gave_up);
          ("router_primary_moves", float_of_int r.primary_moves);
        ]
  in
  base @ census @ audit @ router

let metric t name = List.assoc_opt name (metrics t)

let metric_names =
  [
    "committed";
    "aborted";
    "unanswered";
    "throughput";
    "latency_mean";
    "latency_p50";
    "latency_p95";
    "latency_p99";
    "latency_max";
    "messages";
    "msgs_per_txn";
    "census_msgs";
    "census_steps";
    "drops";
    "drops_loss";
    "drops_crashed";
    "drops_partitioned";
    "saturation_findings";
    "events";
    "converged";
    "serializable";
    "visibility_p95_ms";
    "post_commit_max_ms";
    "session_window_max_ms";
    "stale_reads";
    "ryw_violations";
    "mr_violations";
    "skew_pairs";
    "drained";
    "router_sticky";
    "router_reads";
    "router_writes";
    "router_sticky_reads";
    "router_fallback_reads";
    "router_retries";
    "router_failovers";
    "router_gave_up";
    "router_primary_moves";
  ]
