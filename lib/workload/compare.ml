(* Cross-run comparison/regression engine: diff two run-record sets
   (run-vs-run, or sweep-vs-committed-baseline) under per-metric
   relative thresholds, classify every (cell, metric) pair as improved,
   regressed or unchanged, and surface missing cells — the CI gate that
   makes perf and msgs/txn regressions fail the build the way
   correctness violations already do.

   Records are matched by Run_record.cell_id (everything the
   experimenter chose, nothing the run produced), and compared through
   their flat metric view, so the engine needs no knowledge of the
   record schema beyond names and values. *)

type direction =
  | Lower_better  (* latency, msgs/txn, drops, staleness windows *)
  | Higher_better  (* throughput, committed *)

type rule = { metric : string; dir : direction; threshold : float }

(* Direction by name family, for rules given on the command line as
   bare metric:threshold pairs. *)
let direction_of_metric metric =
  let has sub =
    let ls = String.length sub and lm = String.length metric in
    let rec go i = i + ls <= lm && (String.sub metric i ls = sub || go (i + 1)) in
    go 0
  in
  if
    has "throughput" || has "committed" || has "converged"
    || has "serializable" || has "drained"
  then Higher_better
  else Lower_better

let rule ?dir ?(threshold = 0.2) metric =
  let dir = match dir with Some d -> d | None -> direction_of_metric metric in
  { metric; dir; threshold }

(* The default gate: tail latency, throughput and message cost, at
   relative thresholds wide enough to pass an unchanged deterministic
   re-run trivially (deltas are then exactly zero) but tight enough to
   catch a real shift. msgs_per_txn gets the tightest band — message
   cost is the paper's headline §5 number and is fully deterministic. *)
let default_rules =
  [
    rule "latency_p50" ~threshold:0.2;
    rule "latency_p95" ~threshold:0.2;
    rule "latency_p99" ~threshold:0.25;
    rule "throughput" ~threshold:0.2;
    rule "msgs_per_txn" ~threshold:0.1;
  ]

type verdict = Improved | Regressed | Unchanged

type finding = {
  cell : string;
  metric : string;
  base : float;
  cand : float;
  delta_pct : float;  (* (cand - base) / base * 100; +inf when base = 0 *)
  verdict : verdict;
}

let classify (r : rule) ~base ~cand =
  let delta_pct =
    if base <> 0. then (cand -. base) /. Float.abs base *. 100.
    else if cand = 0. then 0.
    else Float.infinity
  in
  let better, worse =
    match r.dir with
    | Lower_better -> (cand < base, cand > base)
    | Higher_better -> (cand > base, cand < base)
  in
  let beyond =
    if base <> 0. then
      Float.abs (cand -. base) > r.threshold *. Float.abs base
    else cand <> 0.
  in
  let verdict =
    if beyond && worse then Regressed
    else if beyond && better then Improved
    else Unchanged
  in
  { cell = ""; metric = r.metric; base; cand; delta_pct; verdict }

type report = {
  findings : finding list;  (* (cell, metric) in base order *)
  missing : string list;  (* cells in base with no candidate record *)
  extra : string list;  (* candidate cells absent from base *)
  cells : int;  (* cells compared *)
}

(* Diff [cand] against [base]; both are (cell_id, metrics) assoc lists,
   e.g. from [Run_record.cell_id r, Run_record.metrics r]. Only metrics
   present on both sides are judged (a baseline without an audit
   section simply doesn't gate audit metrics). *)
let compare_sets ?(rules = default_rules) ~base ~cand () =
  let findings =
    List.concat_map
      (fun (cell, base_metrics) ->
        match List.assoc_opt cell cand with
        | None -> []
        | Some cand_metrics ->
            List.filter_map
              (fun (r : rule) ->
                match
                  ( List.assoc_opt r.metric base_metrics,
                    List.assoc_opt r.metric cand_metrics )
                with
                | Some b, Some c ->
                    Some { (classify r ~base:b ~cand:c) with cell }
                | _ -> None)
              rules)
      base
  in
  let missing =
    List.filter_map
      (fun (cell, _) ->
        if List.mem_assoc cell cand then None else Some cell)
      base
  in
  let extra =
    List.filter_map
      (fun (cell, _) ->
        if List.mem_assoc cell base then None else Some cell)
      cand
  in
  {
    findings;
    missing;
    extra;
    cells = List.length base - List.length missing;
  }

let count v report =
  List.length (List.filter (fun f -> f.verdict = v) report.findings)

(* A report passes unless a compared metric regressed or a baseline
   cell disappeared — new candidate cells are fine (the sweep grew). *)
let ok report = count Regressed report = 0 && report.missing = []

let verdict_to_string = function
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Unchanged -> "unchanged"

let pp_finding ppf f =
  Format.fprintf ppf "%-9s %-18s %12.4g -> %-12.4g (%+.1f%%)  %s"
    (verdict_to_string f.verdict)
    f.metric f.base f.cand f.delta_pct f.cell

let pp_report ppf report =
  List.iter
    (fun f ->
      if f.verdict <> Unchanged then Format.fprintf ppf "%a@." pp_finding f)
    report.findings;
  List.iter
    (fun cell -> Format.fprintf ppf "MISSING   %s@." cell)
    report.missing;
  List.iter (fun cell -> Format.fprintf ppf "new cell  %s@." cell) report.extra;
  Format.fprintf ppf
    "compare: %d cells, %d comparisons — %d improved, %d regressed, %d \
     unchanged%s@."
    report.cells
    (List.length report.findings)
    (count Improved report) (count Regressed report) (count Unchanged report)
    (match report.missing with
    | [] -> ""
    | ms -> Printf.sprintf ", %d missing" (List.length ms))
