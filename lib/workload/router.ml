(* The client-side routing tier: every request of a routed run flows
   client session -> router -> replica instead of straight into the
   technique's submit. The router splits reads from writes (reads go to
   the instance's explicit read path, writes to the technique's update
   entry point), discovers the update location from write replies
   (cached, refreshed whenever a reply comes from somewhere else),
   retries reads across failover with bounded exponential backoff, and
   optionally pins each session's reads to the replica that served its
   writes — which is what restores read-your-writes over lazy
   techniques. The router is deterministic: no RNG, round-robin fan-out
   per session. *)

open Sim

type config = {
  sticky : bool;
      (* pin each session's reads to the replica that answered its last
         write (falling back to the cached primary, then the session's
         home replica); off = fan reads over all live replicas *)
  read_timeout : Simtime.t;  (* per-attempt wait before failing over *)
  backoff : Simtime.t;  (* base retry backoff; doubles per attempt *)
  max_retries : int;  (* retargeted resends before giving up *)
}

let default_config =
  {
    sticky = false;
    read_timeout = Simtime.of_ms 50;
    backoff = Simtime.of_ms 2;
    max_retries = 5;
  }

type session = {
  s_client : int;
  s_home : int;  (* deterministic default read location *)
  mutable s_pinned : int option;
      (* replica that answered the session's last write (or, sticky, its
         last routed read) — the session-stickiness state *)
  mutable s_rr : int;  (* round-robin cursor for non-sticky fan-out *)
  mutable s_reads : int;
  mutable s_writes : int;
  mutable s_sticky_reads : int;
  mutable s_retries : int;
}

type session_view = {
  v_client : int;
  v_reads : int;
  v_writes : int;
  v_sticky_reads : int;
  v_retries : int;
  v_pinned : int option;
}

type stats = {
  sticky : bool;  (* config echo: was session stickiness on? *)
  reads_routed : int;
  writes_routed : int;
  sticky_reads : int;  (* reads served from the session's pinned replica *)
  fallback_reads : int;
      (* reads with no single-replica target (e.g. cross-shard) routed
         through the technique's submit instead *)
  retries : int;  (* read resends after a timeout *)
  failovers : int;  (* reads answered only after at least one retry *)
  gave_up : int;  (* reads abandoned after max_retries *)
  primary_moves : int;  (* cached update-location changes observed *)
  sessions : session_view list;  (* per-session, ascending by client *)
}

type t = {
  cfg : config;
  net : Network.t;
  inst : Core.Technique.instance;
  sessions : (int, session) Hashtbl.t;
  mutable primary : int option;  (* cached update location *)
  mutable reads_routed : int;
  mutable writes_routed : int;
  mutable sticky_reads : int;
  mutable fallback_reads : int;
  mutable retries : int;
  mutable failovers : int;
  mutable gave_up : int;
  mutable primary_moves : int;
}

let create ?(config = default_config) ~net inst =
  {
    cfg = config;
    net;
    inst;
    sessions = Hashtbl.create 16;
    primary = None;
    reads_routed = 0;
    writes_routed = 0;
    sticky_reads = 0;
    fallback_reads = 0;
    retries = 0;
    failovers = 0;
    gave_up = 0;
    primary_moves = 0;
  }

let session t client =
  match Hashtbl.find_opt t.sessions client with
  | Some s -> s
  | None ->
      let replicas = t.inst.Core.Technique.replicas in
      let s =
        {
          s_client = client;
          s_home = List.nth replicas (client mod List.length replicas);
          s_pinned = None;
          s_rr = client;
          s_reads = 0;
          s_writes = 0;
          s_sticky_reads = 0;
          s_retries = 0;
        }
      in
      Hashtbl.replace t.sessions client s;
      s

(* Note a write (or, under sticky, any) reply's origin: refresh the
   cached update location and the session pin. *)
let note_location t s ~(pin : bool) replica =
  if pin then begin
    (match t.primary with
    | Some p when p = replica -> ()
    | _ ->
        t.primary <- Some replica;
        t.primary_moves <- t.primary_moves + 1);
    s.s_pinned <- Some replica
  end

(* The replica a read should try first. Sticky: the session pin, then
   the cached primary, then the session's home replica — each demoted
   when dead or not serving this request. Non-sticky: round-robin over
   the targets. Preference only consults liveness the router can
   observe; a stale choice is corrected by the retry path. *)
let choose_target t s ~targets ~attempt =
  let live r = Network.alive t.net r in
  let preferred =
    if t.cfg.sticky then
      match s.s_pinned with
      | Some p when List.mem p targets && live p -> Some p
      | _ -> (
          match t.primary with
          | Some p when List.mem p targets && live p -> Some p
          | _ ->
              if List.mem s.s_home targets && live s.s_home then Some s.s_home
              else None)
    else None
  in
  match preferred with
  | Some p when attempt = 0 -> p
  | _ ->
      (* Fan-out / failover: cycle the session cursor through the live
         targets (all targets if none look alive — one may recover). *)
      let pool =
        match List.filter live targets with [] -> targets | l -> l
      in
      let i = (s.s_rr + attempt) mod List.length pool in
      s.s_rr <- s.s_rr + 1;
      List.nth pool i

let read_via_submit t ~client request cb =
  t.fallback_reads <- t.fallback_reads + 1;
  t.inst.Core.Technique.submit ~client request cb

(* Route one read: explicit read path to the chosen replica, bounded
   retry-with-backoff on silence. The first reply wins; a reply that
   needed at least one resend counts as a failover success. *)
let route_read t s ~read_at ~targets request cb =
  t.reads_routed <- t.reads_routed + 1;
  s.s_reads <- s.s_reads + 1;
  let engine = Network.engine t.net in
  let resolved = ref false in
  let rec attempt k =
    let target = choose_target t s ~targets ~attempt:k in
    if t.cfg.sticky && s.s_pinned = Some target then begin
      t.sticky_reads <- t.sticky_reads + 1;
      s.s_sticky_reads <- s.s_sticky_reads + 1
    end;
    read_at ~client:s.s_client ~replica:target request
      (fun (reply : Core.Technique.reply) ->
        if not !resolved then begin
          resolved := true;
          if k > 0 then t.failovers <- t.failovers + 1;
          note_location t s ~pin:t.cfg.sticky reply.Core.Technique.replica;
          cb reply
        end);
    ignore
      (Engine.schedule engine ~label:"router:retry" ~after:t.cfg.read_timeout
         (fun () ->
           if not !resolved then
             if k >= t.cfg.max_retries then t.gave_up <- t.gave_up + 1
             else begin
               t.retries <- t.retries + 1;
               s.s_retries <- s.s_retries + 1;
               let delay = Simtime.mul t.cfg.backoff (1 lsl k) in
               ignore
                 (Engine.schedule engine ~label:"router:retry" ~after:delay
                    (fun () -> if not !resolved then attempt (k + 1)))
             end))
  in
  attempt 0

(** Route one request. Writes go to the technique's update entry point
    ([submit]), and their replies refresh the cached update location and
    the session pin; reads go to the explicit read path of a replica the
    router chooses (or through [submit] when the instance offers no
    single-replica read path for this request). *)
let submit t ~client request cb =
  let s = session t client in
  if Store.Operation.request_is_update request then begin
    t.writes_routed <- t.writes_routed + 1;
    s.s_writes <- s.s_writes + 1;
    t.inst.Core.Technique.submit ~client request
      (fun (reply : Core.Technique.reply) ->
        if reply.Core.Technique.committed then
          note_location t s ~pin:true reply.Core.Technique.replica;
        cb reply)
  end
  else
    match t.inst.Core.Technique.read_at with
    | None -> read_via_submit t ~client request cb
    | Some read_at -> (
        match t.inst.Core.Technique.read_targets request with
        | [] -> read_via_submit t ~client request cb
        | targets -> route_read t s ~read_at ~targets request cb)

let stats t =
  {
    sticky = t.cfg.sticky;
    reads_routed = t.reads_routed;
    writes_routed = t.writes_routed;
    sticky_reads = t.sticky_reads;
    fallback_reads = t.fallback_reads;
    retries = t.retries;
    failovers = t.failovers;
    gave_up = t.gave_up;
    primary_moves = t.primary_moves;
    sessions =
      Hashtbl.fold
        (fun _ s acc ->
          {
            v_client = s.s_client;
            v_reads = s.s_reads;
            v_writes = s.s_writes;
            v_sticky_reads = s.s_sticky_reads;
            v_retries = s.s_retries;
            v_pinned = s.s_pinned;
          }
          :: acc)
        t.sessions []
      |> List.sort (fun a b -> Int.compare a.v_client b.v_client);
  }

let pp_stats ppf (st : stats) =
  Format.fprintf ppf
    "reads=%d writes=%d sticky=%d fallback=%d retries=%d failovers=%d \
     gave_up=%d primary_moves=%d"
    st.reads_routed st.writes_routed st.sticky_reads st.fallback_reads
    st.retries st.failovers st.gave_up st.primary_moves
