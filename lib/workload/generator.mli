(** Transaction generator: zipfian key choice, configurable update mix.
    Updates are read-modify-writes ([Incr]) so that every update creates
    a real conflict on its item — the worst case the paper's techniques
    are designed around. *)

type t

val create : ?seed:int -> Spec.t -> t

(** One transaction for [client]; the boolean flags whether it is an
    update transaction. A transaction is all-update or all-read (the
    usual OLTP mix model); with [Spec.Tpcb] updates are two-key
    transfers and reads two-key balance probes. [at] is the submission's
    virtual time — during a declared flash-crowd window the keys come
    from the spike's rotated hot-set sampler; omitted (or outside the
    window) the steady sampler is used, so pre-flash-crowd call sites
    are unchanged. *)
val request :
  ?at:Sim.Simtime.t -> t -> client:int -> bool * Store.Operation.request
