(* Latency/throughput statistics for the benchmark harness — a re-export
   of the shared {!Sim.Summary} implementation, kept as a module so the
   harness-facing name stays [Workload.Stats]. *)

type summary = Sim.Summary.t = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

let empty_summary = Sim.Summary.empty
let percentile = Sim.Summary.percentile
let summarize = Sim.Summary.summarize

type recorder = { mutable rev_values : float list }

let recorder () = { rev_values = [] }
let record r v = r.rev_values <- v :: r.rev_values
let summary r = summarize r.rev_values
let pp_summary = Sim.Summary.pp
