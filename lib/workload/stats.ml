(** Latency/throughput statistics for the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

let empty_summary =
  {
    count = 0;
    mean = 0.;
    p50 = 0.;
    p90 = 0.;
    p95 = 0.;
    p99 = 0.;
    min = 0.;
    max = 0.;
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(idx)

let summarize values =
  match values with
  | [] -> empty_summary
  | _ ->
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let total = Array.fold_left ( +. ) 0. sorted in
      {
        count = n;
        mean = total /. float_of_int n;
        p50 = percentile sorted 0.5;
        p90 = percentile sorted 0.9;
        p95 = percentile sorted 0.95;
        p99 = percentile sorted 0.99;
        min = sorted.(0);
        max = sorted.(n - 1);
      }

type recorder = { mutable rev_values : float list }

let recorder () = { rev_values = [] }
let record r v = r.rev_values <- v :: r.rev_values
let summary r = summarize r.rev_values

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f p50=%.2f p90=%.2f p95=%.2f p99=%.2f max=%.2f" s.count
    s.mean s.p50 s.p90 s.p95 s.p99 s.max
