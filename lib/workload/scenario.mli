(** Fault-injection campaign harness — the "failures assumptions" half of
    the paper's §6 performance study.

    A {!t} is a declarative failure scenario: a named schedule of crash,
    recovery, partition/heal and message-loss events that {!apply}
    installs on a simulated network. {!run_one} executes one technique
    under one scenario with {!Runner} and then judges the run with
    post-hoc {e invariant oracles} — 1-copy serializability, replica
    convergence after heal/recover, Figure-16 signature conformance of
    every committed transaction, and a liveness check — each against
    {e per-technique expectations} (e.g. 2PC-based techniques may block
    on a coordinator crash; failure-transparent techniques must show
    zero client resubmissions). {!run_campaign} sweeps
    techniques × scenarios × seeds. *)

(** One scheduled fault event. Times are absolute simulation times;
    replica ids refer to the runner's replica numbering (0-based). *)
type event =
  | Crash of { at : Sim.Simtime.t; replica : int }
  | Recover of { at : Sim.Simtime.t; replica : int }
  | Partition of { at : Sim.Simtime.t; group : int list; heal_at : Sim.Simtime.t }
      (** isolate [group] from the complement between [at] and [heal_at] *)
  | Loss of { at : Sim.Simtime.t; probability : float; until : Sim.Simtime.t }
      (** raise the per-message drop probability to [probability] inside
          the window, restoring the baseline at [until] *)

type t = {
  name : string;  (** CLI identifier, e.g. ["crash-recover"] *)
  description : string;
  events : event list;
}

(** Schedule every event of the scenario on the network's engine. Safe to
    call from {!Runner.run}'s [tune] hook (before traffic starts). *)
val apply : t -> Sim.Network.t -> unit

(** The scenario contains a [Crash]. *)
val has_crash : t -> bool

(** The scenario contains a [Crash] with no later [Recover] of the same
    replica — some replica stays down to the end of the run. *)
val has_unrecovered_crash : t -> bool

(** Replicas crashed at some point during the scenario. *)
val crashed_replicas : t -> int list

(** [bursts ~from ~probability ~burst ~gap ~count] — [count] loss windows
    of length [burst] separated by [gap], starting at [from]. *)
val bursts :
  from:Sim.Simtime.t ->
  probability:float ->
  burst:Sim.Simtime.t ->
  gap:Sim.Simtime.t ->
  count:int ->
  event list

(** {2 Built-in scenario library}

    The builtins assume the campaign cluster shape (3 replicas, ids
    0–2): [crash] (replica 0 down at 100 ms, stays down),
    [crash-recover] (replica 0 down 100–600 ms), [backup-crash-recover]
    (replica 2 down 100–600 ms), [partition-heal] (replica 2 isolated
    50–600 ms), [loss] (sustained 5 % message loss), [burst-loss]
    (3 × 100 ms windows of 30 % loss), and [chaos] (crash-recover +
    partition + background loss composed). *)

val builtins : t list

val find : string -> t option

(** {2 Oracles and expectations} *)

(** What a technique is allowed/required to do under a scenario, derived
    from its {!Core.Technique.info} classification plus the per-technique
    knowledge baked into this module (which commit protocol it uses,
    whether it can catch a recovered replica up). *)
type expectation = {
  transparent : bool;
      (** failure transparent — client resubmissions must be 0 *)
  may_block : bool;
      (** some transactions may stay unanswered at the deadline (2PC-based
          techniques under coordinator crash) *)
  strong : bool;  (** committed history must stay 1-copy serializable *)
  recovers : bool;
      (** a replica that crashes and recovers (or is partitioned and
          healed) must converge with the survivors by quiescence *)
  signatures : Core.Phase.t list list;
      (** acceptable Figure-16 signatures for committed transactions *)
}

(** [expectation ~key info scenario] — [key] is the registry key
    (["active"], ["eager-primary"], …). *)
val expectation : key:string -> Core.Technique.info -> t -> expectation

(** One oracle's verdict on one run. *)
type verdict = {
  oracle : string;  (** "serializable", "convergence", "signatures", "liveness", "transparency" *)
  ok : bool;  (** observed behaviour matches the expectation *)
  detail : string;  (** observed values, for the report *)
}

(** Judge a finished run against the expectation. The instance is the one
    the run produced ({!Runner.run_with_instance}); the signature oracle
    reads its span records. *)
val oracles :
  key:string ->
  Core.Technique.info ->
  t ->
  Runner.result ->
  Core.Technique.instance ->
  verdict list

(** {2 Campaign driver} *)

type outcome = {
  technique : string;
  scenario : string;
  seed : int;
  result : Runner.result;
  verdicts : verdict list;
  ok : bool;  (** all verdicts ok *)
}

(** Workload used by default for campaign runs: 100 % updates (so every
    committed transaction has a full Figure-16 signature), 2 clients,
    25 transactions each. *)
val default_spec : Spec.t

val run_one :
  ?seed:int ->
  ?n_replicas:int ->
  ?spec:Spec.t ->
  ?deadline:Sim.Simtime.t ->
  key:string ->
  info:Core.Technique.info ->
  factory:Runner.factory ->
  t ->
  outcome

(** Sweep techniques × scenarios × seeds (default seeds: [[11]]; default
    cluster: 3 replicas — raise [n_replicas] for sharded campaigns,
    where each replication group needs its own replicas). *)
val run_campaign :
  ?seeds:int list ->
  ?n_replicas:int ->
  ?spec:Spec.t ->
  ?deadline:Sim.Simtime.t ->
  techniques:(string * Core.Technique.info * Runner.factory) list ->
  scenarios:t list ->
  unit ->
  outcome list

(** {2 Reporting} *)

val csv_header : string
val csv_row : outcome -> string
val to_csv : Format.formatter -> outcome list -> unit

(** One JSON object per outcome (technique, scenario, seed, counters,
    verdicts) — the campaign's machine-readable trace. *)
val jsonl_row : outcome -> string

val pp_outcome : Format.formatter -> outcome -> unit
