(** The client-side routing tier (middleware-based replication à la
    Cecchet et al.): in a routed run every request flows client session
    -> router -> replica instead of straight into the technique's
    [submit].

    The router performs read/write splitting (writes go to the
    technique's update entry point; reads to the instance's explicit
    read path — {!Core.Technique.instance.read_at}), discovers the
    update location from write replies (cached, refreshed when a reply
    arrives from somewhere else), retries reads across failover with
    bounded exponential backoff when the target replica is crashed or
    partitioned, and — under [sticky] — pins each session's reads to
    the replica that served its writes, restoring read-your-writes over
    lazy techniques at a measurable latency cost.

    The router is deterministic: no randomness, per-session round-robin
    fan-out, and creating one schedules nothing — a run without a
    router is byte-identical to the pre-router request path. *)

type config = {
  sticky : bool;
      (** pin each session's reads to the replica that answered its
          last write (then the cached primary, then the session's home
          replica); off = fan reads round-robin over live replicas *)
  read_timeout : Sim.Simtime.t;
      (** per-attempt wait for a read reply before failing over *)
  backoff : Sim.Simtime.t;
      (** base retry backoff, doubled on every further attempt *)
  max_retries : int;  (** retargeted resends before giving up *)
}

(** Non-sticky, 50 ms read timeout, 2 ms base backoff, 5 retries. *)
val default_config : config

(** Per-session counters, as observed at the end of a run. *)
type session_view = {
  v_client : int;
  v_reads : int;
  v_writes : int;
  v_sticky_reads : int;
  v_retries : int;
  v_pinned : int option;  (** final pinned replica, when sticky *)
}

type stats = {
  sticky : bool;  (** config echo: was session stickiness on? *)
  reads_routed : int;
  writes_routed : int;
  sticky_reads : int;
      (** reads served from the session's pinned replica *)
  fallback_reads : int;
      (** reads with no single-replica target (e.g. cross-shard reads)
          routed through the technique's [submit] instead *)
  retries : int;  (** read resends after a silence timeout *)
  failovers : int;  (** reads answered only after at least one retry *)
  gave_up : int;  (** reads abandoned after [max_retries] *)
  primary_moves : int;  (** cached update-location changes observed *)
  sessions : session_view list;  (** ascending by client id *)
}

type t

(** [create ?config ~net inst] — a router in front of [inst]'s replicas.
    Creation schedules nothing and draws no randomness. *)
val create : ?config:config -> net:Sim.Network.t -> Core.Technique.instance -> t

(** Route one request (the routed run's replacement for
    [inst.submit]). *)
val submit :
  t ->
  client:int ->
  Store.Operation.request ->
  (Core.Technique.reply -> unit) ->
  unit

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
