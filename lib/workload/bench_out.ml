(* Machine-readable bench results: every perf* experiment accumulates
   (metric, technique, params, value) rows into one of these and writes
   BENCH_<name>.json next to the working directory. The file schema is
   validated by [replisim bench-check] in CI, so the writer and the
   checker (a minimal hand-rolled JSON parser — no external JSON
   dependency) live together here. *)

type row = {
  metric : string;
  technique : string;
  unit_ : string;
  params : (string * string) list;
  value : float;
}

type t = {
  bench : string;
  seed : int;
  n_replicas : int;
  config : (string * string) list;
      (* non-default technique settings the bench ran under, echoed into
         the header so the file names the configuration that produced it *)
  mutable rows_rev : row list;
}

let create ?(config = []) ~bench ~seed ~n_replicas () =
  { bench; seed; n_replicas; config; rows_rev = [] }

let add t ~metric ~technique ?(unit_ = "") ?(params = []) value =
  t.rows_rev <- { metric; technique; unit_; params; value } :: t.rows_rev

let esc = Sim.Metrics.json_escape
let jf = Sim.Metrics.json_float

let row_to_json r =
  let params =
    r.params
    |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"metric\":\"%s\",\"technique\":\"%s\",\"unit\":\"%s\",\"params\":{%s},\"value\":%s}"
    (esc r.metric) (esc r.technique) (esc r.unit_) params (jf r.value)

let to_json t =
  let config =
    match t.config with
    | [] -> ""
    | kvs ->
        ",\"config\":{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v))
               kvs)
        ^ "}"
  in
  Printf.sprintf
    "{\"type\":\"bench\",\"version\":\"%s\",\"bench\":\"%s\",\"seed\":%d,\"n_replicas\":%d%s,\"results\":[%s]}"
    Report.version (esc t.bench) t.seed t.n_replicas config
    (String.concat "," (List.rev_map row_to_json t.rows_rev |> List.rev))

let filename t = "BENCH_" ^ t.bench ^ ".json"

let write ?(dir = ".") t =
  let path = Filename.concat dir (filename t) in
  let oc = open_out path in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc;
  path

(* ---- JSON parsing + schema validation (for [replisim bench-check]) --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              (* keep the escape undecoded; fields we validate are ASCII *)
              Buffer.add_string buf ("\\u" ^ String.sub s !pos 4);
              pos := !pos + 4;
              go ()
          | Some c -> advance (); Buffer.add_char buf c; go ()
          | None -> fail "unterminated escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at byte %d" !pos)
    else Ok v
  with Bad msg -> Error msg

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

(* Benches whose files must carry specific metrics: a meta-benchmark
   that stops emitting its headline numbers should fail bench-check, not
   silently thin out. *)
let required_metrics = function
  | "perf15" -> [ "events_per_sec"; "txns_per_sec"; "peak_heap_words" ]
  | "perf16" -> [ "probe_messages"; "throughput"; "latency_p95" ]
  | "perf17" ->
      [ "visibility_p95_ms"; "post_commit_window_ms"; "audit_drained" ]
  | "perf18" ->
      [ "cells"; "best_latency_p95"; "best_throughput"; "worst_msgs_per_txn" ]
  | _ -> []

let row_metric row = match member "metric" row with Some (Str m) -> Some m | _ -> None

let row_value row = match member "value" row with Some (Num v) -> Some v | _ -> None

(* Schema check for one BENCH_*.json document. *)
let validate_json doc =
  let require_str k j =
    match member k j with
    | Some (Str _) -> Ok ()
    | _ -> Error (Printf.sprintf "missing or non-string field %S" k)
  in
  let require_num k j =
    match member k j with
    | Some (Num _) -> Ok ()
    | _ -> Error (Printf.sprintf "missing or non-number field %S" k)
  in
  let ( let* ) = Result.bind in
  let* () =
    match member "type" doc with
    | Some (Str "bench") -> Ok ()
    | _ -> Error "\"type\" must be \"bench\""
  in
  let* () = require_str "version" doc in
  let* () = require_str "bench" doc in
  let* () = require_num "seed" doc in
  let* () = require_num "n_replicas" doc in
  match member "results" doc with
  | Some (Arr rows) ->
      if rows = [] then Error "\"results\" is empty"
      else
        let* () =
          List.fold_left
            (fun acc row ->
              let* () = acc in
              let* () = require_str "metric" row in
              let* () = require_str "technique" row in
              let* () = require_str "unit" row in
              let* () = require_num "value" row in
              match member "params" row with
              | Some (Obj _) -> Ok ()
              | _ -> Error "result row missing \"params\" object")
            (Ok ()) rows
        in
        let bench =
          match member "bench" doc with Some (Str b) -> b | _ -> ""
        in
        let metrics = List.filter_map row_metric rows in
        List.fold_left
          (fun acc required ->
            let* () = acc in
            if List.mem required metrics then Ok ()
            else
              Error
                (Printf.sprintf "bench %S must report metric %S" bench
                   required))
          (Ok ())
          (required_metrics bench)
  | _ -> Error "missing \"results\" array"

(* Throughput floor: the best (max) value of [metric] in the document
   must be at least [min]. Max, not mean — a bench may report the same
   metric for several configurations (tracing on/off) and the floor
   gates the headline number. *)
let check_floor doc ~metric ~min_value =
  match member "results" doc with
  | Some (Arr rows) -> (
      let best =
        List.fold_left
          (fun acc row ->
            match (row_metric row, row_value row) with
            | Some m, Some v when m = metric -> (
                match acc with Some b -> Some (Float.max b v) | None -> Some v)
            | _ -> acc)
          None rows
      in
      match best with
      | None ->
          (* Name what IS in the file: a typo'd floor metric should point
             straight at the spelling, not send the user to the JSON. *)
          let present =
            List.sort_uniq String.compare (List.filter_map row_metric rows)
          in
          Error
            (Printf.sprintf "no rows with metric %S (file has: %s)" metric
               (String.concat ", " present))
      | Some best ->
          if best >= min_value then Ok best
          else
            (* Report the observation and its distance from the gate,
               not just pass/fail: the margin is what tells the reader
               whether this is noise or a collapse. *)
            Error
              (Printf.sprintf
                 "metric %S observed %g is below floor %g (margin %g, %.1f%% \
                  short)"
                 metric best min_value (min_value -. best)
                 (if min_value <> 0. then
                    (min_value -. best) /. Float.abs min_value *. 100.
                  else 100.)))
  | _ -> Error "missing \"results\" array"

(* Ceiling gate, the floor's mirror: the worst (max) value of [metric]
   must stay at or below [max_value] — how msgs/txn and staleness-window
   metrics are gated from above. *)
let check_ceiling doc ~metric ~max_value =
  match member "results" doc with
  | Some (Arr rows) -> (
      let worst =
        List.fold_left
          (fun acc row ->
            match (row_metric row, row_value row) with
            | Some m, Some v when m = metric -> (
                match acc with Some b -> Some (Float.max b v) | None -> Some v)
            | _ -> acc)
          None rows
      in
      match worst with
      | None ->
          let present =
            List.sort_uniq String.compare (List.filter_map row_metric rows)
          in
          Error
            (Printf.sprintf "no rows with metric %S (file has: %s)" metric
               (String.concat ", " present))
      | Some worst ->
          if worst <= max_value then Ok worst
          else
            Error
              (Printf.sprintf
                 "metric %S observed %g is above ceiling %g (margin %g, \
                  %.1f%% over)"
                 metric worst max_value (worst -. max_value)
                 (if max_value <> 0. then
                    (worst -. max_value) /. Float.abs max_value *. 100.
                  else 100.)))
  | _ -> Error "missing \"results\" array"

let validate_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | contents -> (
      match parse (String.trim contents) with
      | Error e -> Error ("parse error: " ^ e)
      | Ok doc -> validate_json doc)
