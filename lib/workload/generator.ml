(** Transaction generator: zipfian key choice, configurable update mix.
    Updates are read-modify-writes ([Incr]) so that every update creates a
    real conflict on its item — the worst case the paper's techniques are
    designed around. *)

type t = {
  spec : Spec.t;
  rng : Sim.Rng.t;
  sampler : Sim.Rng.Zipf.sampler;
  shard_map : Store.Shard_map.t option;
      (* present iff spec.shards > 1: the generator confines or spreads
         a transaction's keys across shards; the placement function is
         the same one the router uses, so "single-shard" here means
         single-shard to the router too *)
}

let create ?(seed = 42) spec =
  {
    spec;
    rng = Sim.Rng.create ~seed;
    sampler = Sim.Rng.Zipf.make ~n:spec.Spec.n_keys ~theta:spec.Spec.key_skew;
    shard_map =
      (if spec.Spec.shards > 1 then
         Some (Store.Shard_map.create ~shards:spec.Spec.shards ())
       else None);
  }

let key t = Printf.sprintf "k%04d" (Sim.Rng.Zipf.draw t.rng t.sampler)

let op_on ~update k =
  if update then Store.Operation.Incr (k, 1) else Store.Operation.Read k

let operation t ~update = op_on ~update (key t)

(* Rejection-sample a key that [accept]s; a skewed draw can take a while
   to leave a hot shard, so after a bounded number of tries fall back to
   [fallback] (keeping the run deterministic and terminating — the
   transaction then simply isn't spread as intended). *)
let sample_key t ~accept ~fallback =
  let rec go tries =
    if tries >= 64 then fallback
    else
      let k = key t in
      if accept k then k else go (tries + 1)
  in
  go 0

(** One transaction for [client]. A transaction is all-update or all-read
    (the usual OLTP mix model). *)
let request t ~client =
  let update = Sim.Rng.float t.rng 1.0 < t.spec.Spec.update_ratio in
  let n = t.spec.Spec.ops_per_txn in
  let ops =
    match t.shard_map with
    | None -> List.init n (fun _ -> operation t ~update)
    | Some map ->
        (* Shard-aware choice: the first key anchors the transaction's
           home shard; the rest either stay home (single-shard) or the
           second op is pushed to a different shard (cross-shard). *)
        let k0 = key t in
        let home = Store.Shard_map.shard_of_key map k0 in
        let cross =
          n > 1 && Sim.Rng.float t.rng 1.0 < t.spec.Spec.cross_shard
        in
        let rest =
          List.init (n - 1) (fun i ->
              if cross && i = 0 then
                sample_key t
                  ~accept:(fun k -> Store.Shard_map.shard_of_key map k <> home)
                  ~fallback:k0
              else
                sample_key t
                  ~accept:(fun k -> Store.Shard_map.shard_of_key map k = home)
                  ~fallback:k0)
        in
        List.map (op_on ~update) (k0 :: rest)
  in
  (update, Store.Operation.request ~client ops)
