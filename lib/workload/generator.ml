(** Transaction generator: zipfian key choice, configurable update mix.
    Updates are read-modify-writes ([Incr]) so that every update creates a
    real conflict on its item — the worst case the paper's techniques are
    designed around. *)

type t = {
  spec : Spec.t;
  rng : Sim.Rng.t;
  sampler : Sim.Rng.Zipf.sampler;
  flash_sampler : Sim.Rng.Zipf.sampler option;
      (* present iff the spec declares a flash crowd: the spike draws
         from its own (typically hotter) zipfian, with indices rotated
         by fc_shift so the crowd's hot set differs from the steady
         phase's *)
  shard_map : Store.Shard_map.t option;
      (* present iff spec.shards > 1: the generator confines or spreads
         a transaction's keys across shards; the placement function is
         the same one the router uses, so "single-shard" here means
         single-shard to the router too *)
}

let create ?(seed = 42) spec =
  {
    spec;
    rng = Sim.Rng.create ~seed;
    sampler = Sim.Rng.Zipf.make ~n:spec.Spec.n_keys ~theta:spec.Spec.key_skew;
    flash_sampler =
      Option.map
        (fun (fc : Spec.flash_crowd) ->
          Sim.Rng.Zipf.make ~n:spec.Spec.n_keys ~theta:fc.Spec.fc_skew)
        spec.Spec.flash_crowd;
    shard_map =
      (if spec.Spec.shards > 1 then
         Some (Store.Shard_map.create ~shards:spec.Spec.shards ())
       else None);
  }

(* Key index for the current phase: the steady sampler normally, the
   rotated flash sampler while [at] falls inside the spike window. *)
let key_index t ~at =
  match (t.flash_sampler, t.spec.Spec.flash_crowd, at) with
  | Some s, Some fc, Some now when Spec.in_flash t.spec ~at:now ->
      (Sim.Rng.Zipf.draw t.rng s + fc.Spec.fc_shift) mod t.spec.Spec.n_keys
  | _ -> Sim.Rng.Zipf.draw t.rng t.sampler

let key ?at t = Printf.sprintf "k%04d" (key_index t ~at)

let op_on ~update k =
  if update then Store.Operation.Incr (k, 1) else Store.Operation.Read k

(* Rejection-sample a key that [accept]s; a skewed draw can take a while
   to leave a hot shard, so after a bounded number of tries fall back to
   [fallback] (keeping the run deterministic and terminating — the
   transaction then simply isn't spread as intended). *)
let sample_key ?at t ~accept ~fallback =
  let rec go tries =
    if tries >= 64 then fallback
    else
      let k = key ?at t in
      if accept k then k else go (tries + 1)
  in
  go 0

(* TPC-B-like transfer: debit one account, credit a distinct second one —
   a two-key conflict footprint instead of Mixed's single hot key. Read
   transactions probe both balances. Shard awareness reuses the same
   anchoring rule as Mixed: the first account picks the home shard and
   [cross_shard] decides whether the second is pushed off it. *)
let tpcb_ops ?at t ~update =
  let a = key ?at t in
  let distinct k = k <> a in
  (* Bounded-effort fallback when rejection sampling gives up: one more
     draw, nudged to the next index if it collides with [a]. *)
  let fallback () =
    let i = key_index t ~at in
    let k = Printf.sprintf "k%04d" i in
    if distinct k then k
    else Printf.sprintf "k%04d" ((i + 1) mod t.spec.Spec.n_keys)
  in
  let b =
    match t.shard_map with
    | None -> sample_key ?at t ~accept:distinct ~fallback:(fallback ())
    | Some map ->
        let home = Store.Shard_map.shard_of_key map a in
        let cross = Sim.Rng.float t.rng 1.0 < t.spec.Spec.cross_shard in
        let accept k =
          distinct k
          &&
          if cross then Store.Shard_map.shard_of_key map k <> home
          else Store.Shard_map.shard_of_key map k = home
        in
        sample_key ?at t ~accept ~fallback:(fallback ())
  in
  if update then [ Store.Operation.Incr (a, 1); Store.Operation.Incr (b, -1) ]
  else [ Store.Operation.Read a; Store.Operation.Read b ]

(** One transaction for [client]. A transaction is all-update or all-read
    (the usual OLTP mix model). *)
let request ?at t ~client =
  let update = Sim.Rng.float t.rng 1.0 < t.spec.Spec.update_ratio in
  let ops =
    match t.spec.Spec.shape with
    | Spec.Tpcb -> tpcb_ops ?at t ~update
    | Spec.Mixed -> (
        let n = t.spec.Spec.ops_per_txn in
        match t.shard_map with
        | None -> List.init n (fun _ -> op_on ~update (key ?at t))
        | Some map ->
            (* Shard-aware choice: the first key anchors the transaction's
               home shard; the rest either stay home (single-shard) or the
               second op is pushed to a different shard (cross-shard). *)
            let k0 = key ?at t in
            let home = Store.Shard_map.shard_of_key map k0 in
            let cross =
              n > 1 && Sim.Rng.float t.rng 1.0 < t.spec.Spec.cross_shard
            in
            let rest =
              List.init (n - 1) (fun i ->
                  if cross && i = 0 then
                    sample_key ?at t
                      ~accept:(fun k ->
                        Store.Shard_map.shard_of_key map k <> home)
                      ~fallback:k0
                  else
                    sample_key ?at t
                      ~accept:(fun k ->
                        Store.Shard_map.shard_of_key map k = home)
                      ~fallback:k0)
            in
            List.map (op_on ~update) (k0 :: rest))
  in
  (update, Store.Operation.request ~client ops)
