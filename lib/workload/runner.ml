open Sim

type factory =
  Network.t -> replicas:int list -> clients:int list -> Core.Technique.instance

type failure = { at : Simtime.t; replica : int; recover_at : Simtime.t option }

let crash_at ~at replica = { at; replica; recover_at = None }

let crash_recover ~at ~recover_at replica =
  { at; replica; recover_at = Some recover_at }

type arrival = [ `Closed | `Poisson of float ]

type partition = { at : Simtime.t; group : int list; heal_at : Simtime.t }

type result = {
  committed : int;
  aborted : int;
  unanswered : int;
  latency_ms : Stats.summary;
  update_latency_ms : Stats.summary;
  read_latency_ms : Stats.summary;
  makespan : Simtime.t;
  throughput : float;
  messages : int;
  messages_per_txn : float;
  max_response_gap : Simtime.t;
  converged : bool;
  serializable : bool;
  phase_ms : (Core.Phase.t * Stats.summary) list;
  metrics : Metrics.snapshot;
  resubmissions : int;
  dropped : int;
  dropped_loss : int;
  dropped_crashed : int;
  dropped_partitioned : int;
  series : Timeseries.series list;
  events : int;  (* engine events executed — deterministic *)
  wall_s : float;  (* wall time inside the event loop — nondeterministic *)
  audit : Audit.summary option;  (* consistency audit, when enabled *)
  router : Router.stats option;  (* routing-tier stats, when routed *)
}

let run_with_instance ?(seed = 11) ?(n_replicas = 3) ?(n_clients = 4)
    ?(net = Network.default_config) ?tune ?(arrival = `Closed)
    ?(failures = []) ?(partitions = []) ?(deadline = Simtime.of_sec 120.)
    ?sample ?profiler ?(tracing = true) ?(analyze = true) ?(audit = false)
    ?router ~spec factory =
  let engine = Engine.create ~seed () in
  Engine.set_profiler engine profiler;
  let network = Network.create engine ~n:(n_replicas + n_clients) net in
  Network.set_tracing network tracing;
  let replicas = List.init n_replicas Fun.id in
  let clients = List.init n_clients (fun i -> n_replicas + i) in
  (* The sampler must exist before the factory runs: subsystems register
     their gauges at creation time via [Network.timeseries]. *)
  let sampler =
    match sample with
    | Some interval -> Some (Timeseries.create ~interval engine)
    | None -> None
  in
  Option.iter (Network.set_timeseries network) sampler;
  (match tune with Some f -> f network ~replicas ~clients | None -> ());
  let inst = factory network ~replicas ~clients in
  (* The audit's Kv watchers and History subscription must be installed
     before the first submission below, or early applies go unseen. *)
  let auditor =
    if not audit then None
    else begin
      let a =
        Audit.create ~engine ~metrics:inst.Core.Technique.metrics
          ~history:inst.Core.Technique.history
          ~groups:inst.Core.Technique.groups
          ~store_of:inst.Core.Technique.replica_store
          ~shards:spec.Spec.shards ()
      in
      (match sampler with Some ts -> Audit.register_series a ts | None -> ());
      Some a
    end
  in
  List.iter
    (fun { at; replica; recover_at } ->
      ignore
        (Engine.schedule_at engine ~label:"fault" ~at (fun () -> Network.crash network replica));
      match recover_at with
      | Some at ->
          ignore
            (Engine.schedule_at engine ~label:"fault" ~at (fun () ->
                 Network.recover network replica))
      | None -> ())
    failures;
  List.iter
    (fun { at; group; heal_at } ->
      ignore
        (Engine.schedule_at engine ~label:"fault" ~at (fun () -> Network.partition network group));
      ignore
        (Engine.schedule_at engine ~label:"fault" ~at:heal_at (fun () -> Network.heal network)))
    partitions;
  (* The routing tier, when requested: requests flow client session ->
     router -> replica instead of straight into the technique. With
     [router = None] the dispatch below IS the direct call — nothing
     else is constructed or scheduled, so an unrouted run stays
     byte-identical to the pre-router path. *)
  let routerv =
    Option.map (fun config -> Router.create ~config ~net:network inst) router
  in
  let dispatch ~client request cb =
    match routerv with
    | None -> inst.Core.Technique.submit ~client request cb
    | Some r -> Router.submit r ~client request cb
  in
  (* Flash-crowd load scaling: inside the spike window closed-loop think
     times shrink and open-loop arrival gaps compress by the declared
     intensity. Without a flash crowd both are the identity. *)
  let scale_time span ~at =
    match spec.Spec.flash_crowd with
    | Some fc when Spec.in_flash spec ~at ->
        Simtime.of_us
          (max 1
             (int_of_float
                (float_of_int (Simtime.to_us span) /. fc.Spec.fc_intensity)))
    | _ -> span
  in
  let committed = ref 0 and aborted = ref 0 and submitted = ref 0 in
  let answered = ref 0 in
  let all_lat = Stats.recorder () in
  let upd_lat = Stats.recorder () in
  let read_lat = Stats.recorder () in
  let last_response = ref Simtime.zero in
  let max_gap = ref Simtime.zero in
  List.iter
    (fun client ->
      let gen = Generator.create ~seed:(seed + client) spec in
      let arrival_rng = Sim.Rng.create ~seed:(seed + client + 7919) in
      let submit_one () =
        let update, request =
          Generator.request ~at:(Engine.now engine) gen ~client
        in
        incr submitted;
        let submitted_at = Engine.now engine in
        dispatch ~client request (fun reply ->
            incr answered;
            let gap = Simtime.sub reply.Core.Technique.at !last_response in
            if Simtime.(gap > !max_gap) then max_gap := gap;
            last_response := Simtime.max !last_response reply.Core.Technique.at;
            (match auditor with
            | Some a ->
                Audit.note_reply a ~client ~rid:request.Store.Operation.rid
                  ~committed:reply.Core.Technique.committed ~submitted_at
                  ~at:reply.Core.Technique.at
            | None -> ());
            let lat_ms =
              Simtime.to_ms (Simtime.sub reply.Core.Technique.at submitted_at)
            in
            if reply.Core.Technique.committed then begin
              incr committed;
              Stats.record all_lat lat_ms;
              Stats.record (if update then upd_lat else read_lat) lat_ms
            end
            else incr aborted)
      in
      match arrival with
      | `Closed ->
          let rec next i =
            if i < spec.Spec.txns_per_client then begin
              let update, request =
                Generator.request ~at:(Engine.now engine) gen ~client
              in
              incr submitted;
              let submitted_at = Engine.now engine in
              dispatch ~client request (fun reply ->
                  incr answered;
                  let gap = Simtime.sub reply.Core.Technique.at !last_response in
                  if Simtime.(gap > !max_gap) then max_gap := gap;
                  last_response :=
                    Simtime.max !last_response reply.Core.Technique.at;
                  (match auditor with
                  | Some a ->
                      Audit.note_reply a ~client
                        ~rid:request.Store.Operation.rid
                        ~committed:reply.Core.Technique.committed ~submitted_at
                        ~at:reply.Core.Technique.at
                  | None -> ());
                  let lat_ms =
                    Simtime.to_ms
                      (Simtime.sub reply.Core.Technique.at submitted_at)
                  in
                  if reply.Core.Technique.committed then begin
                    incr committed;
                    Stats.record all_lat lat_ms;
                    Stats.record (if update then upd_lat else read_lat) lat_ms
                  end
                  else incr aborted;
                  ignore
                    (Engine.schedule engine ~label:"client:arrival"
                       ~after:
                         (scale_time spec.Spec.think_time
                            ~at:reply.Core.Technique.at)
                       (fun () -> next (i + 1))))
            end
          in
          next 0
      | `Poisson rate ->
          let rec arrive i =
            if i < spec.Spec.txns_per_client then begin
              submit_one ();
              let gap_s = Sim.Rng.exponential arrival_rng ~mean:(1. /. rate) in
              ignore
                (Engine.schedule engine ~label:"client:arrival"
                   ~after:
                     (scale_time (Simtime.of_sec gap_s)
                        ~at:(Engine.now engine))
                   (fun () -> arrive (i + 1)))
            end
          in
          arrive 0)
    clients;
  let wall0 = Unix.gettimeofday () in
  ignore (Engine.run ~until:deadline engine);
  (* Quiescence: let lazy propagation and retransmissions drain. *)
  ignore (Engine.run ~until:(Simtime.add (Engine.now engine) (Simtime.of_sec 10.)) engine);
  let wall_s = Unix.gettimeofday () -. wall0 in
  (* Convergence is judged within each replication group: replicas in
     different groups hold different keyspace partitions (sharding), so
     comparing their stores across groups would be meaningless. Full
     replication is the single group [replicas]. *)
  let group_converged group =
    Core.Convergence.converged
      (List.filter_map
         (fun r ->
           if Network.alive network r then
             Some (inst.Core.Technique.replica_store r)
           else None)
         group)
  in
  let makespan = !last_response in
  let throughput =
    if Simtime.(makespan > Simtime.zero) then
      float_of_int !committed /. Simtime.to_sec makespan
    else 0.
  in
  let messages = Network.messages_sent network in
  (* Flush the span recorder so every phase interval is closed, then
     summarise per-phase durations across all transactions. *)
  let spans = inst.Core.Technique.spans in
  Core.Phase_span.finalize spans ~at:(Engine.now engine);
  let phase_ms =
    let samples = Hashtbl.create 8 in
    List.iter
      (fun rid ->
        List.iter
          (fun (p, d) ->
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt samples p)
            in
            Hashtbl.replace samples p (d :: prev))
          (Core.Phase_span.durations spans ~rid))
      (Core.Phase_span.rids spans);
    List.filter_map
      (fun p ->
        Option.map (fun ds -> (p, Stats.summarize ds)) (Hashtbl.find_opt samples p))
      Core.Phase.all
  in
  let metrics =
    let m = inst.Core.Technique.metrics in
    Metrics.set_gauge m "network_messages" (float_of_int messages);
    Metrics.set_gauge m "makespan_ms" (Simtime.to_ms makespan);
    Metrics.snapshot m
  in
  (match profiler with
  | None -> ()
  | Some p ->
      Profiler.set_engine_stats p
        ~events:(Engine.events_executed engine)
        ~scheduled:(Engine.timers_scheduled engine)
        ~cancelled:(Engine.timers_cancelled engine)
        ~queue_peak:(Engine.queue_peak engine);
      Profiler.set_meta p
        ~spans_created:
          (Span.count (Core.Phase_span.collector inst.Core.Technique.spans))
        ~samples_taken:
          (match sampler with Some ts -> Timeseries.total_points ts | None -> 0)
        ());
  ( {
      committed = !committed;
      aborted = !aborted;
      unanswered = !submitted - !answered;
      latency_ms = Stats.summary all_lat;
      update_latency_ms = Stats.summary upd_lat;
      read_latency_ms = Stats.summary read_lat;
      makespan;
      throughput;
      messages;
      messages_per_txn =
        (if !answered = 0 then 0.
         else float_of_int messages /. float_of_int !answered);
      max_response_gap = !max_gap;
      (* With [analyze:false] the O(txns)-and-worse post-run oracles are
         skipped and report vacuous truth — throughput benchmarks only. *)
      converged =
        (not analyze)
        || List.for_all group_converged inst.Core.Technique.groups;
      serializable =
        (not analyze)
        || (match Store.Serializability.check inst.Core.Technique.history with
           | Store.Serializability.Serializable _ -> true
           | _ -> false);
      phase_ms;
      metrics;
      resubmissions =
        Option.value ~default:0
          (Metrics.counter_value metrics "resubmissions_total");
      dropped = Network.messages_dropped network;
      dropped_loss = Network.dropped_loss network;
      dropped_crashed = Network.dropped_crashed network;
      dropped_partitioned = Network.dropped_partitioned network;
      series = (match sampler with Some ts -> Timeseries.series ts | None -> []);
      events = Engine.events_executed engine;
      wall_s;
      audit = Option.map Audit.finalize auditor;
      router = Option.map Router.stats routerv;
    },
    inst )

let run ?seed ?n_replicas ?n_clients ?net ?tune ?arrival ?failures ?partitions
    ?deadline ?sample ?profiler ?tracing ?analyze ?audit ?router ~spec factory
    =
  fst
    (run_with_instance ?seed ?n_replicas ?n_clients ?net ?tune ?arrival
       ?failures ?partitions ?deadline ?sample ?profiler ?tracing ?analyze
       ?audit ?router ~spec factory)

let pp_result ppf r =
  Format.fprintf ppf
    "committed=%d aborted=%d unanswered=%d tput=%.1f/s lat(ms)[%a] msgs/txn=%.1f converged=%b 1SR=%b"
    r.committed r.aborted r.unanswered r.throughput Stats.pp_summary
    r.latency_ms r.messages_per_txn r.converged r.serializable
