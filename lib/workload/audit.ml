(* The consistency audit layer: turns client-visible staleness into a
   measured signal (see the .mli for the model). The audit observes a
   run from the outside — Kv watchers for per-replica apply times,
   History subscriptions for committed read/write versions, and the
   runner's reply callbacks for client-visible commit instants — so it
   is technique-agnostic: nothing in lib/protocols knows it exists. *)

open Sim

(* One distinct installed write, identified by its (key, version, value)
   triple. Version alone is not an identity: lazy update-everywhere
   replicas allocate local version numbers independently, so two
   concurrent commits can install the same (key, version) with different
   values at different sites. *)
type wrec = {
  w_origin_at : Simtime.t;  (* first install anywhere *)
  mutable w_applied : int list;  (* replicas holding it *)
  mutable w_last_apply : Simtime.t;
  mutable w_reply_at : Simtime.t option;  (* client-visible commit *)
  w_group : int;
}

(* Per-client session state for the online session-guarantee checkers.
   Entries are (completed_at, version): an operation A precedes B in
   session order only if A's reply was delivered before B was submitted,
   so overlapping (pipelined) requests never generate false positives. *)
type session = {
  s_wrote : (Store.Operation.key, (Simtime.t * int) list ref) Hashtbl.t;
  s_observed : (Store.Operation.key, (Simtime.t * int) list ref) Hashtbl.t;
}

(* A committed cross-shard transaction, reassembled from its per-group
   sub-transactions for the snapshot-skew scan. *)
type cross_txn = {
  x_reads : (Store.Operation.key * int) list;
  x_writes : (Store.Operation.key * int) list;
}

type t = {
  a_metrics : Metrics.t;
  a_history : Store.History.t;
  a_groups : int list array;
  a_group_of : (int, int) Hashtbl.t;
  a_stores : (int, Store.Kv.t) Hashtbl.t;
  a_shard_map : Store.Shard_map.t option;
  a_writes : (Store.Operation.key * int * int, wrec) Hashtbl.t;
  a_by_kv : (Store.Operation.key * int, wrec list ref) Hashtbl.t;
  a_records : (int, Store.History.record) Hashtbl.t;
  a_committed_w : (Store.Operation.key, (Simtime.t * int) list ref) Hashtbl.t;
  a_sessions : (int, session) Hashtbl.t;
  a_vis : Stats.recorder;
  a_vis_by_replica : (int, Stats.recorder) Hashtbl.t;
  a_stale : Stats.recorder;
  mutable a_session_window_max_ms : float;
  mutable a_stale_reads : int;
  mutable a_ryw : int;
  mutable a_mr : int;
  mutable a_reads_checked : int;
  mutable a_commits_seen : int;
  mutable a_cross_rev : cross_txn list;
}

type summary = {
  writes : int;
  fully_replicated : int;
  visibility_ms : Stats.summary;
  visibility_by_replica : (int * Stats.summary) list;
  post_commit_max_ms : float;
  stale_reads : int;
  staleness_ms : Stats.summary;
  ryw_violations : int;
  mr_violations : int;
  session_window_max_ms : float;
  reads_checked : int;
  commits : int;
  skew_pairs : int;
  cross_txns : int;
  final_lag : (int * int) list;
  drained : bool;
}

let list_ref tbl k =
  match Hashtbl.find_opt tbl k with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace tbl k r;
      r

let session t client =
  match Hashtbl.find_opt t.a_sessions client with
  | Some s -> s
  | None ->
      let s =
        { s_wrote = Hashtbl.create 8; s_observed = Hashtbl.create 8 }
      in
      Hashtbl.replace t.a_sessions client s;
      s

let vis_recorder t replica =
  match Hashtbl.find_opt t.a_vis_by_replica replica with
  | Some r -> r
  | None ->
      let r = Stats.recorder () in
      Hashtbl.replace t.a_vis_by_replica replica r;
      r

(* A copy changed at [replica]: the first install of a triple anywhere
   stamps its origin; every later install at another replica is one
   visibility-latency sample (how long that site stayed stale for this
   write). Re-installs at the same replica (state transfer, lazy
   re-application) are not new samples. *)
let note_apply t ~replica ~at k ~value ~version =
  let triple = (k, version, value) in
  match Hashtbl.find_opt t.a_writes triple with
  | None ->
      let w =
        {
          w_origin_at = at;
          w_applied = [ replica ];
          w_last_apply = at;
          w_reply_at = None;
          w_group =
            Option.value ~default:0 (Hashtbl.find_opt t.a_group_of replica);
        }
      in
      Hashtbl.replace t.a_writes triple w;
      let l = list_ref t.a_by_kv (k, version) in
      l := w :: !l
  | Some w ->
      if not (List.mem replica w.w_applied) then begin
        w.w_applied <- replica :: w.w_applied;
        if Simtime.(at > w.w_last_apply) then w.w_last_apply <- at;
        let ms = Simtime.to_ms (Simtime.sub at w.w_origin_at) in
        Stats.record t.a_vis ms;
        Stats.record (vis_recorder t replica) ms;
        Metrics.observe t.a_metrics "visibility_ms" ms
      end

let create ~engine ~metrics ~history ~groups ~store_of ?(shards = 1) () =
  let t =
    {
      a_metrics = metrics;
      a_history = history;
      a_groups = Array.of_list groups;
      a_group_of = Hashtbl.create 16;
      a_stores = Hashtbl.create 16;
      a_shard_map =
        (if shards > 1 then Some (Store.Shard_map.create ~shards ())
         else None);
      a_writes = Hashtbl.create 256;
      a_by_kv = Hashtbl.create 256;
      a_records = Hashtbl.create 256;
      a_committed_w = Hashtbl.create 64;
      a_sessions = Hashtbl.create 8;
      a_vis = Stats.recorder ();
      a_vis_by_replica = Hashtbl.create 16;
      a_stale = Stats.recorder ();
      a_session_window_max_ms = 0.;
      a_stale_reads = 0;
      a_ryw = 0;
      a_mr = 0;
      a_reads_checked = 0;
      a_commits_seen = 0;
      a_cross_rev = [];
    }
  in
  List.iteri
    (fun g members ->
      List.iter
        (fun r ->
          Hashtbl.replace t.a_group_of r g;
          let store = store_of r in
          Hashtbl.replace t.a_stores r store;
          Store.Kv.on_update store (fun k ~value ~version ->
              note_apply t ~replica:r ~at:(Engine.now engine) k ~value
                ~version))
        members)
    groups;
  Store.History.on_add history (fun r ->
      Hashtbl.replace t.a_records r.Store.History.tid r);
  t

(* The earliest committed write of [k] that (a) installed a version the
   read missed and (b) whose commit was already client-visible when the
   read was submitted. Returns its commit instant — [at - rt] is then
   the longest the observed state is provably stale in real time. *)
let violated_commit entries ~v_read ~submitted_at =
  List.fold_left
    (fun acc (rt, vw) ->
      if vw > v_read && Simtime.(rt <= submitted_at) then
        match acc with
        | Some best when Simtime.(best <= rt) -> acc
        | _ -> Some rt
      else acc)
    None entries

let note_reply t ~client ~rid ~committed ~submitted_at ~at =
  if committed then begin
    t.a_commits_seen <- t.a_commits_seen + 1;
    let subs = Store.History.subs_of t.a_history ~parent:rid in
    let tids = match subs with [] -> [ rid ] | _ -> subs in
    let recs = List.filter_map (Hashtbl.find_opt t.a_records) tids in
    let reads = List.concat_map (fun r -> r.Store.History.reads) recs in
    let writes = List.concat_map (fun r -> r.Store.History.writes) recs in
    let s = session t client in
    (* Reads first: a transaction's own writes become client-visible
       only with this reply, so they never screen its own reads. *)
    List.iter
      (fun (k, v_read) ->
        t.a_reads_checked <- t.a_reads_checked + 1;
        (match
           violated_commit
             !(list_ref t.a_committed_w k)
             ~v_read ~submitted_at
         with
        | Some rt ->
            t.a_stale_reads <- t.a_stale_reads + 1;
            Metrics.incr t.a_metrics "audit_stale_reads_total";
            Stats.record t.a_stale (Simtime.to_ms (Simtime.sub at rt))
        | None -> ());
        (match
           violated_commit !(list_ref s.s_wrote k) ~v_read ~submitted_at
         with
        | Some rt ->
            t.a_ryw <- t.a_ryw + 1;
            Metrics.incr t.a_metrics "audit_ryw_violations_total";
            t.a_session_window_max_ms <-
              Float.max t.a_session_window_max_ms
                (Simtime.to_ms (Simtime.sub at rt))
        | None -> ());
        (match
           violated_commit !(list_ref s.s_observed k) ~v_read ~submitted_at
         with
        | Some rt ->
            t.a_mr <- t.a_mr + 1;
            Metrics.incr t.a_metrics "audit_mr_violations_total";
            t.a_session_window_max_ms <-
              Float.max t.a_session_window_max_ms
                (Simtime.to_ms (Simtime.sub at rt))
        | None -> ());
        let l = list_ref s.s_observed k in
        l := (at, v_read) :: !l)
      reads;
    List.iter
      (fun (k, vw) ->
        (match Hashtbl.find_opt t.a_by_kv (k, vw) with
        | Some l ->
            List.iter
              (fun w ->
                match w.w_reply_at with
                | None -> w.w_reply_at <- Some at
                | Some prev ->
                    if Simtime.(at < prev) then w.w_reply_at <- Some at)
              !l
        | None -> ());
        let l = list_ref t.a_committed_w k in
        l := (at, vw) :: !l;
        let l = list_ref s.s_wrote k in
        l := (at, vw) :: !l)
      writes;
    if subs <> [] then
      t.a_cross_rev <- { x_reads = reads; x_writes = writes } :: t.a_cross_rev
  end

(* Residual version lag of [replica]: over every key any member of its
   group holds, how many installed versions the replica is missing.
   Computed from the live stores, not from watcher memory, so lazy
   re-versioning (reconciliation's [force]) cannot leave phantom lag. *)
let replica_lag t replica =
  match Hashtbl.find_opt t.a_group_of replica with
  | None -> 0
  | Some g ->
      let members = t.a_groups.(g) in
      let keys = Hashtbl.create 64 in
      List.iter
        (fun r ->
          match Hashtbl.find_opt t.a_stores r with
          | Some store ->
              List.iter (fun k -> Hashtbl.replace keys k ()) (Store.Kv.keys store)
          | None -> ())
        members;
      let mine = Hashtbl.find_opt t.a_stores replica in
      Hashtbl.fold
        (fun k () acc ->
          let newest =
            List.fold_left
              (fun best r ->
                match Hashtbl.find_opt t.a_stores r with
                | Some store -> Stdlib.max best (Store.Kv.version store k)
                | None -> best)
              0 members
          in
          let held =
            match mine with Some s -> Store.Kv.version s k | None -> 0
          in
          acc + Stdlib.max 0 (newest - held))
        keys 0

let register_series t ts =
  Array.iter
    (fun members ->
      List.iter
        (fun r ->
          Timeseries.register ts ~name:"version_lag" ~replica:r
            ~kind:Timeseries.Queue ~unit_:"versions" (fun () ->
              float_of_int (replica_lag t r)))
        members)
    t.a_groups

(* Cross-shard snapshot skew: a committed cross-shard reader R and a
   committed cross-shard writer W such that R observed W's write on one
   shard (read version >= installed version) but missed it on another
   (read version < installed version) — R's sub-reads together form a
   snapshot no serial order of whole transactions could produce. Each
   (R, W) pair counts once. *)
let skew_pairs t =
  match t.a_shard_map with
  | None -> 0
  | Some map ->
      let shards_of kvs =
        List.sort_uniq compare
          (List.map (fun (k, _) -> Store.Shard_map.shard_of_key map k) kvs)
      in
      let crosses = List.rev t.a_cross_rev in
      let writers =
        List.filter (fun c -> List.length (shards_of c.x_writes) >= 2) crosses
      in
      let readers =
        List.filter (fun c -> List.length (shards_of c.x_reads) >= 2) crosses
      in
      List.fold_left
        (fun acc r ->
          List.fold_left
            (fun acc w ->
              if r == w then acc
              else
                let overlap =
                  List.filter_map
                    (fun (k, vw) ->
                      match List.assoc_opt k r.x_reads with
                      | Some vr ->
                          Some (Store.Shard_map.shard_of_key map k, vr >= vw)
                      | None -> None)
                    w.x_writes
                in
                let torn =
                  List.exists
                    (fun (s1, seen1) ->
                      seen1
                      && List.exists
                           (fun (s2, seen2) -> (not seen2) && s2 <> s1)
                           overlap)
                    overlap
                in
                if torn then acc + 1 else acc)
            acc writers)
        0 readers

let finalize t =
  let writes_n = Hashtbl.length t.a_writes in
  let fully, post_commit_max =
    Hashtbl.fold
      (fun _ w (fully, pc) ->
        let members = t.a_groups.(w.w_group) in
        let everywhere =
          List.for_all (fun r -> List.mem r w.w_applied) members
        in
        let pc =
          match w.w_reply_at with
          | Some rt when Simtime.(w.w_last_apply > rt) ->
              Float.max pc (Simtime.to_ms (Simtime.sub w.w_last_apply rt))
          | _ -> pc
        in
        ((if everywhere then fully + 1 else fully), pc))
      t.a_writes (0, 0.)
  in
  let final_lag =
    Array.to_list t.a_groups
    |> List.concat_map (fun members ->
           List.map (fun r -> (r, replica_lag t r)) members)
    |> List.sort compare
  in
  let drained = List.for_all (fun (_, lag) -> lag = 0) final_lag in
  let skew = skew_pairs t in
  if skew > 0 then
    Metrics.incr t.a_metrics ~by:skew "audit_skew_pairs_total";
  Metrics.set_gauge t.a_metrics "audit_post_commit_window_ms" post_commit_max;
  {
    writes = writes_n;
    fully_replicated = fully;
    visibility_ms = Stats.summary t.a_vis;
    visibility_by_replica =
      Hashtbl.fold
        (fun r rec_ acc -> (r, Stats.summary rec_) :: acc)
        t.a_vis_by_replica []
      |> List.sort compare;
    post_commit_max_ms = post_commit_max;
    stale_reads = t.a_stale_reads;
    staleness_ms = Stats.summary t.a_stale;
    ryw_violations = t.a_ryw;
    mr_violations = t.a_mr;
    session_window_max_ms = t.a_session_window_max_ms;
    reads_checked = t.a_reads_checked;
    commits = t.a_commits_seen;
    skew_pairs = skew;
    cross_txns = List.length t.a_cross_rev;
    final_lag;
    drained;
  }
