(* Sweep orchestration: a declared grid of techniques × shards × load ×
   update-ratio × zipf skew × seeds (× any per-technique config axis),
   expanded into cells in a fixed deterministic order. The caller (the
   CLI's `replisim sweep`, or bench perf18) runs each cell through the
   shared Builder path and gets back one Run_record per cell; this
   module owns the grid algebra, the aggregate manifest and the
   ASCII-heatmap / Markdown-matrix rendering over any record metric —
   the measured form of the paper's Figure-6 technique × workload
   matrix. *)

type axes = {
  techniques : string list;
  shards : int list;
  loads : float list;  (* transactions/s; 0 = closed loop *)
  updates : float list;
  zipfs : float list;
  seeds : int list;
  vary : (string * string * string list) list;
      (* (technique, key, values): a config axis that applies only to
         cells of the named technique; other techniques get one cell
         with the axis unset *)
}

let default_axes =
  {
    techniques = [];
    shards = [ 1 ];
    loads = [ 0. ];
    updates = [ 0.5 ];
    zipfs = [ 0.6 ];
    seeds = [ 11 ];
    vary = [];
  }

type cell = {
  technique : string;
  shards : int;
  load : float;
  updates : float;
  zipf : float;
  seed : int;
  vary : (string * string) list;  (* key=value pairs for this technique *)
}

(* Per-technique cartesian product of the vary axes that name it. *)
let vary_combos (axes : axes) technique =
  let mine =
    List.filter_map
      (fun (t, key, values) -> if t = technique then Some (key, values) else None)
      axes.vary
  in
  List.fold_left
    (fun combos (key, values) ->
      List.concat_map
        (fun combo -> List.map (fun v -> combo @ [ (key, v) ]) values)
        combos)
    [ [] ] mine

(* Deterministic expansion order: techniques outermost, seeds innermost
   — so all cells of one technique group together in the manifest. *)
let cells (axes : axes) =
  List.concat_map
    (fun technique ->
      List.concat_map
        (fun vary ->
          List.concat_map
            (fun shards ->
              List.concat_map
                (fun load ->
                  List.concat_map
                    (fun updates ->
                      List.concat_map
                        (fun zipf ->
                          List.map
                            (fun seed ->
                              {
                                technique;
                                shards;
                                load;
                                updates;
                                zipf;
                                seed;
                                vary;
                              })
                            axes.seeds)
                        axes.zipfs)
                    axes.updates)
                axes.loads)
            axes.shards)
        (vary_combos axes technique))
    axes.techniques

let arrival_of_cell c : Runner.arrival =
  if c.load > 0. then `Poisson c.load else `Closed

(* ---- manifest -------------------------------------------------------- *)

let esc = Sim.Metrics.json_escape
let jf = Sim.Metrics.json_float

let json_string_list xs =
  "[" ^ String.concat "," (List.map (fun s -> "\"" ^ esc s ^ "\"") xs) ^ "]"

let json_float_list xs =
  "[" ^ String.concat "," (List.map jf xs) ^ "]"

(* The aggregate manifest: the declared axes, every record file in cell
   order, and min/max-with-winner aggregates for the rendered metrics —
   one self-describing document per sweep directory. *)
let manifest_json (axes : axes) ~records ~metrics =
  let axes_json =
    Printf.sprintf
      "{\"techniques\":%s,\"shards\":[%s],\"loads\":%s,\"updates\":%s,\
       \"zipfs\":%s,\"seeds\":[%s],\"vary\":[%s]}"
      (json_string_list axes.techniques)
      (String.concat "," (List.map string_of_int axes.shards))
      (json_float_list axes.loads)
      (json_float_list axes.updates)
      (json_float_list axes.zipfs)
      (String.concat "," (List.map string_of_int axes.seeds))
      (String.concat ","
         (List.map
            (fun (t, k, vs) ->
              Printf.sprintf
                "{\"technique\":\"%s\",\"key\":\"%s\",\"values\":%s}" (esc t)
                (esc k) (json_string_list vs))
            axes.vary))
  in
  let aggregate metric =
    let valued =
      List.filter_map
        (fun (_, r) ->
          Option.map (fun v -> (r, v)) (Run_record.metric r metric))
        records
    in
    match valued with
    | [] -> Printf.sprintf "\"%s\":null" (esc metric)
    | (r0, v0) :: rest ->
        let min_r, min_v, max_r, max_v =
          List.fold_left
            (fun (min_r, min_v, max_r, max_v) (r, v) ->
              let min_r, min_v =
                if v < min_v then (r, v) else (min_r, min_v)
              in
              let max_r, max_v =
                if v > max_v then (r, v) else (max_r, max_v)
              in
              (min_r, min_v, max_r, max_v))
            (r0, v0, r0, v0) rest
        in
        Printf.sprintf
          "\"%s\":{\"min\":{\"cell\":\"%s\",\"value\":%s},\
           \"max\":{\"cell\":\"%s\",\"value\":%s}}"
          (esc metric)
          (esc (Run_record.cell_id min_r))
          (jf min_v)
          (esc (Run_record.cell_id max_r))
          (jf max_v)
  in
  Printf.sprintf
    "{\"type\":\"sweep_manifest\",\"version\":\"%s\",\
     \"record_version\":%d,\"axes\":%s,\"cells\":%d,\"records\":%s,\
     \"aggregates\":{%s}}"
    Report.version Run_record.schema_version axes_json (List.length records)
    (json_string_list (List.map fst records))
    (String.concat "," (List.map aggregate metrics))

(* ---- matrix rendering ------------------------------------------------- *)

(* Rows are the non-load dimensions that actually vary across the record
   set (technique always shows; shards/updates/zipf/seed/config only
   when more than one distinct value appears); columns are the arrival
   loads. First-seen order on both axes keeps the table deterministic. *)

let load_label (r : Run_record.t) =
  match String.index_opt r.workload.arrival ':' with
  | Some i ->
      String.sub r.workload.arrival (i + 1)
        (String.length r.workload.arrival - i - 1)
      ^ "/s"
  | None -> r.workload.arrival

let distinct f records =
  List.fold_left
    (fun acc r -> if List.mem (f r) acc then acc else acc @ [ f r ])
    [] records

let row_label ~varies (r : Run_record.t) =
  let w = r.Run_record.workload in
  let parts =
    [ r.Run_record.technique ]
    @ (if List.mem `Shards varies then [ Printf.sprintf "s=%d" w.shards ]
       else [])
    @ (if List.mem `Updates varies then [ Printf.sprintf "u=%g" w.updates ]
       else [])
    @ (if List.mem `Zipf varies then [ Printf.sprintf "z=%g" w.zipf ] else [])
    @ (if List.mem `Seed varies then
         [ Printf.sprintf "seed=%d" r.Run_record.seed ]
       else [])
    @
    if List.mem `Config varies then
      List.map (fun (k, v) -> k ^ "=" ^ v) r.Run_record.config
    else []
  in
  String.concat " " parts

type matrix = {
  metric : string;
  rows : string list;
  cols : string list;
  values : float option array array;  (* values.(row).(col) *)
}

let matrix ~metric records =
  let varies =
    List.filter_map
      (fun (tag, f) -> if List.length (distinct f records) > 1 then Some tag else None)
      [
        (`Shards, fun (r : Run_record.t) -> string_of_int r.workload.shards);
        (`Updates, fun r -> string_of_float r.Run_record.workload.updates);
        (`Zipf, fun r -> string_of_float r.Run_record.workload.zipf);
        (`Seed, fun r -> string_of_int r.Run_record.seed);
        ( `Config,
          fun r ->
            String.concat ","
              (List.map (fun (k, v) -> k ^ "=" ^ v) r.Run_record.config) );
      ]
  in
  let rows = distinct (row_label ~varies) records in
  let cols = distinct load_label records in
  let values =
    Array.make_matrix (List.length rows) (List.length cols) None
  in
  List.iter
    (fun r ->
      let row = row_label ~varies r in
      let col = load_label r in
      match
        ( List.find_index (String.equal row) rows,
          List.find_index (String.equal col) cols )
      with
      | Some i, Some j -> values.(i).(j) <- Run_record.metric r metric
      | _ -> ())
    records;
  { metric; rows; cols; values }

let matrix_bounds m =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc v ->
          match (acc, v) with
          | None, Some v -> Some (v, v)
          | Some (lo, hi), Some v -> Some (Float.min lo v, Float.max hi v)
          | acc, None -> acc)
        acc row)
    None m.values

(* Nine-step shade ramp, normalized over the whole table, so the eye
   finds the hot quadrant before reading any number. *)
let shade ~lo ~hi v =
  let ramp = " .:-=+*#@" in
  if hi <= lo then ramp.[0]
  else
    let idx = int_of_float ((v -. lo) /. (hi -. lo) *. 8.) in
    ramp.[max 0 (min 8 idx)]

let render_ascii m =
  let buf = Buffer.create 1024 in
  let row_w =
    List.fold_left (fun acc r -> max acc (String.length r)) 10 m.rows
  in
  let bounds = matrix_bounds m in
  Buffer.add_string buf
    (Printf.sprintf "%s by load (heatmap: low ' ' .. '@' high)\n" m.metric);
  Buffer.add_string buf (Printf.sprintf "%-*s" row_w "");
  List.iter (fun c -> Buffer.add_string buf (Printf.sprintf " %12s" c)) m.cols;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i row ->
      Buffer.add_string buf (Printf.sprintf "%-*s" row_w row);
      List.iteri
        (fun j _ ->
          match m.values.(i).(j) with
          | None -> Buffer.add_string buf (Printf.sprintf " %12s" "-")
          | Some v ->
              let c =
                match bounds with
                | Some (lo, hi) -> shade ~lo ~hi v
                | None -> ' '
              in
              Buffer.add_string buf (Printf.sprintf " %10.2f %c" v c))
        m.cols;
      Buffer.add_char buf '\n')
    m.rows;
  Buffer.contents buf

let render_markdown m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "| %s |" m.metric);
  List.iter (fun c -> Buffer.add_string buf (Printf.sprintf " %s |" c)) m.cols;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "|---|";
  List.iter (fun _ -> Buffer.add_string buf "---:|") m.cols;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i row ->
      Buffer.add_string buf (Printf.sprintf "| %s |" row);
      List.iteri
        (fun j _ ->
          match m.values.(i).(j) with
          | None -> Buffer.add_string buf " - |"
          | Some v -> Buffer.add_string buf (Printf.sprintf " %.2f |" v))
        m.cols;
      Buffer.add_char buf '\n')
    m.rows;
  Buffer.contents buf
