(** One builder path from the CLI (and the bench binary) to a running
    cluster.

    Collects everything a run needs — workload spec, cluster shape,
    network config, arrival process, crash/recover schedule, fault
    scenario, sampler interval, deadline — in one declarative value, and
    funnels every subcommand through {!run} / {!run_with_instance}
    instead of each re-implementing the {!Runner} plumbing. Also hosts
    the deterministic single-transaction {!probe} harness shared by
    [replisim trace] and [replisim explain]. *)

type t = {
  seed : int;
  n_replicas : int;
  n_clients : int;
  spec : Spec.t;
  net : Sim.Network.config;
  arrival : Runner.arrival;
  failures : Runner.failure list;
  partitions : Runner.partition list;
  scenario : Scenario.t option;  (** applied to the network before the run *)
  deadline : Sim.Simtime.t;
  sample : Sim.Simtime.t option;  (** resource-sampler interval *)
  profiler : Sim.Profiler.t option;  (** attached to the engine when set *)
  tracing : bool;  (** span/trace recording master switch (default on) *)
  analyze : bool;
      (** run the post-run convergence/serializability oracles
          (default on; see {!Runner.run_with_instance}) *)
  audit : bool;
      (** attach the consistency audit layer (default off; see
          {!Audit} and {!Runner.run_with_instance}) *)
  router : Router.config option;
      (** route requests through the client-side routing tier (default
          off; see {!Router} and {!Runner.run_with_instance}) *)
}

val make :
  ?seed:int ->
  ?replicas:int ->
  ?clients:int ->
  ?spec:Spec.t ->
  ?net:Sim.Network.config ->
  ?arrival:Runner.arrival ->
  ?failures:Runner.failure list ->
  ?partitions:Runner.partition list ->
  ?scenario:Scenario.t ->
  ?deadline:Sim.Simtime.t ->
  ?sample:Sim.Simtime.t ->
  ?profiler:Sim.Profiler.t ->
  ?tracing:bool ->
  ?analyze:bool ->
  ?audit:bool ->
  ?router:Router.config ->
  unit ->
  t

(** Spec from the CLI's flat flags. *)
val spec :
  ?keys:int ->
  ?skew:float ->
  ?updates:float ->
  ?ops:int ->
  ?txns:int ->
  ?think:Sim.Simtime.t ->
  ?shards:int ->
  ?cross:float ->
  ?shape:Spec.shape ->
  ?flash:Spec.flash_crowd ->
  unit ->
  Spec.t

(** Pair [(replica, at)] crashes with [(replica, at)] recoveries into a
    failure schedule; a recovery without a matching earlier crash of the
    same replica is an error. *)
val crash_schedule :
  crashes:(int * Sim.Simtime.t) list ->
  recoveries:(int * Sim.Simtime.t) list ->
  (Runner.failure list, string) result

val run : t -> Runner.factory -> Runner.result
val run_with_instance : t -> Runner.factory -> Runner.result * Core.Technique.instance

(** {2 Single-transaction probe} *)

type probe = {
  p_engine : Sim.Engine.t;
  p_net : Sim.Network.t;
  p_inst : Core.Technique.instance;
  p_rid : int;
  p_client : int;
  p_replicas : int list;
}

(** Deterministic single-transaction harness: constant-latency links
    (default 1 ms), no drops, [n] replicas and one client submitting one
    transaction ([ops], default [Incr ("x", 1)]); spans are finalized at
    quiescence. *)
val probe :
  ?seed:int ->
  ?n:int ->
  ?latency:Sim.Simtime.t ->
  ?ops:Store.Operation.op list ->
  ?until:Sim.Simtime.t ->
  Runner.factory ->
  probe

(** Messages, causal soundness and the {!Sim.Msg_dag} summary of the
    probe's transaction. *)
val probe_summary :
  probe -> Sim.Msg_dag.msg list * bool * Sim.Msg_dag.summary
