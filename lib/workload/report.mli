(** CSV export of experiment results, for plotting the performance-study
    figures outside the harness. *)

(** Tool version stamped into machine-readable exports. *)
val version : string

(** The common JSONL header record ([{"type":"header",...}]) every
    machine-readable export opens with. [extra] appends pre-rendered
    JSON values under additional keys; [config] (when non-empty) is
    rendered as a ["config"] object of key/value strings naming the
    exact technique configuration that produced the export. *)
val header_json :
  ?extra:(string * string) list ->
  ?config:(string * string) list ->
  seed:int -> technique:string -> n_replicas:int -> unit -> string

(** Quote a field RFC 4180-style when it contains a comma, double quote
    or newline (inner quotes doubled). *)
val csv_escape : string -> string

(** Header row matching {!csv_row}. *)
val csv_header : string

(** One result as a CSV row. [label] identifies the configuration (e.g.
    "active,n=3,upd=0.5") and is quoted as needed. *)
val csv_row : label:string -> Runner.result -> string

(** Print header + rows to a formatter. *)
val to_csv : Format.formatter -> (string * Runner.result) list -> unit

(** One-line engine summary ("N events in S s wall (R events/s)") for
    the human-facing run report; sub-millisecond wall times report "n/a"
    instead of a nonsense rate. Never part of machine-readable
    (byte-deterministic) exports. *)
val engine_summary : Runner.result -> string

(** {2 Per-phase latency table}

    One row per paper phase the technique entered, derived from the
    span recorder ({!Runner.result.phase_ms}). *)

val phase_csv_header : string
val phase_csv_rows : label:string -> Runner.result -> string list
val phases_to_csv : Format.formatter -> (string * Runner.result) list -> unit
