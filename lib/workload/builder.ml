(* One builder path from the CLI (and the bench binary) to a running
   cluster: workload spec, crash/recover schedule, fault scenario,
   sampler and deadline are collected declaratively here, and every
   subcommand funnels through [run] / [run_with_instance] instead of
   re-implementing the Runner plumbing. The single-transaction
   measurement harness behind `replisim trace` and `replisim explain`
   lives here too ([probe]). *)

open Sim

type t = {
  seed : int;
  n_replicas : int;
  n_clients : int;
  spec : Spec.t;
  net : Network.config;
  arrival : Runner.arrival;
  failures : Runner.failure list;
  partitions : Runner.partition list;
  scenario : Scenario.t option;
  deadline : Simtime.t;
  sample : Simtime.t option;
  profiler : Profiler.t option;
  tracing : bool;
  analyze : bool;
  audit : bool;
  router : Router.config option;
}

let make ?(seed = 11) ?(replicas = 3) ?(clients = 4) ?(spec = Spec.default)
    ?(net = Network.default_config) ?(arrival = `Closed) ?(failures = [])
    ?(partitions = []) ?scenario ?(deadline = Simtime.of_sec 120.) ?sample
    ?profiler ?(tracing = true) ?(analyze = true) ?(audit = false) ?router ()
    =
  {
    seed;
    n_replicas = replicas;
    n_clients = clients;
    spec;
    net;
    arrival;
    failures;
    partitions;
    scenario;
    deadline;
    sample;
    profiler;
    tracing;
    analyze;
    audit;
    router;
  }

let spec ?(keys = 100) ?(skew = 0.6) ?(updates = 0.5) ?(ops = 1) ?(txns = 50)
    ?(think = Simtime.of_ms 1) ?(shards = 1) ?(cross = 0.)
    ?(shape = Spec.Mixed) ?flash () =
  {
    Spec.n_keys = keys;
    key_skew = skew;
    update_ratio = updates;
    ops_per_txn = ops;
    txns_per_client = txns;
    think_time = think;
    shards;
    cross_shard = cross;
    shape;
    flash_crowd = flash;
  }

(* Pair each recovery with the crash of the same replica; a recovery
   without a matching earlier crash is a schedule error. *)
let crash_schedule ~crashes ~recoveries =
  let failures =
    List.map (fun (replica, at) -> Runner.crash_at ~at replica) crashes
  in
  List.fold_left
    (fun acc (replica, recover_at) ->
      match acc with
      | Error _ as e -> e
      | Ok failures -> (
          let paired = ref false in
          let failures =
            List.map
              (fun (f : Runner.failure) ->
                if
                  (not !paired) && f.replica = replica
                  && f.recover_at = None
                  && Simtime.(f.at < recover_at)
                then begin
                  paired := true;
                  { f with recover_at = Some recover_at }
                end
                else f)
              failures
          in
          match !paired with
          | true -> Ok failures
          | false ->
              Error
                (Printf.sprintf
                   "recovery %d@%s has no earlier crash of replica %d" replica
                   (Simtime.to_string recover_at)
                   replica)))
    (Ok failures) recoveries

let run_with_instance t factory =
  let tune =
    match t.scenario with
    | Some s -> Some (fun net ~replicas:_ ~clients:_ -> Scenario.apply s net)
    | None -> None
  in
  Runner.run_with_instance ~seed:t.seed ~n_replicas:t.n_replicas
    ~n_clients:t.n_clients ~net:t.net ?tune ~arrival:t.arrival
    ~failures:t.failures ~partitions:t.partitions ~deadline:t.deadline
    ?sample:t.sample ?profiler:t.profiler ~tracing:t.tracing
    ~analyze:t.analyze ~audit:t.audit ?router:t.router ~spec:t.spec factory

let run t factory = fst (run_with_instance t factory)

(* ---- single-transaction probe (trace / explain) --------------------- *)

type probe = {
  p_engine : Engine.t;
  p_net : Network.t;
  p_inst : Core.Technique.instance;
  p_rid : int;
  p_client : int;
  p_replicas : int list;
}

(* Deterministic single-transaction harness for trace rendering and
   message-cost measurement: constant-latency links, no drops, one
   client, one transaction, spans finalized at quiescence. Every number
   read off the probe comes from the recorded spans — expectations are
   only ever compared against, never substituted for, the observation. *)
let probe ?(seed = 7) ?(n = 3) ?(latency = Simtime.of_ms 1)
    ?(ops = [ Store.Operation.Incr ("x", 1) ])
    ?(until = Simtime.of_sec 2.) factory =
  let engine = Engine.create ~seed () in
  let config =
    { Network.latency = Network.Constant latency; drop_probability = 0.0 }
  in
  let net = Network.create engine ~n:(n + 1) config in
  let replicas = List.init n Fun.id in
  let client = n in
  let inst = factory net ~replicas ~clients:[ client ] in
  let request = Store.Operation.request ~client ops in
  inst.Core.Technique.submit ~client request (fun _ -> ());
  ignore (Engine.run ~until engine);
  let spans = inst.Core.Technique.spans in
  Core.Phase_span.finalize spans ~at:(Engine.now engine);
  {
    p_engine = engine;
    p_net = net;
    p_inst = inst;
    p_rid = request.Store.Operation.rid;
    p_client = client;
    p_replicas = replicas;
  }

(* The probe's message-cost summary, measured from the causally linked
   message spans (the `replisim explain` numbers). *)
let probe_summary p =
  let collector = Core.Phase_span.collector p.p_inst.Core.Technique.spans in
  let summary =
    Sim.Msg_dag.analyze collector ~trace:p.p_rid ~clients:[ p.p_client ]
  in
  let msgs = Sim.Msg_dag.messages collector ~trace:p.p_rid in
  let sound = Sim.Msg_dag.causally_sound collector ~trace:p.p_rid in
  (msgs, sound, summary)
