(** Closed-loop experiment driver: builds a simulated cluster, runs a
    technique under a workload (optionally with a crash schedule), waits
    for quiescence, and reports the metrics the paper's promised
    performance study calls for. *)

type factory =
  Sim.Network.t -> replicas:int list -> clients:int list -> Core.Technique.instance

(** Crash [replica] at [at]; when [recover_at] is set, bring it back at
    that time ({!Sim.Network.recover}) so crash-recover scenarios are
    expressible directly in the schedule. *)
type failure = {
  at : Sim.Simtime.t;
  replica : int;
  recover_at : Sim.Simtime.t option;
}

(** [crash_at ~at r] — a crash with no recovery. *)
val crash_at : at:Sim.Simtime.t -> int -> failure

(** [crash_recover ~at ~recover_at r] — crash then recover. *)
val crash_recover :
  at:Sim.Simtime.t -> recover_at:Sim.Simtime.t -> int -> failure

(** How clients issue transactions: [`Closed] waits for each reply plus
    the spec's think time before the next submission (the default);
    [`Poisson rate] submits with exponential inter-arrival times at
    [rate] transactions per second per client, independent of replies —
    an open-loop load generator for contention studies. *)
type arrival = [ `Closed | `Poisson of float ]

(** Isolate [group] from the rest of the network between [at] and
    [heal_at]. *)
type partition = { at : Sim.Simtime.t; group : int list; heal_at : Sim.Simtime.t }

type result = {
  committed : int;
  aborted : int;
  unanswered : int;  (** requests with no reply at the deadline *)
  latency_ms : Stats.summary;  (** committed-transaction response times *)
  update_latency_ms : Stats.summary;
  read_latency_ms : Stats.summary;
  makespan : Sim.Simtime.t;  (** last response time *)
  throughput : float;  (** committed transactions per simulated second *)
  messages : int;  (** network messages sent during the run *)
  messages_per_txn : float;
  max_response_gap : Sim.Simtime.t;
      (** longest interval between consecutive responses — the
          unavailability window when a failure schedule is active *)
  converged : bool;  (** alive replicas identical at quiescence *)
  serializable : bool;  (** 1-copy serializability of the global history *)
  phase_ms : (Core.Phase.t * Stats.summary) list;
      (** per-phase span durations across all transactions, in canonical
          phase order (phases the technique never entered are absent) *)
  metrics : Sim.Metrics.snapshot;
      (** the instance's metrics registry at quiescence *)
  resubmissions : int;
      (** client resubmissions after reply timeouts — 0 for
          failure-transparent techniques *)
  dropped : int;  (** messages lost to crashes, partitions or link loss *)
  dropped_loss : int;  (** dropped by the link-loss coin flip *)
  dropped_crashed : int;  (** dropped because an endpoint was crashed *)
  dropped_partitioned : int;  (** dropped at a partition boundary *)
  series : Sim.Timeseries.series list;
      (** sampled resource time-series — empty unless [?sample] was
          given *)
  events : int;
      (** engine events executed — deterministic for a given seed *)
  wall_s : float;
      (** wall-clock seconds spent inside the event loop —
          {e non-deterministic}; zero it (or use a normalizer) before
          structural byte-determinism comparisons *)
  audit : Audit.summary option;
      (** consistency audit summary — [None] unless the run was started
          with [~audit:true] *)
  router : Router.stats option;
      (** routing-tier stats — [None] unless the run was started with
          [?router] *)
}

val run :
  ?seed:int ->
  ?n_replicas:int ->
  ?n_clients:int ->
  ?net:Sim.Network.config ->
  ?tune:(Sim.Network.t -> replicas:int list -> clients:int list -> unit) ->
  ?arrival:arrival ->
  ?failures:failure list ->
  ?partitions:partition list ->
  ?deadline:Sim.Simtime.t ->
  ?sample:Sim.Simtime.t ->
  ?profiler:Sim.Profiler.t ->
  ?tracing:bool ->
  ?analyze:bool ->
  ?audit:bool ->
  ?router:Router.config ->
  spec:Spec.t ->
  factory ->
  result

(** Like {!run}, but also returns the instance that ran, for post-hoc
    oracles that need its spans, history, or stores. [result] itself
    stays plain data (structurally comparable).

    [profiler] attaches a {!Sim.Profiler} to the engine (self-time /
    allocation attribution; its engine stats and meta counters are
    filled in at the end of the run). [tracing] (default [true]) is the
    master span/trace switch ({!Sim.Network.set_tracing}) — switching it
    off skips span materialisation without changing the event schedule.
    [analyze] (default [true]): when [false], the post-run convergence
    and serializability oracles are skipped and both fields report
    [true] vacuously — for throughput benchmarks where the oracle cost
    would dwarf the run itself. [audit] (default [false]) attaches the
    consistency audit layer ({!Audit}) before the first submission and
    fills [result.audit]. [router] routes every request through the
    client-side routing tier ({!Router}) — read/write splitting,
    failover retries and optional session stickiness; omitted, requests
    go straight into the technique's [submit] and the event schedule is
    byte-identical to the pre-router path. *)
val run_with_instance :
  ?seed:int ->
  ?n_replicas:int ->
  ?n_clients:int ->
  ?net:Sim.Network.config ->
  ?tune:(Sim.Network.t -> replicas:int list -> clients:int list -> unit) ->
  ?arrival:arrival ->
  ?failures:failure list ->
  ?partitions:partition list ->
  ?deadline:Sim.Simtime.t ->
  ?sample:Sim.Simtime.t ->
  ?profiler:Sim.Profiler.t ->
  ?tracing:bool ->
  ?analyze:bool ->
  ?audit:bool ->
  ?router:Router.config ->
  spec:Spec.t ->
  factory ->
  result * Core.Technique.instance

val pp_result : Format.formatter -> result -> unit
