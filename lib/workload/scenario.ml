open Sim

type event =
  | Crash of { at : Simtime.t; replica : int }
  | Recover of { at : Simtime.t; replica : int }
  | Partition of { at : Simtime.t; group : int list; heal_at : Simtime.t }
  | Loss of { at : Simtime.t; probability : float; until : Simtime.t }

type t = { name : string; description : string; events : event list }

let apply t net =
  let engine = Network.engine net in
  let baseline = Network.drop_probability net in
  List.iter
    (fun event ->
      match event with
      | Crash { at; replica } ->
          ignore
            (Engine.schedule_at engine ~label:"fault" ~at (fun () -> Network.crash net replica))
      | Recover { at; replica } ->
          ignore
            (Engine.schedule_at engine ~label:"fault" ~at (fun () ->
                 Network.recover net replica))
      | Partition { at; group; heal_at } ->
          ignore
            (Engine.schedule_at engine ~label:"fault" ~at (fun () ->
                 Network.partition net group));
          ignore
            (Engine.schedule_at engine ~label:"fault" ~at:heal_at (fun () -> Network.heal net))
      | Loss { at; probability; until } ->
          ignore
            (Engine.schedule_at engine ~label:"fault" ~at (fun () ->
                 Network.set_drop_probability net probability));
          ignore
            (Engine.schedule_at engine ~label:"fault" ~at:until (fun () ->
                 Network.set_drop_probability net baseline)))
    t.events

let has_crash t =
  List.exists (function Crash _ -> true | _ -> false) t.events

let has_partition t =
  List.exists (function Partition _ -> true | _ -> false) t.events

let crashed_replicas t =
  List.filter_map
    (function Crash { replica; _ } -> Some replica | _ -> None)
    t.events
  |> List.sort_uniq compare

let has_unrecovered_crash t =
  List.exists
    (function
      | Crash { replica; at } ->
          not
            (List.exists
               (function
                 | Recover { replica = r; at = at' } ->
                     r = replica && Simtime.(at' > at)
                 | _ -> false)
               t.events)
      | _ -> false)
    t.events

(* A replica leaves and comes back: either a crash-recover pair or a
   partition that heals. The convergence oracle only becomes interesting
   (recovered copy must catch up) when this holds. *)
let has_rejoin t =
  List.exists (function Recover _ -> true | _ -> false) t.events
  || has_partition t

let bursts ~from ~probability ~burst ~gap ~count =
  List.init count (fun i ->
      let at = Simtime.add from (Simtime.mul (Simtime.add burst gap) i) in
      Loss { at; probability; until = Simtime.add at burst })

(* Built-in library. Times assume the campaign cluster: 3 replicas
   (0–2), traffic starting at t=0 and running for a few hundred ms.
   Replica 0 is the interesting victim (primary / sequencer / first
   delegate in every technique); replica 2 serves no client in the
   3-replica, 2-client shape, so isolating it exercises catch-up rather
   than availability. *)
let builtins =
  [
    {
      name = "crash";
      description = "replica 0 (primary/sequencer) crashes at 100 ms, stays down";
      events = [ Crash { at = Simtime.of_ms 100; replica = 0 } ];
    };
    {
      name = "crash-recover";
      description = "replica 0 crashes at 100 ms, recovers at 600 ms";
      events =
        [
          Crash { at = Simtime.of_ms 100; replica = 0 };
          Recover { at = Simtime.of_ms 600; replica = 0 };
        ];
    };
    {
      name = "backup-crash-recover";
      description = "replica 2 (no client attached) crashes at 100 ms, recovers at 600 ms";
      events =
        [
          Crash { at = Simtime.of_ms 100; replica = 2 };
          Recover { at = Simtime.of_ms 600; replica = 2 };
        ];
    };
    {
      name = "partition-heal";
      description = "replica 2 isolated from 50 ms to 600 ms, then healed";
      events =
        [
          Partition
            {
              at = Simtime.of_ms 50;
              group = [ 2 ];
              heal_at = Simtime.of_ms 600;
            };
        ];
    };
    {
      name = "loss";
      description = "sustained 5 % message loss for the whole run";
      events =
        [
          Loss
            {
              at = Simtime.zero;
              probability = 0.05;
              until = Simtime.of_sec 3600.;
            };
        ];
    };
    {
      name = "burst-loss";
      description = "three 100 ms bursts of 30 % loss, 100 ms apart";
      events =
        bursts ~from:(Simtime.of_ms 50) ~probability:0.3
          ~burst:(Simtime.of_ms 100) ~gap:(Simtime.of_ms 100) ~count:3;
    };
    {
      name = "chaos";
      description =
        "composed: replica 1 crash-recovers (100–500 ms), replica 2 \
         partitioned (600–900 ms), 2 % background loss";
      events =
        [
          Crash { at = Simtime.of_ms 100; replica = 1 };
          Recover { at = Simtime.of_ms 500; replica = 1 };
          Partition
            {
              at = Simtime.of_ms 600;
              group = [ 2 ];
              heal_at = Simtime.of_ms 900;
            };
          Loss
            {
              at = Simtime.zero;
              probability = 0.02;
              until = Simtime.of_sec 3600.;
            };
        ];
    };
  ]

let find name = List.find_opt (fun s -> String.equal s.name name) builtins

(* ------------------------------------------------------------------ *)
(* Expectations                                                       *)
(* ------------------------------------------------------------------ *)

type expectation = {
  transparent : bool;
  may_block : bool;
  strong : bool;
  recovers : bool;
  signatures : Core.Phase.t list list;
}

(* Techniques whose agreement round is an atomic-commitment protocol
   (2PC): prepared participants can block while the coordinator is
   down — the paper's §2.1 "databases accept blocking protocols". *)
let uses_2pc key =
  List.mem key [ "eager-primary"; "eager-ue-locking" ]

(* Techniques with a catch-up path for a replica that was away: passive
   rejoins through a view change with state transfer; the ABCAST-based
   techniques replay missed deliveries (sequencer anti-entropy /
   consensus progress gossip); semi-passive replays decided consensus
   instances; eager-primary and eager-UE locking run a state transfer
   on rejoin; lazy-UE re-broadcasts its redo log. Lazy primary copy is
   the exception: a recovered primary resumes ownership from its stale
   copy, and updates that only reached the backups stay stranded there
   — the classic lazy lost-update window (paper §4.5). *)
let catches_up key = not (String.equal key "lazy-primary")

let remove_phase p = List.filter (fun q -> not (Core.Phase.equal p q))

let expectation ~key (info : Core.Technique.info) scenario =
  let base = info.expected_phases in
  let signatures =
    (* Semi-active's AC happens per non-deterministic choice; campaign
       requests are deterministic, so the AC-less row is equally
       conformant. Lazy techniques promise only that the response is not
       gated on AC — when the optimistic reply is lost and the client's
       resubmission is answered from the cache, propagation has already
       begun and AC legitimately precedes the observed END, so the
       swapped row is acceptable too. Under a crash the truncated row is
       acceptable: a transaction committed just before its delegate
       crashes may never get to propagate. *)
    let alts =
      (if String.equal key "semi-active" then
         [ remove_phase Core.Phase.Agreement_coordination base ]
       else [])
      @ (if info.propagation = Core.Technique.Lazy then
           let body =
             base
             |> remove_phase Core.Phase.Agreement_coordination
             |> remove_phase Core.Phase.Response
           in
           [ body @ [ Core.Phase.Agreement_coordination; Core.Phase.Response ] ]
         else [])
      @
      if info.propagation = Core.Technique.Lazy && has_crash scenario then
        [ remove_phase Core.Phase.Agreement_coordination base ]
      else []
    in
    base :: alts
  in
  {
    transparent = info.failure_transparent;
    may_block = uses_2pc key && (has_crash scenario || has_partition scenario);
    strong = info.strong_consistency;
    recovers = (catches_up key || not (has_rejoin scenario));
    signatures;
  }

(* ------------------------------------------------------------------ *)
(* Oracles                                                            *)
(* ------------------------------------------------------------------ *)

type verdict = { oracle : string; ok : bool; detail : string }

let signature_equal a b =
  List.length a = List.length b && List.for_all2 Core.Phase.equal a b

let oracles ~key (info : Core.Technique.info) scenario
    (result : Runner.result) (inst : Core.Technique.instance) =
  let e = expectation ~key info scenario in
  let serializable =
    {
      oracle = "serializable";
      ok = (not e.strong) || result.Runner.serializable;
      detail =
        Printf.sprintf "1SR=%b (required=%b)" result.Runner.serializable
          e.strong;
    }
  in
  let convergence =
    {
      oracle = "convergence";
      ok = result.Runner.converged || not e.recovers;
      detail =
        Printf.sprintf "converged=%b (required=%b)" result.Runner.converged
          e.recovers;
    }
  in
  let signatures =
    (* Every committed transaction that was answered must show an
       acceptable Figure-16 row in its span record. *)
    let spans = inst.Core.Technique.spans in
    let committed =
      List.map
        (fun (r : Store.History.record) -> r.Store.History.tid)
        (Store.History.records inst.Core.Technique.history)
    in
    let checked = ref 0 and bad = ref [] in
    List.iter
      (fun rid ->
        if Core.Phase_span.responded spans ~rid then begin
          incr checked;
          let observed = Core.Phase_span.signature spans ~rid in
          if not (List.exists (signature_equal observed) e.signatures) then
            bad := (rid, observed) :: !bad
        end)
      committed;
    {
      oracle = "signatures";
      ok = !bad = [];
      detail =
        (match !bad with
        | [] -> Printf.sprintf "%d committed rows conform" !checked
        | (rid, observed) :: _ ->
            Format.asprintf "%d/%d nonconforming, e.g. rid %d: %a"
              (List.length !bad) !checked rid Core.Phase.pp_sequence observed);
    }
  in
  let liveness =
    {
      oracle = "liveness";
      ok = result.Runner.unanswered = 0 || e.may_block;
      detail =
        Printf.sprintf "unanswered=%d (blocking %s)" result.Runner.unanswered
          (if e.may_block then "tolerated" else "forbidden");
    }
  in
  let transparency =
    {
      oracle = "transparency";
      ok = (not e.transparent) || result.Runner.resubmissions = 0;
      detail =
        Printf.sprintf "resubmissions=%d (transparent=%b)"
          result.Runner.resubmissions e.transparent;
    }
  in
  [ serializable; convergence; signatures; liveness; transparency ]

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  technique : string;
  scenario : string;
  seed : int;
  result : Runner.result;
  verdicts : verdict list;
  ok : bool;
}

let default_spec =
  {
    Spec.default with
    update_ratio = 1.0;
    txns_per_client = 25;
    think_time = Simtime.of_ms 2;
  }

let run_one ?(seed = 11) ?(n_replicas = 3) ?(spec = default_spec)
    ?(deadline = Simtime.of_sec 120.) ~key ~info ~factory scenario =
  let result, inst =
    Runner.run_with_instance ~seed ~n_replicas ~n_clients:2 ~deadline ~spec
      ~tune:(fun net ~replicas:_ ~clients:_ -> apply scenario net)
      factory
  in
  let verdicts = oracles ~key info scenario result inst in
  {
    technique = key;
    scenario = scenario.name;
    seed;
    result;
    verdicts;
    ok = List.for_all (fun (v : verdict) -> v.ok) verdicts;
  }

let run_campaign ?(seeds = [ 11 ]) ?n_replicas ?spec ?deadline ~techniques
    ~scenarios () =
  List.concat_map
    (fun scenario ->
      List.concat_map
        (fun (key, info, factory) ->
          List.map
            (fun seed ->
              run_one ~seed ?n_replicas ?spec ?deadline ~key ~info ~factory
                scenario)
            seeds)
        techniques)
    scenarios

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let csv_header =
  "technique,scenario,seed,committed,aborted,unanswered,resubmissions,\
   messages_dropped,dropped_loss,dropped_crashed,dropped_partitioned,\
   max_response_gap_ms,converged,serializable,\
   serializable_ok,convergence_ok,signatures_ok,liveness_ok,\
   transparency_ok,ok"

let verdict_of outcome oracle =
  List.find (fun v -> String.equal v.oracle oracle) outcome.verdicts

let csv_row o =
  let r = o.result in
  Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.2f,%b,%b,%b,%b,%b,%b,%b,%b"
    (Report.csv_escape o.technique)
    (Report.csv_escape o.scenario)
    o.seed r.Runner.committed r.Runner.aborted r.Runner.unanswered
    r.Runner.resubmissions r.Runner.dropped r.Runner.dropped_loss
    r.Runner.dropped_crashed r.Runner.dropped_partitioned
    (Simtime.to_ms r.Runner.max_response_gap)
    r.Runner.converged r.Runner.serializable
    (verdict_of o "serializable").ok (verdict_of o "convergence").ok
    (verdict_of o "signatures").ok (verdict_of o "liveness").ok
    (verdict_of o "transparency").ok o.ok

let to_csv ppf outcomes =
  Format.fprintf ppf "%s@." csv_header;
  List.iter (fun o -> Format.fprintf ppf "%s@." (csv_row o)) outcomes

let jsonl_row o =
  let r = o.result in
  let verdicts =
    String.concat ","
      (List.map
         (fun v ->
           Printf.sprintf "{\"oracle\":\"%s\",\"ok\":%b,\"detail\":\"%s\"}"
             (Metrics.json_escape v.oracle)
             v.ok
             (Metrics.json_escape v.detail))
         o.verdicts)
  in
  Printf.sprintf
    "{\"technique\":\"%s\",\"scenario\":\"%s\",\"seed\":%d,\"committed\":%d,\
     \"aborted\":%d,\"unanswered\":%d,\"resubmissions\":%d,\
     \"messages_dropped\":%d,\"dropped_loss\":%d,\"dropped_crashed\":%d,\
     \"dropped_partitioned\":%d,\"max_response_gap_ms\":%.2f,\"converged\":%b,\
     \"serializable\":%b,\"ok\":%b,\"verdicts\":[%s]}"
    (Metrics.json_escape o.technique)
    (Metrics.json_escape o.scenario)
    o.seed r.Runner.committed r.Runner.aborted r.Runner.unanswered
    r.Runner.resubmissions r.Runner.dropped r.Runner.dropped_loss
    r.Runner.dropped_crashed r.Runner.dropped_partitioned
    (Simtime.to_ms r.Runner.max_response_gap)
    r.Runner.converged r.Runner.serializable o.ok verdicts

let pp_outcome ppf o =
  let r = o.result in
  Format.fprintf ppf
    "%-18s %-20s seed=%-4d %s  commit=%d abort=%d blocked=%d resubmit=%d \
     dropped=%d(loss=%d,crash=%d,part=%d) gap=%.1fms"
    o.technique o.scenario o.seed
    (if o.ok then "PASS" else "FAIL")
    r.Runner.committed r.Runner.aborted r.Runner.unanswered
    r.Runner.resubmissions r.Runner.dropped r.Runner.dropped_loss
    r.Runner.dropped_crashed r.Runner.dropped_partitioned
    (Simtime.to_ms r.Runner.max_response_gap);
  List.iter
    (fun (v : verdict) ->
      if not v.ok then Format.fprintf ppf "@.    !! %s: %s" v.oracle v.detail)
    o.verdicts
