let json_escape = Metrics.json_escape

(* Track numbering shared by both exporters: the client lane is 0,
   replica [r] is lane [r + 1]. *)
let tid_of_track = function None -> 0 | Some r -> r + 1

let track_name = function
  | 0 -> "client"
  | tid -> Printf.sprintf "replica %d" (tid - 1)

let span_to_jsonl (s : Span.span) =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf "{\"type\":\"span\",\"id\":%d,\"trace\":%d,\"name\":\"%s\""
       s.Span.id s.Span.trace (json_escape s.Span.name));
  (match s.Span.parent with
  | None -> ()
  | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" p));
  (match s.Span.track with
  | None -> Buffer.add_string buf ",\"track\":\"client\""
  | Some r -> Buffer.add_string buf (Printf.sprintf ",\"track\":%d" r));
  Buffer.add_string buf
    (Printf.sprintf ",\"start_us\":%d" (Simtime.to_us s.Span.start));
  (match s.Span.stop with
  | None -> ()
  | Some st ->
      Buffer.add_string buf (Printf.sprintf ",\"stop_us\":%d" (Simtime.to_us st)));
  let events = Span.events s in
  if events <> [] then begin
    Buffer.add_string buf ",\"events\":[";
    List.iteri
      (fun i (e : Span.event) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "{\"at_us\":%d" (Simtime.to_us e.Span.at));
        (match e.Span.track with
        | None -> ()
        | Some r -> Buffer.add_string buf (Printf.sprintf ",\"track\":%d" r));
        Buffer.add_string buf
          (Printf.sprintf ",\"note\":\"%s\"}" (json_escape e.Span.note)))
      events;
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* One JSON object per line, one line per span, in start order. *)
let to_jsonl t =
  Span.spans t |> List.map span_to_jsonl |> String.concat "\n"

(* Chrome trace_event format (chrome://tracing, Perfetto). Every trace
   (transaction) becomes a pid; the client lane and each replica lane
   become tids within it. Spans are "X" complete events with ts/dur in
   microseconds; zero-duration spans are emitted with dur=1 so they stay
   visible in the viewer. *)
let to_chrome t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  (* Metadata: name each process after its transaction and each thread
     after its lane, so the viewer shows meaningful labels. *)
  let seen_tids = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.span) ->
      let pid = s.Span.trace in
      let tid = tid_of_track s.Span.track in
      if not (Hashtbl.mem seen_tids (pid, -1)) then begin
        Hashtbl.replace seen_tids (pid, -1) ();
        emit
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"txn %d\"}}"
             pid pid)
      end;
      if not (Hashtbl.mem seen_tids (pid, tid)) then begin
        Hashtbl.replace seen_tids (pid, tid) ();
        emit
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             pid tid (track_name tid))
      end)
    (Span.spans t);
  List.iter
    (fun (s : Span.span) ->
      let pid = s.Span.trace in
      let tid = tid_of_track s.Span.track in
      let ts = Simtime.to_us s.Span.start in
      let stop = match s.Span.stop with Some st -> Simtime.to_us st | None -> ts in
      let dur = Stdlib.max 1 (stop - ts) in
      let notes =
        Span.events s
        |> List.filter_map (fun (e : Span.event) ->
               if e.Span.note = "" then None
               else
                 Some
                   (Printf.sprintf "\"%s\"" (json_escape e.Span.note)))
      in
      let args =
        Printf.sprintf "{\"trace\":%d%s}" s.Span.trace
          (if notes = [] then ""
           else Printf.sprintf ",\"notes\":[%s]" (String.concat "," notes))
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":%s}"
           (json_escape s.Span.name) ts dur pid tid args))
    (Span.spans t);
  (* Delivered messages additionally become flow events ("s" at the
     sender, "f" at the destination), so the viewer draws the causal
     arrows between lanes. The flow id is the message span id. *)
  List.iter
    (fun (s : Span.span) ->
      if Msg_dag.is_msg_span s then begin
        let m = Msg_dag.of_span s in
        match (m.Msg_dag.dst, s.Span.stop) with
        | Some dst, Some stop when m.Msg_dag.delivered ->
            let pid = s.Span.trace in
            let name = json_escape m.Msg_dag.label in
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":%d,\"ts\":%d,\"pid\":%d,\"tid\":%d}"
                 name s.Span.id
                 (Simtime.to_us s.Span.start)
                 pid
                 (tid_of_track s.Span.track));
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%d,\"pid\":%d,\"tid\":%d}"
                 name s.Span.id (Simtime.to_us stop) pid
                 (tid_of_track (Some dst)))
        | _ -> ()
      end)
    (Span.spans t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf
