type ctx = { trace : int; span : int }

type timer = {
  time : Simtime.t;
  seq : int;
  (* For ordinary timers: the pending action, [None] once cancelled or run.
     For periodic proxies (seq = -1): the cancellation routine. *)
  mutable action : (unit -> unit) option;
  (* Causal context captured when the timer was scheduled; reinstalled
     around the action so trace attribution survives asynchrony. *)
  t_ctx : ctx option;
}

type t = {
  mutable clock : Simtime.t;
  mutable next_seq : int;
  queue : timer Heap.t;
  root_rng : Rng.t;
  mutable cur_ctx : ctx option;
}

let compare_timer a b =
  match Simtime.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let create ?(seed = 0xC0FFEE) () =
  {
    clock = Simtime.zero;
    next_seq = 0;
    queue = Heap.create ~cmp:compare_timer;
    root_rng = Rng.create ~seed;
    cur_ctx = None;
  }

let now t = t.clock
let rng t = t.root_rng
let ctx t = t.cur_ctx
let set_ctx t c = t.cur_ctx <- c

let with_ctx t c f =
  let saved = t.cur_ctx in
  t.cur_ctx <- c;
  Fun.protect ~finally:(fun () -> t.cur_ctx <- saved) f

let schedule_at t ~at f =
  let at = Simtime.max at t.clock in
  let timer =
    { time = at; seq = t.next_seq; action = Some f; t_ctx = t.cur_ctx }
  in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue timer;
  timer

let schedule t ~after f = schedule_at t ~at:(Simtime.add t.clock after) f

let periodic t ~every f =
  let armed = ref None in
  let cancelled = ref false in
  let rec tick () =
    if not !cancelled then begin
      f ();
      if not !cancelled then armed := Some (schedule t ~after:every tick)
    end
  in
  armed := Some (schedule t ~after:every tick);
  let cancel_now () =
    cancelled := true;
    match !armed with Some tm -> tm.action <- None | None -> ()
  in
  { time = t.clock; seq = -1; action = Some cancel_now; t_ctx = None }

let cancel timer =
  if timer.seq = -1 then begin
    (match timer.action with Some cancel_now -> cancel_now () | None -> ());
    timer.action <- None
  end
  else timer.action <- None

let pending t =
  let n = ref 0 in
  Heap.iter t.queue (fun tm -> if tm.action <> None then incr n);
  !n

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some tm -> (
        match tm.action with
        | None -> next ()
        | Some f ->
            tm.action <- None;
            t.clock <- tm.time;
            with_ctx t tm.t_ctx f;
            true)
  in
  next ()

(* Discard cancelled timers sitting at the head of the queue so that
   [peek] reflects the next event that will actually run. *)
let rec peek_live t =
  match Heap.peek t.queue with
  | None -> None
  | Some tm ->
      if tm.action = None then begin
        ignore (Heap.pop t.queue);
        peek_live t
      end
      else Some tm

let run ?(until = Simtime.infinity) ?(max_events = max_int) t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue && !executed < max_events do
    match peek_live t with
    | None -> continue := false
    | Some tm ->
        if Simtime.(tm.time > until) then continue := false
        else if step t then incr executed
        else continue := false
  done;
  !executed
