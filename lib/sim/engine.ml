type ctx = { trace : int; span : int }

type timer = {
  time : Simtime.t;
  seq : int;
  (* For ordinary timers: the pending action, [None] once cancelled or run.
     For periodic proxies (seq = -1): the cancellation routine. *)
  mutable action : (unit -> unit) option;
  (* Causal context captured when the timer was scheduled; reinstalled
     around the action so trace attribution survives asynchrony. *)
  t_ctx : ctx option;
  (* Profiling label supplied by the scheduler ("net:deliver",
     "client:arrival", ...); self time and allocation of the action are
     attributed to this bucket when a profiler is attached. *)
  t_label : string;
  (* The owning engine's live-timer counter (shared by every timer of the
     engine): [cancel] has no engine handle, so the counter rides in the
     timer. Periodic proxies (seq = -1) never sit in the heap and are
     excluded from the count. *)
  t_live : int ref;
}

type t = {
  mutable clock : Simtime.t;
  mutable next_seq : int;
  queue : timer Heap.t;
  root_rng : Rng.t;
  mutable cur_ctx : ctx option;
  mutable profiler : Profiler.t option;
  (* Deterministic event-loop statistics (kept even without a profiler —
     the bookkeeping is a handful of int ops per event). *)
  mutable executed : int;
  mutable scheduled : int;
  mutable cancelled_seen : int; (* cancelled timers discarded at the head *)
  mutable queue_peak : int;
  (* Scheduled-and-not-yet-run-or-cancelled timers. Kept live on every
     schedule/cancel/dispatch so [pending] is O(1) instead of a heap
     scan; [pending_scan] is the O(n) reference it must always match. *)
  live : int ref;
}

let compare_timer a b =
  match Simtime.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let create ?(seed = 0xC0FFEE) () =
  {
    clock = Simtime.zero;
    next_seq = 0;
    queue = Heap.create ~cmp:compare_timer;
    root_rng = Rng.create ~seed;
    cur_ctx = None;
    profiler = None;
    executed = 0;
    scheduled = 0;
    cancelled_seen = 0;
    queue_peak = 0;
    live = ref 0;
  }

let now t = t.clock
let rng t = t.root_rng
let ctx t = t.cur_ctx
let set_ctx t c = t.cur_ctx <- c
let set_profiler t p = t.profiler <- p
let profiler t = t.profiler
let events_executed t = t.executed
let timers_scheduled t = t.scheduled
let timers_cancelled t = t.cancelled_seen
let queue_peak t = t.queue_peak

let with_ctx t c f =
  let saved = t.cur_ctx in
  t.cur_ctx <- c;
  Fun.protect ~finally:(fun () -> t.cur_ctx <- saved) f

let schedule_at t ?(label = "timer") ~at f =
  let at = Simtime.max at t.clock in
  let timer =
    {
      time = at;
      seq = t.next_seq;
      action = Some f;
      t_ctx = t.cur_ctx;
      t_label = label;
      t_live = t.live;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.scheduled <- t.scheduled + 1;
  incr t.live;
  Heap.push t.queue timer;
  let depth = Heap.length t.queue in
  if depth > t.queue_peak then t.queue_peak <- depth;
  timer

let schedule t ?label ~after f =
  schedule_at t ?label ~at:(Simtime.add t.clock after) f

(* Null a heap timer's action, maintaining the live count. A no-op on a
   timer already run or cancelled, so double-cancel never double-counts. *)
let deactivate tm =
  if tm.action <> None then begin
    tm.action <- None;
    decr tm.t_live
  end

let periodic t ?label ~every f =
  let armed = ref None in
  let cancelled = ref false in
  let rec tick () =
    if not !cancelled then begin
      f ();
      if not !cancelled then armed := Some (schedule t ?label ~after:every tick)
    end
  in
  armed := Some (schedule t ?label ~after:every tick);
  let cancel_now () =
    cancelled := true;
    match !armed with Some tm -> deactivate tm | None -> ()
  in
  {
    time = t.clock;
    seq = -1;
    action = Some cancel_now;
    t_ctx = None;
    t_label = "timer";
    t_live = t.live;
  }

let cancel timer =
  if timer.seq = -1 then begin
    (match timer.action with Some cancel_now -> cancel_now () | None -> ());
    timer.action <- None
  end
  else deactivate timer

let pending t = !(t.live)

(* The O(n) scan [pending] used to be; kept as the reference the counter
   is tested against. *)
let pending_scan t =
  let n = ref 0 in
  Heap.iter t.queue (fun tm -> if tm.action <> None then incr n);
  !n

(* Run one action with the timer's context installed, attributing its
   self time and allocation to the timer's label when profiling. The
   context save/restore is inlined (no [Fun.protect] closure) — this is
   the single hottest edge in the simulator. *)
let dispatch t tm f =
  let saved = t.cur_ctx in
  t.cur_ctx <- tm.t_ctx;
  (match t.profiler with
  | None -> (
      try f ()
      with e ->
        t.cur_ctx <- saved;
        raise e)
  | Some p -> (
      let m = Profiler.mark () in
      match f () with
      | () -> Profiler.attribute p ~label:tm.t_label m
      | exception e ->
          t.cur_ctx <- saved;
          Profiler.attribute p ~label:tm.t_label m;
          raise e));
  t.cur_ctx <- saved;
  t.executed <- t.executed + 1

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some tm -> (
        match tm.action with
        | None ->
            t.cancelled_seen <- t.cancelled_seen + 1;
            next ()
        | Some f ->
            tm.action <- None;
            decr t.live;
            t.clock <- tm.time;
            dispatch t tm f;
            true)
  in
  next ()

(* Discard cancelled timers sitting at the head of the queue so that
   [peek] reflects the next event that will actually run. *)
let rec peek_live t =
  match Heap.peek t.queue with
  | None -> None
  | Some tm ->
      if tm.action = None then begin
        ignore (Heap.pop t.queue);
        t.cancelled_seen <- t.cancelled_seen + 1;
        peek_live t
      end
      else Some tm

let run ?(until = Simtime.infinity) ?(max_events = max_int) t =
  let wall0 =
    match t.profiler with None -> 0. | Some _ -> Unix.gettimeofday ()
  in
  let executed = ref 0 in
  let continue = ref true in
  while !continue && !executed < max_events do
    match peek_live t with
    | None -> continue := false
    | Some tm ->
        if Simtime.(tm.time > until) then continue := false
        else if step t then incr executed
        else continue := false
  done;
  (match t.profiler with
  | None -> ()
  | Some p -> Profiler.add_run_wall p (Unix.gettimeofday () -. wall0));
  !executed
