(** Simulated message-passing network.

    Endpoints (replicas {e and} clients) are integers [0 .. n-1]. Each
    point-to-point message is delayed by the configured latency model, may be
    dropped, and is discarded if the destination is crashed or partitioned
    away at delivery time. Delivery runs the destination's handler stack:
    handlers are tried from the most recently added until one returns
    [true].

    When a {!Span} collector is installed ({!set_msg_spans}) and the sender
    runs under an {!Engine.ctx}, every send opens a message span (named
    ["msg:" ^ Msg.name]) parented to the causing span, closed at delivery or
    drop time; handlers run under the delivered message's span, so the whole
    causal message DAG of a transaction is recorded without protocol
    changes (see {!Msg_dag}). *)

type latency =
  | Constant of Simtime.t
  | Uniform of Simtime.t * Simtime.t  (** inclusive bounds *)
  | Exponential of { floor : Simtime.t; mean : Simtime.t }
      (** [floor] + Exp([mean]) — a common WAN model *)

type config = {
  latency : latency;
  drop_probability : float;  (** per point-to-point message, in [0,1] *)
}

val default_config : config

(** Why a message was dropped: probabilistic in-flight loss, a crashed
    destination, or a partition (at send or delivery time). *)
type drop_cause = Loss | Crashed | Partitioned

val drop_cause_name : drop_cause -> string

(** A handler returns [true] when it consumed the message. *)
type handler = src:int -> Msg.t -> bool

type t

val create : Engine.t -> n:int -> config -> t
val engine : t -> Engine.t
val size : t -> int
val rng : t -> Rng.t

(** Install the span collector message spans are recorded into (usually
    the transaction-trace collector, {!Core.Phase_span.collector}, so
    message spans and phase spans share one id space). *)
val set_msg_spans : t -> Span.t -> unit

(** Master tracing switch (default on). When off, message spans are not
    materialised and protocol instrumentation built on the network
    ({!Core.Phase_span}, {!Core.Phase_trace} via [Protocols.Common])
    skips its recording work. Spans never influence the event schedule,
    so the switch is behaviour-preserving: same seed, same results. *)
val set_tracing : t -> bool -> unit

val tracing : t -> bool

(** Install a {!Timeseries} sampler. The network registers its own
    gauges immediately ([net_in_flight] per endpoint, the
    [net_dropped_total] level); subsystems created afterwards discover
    the sampler via {!timeseries} and register theirs. *)
val set_timeseries : t -> Timeseries.t -> unit

val timeseries : t -> Timeseries.t option

(** [add_handler t node h] pushes [h] on top of [node]'s handler stack. *)
val add_handler : t -> int -> handler -> unit

val send : t -> src:int -> dst:int -> Msg.t -> unit
val multicast : t -> src:int -> dsts:int list -> Msg.t -> unit

(** Crash-stop a node: it stops receiving messages and its guarded timers
    stop firing. In-flight messages to it are lost. *)
val crash : t -> int -> unit

val recover : t -> int -> unit
val alive : t -> int -> bool

(** [on_crash t f] calls [f node] whenever [node] crash-stops. Protocols
    use this to expire state tied to a dead peer. *)
val on_crash : t -> (int -> unit) -> unit

(** [on_recover t f] calls [f node] whenever [node] comes back up —
    the hook a recovering replica uses to start its own rejoin /
    state-transfer path (its timers were suppressed while it was down,
    so it cannot notice the outage by itself). *)
val on_recover : t -> (int -> unit) -> unit

(** [guard t node f] wraps [f] so it only runs while [node] is alive —
    use for protocol timers. *)
val guard : t -> int -> (unit -> unit) -> unit -> unit

(** [set_link_latency t a b model] overrides the latency model for both
    directions of the (a, b) link — e.g. to model a WAN between sites
    while other links stay LAN-fast. *)
val set_link_latency : t -> int -> int -> latency -> unit

(** Remove all per-link overrides. *)
val clear_link_latencies : t -> unit

(** [partition t group] drops all messages between [group] and its
    complement until [heal]. *)
val partition : t -> int list -> unit

val heal : t -> unit
val set_drop_probability : t -> float -> unit

(** Current per-message drop probability — read it before a temporary
    [set_drop_probability] override (a loss window in a fault-injection
    scenario) so the baseline can be restored afterwards. *)
val drop_probability : t -> float

(** Counters since creation or the last [reset_counters]. *)

val messages_sent : t -> int
val messages_delivered : t -> int

(** Total drops (= loss + crashed + partitioned). *)
val messages_dropped : t -> int

val dropped_loss : t -> int
val dropped_crashed : t -> int
val dropped_partitioned : t -> int
val reset_counters : t -> unit
