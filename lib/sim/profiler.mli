(** Engine self-profiling: per-label wall-time and allocation attribution
    for the simulator's own hot path, plus the meta-counters that price
    the observability stack itself.

    Attach one to an engine ({!Engine.set_profiler}) and every scheduled
    action the engine dispatches is stamped ([Unix.gettimeofday] +
    [Gc.quick_stat] deltas) and accumulated into the bucket named by the
    label its scheduler supplied ("net:deliver", "client:arrival",
    "rchan:retransmit", ...).

    Everything wall-clock-derived is non-deterministic by nature; the
    deterministic counters (events executed, timers scheduled/cancelled,
    queue peak — owned by {!Engine}) are copied into the {!report} so a
    single record describes the run. {!normalize_json} rewrites the
    non-deterministic fields to a placeholder for byte-determinism
    comparisons. *)

type t

val create : unit -> t

(** A wall-clock + allocation snapshot opening a measured region. *)
type mark

val mark : unit -> mark

(** Close a region opened by {!mark}, accumulating its wall time and
    allocated words into [label]'s bucket. *)
val attribute : t -> label:string -> mark -> unit

(** [measure t ~label f] runs [f] with its cost attributed to [label]
    (exception-safe). Used for off-loop work worth pricing, e.g. trace
    export. *)
val measure : t -> label:string -> (unit -> 'a) -> 'a

(** Net words allocated by this process so far (minor + major −
    promoted, via [Gc.counters]). *)
val allocated_words : unit -> float

(** {2 Run bookkeeping (filled in by the driver)} *)

(** Copy the engine's deterministic counters into the profiler. *)
val set_engine_stats :
  t -> events:int -> scheduled:int -> cancelled:int -> queue_peak:int -> unit

(** Add wall seconds spent inside the run loop (drives events/s). *)
val add_run_wall : t -> float -> unit

(** Observability meta-counters: spans recorded and timeseries samples
    taken during the run. *)
val set_meta : t -> ?spans_created:int -> ?samples_taken:int -> unit -> unit

(** Count exported trace bytes (call next to the export). *)
val add_trace_bytes : t -> int -> unit

(** {2 Report} *)

type row = {
  r_label : string;
  r_events : int;
  r_wall_ms : float;
  r_wall_share : float;  (** of summed bucket self time; 0 when none *)
  r_alloc_w : float;
  r_alloc_share : float;
}

type report = {
  p_events : int;  (** engine events executed (deterministic) *)
  p_scheduled : int;  (** timers scheduled (deterministic) *)
  p_cancelled : int;  (** cancelled timers discarded (deterministic) *)
  p_queue_peak : int;  (** event-queue high-water depth (deterministic) *)
  p_wall_s : float;  (** wall time inside the run loop *)
  p_events_per_sec : float;  (** 0 when no measurable wall time *)
  p_self_wall_s : float;  (** sum of bucket self times *)
  p_alloc_words : float;  (** words allocated inside profiled events *)
  p_heap_peak_words : int;
      (** max major-heap words observed at event boundaries *)
  p_spans_created : int;
  p_samples_taken : int;
  p_trace_bytes : int;
  p_buckets : row list;  (** first-seen (deterministic) order *)
}

val report : t -> report

(** One-line JSON. [extra] key/value pairs (values pre-rendered JSON)
    are spliced in after ["type"] — technique, seed, etc. Bucket
    [wall_share]s sum to ~1.0 whenever any self time was measured, and
    [alloc_share]s likewise. *)
val report_to_json : ?extra:(string * string) list -> report -> string

(** Field names whose values are wall-clock- or environment-derived and
    hence non-deterministic run to run. *)
val nondeterministic_fields : string list

(** Rewrite every non-deterministic ["field":number] in a profile JSON
    string to ["field":0], so same-seed outputs compare byte-equal. *)
val normalize_json : string -> string

val pp_row : Format.formatter -> row -> unit
val pp_report : Format.formatter -> report -> unit
