type latency =
  | Constant of Simtime.t
  | Uniform of Simtime.t * Simtime.t
  | Exponential of { floor : Simtime.t; mean : Simtime.t }

type config = { latency : latency; drop_probability : float }

let default_config =
  {
    latency = Uniform (Simtime.of_us 500, Simtime.of_us 1_500);
    drop_probability = 0.0;
  }

type drop_cause = Loss | Crashed | Partitioned

let drop_cause_name = function
  | Loss -> "loss"
  | Crashed -> "crashed"
  | Partitioned -> "partitioned"

type handler = src:int -> Msg.t -> bool

type t = {
  engine : Engine.t;
  n : int;
  rng : Rng.t;
  mutable latency : latency;
  mutable drop_probability : float;
  mutable msg_spans : Span.t option;
      (** collector for per-message spans; [None] = don't record *)
  mutable tracing : bool;
      (** master switch for span/trace recording; spans never influence
          the event schedule, so flipping this is behaviour-preserving *)
  mutable timeseries : Timeseries.t option;
      (** sampler resource gauges register into; [None] = don't sample *)
  in_flight : int array;  (** scheduled-not-yet-delivered, per destination *)
  handlers : handler list array;  (** most recent first *)
  link_latency : (int * int, latency) Hashtbl.t;  (** per-link overrides *)
  alive : bool array;
  group_of : int array;  (** partition group; all 0 when healed *)
  mutable sent : int;
  mutable delivered : int;
  mutable drop_loss : int;
  mutable drop_crashed : int;
  mutable drop_partitioned : int;
  mutable crash_watchers : (int -> unit) list;  (** most recent first *)
  mutable recover_watchers : (int -> unit) list;
}

let create engine ~n (config : config) =
  {
    engine;
    n;
    rng = Rng.split (Engine.rng engine);
    latency = config.latency;
    drop_probability = config.drop_probability;
    msg_spans = None;
    tracing = true;
    timeseries = None;
    in_flight = Array.make n 0;
    handlers = Array.make n [];
    link_latency = Hashtbl.create 8;
    alive = Array.make n true;
    group_of = Array.make n 0;
    sent = 0;
    delivered = 0;
    drop_loss = 0;
    drop_crashed = 0;
    drop_partitioned = 0;
    crash_watchers = [];
    recover_watchers = [];
  }

let engine t = t.engine
let size t = t.n
let rng t = t.rng
let set_msg_spans t spans = t.msg_spans <- Some spans
let set_tracing t on = t.tracing <- on
let tracing t = t.tracing
let timeseries t = t.timeseries

(* Installing a sampler also registers the network's own gauges: the
   per-endpoint in-flight message count and the running drop total.
   Subsystems built afterwards find the sampler via [timeseries] and
   register their queues themselves. *)
let set_timeseries t ts =
  t.timeseries <- Some ts;
  for dst = 0 to t.n - 1 do
    Timeseries.register ts ~name:"net_in_flight" ~replica:dst
      ~kind:Timeseries.Queue ~unit_:"messages" (fun () ->
        float_of_int t.in_flight.(dst))
  done;
  Timeseries.register ts ~name:"net_dropped_total" ~replica:(-1)
    ~kind:Timeseries.Level ~unit_:"messages" (fun () ->
      float_of_int (t.drop_loss + t.drop_crashed + t.drop_partitioned))
let add_handler t node h = t.handlers.(node) <- h :: t.handlers.(node)
let alive t node = t.alive.(node)

let guard t node f () = if t.alive.(node) then f ()

let draw_from t model =
  match model with
  | Constant d -> d
  | Uniform (lo, hi) ->
      Simtime.of_us (Rng.range t.rng (Simtime.to_us lo) (Simtime.to_us hi))
  | Exponential { floor; mean } ->
      let extra = Rng.exponential t.rng ~mean:(Simtime.to_ms mean) in
      Simtime.add floor (Simtime.of_sec (extra /. 1_000.))

let draw_latency t ~src ~dst =
  let model =
    match Hashtbl.find_opt t.link_latency (min src dst, max src dst) with
    | Some m -> m
    | None -> t.latency
  in
  draw_from t model

let set_link_latency t a b model =
  Hashtbl.replace t.link_latency (min a b, max a b) model

let clear_link_latencies t = Hashtbl.reset t.link_latency

let reachable t src dst = t.group_of.(src) = t.group_of.(dst)

(* Open a message span when a collector is installed and the sender runs
   under a causal context: the span's parent is whatever span caused the
   send (the delivered message upstream, or the transaction root at
   submit time). Context-free traffic — maintenance timers armed at
   setup — is deliberately unattributed. *)
let open_msg_span t ~src msg =
  if not t.tracing then None
  else
  match (t.msg_spans, Engine.ctx t.engine) with
  | Some spans, Some { Engine.trace; span = parent } ->
      let at = Engine.now t.engine in
      let id =
        Span.start_span spans ~trace ~parent ~track:src
          ~name:("msg:" ^ Msg.name msg) at
      in
      Span.add_event spans id ~at ~track:src "send";
      Some (spans, id, trace)
  | _ -> None

let span_drop span ~at ~dst cause =
  match span with
  | None -> ()
  | Some (spans, id, _) ->
      Span.add_event spans id ~at ~track:dst ("drop:" ^ drop_cause_name cause);
      Span.finish spans id at

let count_drop t cause =
  match cause with
  | Loss -> t.drop_loss <- t.drop_loss + 1
  | Crashed -> t.drop_crashed <- t.drop_crashed + 1
  | Partitioned -> t.drop_partitioned <- t.drop_partitioned + 1

let deliver t ~src ~dst ~span msg =
  if not t.alive.(dst) then begin
    count_drop t Crashed;
    span_drop span ~at:(Engine.now t.engine) ~dst Crashed
  end
  else if not (reachable t src dst) then begin
    count_drop t Partitioned;
    span_drop span ~at:(Engine.now t.engine) ~dst Partitioned
  end
  else begin
    t.delivered <- t.delivered + 1;
    let at = Engine.now t.engine in
    let ctx =
      match span with
      | None -> Engine.ctx t.engine
      | Some (spans, id, trace) ->
          Span.add_event spans id ~at ~track:dst "deliver";
          Span.finish spans id at;
          Some { Engine.trace; span = id }
    in
    let rec dispatch = function
      | [] -> ()
      | h :: rest -> if not (h ~src msg) then dispatch rest
    in
    (* Handlers run under the delivered message's span: anything they
       send (or schedule) is causally attributed to this message. *)
    Engine.with_ctx t.engine ctx (fun () -> dispatch t.handlers.(dst))
  end

let send t ~src ~dst msg =
  if t.alive.(src) then begin
    t.sent <- t.sent + 1;
    let span = open_msg_span t ~src msg in
    if not (reachable t src dst) then begin
      count_drop t Partitioned;
      span_drop span ~at:(Engine.now t.engine) ~dst Partitioned
    end
    else if Rng.float t.rng 1.0 < t.drop_probability then begin
      count_drop t Loss;
      span_drop span ~at:(Engine.now t.engine) ~dst Loss
    end
    else begin
      let delay = if src = dst then Simtime.zero else draw_latency t ~src ~dst in
      t.in_flight.(dst) <- t.in_flight.(dst) + 1;
      ignore
        (Engine.schedule t.engine ~label:"net:deliver" ~after:delay (fun () ->
             t.in_flight.(dst) <- t.in_flight.(dst) - 1;
             deliver t ~src ~dst ~span msg))
    end
  end

let multicast t ~src ~dsts msg = List.iter (fun dst -> send t ~src ~dst msg) dsts

let on_crash t f = t.crash_watchers <- f :: t.crash_watchers
let on_recover t f = t.recover_watchers <- f :: t.recover_watchers

let crash t node =
  if t.alive.(node) then begin
    t.alive.(node) <- false;
    List.iter (fun f -> f node) (List.rev t.crash_watchers)
  end

let recover t node =
  if not t.alive.(node) then begin
    t.alive.(node) <- true;
    List.iter (fun f -> f node) (List.rev t.recover_watchers)
  end

let partition t group =
  Array.fill t.group_of 0 t.n 0;
  List.iter (fun node -> t.group_of.(node) <- 1) group

let heal t = Array.fill t.group_of 0 t.n 0

let set_drop_probability t p = t.drop_probability <- p
let drop_probability t = t.drop_probability
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.drop_loss + t.drop_crashed + t.drop_partitioned
let dropped_loss t = t.drop_loss
let dropped_crashed t = t.drop_crashed
let dropped_partitioned t = t.drop_partitioned

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.drop_loss <- 0;
  t.drop_crashed <- 0;
  t.drop_partitioned <- 0
