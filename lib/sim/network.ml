type latency =
  | Constant of Simtime.t
  | Uniform of Simtime.t * Simtime.t
  | Exponential of { floor : Simtime.t; mean : Simtime.t }

type config = {
  latency : latency;
  drop_probability : float;
  trace_messages : bool;
}

let default_config =
  {
    latency = Uniform (Simtime.of_us 500, Simtime.of_us 1_500);
    drop_probability = 0.0;
    trace_messages = false;
  }

type handler = src:int -> Msg.t -> bool

type t = {
  engine : Engine.t;
  n : int;
  tracer : Tracer.t;
  rng : Rng.t;
  mutable latency : latency;
  mutable drop_probability : float;
  trace_messages : bool;
  handlers : handler list array;  (** most recent first *)
  link_latency : (int * int, latency) Hashtbl.t;  (** per-link overrides *)
  alive : bool array;
  group_of : int array;  (** partition group; all 0 when healed *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable crash_watchers : (int -> unit) list;  (** most recent first *)
  mutable recover_watchers : (int -> unit) list;
}

let create engine ~n ?tracer (config : config) =
  let tracer = match tracer with Some tr -> tr | None -> Tracer.create () in
  {
    engine;
    n;
    tracer;
    rng = Rng.split (Engine.rng engine);
    latency = config.latency;
    drop_probability = config.drop_probability;
    trace_messages = config.trace_messages;
    handlers = Array.make n [];
    link_latency = Hashtbl.create 8;
    alive = Array.make n true;
    group_of = Array.make n 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    crash_watchers = [];
    recover_watchers = [];
  }

let engine t = t.engine
let size t = t.n
let tracer t = t.tracer
let rng t = t.rng
let add_handler t node h = t.handlers.(node) <- h :: t.handlers.(node)
let alive t node = t.alive.(node)

let guard t node f () = if t.alive.(node) then f ()

let draw_from t model =
  match model with
  | Constant d -> d
  | Uniform (lo, hi) ->
      Simtime.of_us (Rng.range t.rng (Simtime.to_us lo) (Simtime.to_us hi))
  | Exponential { floor; mean } ->
      let extra = Rng.exponential t.rng ~mean:(Simtime.to_ms mean) in
      Simtime.add floor (Simtime.of_sec (extra /. 1_000.))

let draw_latency t ~src ~dst =
  let model =
    match Hashtbl.find_opt t.link_latency (min src dst, max src dst) with
    | Some m -> m
    | None -> t.latency
  in
  draw_from t model

let set_link_latency t a b model =
  Hashtbl.replace t.link_latency (min a b, max a b) model

let clear_link_latencies t = Hashtbl.reset t.link_latency

let reachable t src dst = t.group_of.(src) = t.group_of.(dst)

let trace t label info =
  if t.trace_messages then
    Tracer.record t.tracer ~time:(Engine.now t.engine) ~label info

let deliver t ~src ~dst msg =
  if t.alive.(dst) && reachable t src dst then begin
    t.delivered <- t.delivered + 1;
    trace t "net.deliver" (Printf.sprintf "%d->%d" src dst);
    let rec dispatch = function
      | [] -> ()
      | h :: rest -> if not (h ~src msg) then dispatch rest
    in
    dispatch t.handlers.(dst)
  end
  else begin
    t.dropped <- t.dropped + 1;
    trace t "net.drop" (Printf.sprintf "%d->%d (dead or partitioned)" src dst)
  end

let send t ~src ~dst msg =
  if t.alive.(src) then begin
    t.sent <- t.sent + 1;
    trace t "net.send" (Printf.sprintf "%d->%d" src dst);
    if (not (reachable t src dst)) || Rng.float t.rng 1.0 < t.drop_probability
    then begin
      t.dropped <- t.dropped + 1;
      trace t "net.drop" (Printf.sprintf "%d->%d (in flight)" src dst)
    end
    else begin
      let delay = if src = dst then Simtime.zero else draw_latency t ~src ~dst in
      ignore
        (Engine.schedule t.engine ~after:delay (fun () ->
             deliver t ~src ~dst msg))
    end
  end

let multicast t ~src ~dsts msg = List.iter (fun dst -> send t ~src ~dst msg) dsts

let on_crash t f = t.crash_watchers <- f :: t.crash_watchers
let on_recover t f = t.recover_watchers <- f :: t.recover_watchers

let crash t node =
  if t.alive.(node) then begin
    t.alive.(node) <- false;
    Tracer.record t.tracer ~time:(Engine.now t.engine) ~node ~label:"node.crash"
      "";
    List.iter (fun f -> f node) (List.rev t.crash_watchers)
  end

let recover t node =
  if not t.alive.(node) then begin
    t.alive.(node) <- true;
    Tracer.record t.tracer ~time:(Engine.now t.engine) ~node
      ~label:"node.recover" "";
    List.iter (fun f -> f node) (List.rev t.recover_watchers)
  end

let partition t group =
  Array.fill t.group_of 0 t.n 0;
  List.iter (fun node -> t.group_of.(node) <- 1) group;
  Tracer.record t.tracer ~time:(Engine.now t.engine) ~label:"net.partition"
    (String.concat "," (List.map string_of_int group))

let heal t =
  Array.fill t.group_of 0 t.n 0;
  Tracer.record t.tracer ~time:(Engine.now t.engine) ~label:"net.heal" ""

let set_drop_probability t p = t.drop_probability <- p
let drop_probability t = t.drop_probability
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0
