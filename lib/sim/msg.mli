(** Extensible message payload type.

    Each protocol layer extends [t] with its own constructors; a node's
    handler stack pattern-matches on the constructors it owns and leaves
    the rest to lower layers (see {!Network.add_handler}). Instances of
    the same module are distinguished by an instance id carried inside
    the constructor (conventionally [gid] or [cid]). *)

type t = ..

(** Constructors used by the simulator's own tests. *)
type t += Ping of int | Pong of int

(** [name msg] — a human-readable name for [msg], used to label message
    spans. Tries registered printers (most recent first), falling back to
    the extension constructor's name with the module path stripped. *)
val name : t -> string

(** Layers whose constructors wrap a payload register a printer that
    unwraps it recursively (returning [None] for foreign constructors),
    so a span reads e.g. ["Data(Inject(Req))"] — transport, ordering and
    protocol layer at a glance. *)
val register_printer : (t -> string option) -> unit
