(* Saturation/anomaly detection over sampled time-series.

   Each {!Timeseries.kind} has one detector shape:
   - Queue: a sustained non-decreasing run with a significant net rise
     (a backlog that keeps growing instead of draining);
   - Waiters: a convoy — the waiter count stays at/above a threshold for
     many consecutive samples;
   - Window: a condition that is healthy only briefly (2PC in-doubt)
     staying positive longer than its budget;
   - Level/Flag: no detector (monotone or informational). *)

type config = {
  queue_min_run : int;
  queue_min_rise : float;
  waiters_threshold : float;
  waiters_min_run : int;
  window_max : Simtime.t;
}

(* Defaults tuned so healthy closed-loop runs stay clean: startup and
   multicast bursts drain within a handful of samples, so a queue run
   must outlast them (10 samples = 50 ms at the default interval) and
   accumulate a real backlog before it counts. *)
let default =
  {
    queue_min_run = 10;
    queue_min_rise = 5.;
    waiters_threshold = 2.;
    waiters_min_run = 10;
    window_max = Simtime.of_ms 200;
  }

type finding = {
  detector : string;
  metric : string;
  replica : int;
  at : Simtime.t;
  until : Simtime.t;
  peak : float;
  detail : string;
}

(* Maximal runs of consecutive points satisfying [keep prev p] (with
   [start p] deciding whether a point can open a run); calls [emit] with
   each run in chronological order. *)
let runs ~start ~keep ~emit points =
  let flush run =
    match List.rev run with [] -> () | first :: _ as pts -> emit first pts
  in
  let rec go run prev = function
    | [] -> flush run
    | (p : Timeseries.point) :: rest -> (
        match (run, prev) with
        | [], _ -> if start p then go [ p ] (Some p) rest else go [] None rest
        | _, Some pr when keep pr p -> go (p :: run) (Some p) rest
        | _, _ ->
            flush run;
            if start p then go [ p ] (Some p) rest else go [] None rest)
  in
  go [] None points

let last = function [] -> invalid_arg "last" | l -> List.nth l (List.length l - 1)

let peak_of pts =
  List.fold_left (fun acc (p : Timeseries.point) -> Stdlib.max acc p.value) 0. pts

let queue_findings cfg (s : Timeseries.series) =
  let out = ref [] in
  runs
    ~start:(fun _ -> true)
    ~keep:(fun (pr : Timeseries.point) (p : Timeseries.point) ->
      p.value >= pr.value)
    ~emit:(fun (first : Timeseries.point) pts ->
      let lastp : Timeseries.point = last pts in
      let rise = lastp.value -. first.value in
      if List.length pts >= cfg.queue_min_run && rise >= cfg.queue_min_rise then
        out :=
          {
            detector = "queue_growth";
            metric = s.name;
            replica = s.replica;
            at = first.at;
            until = lastp.at;
            peak = peak_of pts;
            detail =
              Printf.sprintf "grew %g -> %g over %d samples without draining"
                first.value lastp.value (List.length pts);
          }
          :: !out)
    (Timeseries.points s);
  List.rev !out

let waiters_findings cfg (s : Timeseries.series) =
  let out = ref [] in
  let above (p : Timeseries.point) = p.value >= cfg.waiters_threshold in
  runs ~start:above
    ~keep:(fun _ p -> above p)
    ~emit:(fun (first : Timeseries.point) pts ->
      if List.length pts >= cfg.waiters_min_run then
        let lastp : Timeseries.point = last pts in
        out :=
          {
            detector = "waiter_convoy";
            metric = s.name;
            replica = s.replica;
            at = first.at;
            until = lastp.at;
            peak = peak_of pts;
            detail =
              Printf.sprintf ">= %g waiters for %d consecutive samples"
                cfg.waiters_threshold (List.length pts);
          }
          :: !out)
    (Timeseries.points s);
  List.rev !out

let window_findings cfg (s : Timeseries.series) =
  let out = ref [] in
  let positive (p : Timeseries.point) = p.value > 0. in
  runs ~start:positive
    ~keep:(fun _ p -> positive p)
    ~emit:(fun (first : Timeseries.point) pts ->
      let lastp : Timeseries.point = last pts in
      let dur = Simtime.sub lastp.at first.at in
      if Simtime.(dur > cfg.window_max) then
        out :=
          {
            detector = "window_overrun";
            metric = s.name;
            replica = s.replica;
            at = first.at;
            until = lastp.at;
            peak = peak_of pts;
            detail =
              Printf.sprintf "positive for %s (budget %s)"
                (Simtime.to_string dur)
                (Simtime.to_string cfg.window_max);
          }
          :: !out)
    (Timeseries.points s);
  List.rev !out

(* Replication lag must reach zero by the end of the run (the runner
   appends a quiescence period for exactly this): a [version_lag] series
   whose final sample is still positive means some replica never saw
   writes the rest of its group committed — unbounded staleness, the
   lazy-replication failure mode the audit layer exists to catch. *)
let lag_findings (s : Timeseries.series) =
  match List.rev (Timeseries.points s) with
  | ({ value; _ } : Timeseries.point) :: _ as rev_pts when value > 0. ->
      let rec run_start acc = function
        | (p : Timeseries.point) :: rest when p.value > 0. ->
            run_start p rest
        | _ -> acc
      in
      let first = run_start (List.hd rev_pts) (List.tl rev_pts) in
      let lastp = List.hd rev_pts in
      [
        {
          detector = "lag_undrained";
          metric = s.name;
          replica = s.replica;
          at = first.Timeseries.at;
          until = lastp.Timeseries.at;
          peak = peak_of rev_pts;
          detail =
            Printf.sprintf
              "version lag still %g at end of run (never drained)"
              lastp.Timeseries.value;
        };
      ]
  | _ -> []

let analyze_series cfg (s : Timeseries.series) =
  let lag = if s.name = "version_lag" then lag_findings s else [] in
  lag
  @
  match s.kind with
  | Timeseries.Queue -> queue_findings cfg s
  | Timeseries.Waiters -> waiters_findings cfg s
  | Timeseries.Window -> window_findings cfg s
  | Timeseries.Level | Timeseries.Flag -> []

let analyze ?(config = default) series =
  List.concat_map (analyze_series config) series

let finding_to_json f =
  Printf.sprintf
    "{\"type\":\"finding\",\"detector\":\"%s\",\"metric\":\"%s\",\"replica\":%d,\"at_us\":%d,\"until_us\":%d,\"peak\":%s,\"detail\":\"%s\"}"
    (Metrics.json_escape f.detector)
    (Metrics.json_escape f.metric)
    f.replica (Simtime.to_us f.at) (Simtime.to_us f.until)
    (Metrics.json_float f.peak)
    (Metrics.json_escape f.detail)

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s r%d %s..%s peak=%g: %s" f.detector f.metric
    f.replica (Simtime.to_string f.at) (Simtime.to_string f.until) f.peak
    f.detail
