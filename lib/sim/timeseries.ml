(* Sampled resource time-series, driven by the simulation clock.

   Subsystems register gauge thunks (queue depths, lock counts, flags);
   a periodic sampler polls every registered thunk at a fixed virtual
   interval and records (sim_time, value) points. Everything is keyed to
   the engine's clock — no wall time — so a run's timelines are exactly
   reproducible for a given seed. *)

type kind = Queue | Level | Flag | Waiters | Window

let kind_to_string = function
  | Queue -> "queue"
  | Level -> "level"
  | Flag -> "flag"
  | Waiters -> "waiters"
  | Window -> "window"

type point = { at : Simtime.t; value : float }

type series = {
  name : string;
  replica : int;
  kind : kind;
  unit_ : string;
  mutable points_rev : point list;
  mutable n_points : int;
  mutable thunks : (unit -> float) list;
}

type t = {
  engine : Engine.t;
  interval : Simtime.t;
  table : (string * int, series) Hashtbl.t;
  mutable order : (string * int) list; (* registration order, reversed *)
  max_points : int;
  mutable total_points : int; (* points recorded across all series *)
}

let interval t = t.interval

(* A registration after sampling has begun would leave the new series
   with fewer points than its peers; that is fine — points carry their
   own timestamps — but the cap guards runaway memory on long runs. *)
let register t ~name ~replica ~kind ?(unit_ = "count") thunk =
  let key = (name, replica) in
  match Hashtbl.find_opt t.table key with
  | Some s ->
      (* Same logical gauge registered twice (e.g. one per group member
         on the same node): sample the sum. *)
      s.thunks <- thunk :: s.thunks
  | None ->
      let s =
        { name; replica; kind; unit_; points_rev = []; n_points = 0; thunks = [ thunk ] }
      in
      Hashtbl.replace t.table key s;
      t.order <- key :: t.order

let sample_once t =
  let at = Engine.now t.engine in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.table key with
      | None -> ()
      | Some s ->
          if s.n_points < t.max_points then begin
            let v = List.fold_left (fun acc f -> acc +. f ()) 0. s.thunks in
            s.points_rev <- { at; value = v } :: s.points_rev;
            s.n_points <- s.n_points + 1;
            t.total_points <- t.total_points + 1
          end)
    (List.rev t.order)

let create ?(interval = Simtime.of_ms 5) ?(max_points = 50_000) engine =
  let t =
    {
      engine;
      interval;
      table = Hashtbl.create 32;
      order = [];
      max_points;
      total_points = 0;
    }
  in
  (* Take a sample at t=0 too, so series start at the origin; periodic
     timers first fire one interval in. *)
  ignore
    (Engine.schedule engine ~label:"sim:sample" ~after:Simtime.zero (fun () ->
         sample_once t));
  ignore
    (Engine.periodic engine ~label:"sim:sample" ~every:interval (fun () ->
         sample_once t));
  t

let points s = List.rev s.points_rev
let total_points t = t.total_points

let series t =
  t.order |> List.rev
  |> List.filter_map (fun key -> Hashtbl.find_opt t.table key)
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 -> compare a.replica b.replica
         | c -> c)

let find t ~name ~replica = Hashtbl.find_opt t.table (name, replica)

(* JSON ------------------------------------------------------------- *)

(* Points render as [sim_us, value] pairs with the value printed via
   Metrics.json_float — integer-valued floats print exactly, so output
   is byte-stable across runs with the same seed. *)
let series_to_json (s : series) =
  let pts =
    points s
    |> List.map (fun p ->
           Printf.sprintf "[%d,%s]" (Simtime.to_us p.at)
             (Metrics.json_float p.value))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"type\":\"series\",\"metric\":\"%s\",\"replica\":%d,\"kind\":\"%s\",\"unit\":\"%s\",\"points\":[%s]}"
    (Metrics.json_escape s.name) s.replica (kind_to_string s.kind)
    (Metrics.json_escape s.unit_) pts

let max_value s =
  List.fold_left (fun acc p -> Stdlib.max acc p.value) 0. s.points_rev
