(** The shared sample-summary record: count, mean and nearest-rank
    quantiles. {!Workload.Stats} re-exports it for the benchmark harness
    and {!Metrics} renders histogram snapshots through it, so percentile
    arithmetic exists exactly once. *)

type t = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

(** The [count = 0] sentinel: every statistic is [0.]; consumers must
    check [count] before reading quantiles. *)
val empty : t

(** A single sample is every quantile of itself. *)
val of_constant : float -> t

(** Nearest-rank quantile of a sorted array ([0. <= p <= 1.]), clamped
    to the array ends; [0.] on the empty array. *)
val percentile : float array -> float -> float

(** Summarise a batch of samples (order-independent). The empty batch is
    {!empty}; a one-sample batch is {!of_constant} of that sample —
    neither produces NaN or mixed zero/real quantiles. *)
val summarize : float list -> t

val pp : Format.formatter -> t -> unit
