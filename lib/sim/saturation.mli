(** Saturation/anomaly detectors over sampled {!Timeseries}.

    One detector per gauge kind: sustained queue growth ([Queue]),
    lock-waiter convoys ([Waiters]) and over-long in-doubt windows
    ([Window]). [Level]/[Flag] series are informational only. A series
    named ["version_lag"] (the consistency audit's per-replica staleness
    gauge) additionally gets the [lag_undrained] detector: its final
    sample must be zero, or the replica never caught up. *)

type config = {
  queue_min_run : int;  (** Samples a queue must keep (non-strictly) growing. *)
  queue_min_rise : float;  (** Net rise the run must accumulate. *)
  waiters_threshold : float;  (** Waiter count that counts as a convoy. *)
  waiters_min_run : int;  (** Consecutive samples at/above the threshold. *)
  window_max : Simtime.t;  (** Longest healthy positive window. *)
}

val default : config

type finding = {
  detector : string;
      (** ["queue_growth" | "waiter_convoy" | "window_overrun" |
          "lag_undrained"]. *)
  metric : string;
  replica : int;
  at : Simtime.t;  (** Start of the offending run. *)
  until : Simtime.t;  (** Last sample of the run. *)
  peak : float;
  detail : string;
}

(** Findings across all series, in (series, time) order. *)
val analyze : ?config:config -> Timeseries.series list -> finding list

val finding_to_json : finding -> string
val pp_finding : Format.formatter -> finding -> unit
