(** Sampled resource time-series driven by the simulation clock.

    Subsystems register gauge thunks ({!register}); a periodic sampler
    polls them at a fixed virtual interval and records
    [(sim_time, value)] points per [(metric, replica)] series. Sampling
    follows the engine's virtual clock only, so timelines are exactly
    reproducible for a given seed. *)

(** What the gauge measures — drives which {!Saturation} detector
    applies:
    - [Queue]: a backlog that should drain (message/pending queues)
    - [Level]: a monotone or free-running level (view id, store size)
    - [Flag]: a 0/1 condition (view-change flush in progress)
    - [Waiters]: entities blocked behind a resource (lock waiters)
    - [Window]: a condition with a bounded healthy duration (2PC
      in-doubt). *)
type kind = Queue | Level | Flag | Waiters | Window

val kind_to_string : kind -> string

type point = { at : Simtime.t; value : float }

type series = {
  name : string;
  replica : int;  (** [-1] for whole-system series. *)
  kind : kind;
  unit_ : string;
  mutable points_rev : point list;
  mutable n_points : int;
  mutable thunks : (unit -> float) list;
}

type t

(** [create engine] starts sampling immediately: once at the current
    instant, then every [interval] (default 5ms of virtual time) until
    the run ends. [max_points] (default 50k) caps each series. *)
val create : ?interval:Simtime.t -> ?max_points:int -> Engine.t -> t

val interval : t -> Simtime.t

(** [register t ~name ~replica ~kind thunk] adds a gauge. Registering
    the same [(name, replica)] twice sums the thunks into one series
    (e.g. one registration per group member living on the same node). *)
val register :
  t -> name:string -> replica:int -> kind:kind -> ?unit_:string ->
  (unit -> float) -> unit

(** All series sorted by (name, replica). *)
val series : t -> series list

val find : t -> name:string -> replica:int -> series option

(** Points in chronological order. *)
val points : series -> point list

(** Points recorded across all series so far (deterministic; feeds the
    profiler's samples-taken meta counter). *)
val total_points : t -> int

val max_value : series -> float

(** One JSON object per series; points as [[sim_us, value]] pairs
    (integer microseconds — byte-stable for a fixed seed). *)
val series_to_json : series -> string
