(** Per-transaction message DAG analysis.

    {!Network} records every traced send as a message span; the parent
    chain follows causality (a message's parent is the span on whose
    behalf it was sent). This module reconstructs, per transaction: the
    message census, the communication-step depth — the longest causal
    message chain from request to the client's reply — and the critical
    path itself, which is exactly the ancestry of the reply that resolved
    the transaction.

    This is the measurement side of the paper's §5 comparison: message
    counts and step depths come only from observed, causally-linked
    message spans (the claim side lives in {!Core.Technique.info}). *)

(** One point-to-point message, reconstructed from its span. *)
type msg = {
  span : Span.span;
  label : string;  (** message name, transport wrappers included *)
  src : int;
  dst : int option;  (** destination, once known (deliver or drop event) *)
  delivered : bool;
  drop : string option;  (** drop cause, when the message was dropped *)
}

(** [s] is a message span (name ["msg:..."]). *)
val is_msg_span : Span.span -> bool

(** Reconstruct one message from its span ([is_msg_span] must hold). *)
val of_span : Span.span -> msg

(** All messages of [trace], in send order. *)
val messages : Span.t -> trace:int -> msg list

(** [dst = Some src] — zero-latency loopback, excluded from the census. *)
val is_self : msg -> bool

(** Stubborn-channel acknowledgement — transport bookkeeping, counted
    separately from the technique's §5 message complexity. *)
val is_transport_ack : msg -> bool

type summary = {
  rid : int;
  sends : int;  (** every traced point-to-point send *)
  messages : int;
      (** §5-comparable count: delivered, excluding self-addressed
          messages and transport acks *)
  transport_acks : int;
  self_sends : int;
  dropped : int;
  steps : int;  (** communication-step depth of the critical path *)
  critical_path : msg list;  (** in causal order, ending at the reply *)
  replied : bool;  (** a message reached the client *)
}

(** [analyze t ~trace ~clients] — [clients] tells the analysis which
    endpoints are clients, so it can identify the resolving reply (the
    first message delivered to a client). *)
val analyze : Span.t -> trace:int -> clients:int list -> summary

(** Structural invariants of a message trace (the property-test oracle):
    every delivered message span has a parent in the same trace, and a
    dropped message causes nothing — no span claims it as parent. *)
val causally_sound : Span.t -> trace:int -> bool
