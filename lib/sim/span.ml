type id = int

type event = { at : Simtime.t; track : int option; note : string }

type span = {
  id : id;
  trace : int;
  name : string;
  parent : id option;
  track : int option;
  start : Simtime.t;
  mutable stop : Simtime.t option;
  mutable rev_events : event list;
}

type t = {
  by_id : (id, span) Hashtbl.t;
  mutable rev_spans : span list;
  mutable next_id : id;
}

let create () = { by_id = Hashtbl.create 256; rev_spans = []; next_id = 0 }

let start_span t ~trace ?parent ?track ~name start =
  let id = t.next_id in
  t.next_id <- id + 1;
  let span = { id; trace; name; parent; track; start; stop = None; rev_events = [] } in
  Hashtbl.replace t.by_id id span;
  t.rev_spans <- span :: t.rev_spans;
  id

let find t id = Hashtbl.find_opt t.by_id id

let add_event t id ~at ?track note =
  match find t id with
  | None -> ()
  | Some span -> span.rev_events <- { at; track; note } :: span.rev_events

let finish t id stop =
  match find t id with
  | None -> ()
  | Some span -> (
      match span.stop with
      | None -> span.stop <- Some stop
      | Some prev -> if Simtime.(stop > prev) then span.stop <- Some stop)

let count t = t.next_id
let spans t = List.rev t.rev_spans
let events span = List.rev span.rev_events

let trace_spans t ~trace =
  List.filter (fun s -> s.trace = trace) (spans t)

let open_spans t = List.filter (fun s -> s.stop = None) (spans t)

let finish_all t stop =
  List.iter (fun s -> if s.stop = None then s.stop <- Some stop) t.rev_spans

let traces t =
  List.fold_left
    (fun acc s -> if List.mem s.trace acc then acc else s.trace :: acc)
    [] t.rev_spans
  |> List.rev

let duration_ms span =
  match span.stop with
  | None -> None
  | Some stop -> Some (Simtime.to_ms (Simtime.sub stop span.start))

(* A trace is well nested when every span's parent exists in the same
   trace and every closed child interval lies within its parent's
   interval (open spans trivially violate nesting: callers are expected
   to [finish_all] first). *)
let well_nested t ~trace =
  let ss = trace_spans t ~trace in
  List.for_all
    (fun s ->
      match s.parent with
      | None -> s.stop <> None
      | Some pid -> (
          match find t pid with
          | None -> false
          | Some p -> (
              p.trace = trace
              && Simtime.(s.start >= p.start)
              &&
              match (s.stop, p.stop) with
              | Some cs, Some ps -> Simtime.(cs <= ps)
              | _ -> false)))
    ss

let pp_span ppf s =
  let track = match s.track with None -> "client" | Some r -> "r" ^ string_of_int r in
  let stop =
    match s.stop with None -> "open" | Some st -> Simtime.to_string st
  in
  Format.fprintf ppf "[%d] trace=%d %-4s %-6s %s..%s" s.id s.trace s.name track
    (Simtime.to_string s.start) stop
