(* Single home for the sample-summary record and the percentile
   arithmetic: Workload.Stats re-exports this module for the harness and
   Metrics renders histogram snapshots through it, so there is exactly
   one definition of "percentile", "mean" and "max" in the tree. *)

type t = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

let empty =
  {
    count = 0;
    mean = 0.;
    p50 = 0.;
    p90 = 0.;
    p95 = 0.;
    p99 = 0.;
    min = 0.;
    max = 0.;
  }

let of_constant v =
  { count = 1; mean = v; p50 = v; p90 = v; p95 = v; p99 = v; min = v; max = v }

(* Nearest-rank on a sorted array, clamped to the ends: a single sample
   is every quantile of itself, and the empty array has no quantiles at
   all (callers must check [count]). *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

let summarize values =
  match values with
  | [] -> empty
  | [ v ] -> of_constant v
  | _ ->
      let sorted = Array.of_list values in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      let total = Array.fold_left ( +. ) 0. sorted in
      {
        count = n;
        mean = total /. float_of_int n;
        p50 = percentile sorted 0.5;
        p90 = percentile sorted 0.9;
        p95 = percentile sorted 0.95;
        p99 = percentile sorted 0.99;
        min = sorted.(0);
        max = sorted.(n - 1);
      }

let pp ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f p50=%.2f p90=%.2f p95=%.2f p99=%.2f max=%.2f" s.count
    s.mean s.p50 s.p90 s.p95 s.p99 s.max
