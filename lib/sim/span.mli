(** Structured spans: named intervals of simulated time, grouped per trace
    (transaction), linked parent/child and attributed to a track (a replica,
    or the client when [None]).

    The collector is append-only during a run; exporters and analyses read
    the finished spans afterwards (see {!Trace_export}). *)

type id = int

type event = { at : Simtime.t; track : int option; note : string }

type span = {
  id : id;
  trace : int;  (** transaction/request id *)
  name : string;  (** e.g. a {!Core.Phase} code: "RE", "SC", ... *)
  parent : id option;
  track : int option;  (** replica attribution; [None] = client *)
  start : Simtime.t;
  mutable stop : Simtime.t option;  (** [None] while the span is open *)
  mutable rev_events : event list;
}

type t

val create : unit -> t

(** Open a span. Returns its id for later {!finish}/{!add_event}. *)
val start_span :
  t -> trace:int -> ?parent:id -> ?track:int -> name:string -> Simtime.t -> id

(** Attach a point event (e.g. a per-replica phase mark) to an open or
    closed span. Unknown ids are ignored. *)
val add_event : t -> id -> at:Simtime.t -> ?track:int -> string -> unit

(** Close a span. Closing an already-closed span extends its stop time
    monotonically (used for transaction roots whose lazy-propagation tail
    outlives the client response). *)
val finish : t -> id -> Simtime.t -> unit

val find : t -> id -> span option

(** Number of spans ever recorded (deterministic for a given seed). *)
val count : t -> int

(** All spans in start order. *)
val spans : t -> span list

(** Events of a span in recording order. *)
val events : span -> event list

val trace_spans : t -> trace:int -> span list

(** Spans never finished — orphans, unless the run is still in flight. *)
val open_spans : t -> span list

(** Close every open span at [stop] (flush before exporting). *)
val finish_all : t -> Simtime.t -> unit

(** Distinct trace ids in first-seen order. *)
val traces : t -> int list

val duration_ms : span -> float option

(** Every span of [trace] is closed, has an existing parent in the same
    trace (roots excepted) and fits inside its parent's interval. *)
val well_nested : t -> trace:int -> bool

val pp_span : Format.formatter -> span -> unit
