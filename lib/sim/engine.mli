(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of scheduled
    actions. Actions scheduled for the same instant run in scheduling order,
    which (together with {!Rng}) makes whole simulations deterministic. *)

type t

(** Cancellable handle on a scheduled action. *)
type timer

val create : ?seed:int -> unit -> t

val now : t -> Simtime.t

(** The engine's root random generator (see {!Rng.split} to derive
    independent streams for subsystems). *)
val rng : t -> Rng.t

(** Ambient causal context: the transaction ([trace]) and span on whose
    behalf the currently running action executes. {!schedule} captures it
    into the timer and {!step} reinstalls it around the action, so the
    context follows the causal chain through asynchrony without any
    protocol code threading it explicitly. {!Network} overrides it during
    message delivery with the delivered message's span. *)
type ctx = { trace : int; span : int }

(** Context of the currently running action ([None] outside any trace —
    e.g. maintenance timers armed at setup time). *)
val ctx : t -> ctx option

val set_ctx : t -> ctx option -> unit

(** [with_ctx t c f] runs [f] under context [c], restoring the previous
    context afterwards (exception-safe). *)
val with_ctx : t -> ctx option -> (unit -> unit) -> unit

(** [schedule t ~after f] runs [f] at [now t + after]. *)
val schedule : t -> after:Simtime.t -> (unit -> unit) -> timer

(** [schedule_at t ~at f] runs [f] at absolute time [at] (clamped to now). *)
val schedule_at : t -> at:Simtime.t -> (unit -> unit) -> timer

(** [periodic t ~every f] runs [f] every [every] until cancelled. *)
val periodic : t -> every:Simtime.t -> (unit -> unit) -> timer

val cancel : timer -> unit

(** Number of scheduled (uncancelled) events. *)
val pending : t -> int

(** Execute the next event. Returns [false] when the queue is empty. *)
val step : t -> bool

(** [run t] drains the event queue, stopping early when [until] (virtual
    time) or [max_events] is reached. Returns the number of events run. *)
val run : ?until:Simtime.t -> ?max_events:int -> t -> int
