(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of scheduled
    actions. Actions scheduled for the same instant run in scheduling order,
    which (together with {!Rng}) makes whole simulations deterministic. *)

type t

(** Cancellable handle on a scheduled action. *)
type timer

val create : ?seed:int -> unit -> t

val now : t -> Simtime.t

(** The engine's root random generator (see {!Rng.split} to derive
    independent streams for subsystems). *)
val rng : t -> Rng.t

(** Ambient causal context: the transaction ([trace]) and span on whose
    behalf the currently running action executes. {!schedule} captures it
    into the timer and {!step} reinstalls it around the action, so the
    context follows the causal chain through asynchrony without any
    protocol code threading it explicitly. {!Network} overrides it during
    message delivery with the delivered message's span. *)
type ctx = { trace : int; span : int }

(** Context of the currently running action ([None] outside any trace —
    e.g. maintenance timers armed at setup time). *)
val ctx : t -> ctx option

val set_ctx : t -> ctx option -> unit

(** [with_ctx t c f] runs [f] under context [c], restoring the previous
    context afterwards (exception-safe). *)
val with_ctx : t -> ctx option -> (unit -> unit) -> unit

(** [schedule t ~after f] runs [f] at [now t + after]. [label] names the
    profiling bucket the action's self time is attributed to (default
    ["timer"]); it has no effect on scheduling. *)
val schedule : t -> ?label:string -> after:Simtime.t -> (unit -> unit) -> timer

(** [schedule_at t ~at f] runs [f] at absolute time [at] (clamped to now). *)
val schedule_at :
  t -> ?label:string -> at:Simtime.t -> (unit -> unit) -> timer

(** [periodic t ~every f] runs [f] every [every] until cancelled. *)
val periodic : t -> ?label:string -> every:Simtime.t -> (unit -> unit) -> timer

val cancel : timer -> unit

(** Number of scheduled (uncancelled) events. O(1): maintained as a live
    counter on schedule/cancel/dispatch rather than a queue scan. *)
val pending : t -> int

(** O(n) reference implementation of {!pending} (a full heap scan); the
    counter is tested to match it. *)
val pending_scan : t -> int

(** Execute the next event. Returns [false] when the queue is empty. *)
val step : t -> bool

(** [run t] drains the event queue, stopping early when [until] (virtual
    time) or [max_events] is reached. Returns the number of events run. *)
val run : ?until:Simtime.t -> ?max_events:int -> t -> int

(** {2 Profiling}

    When a profiler is attached, {!step} wraps every dispatched action
    with a wall-clock/allocation stamp attributed to its schedule label.
    Without one, dispatch takes the unstamped path (no extra cost beyond
    the deterministic counters below). *)

val set_profiler : t -> Profiler.t option -> unit
val profiler : t -> Profiler.t option

(** {2 Deterministic event-loop statistics}

    Maintained unconditionally (a few int ops per event); exactly
    reproducible across same-seed runs. *)

(** Actions actually executed by {!step}/{!run}. *)
val events_executed : t -> int

(** Timers ever scheduled ({!schedule}/{!schedule_at}, incl. periodic
    re-arms). *)
val timers_scheduled : t -> int

(** Cancelled timers discarded from the queue head so far (an
    undercount of cancellations until the queue drains). *)
val timers_cancelled : t -> int

(** High-water mark of the timer-queue depth. *)
val queue_peak : t -> int
