(* Engine self-profiling: wall-time and allocation attribution for the
   simulator's own hot path.

   The engine wraps every scheduled action it dispatches with a
   caller-supplied label ("net:deliver", "client:arrival",
   "rchan:retransmit", ...) and, when a profiler is attached, stamps a
   wall-clock / GC snapshot around the action and accumulates the deltas
   into per-label buckets. Everything wall-clock-derived is inherently
   non-deterministic; the deterministic event counters live in
   {!Engine} (events executed, timers scheduled/cancelled, queue peak)
   and are copied into the report so one record describes the run.

   Wall time comes from [Unix.gettimeofday] (microsecond resolution —
   individual sub-microsecond actions quantise to 0 or 1 us, but sums
   over many events remain statistically faithful). Allocation comes
   from [Gc.quick_stat] deltas: minor + major - promoted, in words. *)

type bucket = {
  label : string;
  mutable b_events : int;
  mutable b_wall_s : float;
  mutable b_alloc_w : float;
}

type t = {
  buckets : (string, bucket) Hashtbl.t;
  mutable order : string list; (* first-seen order, reversed *)
  mutable attributed : int;
  mutable self_wall_s : float; (* sum over buckets *)
  mutable alloc_w : float; (* sum over buckets *)
  mutable heap_peak_w : int; (* max major-heap words seen at event edges *)
  (* Engine counters, copied in by the driver at the end of the run so
     [report] is self-contained. All deterministic. *)
  mutable events : int;
  mutable scheduled : int;
  mutable cancelled : int;
  mutable queue_peak : int;
  mutable run_wall_s : float; (* wall time inside the run loop *)
  (* Observability-stack meta counters: the cost of watching. *)
  mutable spans_created : int;
  mutable samples_taken : int;
  mutable trace_bytes : int;
}

let create () =
  {
    buckets = Hashtbl.create 32;
    order = [];
    attributed = 0;
    self_wall_s = 0.;
    alloc_w = 0.;
    heap_peak_w = 0;
    events = 0;
    scheduled = 0;
    cancelled = 0;
    queue_peak = 0;
    run_wall_s = 0.;
    spans_created = 0;
    samples_taken = 0;
    trace_bytes = 0;
  }

(* A measurement mark: wall clock and net allocated words at the start
   of the measured region. *)
type mark = { m_wall : float; m_alloc : float }

let allocated_words () =
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

let mark () = { m_wall = Unix.gettimeofday (); m_alloc = allocated_words () }

let bucket t label =
  match Hashtbl.find_opt t.buckets label with
  | Some b -> b
  | None ->
      let b = { label; b_events = 0; b_wall_s = 0.; b_alloc_w = 0. } in
      Hashtbl.replace t.buckets label b;
      t.order <- label :: t.order;
      b

let attribute t ~label m =
  let wall = Unix.gettimeofday () -. m.m_wall in
  let wall = if wall > 0. then wall else 0. in
  let alloc = allocated_words () -. m.m_alloc in
  let alloc = if alloc > 0. then alloc else 0. in
  let b = bucket t label in
  b.b_events <- b.b_events + 1;
  b.b_wall_s <- b.b_wall_s +. wall;
  b.b_alloc_w <- b.b_alloc_w +. alloc;
  t.attributed <- t.attributed + 1;
  t.self_wall_s <- t.self_wall_s +. wall;
  t.alloc_w <- t.alloc_w +. alloc;
  let heap = (Gc.quick_stat ()).Gc.heap_words in
  if heap > t.heap_peak_w then t.heap_peak_w <- heap

let measure t ~label f =
  let m = mark () in
  Fun.protect ~finally:(fun () -> attribute t ~label m) f

let set_engine_stats t ~events ~scheduled ~cancelled ~queue_peak =
  t.events <- events;
  t.scheduled <- scheduled;
  t.cancelled <- cancelled;
  t.queue_peak <- queue_peak

let add_run_wall t s = t.run_wall_s <- t.run_wall_s +. (if s > 0. then s else 0.)

let set_meta t ?spans_created ?samples_taken () =
  Option.iter (fun v -> t.spans_created <- v) spans_created;
  Option.iter (fun v -> t.samples_taken <- v) samples_taken

let add_trace_bytes t n = t.trace_bytes <- t.trace_bytes + n

(* ---- report ---------------------------------------------------------- *)

type row = {
  r_label : string;
  r_events : int;
  r_wall_ms : float;
  r_wall_share : float; (* of the summed bucket self time; 0 when none *)
  r_alloc_w : float;
  r_alloc_share : float;
}

type report = {
  p_events : int;
  p_scheduled : int;
  p_cancelled : int;
  p_queue_peak : int;
  p_wall_s : float; (* run-loop wall time *)
  p_events_per_sec : float; (* 0 when the loop took no measurable time *)
  p_self_wall_s : float;
  p_alloc_words : float;
  p_heap_peak_words : int;
  p_spans_created : int;
  p_samples_taken : int;
  p_trace_bytes : int;
  p_buckets : row list; (* first-seen (deterministic) order *)
}

let report t =
  let rows =
    List.rev t.order
    |> List.filter_map (fun label -> Hashtbl.find_opt t.buckets label)
    |> List.map (fun b ->
           {
             r_label = b.label;
             r_events = b.b_events;
             r_wall_ms = b.b_wall_s *. 1_000.;
             r_wall_share =
               (if t.self_wall_s > 0. then b.b_wall_s /. t.self_wall_s else 0.);
             r_alloc_w = b.b_alloc_w;
             r_alloc_share =
               (if t.alloc_w > 0. then b.b_alloc_w /. t.alloc_w else 0.);
           })
  in
  {
    p_events = t.events;
    p_scheduled = t.scheduled;
    p_cancelled = t.cancelled;
    p_queue_peak = t.queue_peak;
    p_wall_s = t.run_wall_s;
    p_events_per_sec =
      (if t.run_wall_s > 0. then float_of_int t.events /. t.run_wall_s else 0.);
    p_self_wall_s = t.self_wall_s;
    p_alloc_words = t.alloc_w;
    p_heap_peak_words = t.heap_peak_w;
    p_spans_created = t.spans_created;
    p_samples_taken = t.samples_taken;
    p_trace_bytes = t.trace_bytes;
    p_buckets = rows;
  }

(* ---- rendering ------------------------------------------------------- *)

let jf = Metrics.json_float
let esc = Metrics.json_escape

let row_to_json r =
  Printf.sprintf
    "{\"label\":\"%s\",\"events\":%d,\"wall_ms\":%s,\"wall_share\":%s,\"alloc_words\":%s,\"alloc_share\":%s}"
    (esc r.r_label) r.r_events (jf r.r_wall_ms) (jf r.r_wall_share)
    (jf r.r_alloc_w) (jf r.r_alloc_share)

let report_to_json ?(extra = []) r =
  let extra =
    extra
    |> List.map (fun (k, v) -> Printf.sprintf ",\"%s\":%s" (esc k) v)
    |> String.concat ""
  in
  Printf.sprintf
    "{\"type\":\"profile\"%s,\"events\":%d,\"scheduled\":%d,\"cancelled\":%d,\"queue_peak\":%d,\"wall_ms\":%s,\"events_per_sec\":%s,\"self_wall_ms\":%s,\"alloc_words\":%s,\"heap_peak_words\":%d,\"spans_created\":%d,\"samples_taken\":%d,\"trace_bytes\":%d,\"buckets\":[%s]}"
    extra r.p_events r.p_scheduled r.p_cancelled r.p_queue_peak
    (jf (r.p_wall_s *. 1_000.))
    (jf r.p_events_per_sec)
    (jf (r.p_self_wall_s *. 1_000.))
    (jf r.p_alloc_words) r.p_heap_peak_words r.p_spans_created
    r.p_samples_taken r.p_trace_bytes
    (String.concat "," (List.map row_to_json r.p_buckets))

(* Wall-clock-derived (and environment-dependent) fields vary run to
   run even at a fixed seed; byte-determinism comparisons must rewrite
   them to a fixed placeholder first. The deterministic counters
   (events, scheduled, cancelled, queue_peak, spans_created,
   samples_taken, per-bucket events) are left untouched — two same-seed
   runs must agree on those exactly. *)
let nondeterministic_fields =
  [
    "wall_ms";
    "events_per_sec";
    "self_wall_ms";
    "wall_share";
    "alloc_words";
    "alloc_share";
    "heap_peak_words";
    "trace_bytes";
  ]

(* Rewrite every ["field":<number>] occurrence of the fields above to
   ["field":0] — a small textual pass, like the trace-id normalisation
   the batching determinism tests use. *)
let normalize_json s =
  let is_num c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  let matches_field_at j =
    (* s.[j] is '"' opening a key: does key:value start a field we hide? *)
    List.exists
      (fun f ->
        let fl = String.length f in
        j + fl + 2 <= n
        && String.sub s (j + 1) fl = f
        && s.[j + fl + 1] = '"'
        && j + fl + 2 < n
        && s.[j + fl + 2] = ':')
      nondeterministic_fields
  in
  while !i < n do
    if s.[!i] = '"' && matches_field_at !i then begin
      (* copy "field": then skip the number, emit 0 *)
      let colon = String.index_from s !i ':' in
      Buffer.add_string buf (String.sub s !i (colon - !i + 1));
      Buffer.add_char buf '0';
      let j = ref (colon + 1) in
      while !j < n && is_num s.[!j] do incr j done;
      i := !j
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let pp_row ppf r =
  Format.fprintf ppf "%-18s %9d ev %10.3f ms %5.1f%% %12.0f w %5.1f%%"
    r.r_label r.r_events r.r_wall_ms
    (100. *. r.r_wall_share)
    r.r_alloc_w
    (100. *. r.r_alloc_share)

let pp_report ppf r =
  Format.fprintf ppf
    "events=%d scheduled=%d cancelled=%d queue_peak=%d wall=%.3fs alloc=%.0fw \
     heap_peak=%dw spans=%d samples=%d trace_bytes=%d"
    r.p_events r.p_scheduled r.p_cancelled r.p_queue_peak r.p_wall_s
    r.p_alloc_words r.p_heap_peak_words r.p_spans_created r.p_samples_taken
    r.p_trace_bytes
