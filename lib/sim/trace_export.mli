(** Machine-readable exporters for {!Span} collections.

    Two formats: newline-delimited JSON (one object per span, stable and
    grep-friendly) and Chrome [trace_event] JSON that loads directly in
    Perfetto / chrome://tracing. Neither needs an external JSON library. *)

(** One JSON object per line per span, in start order. Fields: [type],
    [id], [trace], [name], optional [parent], [track] (["client"] or a
    replica index), [start_us], optional [stop_us], optional [events]. *)
val to_jsonl : Span.t -> string

(** Chrome trace_event JSON: [{"traceEvents": [...], "displayTimeUnit":
    "ms"}]. Transactions map to pids, lanes (client / replica r) to tids,
    spans to ["ph":"X"] complete events with [ts]/[dur] in microseconds.
    Delivered message spans additionally emit flow events (["ph":"s"] at
    the sender, ["ph":"f"] at the destination) so Perfetto draws the
    causal arrows between lanes. *)
val to_chrome : Span.t -> string

(** Minimal JSON string escaping shared with {!Metrics}. *)
val json_escape : string -> string
