(* HDR-style histogram: exponential buckets covering ~1us .. ~50s when
   values are in milliseconds. bound.(i) is the inclusive upper edge of
   bucket i; the last bucket catches everything above. *)

let n_buckets = 64

let bucket_bounds =
  lazy
    (Array.init n_buckets (fun i -> 0.001 *. (1.5 ** float_of_int i)))

let bucket_of value =
  let bounds = Lazy.force bucket_bounds in
  let rec go i =
    if i >= n_buckets - 1 then n_buckets - 1
    else if value <= bounds.(i) then i
    else go (i + 1)
  in
  go 0

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array;
}

type kind =
  | Counter of { mutable c : int }
  | Gauge of { mutable g : float }
  | Histogram of histogram

type key = { name : string; labels : (string * string) list }

type t = { table : (key, kind) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels = { name; labels = normalize_labels labels }

let get_or_add t k mk =
  match Hashtbl.find_opt t.table k with
  | Some kind -> kind
  | None ->
      let kind = mk () in
      Hashtbl.replace t.table k kind;
      kind

let incr t ?(labels = []) ?(by = 1) name =
  match get_or_add t (key name labels) (fun () -> Counter { c = 0 }) with
  | Counter c -> c.c <- c.c + by
  | _ -> invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")

let set_gauge t ?(labels = []) name v =
  match get_or_add t (key name labels) (fun () -> Gauge { g = 0. }) with
  | Gauge g -> g.g <- v
  | _ -> invalid_arg ("Metrics.set_gauge: " ^ name ^ " is not a gauge")

let fresh_histogram () =
  {
    h_count = 0;
    h_sum = 0.;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
    buckets = Array.make n_buckets 0;
  }

let observe t ?(labels = []) name v =
  match get_or_add t (key name labels) (fun () -> Histogram (fresh_histogram ())) with
  | Histogram h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = h.buckets in
      b.(bucket_of v) <- b.(bucket_of v) + 1
  | _ -> invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")

(* Snapshots -------------------------------------------------------- *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  bucket_counts : int array;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

type sample = { metric : string; labels : (string * string) list; value : value }

type snapshot = sample list

let snapshot t =
  Hashtbl.fold
    (fun k kind acc ->
      let value =
        match kind with
        | Counter c -> Counter_v c.c
        | Gauge g -> Gauge_v g.g
        | Histogram h ->
            Histogram_v
              {
                count = h.h_count;
                sum = h.h_sum;
                min = h.h_min;
                max = h.h_max;
                bucket_counts = Array.copy h.buckets;
              }
      in
      { metric = k.name; labels = k.labels; value } :: acc)
    t.table []
  |> List.sort (fun a b ->
         match String.compare a.metric b.metric with
         | 0 -> compare a.labels b.labels
         | c -> c)

let find snap ?(labels = []) name =
  let labels = normalize_labels labels in
  List.find_opt (fun s -> s.metric = name && s.labels = labels) snap

let counter_value snap ?labels name =
  match find snap ?labels name with Some { value = Counter_v c; _ } -> Some c | _ -> None

let gauge_value snap ?labels name =
  match find snap ?labels name with Some { value = Gauge_v g; _ } -> Some g | _ -> None

let histogram_value snap ?labels name =
  match find snap ?labels name with
  | Some { value = Histogram_v h; _ } -> Some h
  | _ -> None

(* [diff ~before ~after] subtracts monotone parts (counters, histogram
   counts/sums/buckets); gauges and histogram min/max keep the [after]
   value since they cannot be meaningfully subtracted. *)
let diff ~before ~after =
  List.filter_map
    (fun a ->
      let b = find before ~labels:a.labels a.metric in
      match (a.value, Option.map (fun s -> s.value) b) with
      | Counter_v av, Some (Counter_v bv) ->
          let d = av - bv in
          if d = 0 then None else Some { a with value = Counter_v d }
      | Histogram_v ah, Some (Histogram_v bh) ->
          let count = ah.count - bh.count in
          if count = 0 then None
          else
            Some
              {
                a with
                value =
                  Histogram_v
                    {
                      count;
                      sum = ah.sum -. bh.sum;
                      min = ah.min;
                      max = ah.max;
                      bucket_counts =
                        Array.init n_buckets (fun i ->
                            ah.bucket_counts.(i) - bh.bucket_counts.(i));
                    };
              }
      | _, None -> Some a
      | _, Some _ -> Some a)
    after

let quantile (h : hist_snapshot) q =
  if h.count = 0 then 0.
  else begin
    let bounds = Lazy.force bucket_bounds in
    let rank = int_of_float (ceil (q *. float_of_int h.count)) in
    let rank = Stdlib.max 1 (Stdlib.min h.count rank) in
    let result = ref h.max in
    let cum = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.bucket_counts.(i);
         if !cum >= rank then begin
           result := bounds.(i);
           raise Exit
         end
       done
     with Exit -> ());
    Stdlib.max h.min (Stdlib.min h.max !result)
  end

let mean (h : hist_snapshot) =
  if h.count = 0 then 0. else h.sum /. float_of_int h.count

(* Histogram snapshots render through the shared summary record so the
   quantile set (and the count=0 sentinel) matches Workload.Stats. *)
let hist_summary (h : hist_snapshot) =
  if h.count = 0 then Summary.empty
  else
    {
      Summary.count = h.count;
      mean = mean h;
      p50 = quantile h 0.5;
      p90 = quantile h 0.9;
      p95 = quantile h 0.95;
      p99 = quantile h 0.99;
      min = h.min;
      max = h.max;
    }

(* Rendering -------------------------------------------------------- *)

let labels_to_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let pp_sample ppf s =
  let name = s.metric ^ labels_to_string s.labels in
  match s.value with
  | Counter_v c -> Format.fprintf ppf "%-48s %d" name c
  | Gauge_v g -> Format.fprintf ppf "%-48s %g" name g
  | Histogram_v h ->
      let s = hist_summary h in
      Format.fprintf ppf
        "%-48s count=%d mean=%.3f p50=%.3f p90=%.3f p95=%.3f p99=%.3f max=%.3f"
        name s.Summary.count s.Summary.mean s.Summary.p50 s.Summary.p90
        s.Summary.p95 s.Summary.p99 s.Summary.max

let pp_snapshot ppf snap =
  List.iter (fun s -> Format.fprintf ppf "%a@." pp_sample s) snap

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let sample_to_json s =
  let labels =
    s.labels
    |> List.map (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
    |> String.concat ","
  in
  let value =
    match s.value with
    | Counter_v c -> Printf.sprintf "\"type\":\"counter\",\"value\":%d" c
    | Gauge_v g -> Printf.sprintf "\"type\":\"gauge\",\"value\":%s" (json_float g)
    | Histogram_v h ->
        let s = hist_summary h in
        Printf.sprintf
          "\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p95\":%s,\"p99\":%s"
          s.Summary.count (json_float h.sum)
          (json_float s.Summary.min) (json_float s.Summary.max)
          (json_float s.Summary.p50) (json_float s.Summary.p90)
          (json_float s.Summary.p95) (json_float s.Summary.p99)
  in
  Printf.sprintf "{\"metric\":\"%s\",\"labels\":{%s},%s}" (json_escape s.metric)
    labels value

let snapshot_to_json snap =
  "[" ^ String.concat "," (List.map sample_to_json snap) ^ "]"
