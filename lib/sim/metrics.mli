(** A small in-process metrics registry: counters, gauges and HDR-style
    histograms, keyed by metric name plus a label set (e.g.
    [("replica", "0"); ("protocol", "active")]). Labels are order
    insensitive. Instruments are created on first use. *)

type t

val create : unit -> t

(** [incr t name] adds [by] (default 1) to a counter. *)
val incr : t -> ?labels:(string * string) list -> ?by:int -> string -> unit

val set_gauge : t -> ?labels:(string * string) list -> string -> float -> unit

(** [observe t name v] records [v] into an exponential-bucket histogram
    (64 buckets, upper edges [0.001 *. 1.5 ** i] — sub-microsecond to
    tens of seconds when values are milliseconds). *)
val observe : t -> ?labels:(string * string) list -> string -> float -> unit

(** {2 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  bucket_counts : int array;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

type sample = { metric : string; labels : (string * string) list; value : value }

type snapshot = sample list

(** Point-in-time copy of every instrument, sorted by name then labels. *)
val snapshot : t -> snapshot

(** [diff ~before ~after] keeps only samples that changed: counters and
    histogram counts/sums/buckets are subtracted; gauges and histogram
    min/max retain the [after] value. *)
val diff : before:snapshot -> after:snapshot -> snapshot

val find : snapshot -> ?labels:(string * string) list -> string -> sample option
val counter_value : snapshot -> ?labels:(string * string) list -> string -> int option
val gauge_value : snapshot -> ?labels:(string * string) list -> string -> float option

val histogram_value :
  snapshot -> ?labels:(string * string) list -> string -> hist_snapshot option

(** Upper-edge estimate of the [q]-quantile ([0. <= q <= 1.]), clamped to
    the observed min/max. *)
val quantile : hist_snapshot -> float -> float

val mean : hist_snapshot -> float

(** Render a histogram snapshot as the shared {!Summary.t} record
    (bucket-edge quantiles; {!Summary.empty} when [count = 0]). *)
val hist_summary : hist_snapshot -> Summary.t

val pp_sample : Format.formatter -> sample -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit

(** One JSON array of samples (no external JSON dependency). *)
val snapshot_to_json : snapshot -> string

val json_escape : string -> string

(** Compact float rendering for JSON: integer-valued floats print as
    ["N.0"], others as [%.6g]. *)
val json_float : float -> string
