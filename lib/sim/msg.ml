(** Extensible message payload type.

    Each protocol layer extends [t] with its own constructors; a node's
    handler stack pattern-matches on the constructors it owns and passes the
    rest down (see {!Network.add_handler}). *)

type t = ..

(* Constructors used by the simulator's own tests. *)
type t += Ping of int | Pong of int

(* Human-readable message names, used to label message spans. Layers that
   wrap payloads (stubborn channels, broadcast primitives) register a
   printer that unwraps recursively, e.g. "Data(Inject(Req))". *)

let printers : (t -> string option) list ref = ref []
let register_printer f = printers := f :: !printers

(* Fallback: the extension constructor's own name, module path stripped. *)
let default_name msg =
  let s = Obj.Extension_constructor.(name (of_val msg)) in
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let name msg =
  let rec go = function
    | [] -> default_name msg
    | f :: rest -> ( match f msg with Some s -> s | None -> go rest)
  in
  go !printers
