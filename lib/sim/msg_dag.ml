(* Message spans are recorded by {!Network} with a fixed shape: name
   "msg:<label>", track = sender, a "send" event at the sender, and
   either a "deliver" or a "drop:<cause>" event at the destination. The
   parent chain follows causality: a message's parent is the span on
   whose behalf it was sent — the delivered message upstream, or the
   transaction root at submit time. *)

let prefix = "msg:"

let is_msg_span (s : Span.span) =
  String.length s.Span.name > String.length prefix
  && String.sub s.Span.name 0 (String.length prefix) = prefix

type msg = {
  span : Span.span;
  label : string;  (** message name, transport wrappers included *)
  src : int;
  dst : int option;  (** destination, once known (deliver or drop event) *)
  delivered : bool;
  drop : string option;  (** drop cause, when the message was dropped *)
}

let of_span (s : Span.span) =
  let label =
    String.sub s.Span.name (String.length prefix)
      (String.length s.Span.name - String.length prefix)
  in
  let src = Option.value ~default:(-1) s.Span.track in
  let dst = ref None in
  let delivered = ref false in
  let drop = ref None in
  List.iter
    (fun (e : Span.event) ->
      if e.Span.note = "deliver" then begin
        delivered := true;
        dst := e.Span.track
      end
      else if
        String.length e.Span.note > 5 && String.sub e.Span.note 0 5 = "drop:"
      then begin
        drop :=
          Some (String.sub e.Span.note 5 (String.length e.Span.note - 5));
        dst := e.Span.track
      end)
    (Span.events s);
  { span = s; label; src; dst = !dst; delivered = !delivered; drop = !drop }

(** All messages of [trace], in send order. *)
let messages t ~trace =
  Span.trace_spans t ~trace |> List.filter is_msg_span |> List.map of_span

let is_self m = m.dst = Some m.src

(* Stubborn-channel acknowledgements are transport bookkeeping, not part
   of the technique's §5 message complexity (a real system piggybacks
   them); they are counted separately. *)
let is_transport_ack m = m.label = "Ack"

type summary = {
  rid : int;
  sends : int;  (** every traced point-to-point send *)
  messages : int;
      (** §5-comparable count: delivered, excluding self-addressed
          messages and transport acks *)
  transport_acks : int;
  self_sends : int;
  dropped : int;
  steps : int;  (** communication-step depth of the critical path *)
  critical_path : msg list;  (** in causal order, ending at the reply *)
  replied : bool;  (** a message reached the client *)
}

(* The message that resolved the transaction: the first protocol message
   delivered to the client (paper §3.2 — the client waits for the first
   answer). Transport acks also flow back to the client (its stubborn
   channel is acked by the replicas) and do not resolve anything. *)
let reply_msg ~clients msgs =
  msgs
  |> List.filter (fun m ->
         m.delivered
         && (not (is_transport_ack m))
         && match m.dst with Some d -> List.mem d clients | None -> false)
  |> List.fold_left
       (fun acc m ->
         match (acc, m.span.Span.stop) with
         | None, Some _ -> Some m
         | Some best, Some stop
           when Simtime.(stop < Option.get best.span.Span.stop) ->
             Some m
         | _ -> acc)
       None

(* Causal ancestry of [m]: message spans only, oldest first. The chain
   bottoms out at the transaction root ("txn"), which is not a message. *)
let ancestry t msgs m =
  let by_id = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace by_id m.span.Span.id m) msgs;
  let rec up acc id =
    match Span.find t id with
    | None -> acc
    | Some s -> (
        let acc =
          match Hashtbl.find_opt by_id s.Span.id with
          | Some m -> m :: acc
          | None -> acc
        in
        match s.Span.parent with None -> acc | Some p -> up acc p)
  in
  up [] m.span.Span.id

let analyze t ~trace ~clients =
  let msgs = messages t ~trace in
  let reply = reply_msg ~clients msgs in
  let critical_path =
    match reply with None -> [] | Some m -> ancestry t msgs m
  in
  {
    rid = trace;
    sends = List.length msgs;
    messages =
      List.length
        (List.filter
           (fun m ->
             m.delivered && (not (is_self m)) && not (is_transport_ack m))
           msgs);
    transport_acks = List.length (List.filter is_transport_ack msgs);
    self_sends = List.length (List.filter is_self msgs);
    dropped = List.length (List.filter (fun m -> m.drop <> None) msgs);
    steps = List.length critical_path;
    critical_path;
    replied = reply <> None;
  }

(** Structural invariants of a message trace (the property-test oracle):
    every delivered message span has a parent in the same trace, and a
    dropped message causes nothing — no span claims it as parent. *)
let causally_sound t ~trace =
  let msgs = messages t ~trace in
  let all = Span.trace_spans t ~trace in
  let parent_ok m =
    match m.span.Span.parent with
    | None -> false
    | Some p -> (
        match Span.find t p with
        | Some ps -> ps.Span.trace = trace
        | None -> false)
  in
  let childless m =
    not
      (List.exists (fun (s : Span.span) -> s.Span.parent = Some m.span.Span.id) all)
  in
  List.for_all
    (fun m ->
      (if m.delivered then parent_ok m else true)
      && if m.drop <> None then childless m else true)
    msgs
