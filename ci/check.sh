#!/bin/sh
# Minimal CI entry point: formatting (when the formatter is available),
# build, and the full test suite.
#
#   sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== fmt check =="
  dune build @fmt
else
  echo "== fmt check skipped (ocamlformat not installed) =="
fi

echo "== build =="
dune build

echo "== tests =="
dune runtest

# One fast fault-injection sweep: every technique through the
# crash-recover scenario; exits non-zero on any oracle violation.
echo "== campaign smoke =="
dune exec bin/replisim.exe -- campaign --scenario crash-recover \
  --techniques all --seeds 11

# §5 conformance: every technique's measured message count and
# communication-step depth (from causally-linked message spans) must
# match its declared expectation; exits non-zero on deviation.
echo "== message-cost matrix =="
dune exec bin/replisim.exe -- explain --check --format csv

echo "== ci: OK =="
