#!/bin/sh
# Minimal CI entry point: formatting (when the formatter is available),
# build, and the full test suite.
#
#   sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== fmt check =="
  dune build @fmt
else
  echo "== fmt check skipped (ocamlformat not installed) =="
fi

echo "== build =="
dune build

echo "== tests =="
dune runtest

# One fast fault-injection sweep: every technique through the
# crash-recover scenario; exits non-zero on any oracle violation.
echo "== campaign smoke =="
dune exec bin/replisim.exe -- campaign --scenario crash-recover \
  --techniques all --seeds 11

# §5 conformance: every technique's measured message count and
# communication-step depth (from causally-linked message spans) must
# match its declared expectation; exits non-zero on deviation. The
# expectations describe the unbatched default configuration, so this
# gate runs without --set.
echo "== message-cost matrix =="
dune exec bin/replisim.exe -- explain --check --format csv

# Runtime configuration smoke: non-default technique parameters applied
# from the command line, without recompilation — the consensus-based
# ordering engine under certification, and sequencer batching under
# active replication — plus the schema printer.
echo "== runtime configuration smoke =="
dune exec bin/replisim.exe -- run -t certification \
  --set certification.abcast_impl=consensus --txns 10 > /dev/null
dune exec bin/replisim.exe -- run -t active \
  --set active.batch_window=5ms --txns 10 > /dev/null
dune exec bin/replisim.exe -- config active > /dev/null

# Sharded-operation smoke: a sharded campaign (4 groups of 2 through
# crash-recover, every oracle judged per group), the §5 message-cost
# check against a sharded configuration (the expectation applies at the
# group size, not the cluster size), and one cross-shard run exercising
# the 2PC commit path.
echo "== sharded smoke =="
dune exec bin/replisim.exe -- campaign --scenario crash-recover \
  --techniques active --replicas 8 --set active.shards=4 --seeds 11
dune exec bin/replisim.exe -- explain --check -t active -n 8 \
  --set active.shards=4 > /dev/null
dune exec bin/replisim.exe -- run -t active -n 8 --set active.shards=4 \
  --ops 2 --cross 0.3 --txns 10 > /dev/null

# Resource-timeline smoke: sample two techniques through the
# partition-heal scenario; --check exits non-zero if any saturation
# finding falls outside a fault window or the group-stack backlog fails
# to grow during the partition and drain after the heal.
echo "== timeline smoke =="
dune exec bin/replisim.exe -- timeline -t active --check
dune exec bin/replisim.exe -- timeline -t eager-ue-locking --check

# Machine-readable bench output: two fast experiments, then validate
# every BENCH_*.json against the schema.
echo "== bench output schema =="
dune exec bench/main.exe -- perf1 > /dev/null
dune exec bench/main.exe -- perf13 > /dev/null
dune exec bench/main.exe -- perf14 > /dev/null
dune exec bin/replisim.exe -- bench-check BENCH_perf*.json

# Engine self-profile smoke: --check enforces the profiler's internal
# identities on a live run (per-bucket event counts sum back to the
# engine's executed-event counter; wall and allocation shares each sum
# to ~1.0) and the JSON output must parse. Run with tracing on and off
# so both sides of the lazy-span gate stay exercised.
echo "== profile smoke =="
dune exec bin/replisim.exe -- profile -t active --txns 20 \
  --format json --check > /dev/null
dune exec bin/replisim.exe -- profile -t lazy-primary --no-tracing --txns 20 \
  --format json --check > /dev/null

# Simulator-throughput gate: perf15 at a CI-sized transaction count,
# then a floor roughly 20x below the measured baseline (~190k events/s
# with tracing off at the full 1e5-txn size) so only order-of-magnitude
# engine regressions trip it, not machine noise.
echo "== simulator throughput floor =="
PERF15_TXNS=4000 dune exec bench/main.exe -- perf15 > /dev/null
dune exec bin/replisim.exe -- bench-check BENCH_perf15.json \
  --floor perf15:events_per_sec:10000

# Sharding gate: perf16 at a CI-sized transaction count. probe_flat=1
# is Part A's verdict (single-shard message cost flat across cluster
# sizes at fixed group size); the throughput floor keeps the sharded
# cluster's simulated throughput from collapsing (cross=0 measures
# ~800 txn/s).
echo "== sharding bench =="
PERF16_TXNS=10 dune exec bench/main.exe -- perf16 > /dev/null
dune exec bin/replisim.exe -- bench-check BENCH_perf16.json \
  --floor perf16:probe_flat:1 \
  --floor perf16:throughput:200

# Consistency-audit smoke: --check gates the measured form of the §4
# windows (eager: zero session-guarantee window; lazy: strictly positive
# post-commit window, drained by quiescence), plus one sharded run
# exercising the cross-shard snapshot-skew detector end to end.
echo "== consistency audit smoke =="
dune exec bin/replisim.exe -- audit -t active --check > /dev/null
dune exec bin/replisim.exe -- audit -t lazy-primary --check > /dev/null
dune exec bin/replisim.exe -- audit -t active -n 8 --set active.shards=4 \
  --ops 2 --cross 0.3 --check > /dev/null

# Consistency bench gate: perf17 at a CI-sized transaction count. Both
# floors are aggregate verdicts emitted as single rows: every run must
# drain, and every lazy run must measure a positive post-commit window.
echo "== consistency bench =="
PERF17_TXNS=10 dune exec bench/main.exe -- perf17 > /dev/null
dune exec bin/replisim.exe -- bench-check BENCH_perf17.json \
  --floor perf17:audit_drained:1 \
  --floor perf17:lazy_visibility_positive:1

# Sweep + regression gates. The sweep re-runs the committed baseline's
# grid (2 techniques × closed/open load × zipf off/on) with the same
# seeds; records are normalized, so compare against baseline/ must come
# back all-unchanged — any drift in a measured metric beyond the
# per-metric thresholds is a regression and fails the build. The
# --perturb leg injects a 50% latency regression into the candidate set
# and requires the gate to trip, so a silently-passing compare is itself
# caught.
echo "== sweep + regression gates =="
rm -rf _sweep_ci
dune exec bin/replisim.exe -- sweep --techniques active,lazy-primary \
  --loads closed,200 --zipf 0,0.9 --txns 10 --out _sweep_ci \
  --format none 2> /dev/null
dune exec bin/replisim.exe -- compare baseline _sweep_ci
if dune exec bin/replisim.exe -- compare baseline _sweep_ci \
     --perturb latency_p95:1.5 > /dev/null 2>&1; then
  echo "compare failed to flag an injected 50% latency regression" >&2
  exit 1
fi
rm -rf _sweep_ci

# Quadrant-sweep bench gate: perf18 at a CI-sized transaction count.
# The floors pin the grid size, the taxonomy verdict (every lazy
# quadrant replies below its eager column-mate) and a throughput
# sanity bound; the ceiling is the first use of the upper-bound gate —
# the grid's best p95 collapsing upward means every technique got
# slower at once.
echo "== quadrant sweep bench =="
PERF18_TXNS=10 dune exec bench/main.exe -- perf18 > /dev/null
dune exec bin/replisim.exe -- bench-check BENCH_perf18.json \
  --floor perf18:cells:16 \
  --floor perf18:lazy_faster_than_eager:1 \
  --floor perf18:best_throughput:400 \
  --ceiling perf18:best_latency_p95:25

# Routing-tier smoke: the audit gate must hold with the router in the
# path (sticky and round-robin — lazy's positive post-commit window is
# measured at the replica stores, so stickiness can't mask it), a
# flash-crowd run must complete, and the failover leg re-runs the
# deterministic crash schedule from test_router and asserts the router
# actually resent a read (failovers >= 1, nothing abandoned).
echo "== routing tier smoke =="
dune exec bin/replisim.exe -- audit -t lazy-primary --sticky --check > /dev/null
dune exec bin/replisim.exe -- audit -t lazy-primary --router --check > /dev/null
dune exec bin/replisim.exe -- run -t lazy-primary --router --flash-crowd \
  > /dev/null
if ! dune exec bin/replisim.exe -- run -t active --router \
       --crash 0@60ms --recover 0@120ms \
     | grep -Eq 'failovers=[1-9][0-9]* gave_up=0'; then
  echo "router failover leg: no read survived the crash via retry" >&2
  exit 1
fi

# Routed-tier bench gate: perf19 at a CI-sized transaction count. The
# floors pin the headline verdicts — sticky routing measures zero
# read-your-writes violations where round-robin measures a strictly
# positive count, all four flash-crowd quadrant cells ran, and at least
# one mid-spike read was answered only because the router failed it
# over (with none abandoned). The ceiling nails ryw_sticky to zero.
echo "== routed tier bench =="
PERF19_TXNS=10 dune exec bench/main.exe -- perf19 > /dev/null
dune exec bin/replisim.exe -- bench-check BENCH_perf19.json \
  --floor perf19:sticky_eliminates_ryw:1 \
  --floor perf19:ryw_nonsticky:1 \
  --floor perf19:failover_success:1 \
  --floor perf19:flash_cells:4 \
  --floor perf19:flash_best_throughput:300 \
  --ceiling perf19:ryw_sticky:0

echo "== ci: OK =="
