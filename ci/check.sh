#!/bin/sh
# Minimal CI entry point: formatting (when the formatter is available),
# build, and the full test suite.
#
#   sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== fmt check =="
  dune build @fmt
else
  echo "== fmt check skipped (ocamlformat not installed) =="
fi

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== ci: OK =="
