(* Unit and property tests for the discrete-event simulation substrate. *)

open Sim

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Simtime                                                            *)
(* ------------------------------------------------------------------ *)

let test_simtime_units () =
  Alcotest.(check int) "ms" 5_000 (Simtime.to_us (Simtime.of_ms 5));
  Alcotest.(check int) "sec" 1_500_000 (Simtime.to_us (Simtime.of_sec 1.5));
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Simtime.to_ms (Simtime.of_us 2_500))

let test_simtime_arith () =
  let a = Simtime.of_ms 3 and b = Simtime.of_ms 5 in
  Alcotest.(check int) "add" 8_000 (Simtime.to_us (Simtime.add a b));
  Alcotest.(check int) "sub saturates" 0 (Simtime.to_us (Simtime.sub a b));
  Alcotest.(check int) "sub" 2_000 (Simtime.to_us (Simtime.sub b a));
  Alcotest.(check bool) "lt" true Simtime.(a < b);
  Alcotest.(check int) "add inf" (Simtime.to_us Simtime.infinity)
    (Simtime.to_us (Simtime.add Simtime.infinity a))

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  let drained = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] drained;
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Rng.create ~seed:43 in
  let zs = List.init 100 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "int in bounds" true (x >= 0 && x < 10);
    let y = Rng.range r 5 9 in
    Alcotest.(check bool) "range in bounds" true (y >= 5 && y <= 9);
    let f = Rng.float r 2.0 in
    Alcotest.(check bool) "float in bounds" true (f >= 0.0 && f < 2.0);
    let e = Rng.exponential r ~mean:3.0 in
    Alcotest.(check bool) "exponential nonnegative" true (e >= 0.0)
  done

let test_rng_split_independent () =
  let r = Rng.create ~seed:1 in
  let s = Rng.split r in
  let xs = List.init 50 (fun _ -> Rng.int r 1000) in
  let ys = List.init 50 (fun _ -> Rng.int s 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_zipf () =
  let r = Rng.create ~seed:5 in
  let sampler = Rng.Zipf.make ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let k = Rng.Zipf.draw r sampler in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  (* Skewed: the hottest key must dominate the coldest. *)
  Alcotest.(check bool) "skew" true (counts.(0) > 10 * (counts.(99) + 1))

let test_zipf_uniform_theta0 () =
  let r = Rng.create ~seed:5 in
  let sampler = Rng.Zipf.make ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Rng.Zipf.draw r sampler in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    counts

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  let at ms tag =
    ignore
      (Engine.schedule e ~after:(Simtime.of_ms ms) (fun () ->
           log := tag :: !log))
  in
  at 30 "c";
  at 10 "a";
  at 20 "b";
  ignore (Engine.run e);
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock" 30_000 (Simtime.to_us (Engine.now e))

let test_engine_fifo_same_instant () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore
      (Engine.schedule e ~after:(Simtime.of_ms 1) (fun () -> log := i :: !log))
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "schedule order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let tm = Engine.schedule e ~after:(Simtime.of_ms 1) (fun () -> fired := true) in
  Engine.cancel tm;
  ignore (Engine.run e);
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~after:(Simtime.of_ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule e ~after:(Simtime.of_ms 1) (fun () ->
                log := "inner" :: !log))));
  ignore (Engine.run e);
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "clock advanced twice" 2_000 (Simtime.to_us (Engine.now e))

let test_engine_periodic () =
  let e = Engine.create () in
  let ticks = ref 0 in
  let tm = Engine.periodic e ~every:(Simtime.of_ms 10) (fun () -> incr ticks) in
  ignore (Engine.run ~until:(Simtime.of_ms 55) e);
  Alcotest.(check int) "five ticks" 5 !ticks;
  Engine.cancel tm;
  ignore (Engine.run ~until:(Simtime.of_ms 200) e);
  Alcotest.(check int) "no ticks after cancel" 5 !ticks

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~after:(Simtime.of_ms (10 * i)) (fun () -> incr count))
  done;
  let n = Engine.run ~until:(Simtime.of_ms 45) e in
  Alcotest.(check int) "events executed" 4 n;
  Alcotest.(check int) "counter" 4 !count;
  Alcotest.(check int) "rest pending" 6 (Engine.pending e)

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec reschedule () =
    incr count;
    ignore (Engine.schedule e ~after:(Simtime.of_ms 1) reschedule)
  in
  ignore (Engine.schedule e ~after:(Simtime.of_ms 1) reschedule);
  let n = Engine.run ~max_events:50 e in
  Alcotest.(check int) "bounded" 50 n;
  Alcotest.(check int) "count" 50 !count


let test_engine_cancelled_head_respects_until () =
  (* Regression: a cancelled timer at the head of the queue must not let
     [run ~until] execute a live event beyond the horizon. *)
  let e = Engine.create () in
  let tm = Engine.schedule e ~after:(Simtime.of_ms 10) (fun () -> ()) in
  Engine.cancel tm;
  let fired = ref false in
  ignore (Engine.schedule e ~after:(Simtime.of_ms 500) (fun () -> fired := true));
  ignore (Engine.run ~until:(Simtime.of_ms 100) e);
  Alcotest.(check bool) "beyond-horizon event did not run" false !fired;
  Alcotest.(check bool) "clock within horizon" true
    Simtime.(Engine.now e <= Simtime.of_ms 100);
  ignore (Engine.run ~until:(Simtime.of_ms 600) e);
  Alcotest.(check bool) "it runs once the horizon allows" true !fired

let test_engine_schedule_at_past_clamps () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~after:(Simtime.of_ms 50) (fun () -> ()));
  ignore (Engine.run e);
  (* Scheduling at an absolute time in the past clamps to now. *)
  let ran_at = ref Simtime.zero in
  ignore
    (Engine.schedule_at e ~at:(Simtime.of_ms 10) (fun () -> ran_at := Engine.now e));
  ignore (Engine.run e);
  Alcotest.(check int) "clamped to now" 50_000 (Simtime.to_us !ran_at)

let test_engine_pending_counter () =
  (* The O(1) counter must track the O(n) heap scan through schedules,
     cancels (including double-cancel), dispatch and periodic timers. *)
  let e = Engine.create () in
  let agree label =
    Alcotest.(check int) label (Engine.pending_scan e) (Engine.pending e)
  in
  agree "empty";
  let tms =
    List.init 10 (fun i ->
        Engine.schedule e ~after:(Simtime.of_ms (i + 1)) (fun () -> ()))
  in
  agree "after schedules";
  Alcotest.(check int) "ten live" 10 (Engine.pending e);
  List.iteri (fun i tm -> if i mod 3 = 0 then Engine.cancel tm) tms;
  agree "after cancels";
  (* Cancelling an already-cancelled timer must not double-count. *)
  Engine.cancel (List.hd tms);
  agree "double cancel";
  ignore (Engine.run ~until:(Simtime.of_ms 5) e);
  agree "after partial run";
  let p = Engine.periodic e ~every:(Simtime.of_ms 2) (fun () -> ()) in
  agree "periodic armed";
  ignore (Engine.run ~until:(Simtime.of_ms 9) e);
  agree "periodic ticking";
  Engine.cancel p;
  agree "periodic cancelled";
  ignore (Engine.run e);
  agree "drained";
  Alcotest.(check int) "empty again" 0 (Engine.pending e)

let prop_engine_pending_matches_scan =
  QCheck.Test.make ~name:"pending counter matches heap scan" ~count:200
    QCheck.(list (pair (int_range 1 20) (int_range 0 3)))
    (fun script ->
      let e = Engine.create () in
      let live = ref [] in
      let ok = ref true in
      let check () = if Engine.pending e <> Engine.pending_scan e then ok := false in
      List.iter
        (fun (ms, action) ->
          (match action with
          | 0 | 1 ->
              live :=
                Engine.schedule e ~after:(Simtime.of_ms ms) (fun () -> ())
                :: !live
          | 2 -> (
              match !live with
              | tm :: rest ->
                  Engine.cancel tm;
                  live := rest
              | [] -> ())
          | _ -> ignore (Engine.step e));
          check ())
        script;
      ignore (Engine.run e);
      check ();
      !ok && Engine.pending e = 0)

(* ------------------------------------------------------------------ *)
(* Network                                                            *)
(* ------------------------------------------------------------------ *)

let make_net ?(n = 3) ?(config = Network.default_config) () =
  let e = Engine.create ~seed:11 () in
  let net = Network.create e ~n config in
  (e, net)

let collect_pings net node log =
  Network.add_handler net node (fun ~src msg ->
      match msg with
      | Msg.Ping k ->
          log := (src, k) :: !log;
          true
      | _ -> false)

let test_network_delivery () =
  let e, net = make_net () in
  let log = ref [] in
  collect_pings net 1 log;
  Network.send net ~src:0 ~dst:1 (Msg.Ping 7);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int))) "delivered" [ (0, 7) ] !log;
  Alcotest.(check int) "sent" 1 (Network.messages_sent net);
  Alcotest.(check int) "delivered count" 1 (Network.messages_delivered net)

let test_network_latency_bounds () =
  let config =
    {
      Network.latency = Network.Uniform (Simtime.of_ms 1, Simtime.of_ms 2);
      drop_probability = 0.0;
    }
  in
  let e, net = make_net ~config () in
  let arrival = ref Simtime.zero in
  Network.add_handler net 1 (fun ~src:_ _ ->
      arrival := Engine.now e;
      true);
  Network.send net ~src:0 ~dst:1 (Msg.Ping 0);
  ignore (Engine.run e);
  let us = Simtime.to_us !arrival in
  Alcotest.(check bool) "within bounds" true (us >= 1_000 && us <= 2_000)

let test_network_crash_drops () =
  let e, net = make_net () in
  let log = ref [] in
  collect_pings net 1 log;
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 (Msg.Ping 1);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int))) "not delivered" [] !log;
  Alcotest.(check int) "dropped" 1 (Network.messages_dropped net);
  Network.recover net 1;
  Network.send net ~src:0 ~dst:1 (Msg.Ping 2);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int))) "delivered after recovery" [ (0, 2) ] !log

let test_network_crashed_source_cannot_send () =
  let e, net = make_net () in
  let log = ref [] in
  collect_pings net 1 log;
  Network.crash net 0;
  Network.send net ~src:0 ~dst:1 (Msg.Ping 1);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int))) "nothing" [] !log

let test_network_partition () =
  let e, net = make_net () in
  let log = ref [] in
  collect_pings net 1 log;
  Network.partition net [ 0 ];
  Network.send net ~src:0 ~dst:1 (Msg.Ping 1);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int))) "blocked" [] !log;
  Network.heal net;
  Network.send net ~src:0 ~dst:1 (Msg.Ping 2);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int))) "healed" [ (0, 2) ] !log

let test_network_partition_within_group () =
  let e, net = make_net () in
  let log = ref [] in
  collect_pings net 2 log;
  (* 1 and 2 on the same side still communicate. *)
  Network.partition net [ 1; 2 ];
  Network.send net ~src:1 ~dst:2 (Msg.Ping 9);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int))) "same side ok" [ (1, 9) ] !log

let test_network_drop_probability () =
  let config =
    { Network.default_config with Network.drop_probability = 0.5 }
  in
  let e, net = make_net ~config () in
  let count = ref 0 in
  Network.add_handler net 1 (fun ~src:_ _ ->
      incr count;
      true);
  for _ = 1 to 1000 do
    Network.send net ~src:0 ~dst:1 (Msg.Ping 0)
  done;
  ignore (Engine.run e);
  Alcotest.(check bool) "roughly half lost" true (!count > 350 && !count < 650)

let test_network_handler_stack () =
  let e, net = make_net () in
  let pings = ref 0 and pongs = ref 0 in
  Network.add_handler net 1 (fun ~src:_ msg ->
      match msg with
      | Msg.Ping _ ->
          incr pings;
          true
      | _ -> false);
  Network.add_handler net 1 (fun ~src:_ msg ->
      match msg with
      | Msg.Pong _ ->
          incr pongs;
          true
      | _ -> false);
  Network.send net ~src:0 ~dst:1 (Msg.Ping 0);
  Network.send net ~src:0 ~dst:1 (Msg.Pong 0);
  ignore (Engine.run e);
  Alcotest.(check (pair int int)) "both layers got theirs" (1, 1) (!pings, !pongs)

let test_network_guard () =
  let e, net = make_net () in
  let fired = ref 0 in
  ignore
    (Engine.periodic e ~every:(Simtime.of_ms 10)
       (Network.guard net 0 (fun () -> incr fired)));
  ignore (Engine.run ~until:(Simtime.of_ms 35) e);
  Network.crash net 0;
  ignore (Engine.run ~until:(Simtime.of_ms 100) e);
  Alcotest.(check int) "guard stops timers at crash" 3 !fired


let test_network_per_link_latency () =
  let config =
    { Network.default_config with Network.latency = Network.Constant (Simtime.of_ms 1) }
  in
  let e, net = make_net ~config ~n:3 () in
  Network.set_link_latency net 0 2 (Network.Constant (Simtime.of_ms 40));
  let arrivals = Hashtbl.create 4 in
  List.iter
    (fun node ->
      Network.add_handler net node (fun ~src:_ _ ->
          Hashtbl.replace arrivals node (Engine.now e);
          true))
    [ 1; 2 ];
  Network.send net ~src:0 ~dst:1 (Msg.Ping 0);
  Network.send net ~src:0 ~dst:2 (Msg.Ping 0);
  ignore (Engine.run e);
  Alcotest.(check int) "default link" 1_000
    (Simtime.to_us (Hashtbl.find arrivals 1));
  Alcotest.(check int) "overridden link" 40_000
    (Simtime.to_us (Hashtbl.find arrivals 2));
  (* Symmetric and clearable. *)
  Network.send net ~src:2 ~dst:0 (Msg.Ping 0);
  let t0 = Engine.now e in
  Network.add_handler net 0 (fun ~src:_ _ ->
      Hashtbl.replace arrivals 0 (Engine.now e);
      true);
  ignore (Engine.run e);
  Alcotest.(check int) "reverse direction also 40ms" 40_000
    (Simtime.to_us (Simtime.sub (Hashtbl.find arrivals 0) t0));
  Network.clear_link_latencies net;
  Network.send net ~src:0 ~dst:2 (Msg.Ping 0);
  let t1 = Engine.now e in
  ignore (Engine.run e);
  Alcotest.(check int) "cleared override" 1_000
    (Simtime.to_us (Simtime.sub (Hashtbl.find arrivals 2) t1))

(* Determinism: identical seeds produce identical message traces. *)
let run_workload seed =
  let e = Engine.create ~seed () in
  let net = Network.create e ~n:4 Network.default_config in
  let log = ref [] in
  for node = 0 to 3 do
    Network.add_handler net node (fun ~src msg ->
        match msg with
        | Msg.Ping k ->
            log := (Simtime.to_us (Engine.now e), src, node, k) :: !log;
            if k > 0 then
              Network.send net ~src:node ~dst:((node + 1) mod 4) (Msg.Ping (k - 1));
            true
        | _ -> false)
  done;
  Network.send net ~src:0 ~dst:1 (Msg.Ping 20);
  ignore (Engine.run e);
  List.rev !log

let test_determinism () =
  let a = run_workload 99 and b = run_workload 99 in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  let c = run_workload 100 in
  Alcotest.(check bool) "different seed, different timings" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Drop causes                                                        *)
(* ------------------------------------------------------------------ *)

let test_drop_causes () =
  let e, net = make_net ~n:4 () in
  (* Crashed destination. *)
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 (Msg.Ping 0);
  ignore (Engine.run e);
  Alcotest.(check int) "crashed" 1 (Network.dropped_crashed net);
  Network.recover net 1;
  (* Partition separates {2,3} from {0,1}: dropped at send time. *)
  Network.partition net [ 2; 3 ];
  Network.send net ~src:0 ~dst:2 (Msg.Ping 1);
  ignore (Engine.run e);
  Alcotest.(check int) "partitioned" 1 (Network.dropped_partitioned net);
  Network.heal net;
  (* Probabilistic loss. *)
  Network.set_drop_probability net 1.0;
  Network.send net ~src:0 ~dst:1 (Msg.Ping 2);
  ignore (Engine.run e);
  Alcotest.(check int) "loss" 1 (Network.dropped_loss net);
  Alcotest.(check int) "total is the sum" 3 (Network.messages_dropped net);
  Network.reset_counters net;
  Alcotest.(check int) "reset" 0 (Network.messages_dropped net)

(* A message in flight towards a node that crashes before delivery is
   counted as a crash drop, not loss. *)
let test_drop_crash_in_flight () =
  let e, net = make_net () in
  Network.send net ~src:0 ~dst:1 (Msg.Ping 0);
  Network.crash net 1;
  ignore (Engine.run e);
  Alcotest.(check int) "crashed in flight" 1 (Network.dropped_crashed net);
  Alcotest.(check int) "no loss" 0 (Network.dropped_loss net)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let ms = Simtime.of_ms

let test_span_nesting () =
  let t = Span.create () in
  let root = Span.start_span t ~trace:7 ~name:"txn" (ms 0) in
  let a = Span.start_span t ~trace:7 ~parent:root ~track:1 ~name:"EX" (ms 1) in
  Span.add_event t a ~at:(ms 2) ~track:2 "replica 2 executes";
  Span.finish t a (ms 3);
  let b = Span.start_span t ~trace:7 ~parent:root ~name:"AC" (ms 3) in
  Span.finish t b (ms 5);
  Span.finish t root (ms 5);
  Alcotest.(check int) "span count" 3 (List.length (Span.spans t));
  Alcotest.(check bool) "well nested" true (Span.well_nested t ~trace:7);
  let a_span = Option.get (Span.find t a) in
  Alcotest.(check (option (float 1e-9))) "duration" (Some 2.)
    (Span.duration_ms a_span);
  Alcotest.(check int) "events" 1 (List.length (Span.events a_span));
  Alcotest.(check (list int)) "traces" [ 7 ] (Span.traces t)

let test_span_orphans () =
  let t = Span.create () in
  let root = Span.start_span t ~trace:1 ~name:"txn" (ms 0) in
  let a = Span.start_span t ~trace:1 ~parent:root ~name:"EX" (ms 1) in
  Alcotest.(check int) "two open" 2 (List.length (Span.open_spans t));
  Span.finish t a (ms 2);
  Alcotest.(check int) "one orphan" 1 (List.length (Span.open_spans t));
  (* The open root makes the trace ill-nested until flushed. *)
  Alcotest.(check bool) "not nested while open" false
    (Span.well_nested t ~trace:1);
  Span.finish_all t (ms 9);
  Alcotest.(check int) "flushed" 0 (List.length (Span.open_spans t));
  Alcotest.(check bool) "nested after flush" true (Span.well_nested t ~trace:1)

let test_span_finish_extends () =
  let t = Span.create () in
  let root = Span.start_span t ~trace:1 ~name:"txn" (ms 0) in
  Span.finish t root (ms 4);
  (* Re-finishing later extends (lazy tail), earlier is ignored. *)
  Span.finish t root (ms 9);
  Span.finish t root (ms 2);
  let s = Option.get (Span.find t root) in
  Alcotest.(check (option (float 1e-9))) "extended" (Some 9.)
    (Span.duration_ms s)

let test_span_ill_nested_detected () =
  let t = Span.create () in
  let root = Span.start_span t ~trace:1 ~name:"txn" (ms 0) in
  let a = Span.start_span t ~trace:1 ~parent:root ~name:"EX" (ms 1) in
  Span.finish t a (ms 8);
  Span.finish t root (ms 5) (* child outlives parent *);
  Alcotest.(check bool) "detects escape" false (Span.well_nested t ~trace:1)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "commits";
  Metrics.incr m ~by:2 "commits";
  Metrics.incr m ~labels:[ ("replica", "1") ] "commits";
  Metrics.set_gauge m "depth" 4.5;
  let snap = Metrics.snapshot m in
  Alcotest.(check (option int)) "plain" (Some 3)
    (Metrics.counter_value snap "commits");
  Alcotest.(check (option int)) "labelled" (Some 1)
    (Metrics.counter_value snap ~labels:[ ("replica", "1") ] "commits");
  Alcotest.(check (option int)) "missing" None
    (Metrics.counter_value snap "aborts");
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 4.5)
    (Metrics.gauge_value snap "depth")

let test_metrics_histogram () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat_ms") [ 1.0; 2.0; 3.0; 4.0; 100.0 ];
  let snap = Metrics.snapshot m in
  let h = Option.get (Metrics.histogram_value snap "lat_ms") in
  Alcotest.(check int) "count" 5 h.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 110.0 h.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 h.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 100.0 h.Metrics.max;
  Alcotest.(check (float 1e-9)) "mean" 22.0 (Metrics.mean h);
  (* Bucketed quantiles are upper-bound estimates within bucket width. *)
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool) "p50 near median" true (p50 >= 2.0 && p50 <= 4.6);
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 100.0
    (Metrics.quantile h 1.0)

let test_metrics_diff () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.observe m "h" 1.0;
  let before = Metrics.snapshot m in
  Metrics.incr m ~by:4 "a";
  Metrics.incr m "b";
  Metrics.observe m "h" 2.0;
  Metrics.observe m "h" 3.0;
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  Alcotest.(check (option int)) "counter delta" (Some 4)
    (Metrics.counter_value d "a");
  Alcotest.(check (option int)) "new counter" (Some 1)
    (Metrics.counter_value d "b");
  let h = Option.get (Metrics.histogram_value d "h") in
  Alcotest.(check int) "histogram delta count" 2 h.Metrics.count;
  Alcotest.(check (float 1e-9)) "histogram delta sum" 5.0 h.Metrics.sum;
  (* Unchanged instruments drop out of the diff. *)
  Metrics.incr m "c";
  let s1 = Metrics.snapshot m in
  let s2 = Metrics.snapshot m in
  Alcotest.(check int) "no-change diff is empty" 0
    (List.length (Metrics.diff ~before:s1 ~after:s2))

(* ------------------------------------------------------------------ *)
(* Profiler                                                           *)
(* ------------------------------------------------------------------ *)

let bucket report label =
  List.find_opt
    (fun (r : Profiler.row) -> r.Profiler.r_label = label)
    report.Profiler.p_buckets

let test_profiler_attribute () =
  let p = Profiler.create () in
  Profiler.measure p ~label:"a" (fun () -> Sys.opaque_identity (String.make 64 'x'))
  |> ignore;
  Profiler.measure p ~label:"a" (fun () -> ()) |> ignore;
  Profiler.measure p ~label:"b" (fun () -> ()) |> ignore;
  let r = Profiler.report p in
  Alcotest.(check int) "two buckets" 2 (List.length r.Profiler.p_buckets);
  (match bucket r "a" with
  | None -> Alcotest.fail "bucket a missing"
  | Some a ->
      Alcotest.(check int) "a measured twice" 2 a.Profiler.r_events;
      Alcotest.(check bool) "a allocated" true (a.Profiler.r_alloc_w > 0.);
      Alcotest.(check bool) "a wall non-negative" true (a.Profiler.r_wall_ms >= 0.));
  (* First-seen order is deterministic. *)
  Alcotest.(check (list string)) "bucket order" [ "a"; "b" ]
    (List.map (fun (r : Profiler.row) -> r.Profiler.r_label) r.Profiler.p_buckets)

let test_profiler_measure_exn () =
  let p = Profiler.create () in
  (try Profiler.measure p ~label:"boom" (fun () -> failwith "x")
   with Failure _ -> ());
  match bucket (Profiler.report p) "boom" with
  | Some b -> Alcotest.(check int) "attributed despite raise" 1 b.Profiler.r_events
  | None -> Alcotest.fail "bucket missing after exception"

let test_profiler_engine_labels () =
  let e = Engine.create () in
  let p = Profiler.create () in
  Engine.set_profiler e (Some p);
  for _ = 1 to 3 do
    ignore
      (Engine.schedule e ~label:"tick" ~after:(Simtime.of_ms 1) (fun () -> ()))
  done;
  ignore (Engine.schedule e ~after:(Simtime.of_ms 2) (fun () -> ()));
  ignore (Engine.run ~until:(Simtime.of_ms 10) e);
  let r = Profiler.report p in
  (match bucket r "tick" with
  | Some b -> Alcotest.(check int) "3 ticks attributed" 3 b.Profiler.r_events
  | None -> Alcotest.fail "tick bucket missing");
  (match bucket r "timer" with
  | Some b ->
      Alcotest.(check int) "unlabelled goes to default bucket" 1
        b.Profiler.r_events
  | None -> Alcotest.fail "default timer bucket missing")

let test_engine_deterministic_counters () =
  let e = Engine.create () in
  let fired = ref 0 in
  for _ = 1 to 5 do
    ignore (Engine.schedule e ~after:(Simtime.of_ms 1) (fun () -> incr fired))
  done;
  let tm = Engine.schedule e ~after:(Simtime.of_ms 2) (fun () -> incr fired) in
  Engine.cancel tm;
  ignore (Engine.run ~until:(Simtime.of_ms 10) e);
  Alcotest.(check int) "executed" 5 (Engine.events_executed e);
  Alcotest.(check int) "scheduled" 6 (Engine.timers_scheduled e);
  Alcotest.(check int) "cancelled discarded" 1 (Engine.timers_cancelled e);
  Alcotest.(check int) "queue peak" 6 (Engine.queue_peak e);
  Alcotest.(check int) "handlers all ran" 5 !fired

let test_profiler_normalize () =
  let json =
    "{\"type\":\"profile\",\"events\":42,\"wall_ms\":13.25,\"events_per_sec\":123456.7,\
     \"alloc_words\":99,\"heap_peak_words\":1024,\"buckets\":[{\"label\":\"x\",\
     \"events\":42,\"wall_ms\":13.25,\"wall_share\":1,\"self_wall_ms\":13.25,\
     \"alloc_words\":99,\"alloc_share\":1,\"trace_bytes\":5}]}"
  in
  let n = Profiler.normalize_json json in
  (* Deterministic fields survive; wall/alloc-derived ones become 0. *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i =
      if i + nl > hl then false
      else if String.sub hay i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  Alcotest.(check bool) "events kept" true (contains "\"events\":42" n);
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " zeroed") false
        (contains (Printf.sprintf "\"%s\":%s" f "13.25") n
        || contains (Printf.sprintf "\"%s\":%s" f "123456.7") n
        || contains (Printf.sprintf "\"%s\":%s" f "99") n
        || contains (Printf.sprintf "\"%s\":%s" f "1024") n
        || contains (Printf.sprintf "\"%s\":%s" f "5") n))
    Profiler.nondeterministic_fields;
  (* Idempotent. *)
  Alcotest.(check string) "idempotent" n (Profiler.normalize_json n)

let test_profiler_json_fields () =
  let p = Profiler.create () in
  Profiler.set_engine_stats p ~events:7 ~scheduled:9 ~cancelled:1 ~queue_peak:4;
  Profiler.set_meta p ~spans_created:3 ~samples_taken:2 ();
  Profiler.add_trace_bytes p 128;
  let json = Profiler.report_to_json (Profiler.report p) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (let nl = String.length needle and hl = String.length json in
         let rec scan i =
           if i + nl > hl then false
           else if String.sub json i nl = needle then true
           else scan (i + 1)
         in
         scan 0))
    [
      "\"events\":7";
      "\"scheduled\":9";
      "\"cancelled\":1";
      "\"queue_peak\":4";
      "\"spans_created\":3";
      "\"samples_taken\":2";
      "\"trace_bytes\":128";
    ]

let () =
  Alcotest.run "sim"
    [
      ( "simtime",
        [ tc "units" test_simtime_units; tc "arith" test_simtime_arith ] );
      ( "heap",
        [
          tc "basic" test_heap_basic;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "rng",
        [
          tc "deterministic" test_rng_deterministic;
          tc "bounds" test_rng_bounds;
          tc "split" test_rng_split_independent;
          tc "zipf skew" test_zipf;
          tc "zipf uniform" test_zipf_uniform_theta0;
        ] );
      ( "engine",
        [
          tc "time order" test_engine_time_order;
          tc "fifo same instant" test_engine_fifo_same_instant;
          tc "cancel" test_engine_cancel;
          tc "nested" test_engine_nested_schedule;
          tc "periodic" test_engine_periodic;
          tc "run until" test_engine_run_until;
          tc "max events" test_engine_max_events;
          tc "cancelled head vs until" test_engine_cancelled_head_respects_until;
          tc "schedule_at past clamps" test_engine_schedule_at_past_clamps;
          tc "pending counter" test_engine_pending_counter;
          QCheck_alcotest.to_alcotest prop_engine_pending_matches_scan;
        ] );
      ( "network",
        [
          tc "delivery" test_network_delivery;
          tc "latency bounds" test_network_latency_bounds;
          tc "crash drops" test_network_crash_drops;
          tc "crashed source" test_network_crashed_source_cannot_send;
          tc "partition" test_network_partition;
          tc "partition same side" test_network_partition_within_group;
          tc "drop probability" test_network_drop_probability;
          tc "handler stack" test_network_handler_stack;
          tc "guard" test_network_guard;
          tc "per-link latency" test_network_per_link_latency;
          tc "determinism" test_determinism;
        ] );
      ( "drop causes",
        [
          tc "by cause" test_drop_causes;
          tc "crash in flight" test_drop_crash_in_flight;
        ] );
      ( "span",
        [
          tc "nesting" test_span_nesting;
          tc "orphans" test_span_orphans;
          tc "finish extends" test_span_finish_extends;
          tc "ill-nested detected" test_span_ill_nested_detected;
        ] );
      ( "metrics",
        [
          tc "counters+gauges" test_metrics_counters;
          tc "histogram" test_metrics_histogram;
          tc "snapshot diff" test_metrics_diff;
        ] );
      ( "profiler",
        [
          tc "attribute accounting" test_profiler_attribute;
          tc "measure exception-safe" test_profiler_measure_exn;
          tc "engine dispatch labels" test_profiler_engine_labels;
          tc "engine counters" test_engine_deterministic_counters;
          tc "normalize json" test_profiler_normalize;
          tc "report json round-trips fields" test_profiler_json_fields;
        ] );
    ]
