(* The consistency audit layer: Kv watcher semantics, the eager
   zero-inconsistency-window property (randomized), the lazy visibility
   regression, the crafted cross-shard snapshot-skew case, and the
   lag_undrained saturation detector. *)

open Sim

let tc name f = Alcotest.test_case name `Quick f

(* ---- Kv watchers ---------------------------------------------------- *)

let test_kv_watcher_fires () =
  let kv = Store.Kv.create () in
  let seen = ref [] in
  Store.Kv.on_update kv (fun k ~value ~version ->
      seen := (k, value, version) :: !seen);
  let v1 = Store.Kv.write kv "x" 10 in
  Alcotest.(check int) "write returns version 1" 1 v1;
  Store.Kv.install kv "x" ~value:20 ~version:2;
  (* An older install is ignored — and must not notify. *)
  Store.Kv.install kv "x" ~value:99 ~version:1;
  Store.Kv.force kv "x" ~value:5 ~version:1;
  Alcotest.(check (list (triple string int int)))
    "write, replacing install and force notify; stale install does not"
    [ ("x", 10, 1); ("x", 20, 2); ("x", 5, 1) ]
    (List.rev !seen)

let test_kv_copy_drops_watchers () =
  let kv = Store.Kv.create () in
  let fired = ref 0 in
  Store.Kv.on_update kv (fun _ ~value:_ ~version:_ -> incr fired);
  ignore (Store.Kv.write kv "x" 1);
  let scratch = Store.Kv.copy kv in
  ignore (Store.Kv.write scratch "x" 2);
  Alcotest.(check int) "copy is scratch state: no watcher carried over" 1
    !fired;
  Alcotest.(check int) "copy still duplicated the data" 2
    (Store.Kv.version scratch "x")

(* ---- eager techniques: zero inconsistency window (randomized) ------- *)

(* The paper's claim, as a measured property: an eager technique under a
   lossless network and no faults can never violate a session guarantee
   — its agreement phase runs before the reply. Randomizes seed, client
   count and per-client transaction count under closed arrivals. *)
let prop_eager_zero_window name =
  let entry = Option.get (Protocols.Registry.find name) in
  let factory =
    Protocols.Registry.configure_exn entry [ ("passthrough", "true") ]
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: no session violations, ever" name)
    ~count:6
    QCheck.(pair (int_range 0 10_000) (pair (int_range 2 5) (int_range 5 25)))
    (fun (seed, (clients, txns)) ->
      let spec = Workload.Builder.spec ~updates:0.5 ~txns ~keys:40 () in
      let builder =
        Workload.Builder.make ~seed ~replicas:3 ~clients ~spec ~audit:true ()
      in
      let result = Workload.Builder.run builder factory in
      let a = Option.get result.Workload.Runner.audit in
      a.Workload.Audit.ryw_violations = 0
      && a.Workload.Audit.mr_violations = 0
      && a.Workload.Audit.session_window_max_ms = 0.
      && a.Workload.Audit.drained)

(* ---- lazy-primary: the staleness window must be measurable ---------- *)

let test_lazy_visibility_positive () =
  let entry = Option.get (Protocols.Registry.find "lazy-primary") in
  let factory =
    Protocols.Registry.configure_exn entry [ ("passthrough", "true") ]
  in
  let spec = Workload.Builder.spec ~updates:0.5 ~txns:30 ~keys:50 () in
  let builder =
    Workload.Builder.make ~seed:11 ~replicas:3 ~clients:4 ~spec ~audit:true ()
  in
  let result = Workload.Builder.run builder factory in
  let a = Option.get result.Workload.Runner.audit in
  Alcotest.(check bool)
    "post-commit window strictly positive (propagation after the reply)"
    true
    (a.Workload.Audit.post_commit_max_ms > 0.);
  Alcotest.(check bool)
    "visibility latency samples recorded" true
    (a.Workload.Audit.visibility_ms.Workload.Stats.count > 0
    && a.Workload.Audit.visibility_ms.Workload.Stats.p50 > 0.);
  Alcotest.(check bool) "still drains by quiescence" true
    a.Workload.Audit.drained

(* ---- crafted cross-shard snapshot skew ------------------------------ *)

(* Drives the audit directly (no protocol): a cross-shard writer W
   installs (ka, v1) and (kb, v1) on different shards; a cross-shard
   reader R observes W on ka's shard but misses it on kb's. That torn
   snapshot must count exactly one (R, W) skew pair — and none at all
   when the run is unsharded. *)
let two_keys_on_different_shards map =
  let rec hunt i =
    if i > 999 then Alcotest.fail "no shard-distinct key pair found"
    else
      let k = Printf.sprintf "k%04d" i in
      if
        Store.Shard_map.shard_of_key map k
        <> Store.Shard_map.shard_of_key map "k0000"
      then ("k0000", k)
      else hunt (i + 1)
  in
  hunt 1

let drive_skew ~shards =
  let engine = Engine.create ~seed:3 () in
  let metrics = Metrics.create () in
  let history = Store.History.create () in
  let stores = [| Store.Kv.create (); Store.Kv.create () |] in
  let audit =
    Workload.Audit.create ~engine ~metrics ~history ~groups:[ [ 0 ]; [ 1 ] ]
      ~store_of:(fun r -> stores.(r))
      ~shards ()
  in
  let map = Store.Shard_map.create ~shards:2 () in
  let ka, kb = two_keys_on_different_shards map in
  let add ~tid ~replica ~at reads writes =
    Store.History.add history
      { Store.History.tid; reads; writes; replica; committed_at = at }
  in
  let t1 = Simtime.of_ms 1 and t2 = Simtime.of_ms 2 in
  (* Writer W = parent 100, one sub-transaction per shard. *)
  add ~tid:101 ~replica:0 ~at:t1 [] [ (ka, 1) ];
  add ~tid:102 ~replica:1 ~at:t1 [] [ (kb, 1) ];
  Store.History.link_parent history ~parent:100 ~sub:101;
  Store.History.link_parent history ~parent:100 ~sub:102;
  Workload.Audit.note_reply audit ~client:0 ~rid:100 ~committed:true
    ~submitted_at:Simtime.zero ~at:t1;
  (* Reader R = parent 200: sees (ka, 1) but still (kb, 0). *)
  add ~tid:201 ~replica:0 ~at:t2 [ (ka, 1) ] [];
  add ~tid:202 ~replica:1 ~at:t2 [ (kb, 0) ] [];
  Store.History.link_parent history ~parent:200 ~sub:201;
  Store.History.link_parent history ~parent:200 ~sub:202;
  Workload.Audit.note_reply audit ~client:1 ~rid:200 ~committed:true
    ~submitted_at:t1 ~at:t2;
  Workload.Audit.finalize audit

let test_skew_detected () =
  let a = drive_skew ~shards:2 in
  Alcotest.(check int) "two cross-shard transactions examined" 2
    a.Workload.Audit.cross_txns;
  Alcotest.(check int) "exactly one torn (reader, writer) pair" 1
    a.Workload.Audit.skew_pairs;
  Alcotest.(check int) "the missed write is also a stale read" 1
    a.Workload.Audit.stale_reads

let test_skew_needs_shards () =
  let a = drive_skew ~shards:1 in
  Alcotest.(check int) "detector disarmed at shards=1" 0
    a.Workload.Audit.skew_pairs

(* ---- lag_undrained saturation detector ------------------------------ *)

let lag_series ~final =
  {
    Timeseries.name = "version_lag";
    replica = 2;
    kind = Timeseries.Queue;
    unit_ = "versions";
    points_rev =
      List.rev
        [
          { Timeseries.at = Simtime.zero; value = 0. };
          { Timeseries.at = Simtime.of_ms 5; value = 3. };
          { Timeseries.at = Simtime.of_ms 10; value = final };
        ];
    n_points = 3;
    thunks = [];
  }

let test_lag_undrained_fires () =
  let findings = Saturation.analyze [ lag_series ~final:2. ] in
  Alcotest.(check bool) "residual lag at end of run is a finding" true
    (List.exists
       (fun f -> f.Saturation.detector = "lag_undrained" && f.replica = 2)
       findings)

let test_lag_drained_silent () =
  let findings = Saturation.analyze [ lag_series ~final:0. ] in
  Alcotest.(check bool) "a drained replica raises nothing" true
    (not
       (List.exists
          (fun f -> f.Saturation.detector = "lag_undrained")
          findings))

let () =
  Alcotest.run "audit"
    [
      ( "watchers",
        [
          tc "kv watcher fires on actual changes" test_kv_watcher_fires;
          tc "kv copy drops watchers" test_kv_copy_drops_watchers;
        ] );
      ( "eager window",
        List.map
          (fun name ->
            QCheck_alcotest.to_alcotest (prop_eager_zero_window name))
          [ "active"; "eager-primary" ] );
      ( "lazy window",
        [ tc "lazy-primary visibility positive" test_lazy_visibility_positive ]
      );
      ( "skew",
        [
          tc "torn cross-shard snapshot counted" test_skew_detected;
          tc "unsharded runs never skew" test_skew_needs_shards;
        ] );
      ( "lag detector",
        [
          tc "undrained lag fires" test_lag_undrained_fires;
          tc "drained lag silent" test_lag_drained_silent;
        ] );
    ]
