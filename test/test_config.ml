(* The declarative configuration layer: every technique's schema
   round-trips through its string form, unknown techniques/keys fail
   with messages listing the valid alternatives, every technique still
   honours its Figure-16 phase signature when built under a non-default
   configuration, and sequencer batching stays deterministic (two runs
   with the same seed produce byte-identical traces). *)

let tc name f = Alcotest.test_case name `Quick f

let phase = Alcotest.testable Core.Phase.pp Core.Phase.equal

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ---- per-key round-trip: default and a non-default sample ----------- *)

(* A value of [k]'s type that differs from its default. *)
let non_default (k : Protocols.Config.key) =
  match (k.ty, k.default) with
  | Protocols.Config.TBool, Protocols.Config.Bool b ->
      Some (Protocols.Config.Bool (not b))
  | Protocols.Config.TInt, Protocols.Config.Int i ->
      Some (Protocols.Config.Int (i + 1))
  | Protocols.Config.TFloat, Protocols.Config.Float f ->
      Some (Protocols.Config.Float (f +. 0.25))
  | Protocols.Config.TTime, Protocols.Config.Time t ->
      Some (Protocols.Config.Time (Sim.Simtime.add t (Sim.Simtime.of_us 1500)))
  | Protocols.Config.TEnum choices, Protocols.Config.Enum d ->
      List.find_opt (fun c -> c <> d) choices
      |> Option.map (fun c -> Protocols.Config.Enum c)
  | Protocols.Config.TOpt_int, Protocols.Config.Opt_int None ->
      Some (Protocols.Config.Opt_int (Some 7))
  | Protocols.Config.TOpt_int, Protocols.Config.Opt_int (Some _) ->
      Some (Protocols.Config.Opt_int None)
  | _ -> Alcotest.failf "schema key %s: default does not match its type" k.name

let roundtrip_value (e : Protocols.Registry.entry)
    (k : Protocols.Config.key) (v : Protocols.Config.value) =
  let s = Protocols.Config.value_to_string v in
  match Protocols.Config.parse_value k.ty s with
  | Error msg ->
      Alcotest.failf "%s.%s: %S does not parse back: %s" e.key k.name s msg
  | Ok v' ->
      Alcotest.(check string)
        (Printf.sprintf "%s.%s round-trips through %S" e.key k.name s)
        s
        (Protocols.Config.value_to_string v');
      if v <> v' then
        Alcotest.failf "%s.%s: %S re-parses to a different value" e.key k.name s

let test_roundtrip_all_keys () =
  List.iter
    (fun (e : Protocols.Registry.entry) ->
      Alcotest.(check bool)
        (e.key ^ " declares at least one key")
        true (e.schema <> []);
      List.iter
        (fun (k : Protocols.Config.key) ->
          roundtrip_value e k k.default;
          match non_default k with
          | Some v -> roundtrip_value e k v
          | None -> ())
        e.schema)
    Protocols.Registry.all

(* apply (to_strings cfg) reproduces cfg — the parse -> apply -> print
   cycle the CLI and the export headers rely on. *)
let test_apply_print_cycle () =
  List.iter
    (fun (e : Protocols.Registry.entry) ->
      (* flip every key to its non-default sample where one exists *)
      let pairs =
        List.filter_map
          (fun (k : Protocols.Config.key) ->
            non_default k
            |> Option.map (fun v ->
                   (k.name, Protocols.Config.value_to_string v)))
          e.schema
      in
      match Protocols.Registry.configure e pairs with
      | Error msg -> Alcotest.failf "%s: configure failed: %s" e.key msg
      | Ok (cfg, _) -> (
          match
            Protocols.Config.apply e.schema (Protocols.Config.to_strings cfg)
          with
          | Error msg -> Alcotest.failf "%s: re-apply failed: %s" e.key msg
          | Ok cfg' ->
              Alcotest.(check (list (pair string string)))
                (e.key ^ " survives print -> parse -> print")
                (Protocols.Config.to_strings cfg)
                (Protocols.Config.to_strings cfg')))
    Protocols.Registry.all

(* ---- error paths list the valid alternatives ------------------------ *)

let test_unknown_technique () =
  match Protocols.Registry.find_res "nosuch" with
  | Ok _ -> Alcotest.fail "nosuch resolved"
  | Error msg ->
      List.iter
        (fun key ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %s" key)
            true (contains ~needle:key msg))
        Protocols.Registry.keys

let test_unknown_key () =
  let entry = Option.get (Protocols.Registry.find "active") in
  match Protocols.Registry.configure entry [ ("bogus", "1") ] with
  | Ok _ -> Alcotest.fail "bogus key accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the key" true
        (contains ~needle:"bogus" msg);
      List.iter
        (fun (k : Protocols.Config.key) ->
          Alcotest.(check bool)
            (Printf.sprintf "error lists %s" k.name)
            true (contains ~needle:k.name msg))
        entry.schema

let test_directive_syntax () =
  (match Protocols.Config.parse_directive "active.batch_window=5ms" with
  | Ok d ->
      Alcotest.(check string) "technique" "active" d.technique;
      Alcotest.(check string) "key" "batch_window" d.key;
      Alcotest.(check string) "value" "5ms" d.value
  | Error msg -> Alcotest.failf "directive did not parse: %s" msg);
  (match Protocols.Config.parse_directive "no-equals-here" with
  | Ok _ -> Alcotest.fail "malformed directive accepted"
  | Error _ -> ());
  match Protocols.Config.parse_directive "noprefix=1" with
  | Ok _ -> Alcotest.fail "directive without technique accepted"
  | Error _ -> ()

let test_config_file () =
  let path = Filename.temp_file "replisim" ".conf" in
  let oc = open_out path in
  output_string oc
    "# comment\n\
     active.batch_window = 5ms\n\
     \n\
     certification.abcast_impl=consensus\n";
  close_out oc;
  let directives =
    match Protocols.Config.parse_file path with
    | Ok ds -> ds
    | Error msg -> Alcotest.failf "parse_file: %s" msg
  in
  Sys.remove path;
  Alcotest.(check int) "two directives" 2 (List.length directives);
  Alcotest.(check (list (pair string string)))
    "pairs for active"
    [ ("batch_window", "5ms") ]
    (Protocols.Config.pairs_for ~technique:"active" directives);
  Alcotest.(check (list (pair string string)))
    "pairs for certification"
    [ ("abcast_impl", "consensus") ]
    (Protocols.Config.pairs_for ~technique:"certification" directives)

(* ---- non-default sweep: Figure-16 signatures survive reconfig ------- *)

(* Build every technique under a deliberately non-default configuration
   (consensus abcast and a batching window where the schema offers them,
   passthrough everywhere) and re-check the probe transaction replies
   with the declared phase signature. *)
let non_default_pairs (e : Protocols.Registry.entry) =
  List.filter_map
    (fun (k : Protocols.Config.key) ->
      match k.name with
      | "passthrough" -> Some ("passthrough", "true")
      | "abcast_impl" -> Some ("abcast_impl", "consensus")
      | "batch_window" -> Some ("batch_window", "2ms")
      | _ -> None)
    e.schema

let test_signature_under_non_default () =
  List.iter
    (fun (e : Protocols.Registry.entry) ->
      let factory =
        match Protocols.Registry.configure e (non_default_pairs e) with
        | Ok (_, factory) -> factory
        | Error msg -> Alcotest.failf "%s: configure failed: %s" e.key msg
      in
      (* semi-active's AC phase only appears for a non-deterministic
         write; everyone else runs the deterministic increment *)
      let ops =
        if e.key = "semi-active" then [ Store.Operation.Write_random "x" ]
        else [ Store.Operation.Incr ("x", 1) ]
      in
      let p = Workload.Builder.probe ~ops factory in
      let _, sound, summary = Workload.Builder.probe_summary p in
      Alcotest.(check bool) (e.key ^ " replied") true summary.Sim.Msg_dag.replied;
      Alcotest.(check bool) (e.key ^ " causally sound") true sound;
      let spans = p.Workload.Builder.p_inst.Core.Technique.spans in
      Alcotest.(check (list phase))
        (e.key ^ " phase signature under non-default config")
        e.info.Core.Technique.expected_phases
        (Core.Phase_span.signature spans ~rid:p.Workload.Builder.p_rid))
    Protocols.Registry.all

(* ---- batching determinism ------------------------------------------- *)

let batched_factory window =
  let entry = Option.get (Protocols.Registry.find "active") in
  Protocols.Registry.configure_exn entry
    [ ("batch_window", Printf.sprintf "%dms" window) ]

(* Request ids are allocated from a process-global counter, so two runs
   in the same process number their traces differently even when the
   schedules match. Rewrite each "trace":N to a placeholder in order of
   first appearance; everything else must match byte for byte. *)
let normalize_traces s =
  let pat = {|"trace":|} in
  let pl = String.length pat in
  let n = String.length s in
  let buf = Buffer.create n in
  let map = Hashtbl.create 16 in
  let next = ref 0 in
  let i = ref 0 in
  while !i < n do
    if !i + pl <= n && String.sub s !i pl = pat then begin
      Buffer.add_string buf pat;
      i := !i + pl;
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      let id = String.sub s !i (!j - !i) in
      let r =
        match Hashtbl.find_opt map id with
        | Some r -> r
        | None ->
            let r = Printf.sprintf "R%d" !next in
            incr next;
            Hashtbl.add map id r;
            r
      in
      Buffer.add_string buf r;
      i := !j
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let trace_of factory =
  let spec = Workload.Builder.spec ~txns:10 () in
  let builder = Workload.Builder.make ~seed:23 ~clients:3 ~spec () in
  let result, inst = Workload.Builder.run_with_instance builder factory in
  Alcotest.(check int) "no unanswered" 0 result.Workload.Runner.unanswered;
  normalize_traces
    (Sim.Trace_export.to_jsonl
       (Core.Phase_span.collector inst.Core.Technique.spans))

(* Same seed, same window: the batched run must reproduce byte for
   byte — the flush timer goes through the deterministic engine clock,
   not wall time. *)
let test_batching_deterministic () =
  let a = trace_of (batched_factory 5) in
  let b = trace_of (batched_factory 5) in
  Alcotest.(check string) "batched traces byte-identical" a b

(* batch_window=0 is the unbatched protocol: its trace equals the
   default configuration's, byte for byte. *)
let test_zero_window_is_default () =
  let entry = Option.get (Protocols.Registry.find "active") in
  let default_trace =
    trace_of (Protocols.Registry.default_factory entry)
  in
  let zero_trace = trace_of (batched_factory 0) in
  Alcotest.(check string) "batch_window=0 equals default" default_trace
    zero_trace

let () =
  Alcotest.run "config"
    [
      ( "schema",
        [
          tc "every key round-trips" test_roundtrip_all_keys;
          tc "print -> parse -> print" test_apply_print_cycle;
        ] );
      ( "errors",
        [
          tc "unknown technique lists alternatives" test_unknown_technique;
          tc "unknown key lists schema" test_unknown_key;
          tc "directive syntax" test_directive_syntax;
          tc "config file" test_config_file;
        ] );
      ( "sweep",
        [
          tc "signatures under non-default config"
            test_signature_under_non_default;
        ] );
      ( "batching",
        [
          tc "deterministic traces" test_batching_deterministic;
          tc "zero window = default" test_zero_window_is_default;
        ] );
    ]
