(* Tests for the workload library: spec, generator, statistics, and the
   closed-loop runner (incl. determinism and failure schedules). *)

open Sim

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Generator                                                          *)
(* ------------------------------------------------------------------ *)

let test_generator_respects_spec () =
  let spec =
    {
      Workload.Spec.default with
      n_keys = 10;
      ops_per_txn = 3;
      update_ratio = 1.0;
    }
  in
  let gen = Workload.Generator.create ~seed:1 spec in
  for _ = 1 to 50 do
    let update, req = Workload.Generator.request gen ~client:7 in
    Alcotest.(check bool) "all updates at ratio 1.0" true update;
    Alcotest.(check int) "ops per txn" 3 (List.length req.Store.Operation.ops);
    Alcotest.(check int) "client" 7 req.Store.Operation.client;
    List.iter
      (fun op ->
        match op with
        | Store.Operation.Incr (k, 1) ->
            let idx = int_of_string (String.sub k 1 (String.length k - 1)) in
            Alcotest.(check bool) "key in range" true (idx >= 0 && idx < 10)
        | _ -> Alcotest.fail "update mix must produce Incr operations")
      req.Store.Operation.ops
  done

let test_generator_read_only_mix () =
  let spec = { Workload.Spec.default with update_ratio = 0.0 } in
  let gen = Workload.Generator.create ~seed:2 spec in
  for _ = 1 to 50 do
    let update, req = Workload.Generator.request gen ~client:1 in
    Alcotest.(check bool) "no updates" false update;
    Alcotest.(check bool) "request is read-only" false
      (Store.Operation.request_is_update req)
  done

let test_generator_ratio_statistics () =
  let spec = { Workload.Spec.default with update_ratio = 0.3 } in
  let gen = Workload.Generator.create ~seed:3 spec in
  let updates = ref 0 in
  for _ = 1 to 1000 do
    let update, _ = Workload.Generator.request gen ~client:1 in
    if update then incr updates
  done;
  Alcotest.(check bool) "≈30% updates" true (!updates > 230 && !updates < 370)

let test_generator_skew () =
  let spec = { Workload.Spec.default with key_skew = 0.99; n_keys = 100 } in
  let gen = Workload.Generator.create ~seed:4 spec in
  let counts = Hashtbl.create 16 in
  for _ = 1 to 2000 do
    let _, req = Workload.Generator.request gen ~client:1 in
    List.iter
      (fun op ->
        List.iter
          (fun k ->
            Hashtbl.replace counts k
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          (Store.Operation.read_keys op @ Store.Operation.write_keys op))
      req.Store.Operation.ops
  done;
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool) "hot key dominates" true (hottest > 100)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Workload.Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.Workload.Stats.count

let test_stats_known_values () =
  let values = List.init 100 (fun i -> float_of_int (i + 1)) in
  let s = Workload.Stats.summarize values in
  Alcotest.(check int) "count" 100 s.Workload.Stats.count;
  Alcotest.(check (float 0.001)) "mean" 50.5 s.Workload.Stats.mean;
  Alcotest.(check (float 1.5)) "p50" 50.0 s.Workload.Stats.p50;
  Alcotest.(check (float 1.5)) "p90" 90.0 s.Workload.Stats.p90;
  Alcotest.(check (float 1.5)) "p99" 99.0 s.Workload.Stats.p99;
  Alcotest.(check (float 0.001)) "min" 1.0 s.Workload.Stats.min;
  Alcotest.(check (float 0.001)) "max" 100.0 s.Workload.Stats.max

let test_stats_order_independent () =
  let a = Workload.Stats.summarize [ 3.; 1.; 2. ] in
  let b = Workload.Stats.summarize [ 1.; 2.; 3. ] in
  Alcotest.(check (float 0.001)) "same p50" a.Workload.Stats.p50 b.Workload.Stats.p50

let test_stats_recorder () =
  let r = Workload.Stats.recorder () in
  Workload.Stats.record r 5.0;
  Workload.Stats.record r 15.0;
  let s = Workload.Stats.summary r in
  Alcotest.(check int) "count" 2 s.Workload.Stats.count;
  Alcotest.(check (float 0.001)) "mean" 10.0 s.Workload.Stats.mean

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let active_factory net ~replicas ~clients =
  Protocols.Active.create net ~replicas ~clients ()

let small_spec = { Workload.Spec.default with txns_per_client = 10 }

let test_runner_completes () =
  let result =
    Workload.Runner.run ~n_clients:2 ~spec:small_spec active_factory
  in
  Alcotest.(check int) "all committed" 20 result.Workload.Runner.committed;
  Alcotest.(check int) "no aborts" 0 result.Workload.Runner.aborted;
  Alcotest.(check int) "all answered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check bool) "converged" true result.Workload.Runner.converged;
  Alcotest.(check bool) "serializable" true result.Workload.Runner.serializable;
  Alcotest.(check bool) "throughput positive" true
    (result.Workload.Runner.throughput > 0.);
  Alcotest.(check int) "latency count = committed" 20
    result.Workload.Runner.latency_ms.Workload.Stats.count

(* Every field except wall-clock time is deterministic per seed; zero
   the one nondeterministic field before structural comparison. *)
let zero_wall (r : Workload.Runner.result) = { r with wall_s = 0. }

let test_runner_deterministic () =
  let run () = Workload.Runner.run ~seed:77 ~spec:small_spec active_factory in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical results for identical seeds" true
    (zero_wall a = zero_wall b);
  let c = Workload.Runner.run ~seed:78 ~spec:small_spec active_factory in
  Alcotest.(check bool) "different seed differs" true
    (a.Workload.Runner.latency_ms <> c.Workload.Runner.latency_ms)

let test_runner_failure_schedule () =
  let fail_early = [ Workload.Runner.crash_at ~at:(Simtime.of_ms 10) 2 ] in
  let smooth = Workload.Runner.run ~seed:5 ~spec:small_spec active_factory in
  let crashed =
    Workload.Runner.run ~seed:5 ~spec:small_spec ~failures:fail_early
      active_factory
  in
  Alcotest.(check int) "still all committed" 40 crashed.Workload.Runner.committed;
  Alcotest.(check bool) "crash visible as a response gap" true
    Simtime.(
      crashed.Workload.Runner.max_response_gap
      > smooth.Workload.Runner.max_response_gap);
  Alcotest.(check bool) "survivors converged" true
    crashed.Workload.Runner.converged

let test_runner_latency_split () =
  let spec = { small_spec with update_ratio = 0.5 } in
  let result = Workload.Runner.run ~n_clients:2 ~spec active_factory in
  let r = result.Workload.Runner.read_latency_ms.Workload.Stats.count in
  let u = result.Workload.Runner.update_latency_ms.Workload.Stats.count in
  Alcotest.(check int) "read+update = committed" result.Workload.Runner.committed
    (r + u);
  Alcotest.(check bool) "both kinds present" true (r > 0 && u > 0)


(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let test_report_csv () =
  let result = Workload.Runner.run ~n_clients:1 ~spec:small_spec active_factory in
  let header_cols = String.split_on_char ',' Workload.Report.csv_header in
  let row = Workload.Report.csv_row ~label:"test" result in
  let row_cols = String.split_on_char ',' row in
  Alcotest.(check int) "row matches header arity" (List.length header_cols)
    (List.length row_cols);
  Alcotest.(check string) "label first" "test" (List.hd row_cols);
  Alcotest.(check string) "committed column" "10" (List.nth row_cols 1);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Workload.Report.to_csv ppf [ ("a", result); ("b", result) ];
  Format.pp_print_flush ppf ();
  Alcotest.(check int) "header + two rows" 3
    (List.length
       (List.filter
          (fun l -> String.length l > 0)
          (String.split_on_char '\n' (Buffer.contents buf))))


let test_runner_poisson_arrivals () =
  (* Open-loop submission: all transactions go out regardless of replies,
     and all are eventually answered. *)
  let result =
    Workload.Runner.run ~n_clients:2 ~spec:small_spec
      ~arrival:(`Poisson 200.) active_factory
  in
  Alcotest.(check int) "all committed" 20 result.Workload.Runner.committed;
  Alcotest.(check int) "none unanswered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check bool) "converged" true result.Workload.Runner.converged;
  (* Same seed, same arrival process: deterministic too. *)
  let again =
    Workload.Runner.run ~n_clients:2 ~spec:small_spec
      ~arrival:(`Poisson 200.) active_factory
  in
  Alcotest.(check bool) "deterministic" true (zero_wall result = zero_wall again)

(* ------------------------------------------------------------------ *)
(* Profiler integration                                               *)
(* ------------------------------------------------------------------ *)

let run_profiled ?(tracing = true) () =
  let profiler = Sim.Profiler.create () in
  let builder =
    Workload.Builder.make ~seed:21 ~replicas:3 ~clients:2 ~spec:small_spec
      ~profiler ~tracing ()
  in
  let result = Workload.Builder.run builder active_factory in
  (result, Sim.Profiler.report profiler)

let test_profiler_counters_match () =
  let result, report = run_profiled () in
  (* The deterministic counters the profiler carries are the engine's. *)
  Alcotest.(check int) "events = result.events" result.Workload.Runner.events
    report.Sim.Profiler.p_events;
  (* Every executed event was dispatched through exactly one labelled
     bucket, so the independently-accumulated per-bucket counts must sum
     back to the engine's total. *)
  let bucket_events =
    List.fold_left
      (fun acc (r : Sim.Profiler.row) -> acc + r.Sim.Profiler.r_events)
      0 report.Sim.Profiler.p_buckets
  in
  Alcotest.(check int) "bucket events sum to events executed"
    report.Sim.Profiler.p_events bucket_events;
  Alcotest.(check bool) "scheduled >= executed" true
    (report.Sim.Profiler.p_scheduled >= report.Sim.Profiler.p_events);
  Alcotest.(check bool) "queue peak positive" true
    (report.Sim.Profiler.p_queue_peak > 0);
  Alcotest.(check bool) "spans recorded with tracing on" true
    (report.Sim.Profiler.p_spans_created > 0)

let test_profiler_gc_accounting () =
  let _, report = run_profiled () in
  (* Gc-delta attribution: no bucket may go negative, and the per-bucket
     deltas must sum to the profiler's total (same additions, grouped). *)
  List.iter
    (fun (r : Sim.Profiler.row) ->
      Alcotest.(check bool)
        (r.Sim.Profiler.r_label ^ " alloc non-negative")
        true
        (r.Sim.Profiler.r_alloc_w >= 0.);
      Alcotest.(check bool)
        (r.Sim.Profiler.r_label ^ " wall non-negative")
        true
        (r.Sim.Profiler.r_wall_ms >= 0.))
    report.Sim.Profiler.p_buckets;
  let bucket_alloc =
    List.fold_left
      (fun acc (r : Sim.Profiler.row) -> acc +. r.Sim.Profiler.r_alloc_w)
      0. report.Sim.Profiler.p_buckets
  in
  let total = report.Sim.Profiler.p_alloc_words in
  Alcotest.(check bool) "bucket alloc sums to total" true
    (abs_float (bucket_alloc -. total) <= 1e-6 *. (1. +. total));
  (* Shares over any measured quantity sum to ~1. *)
  let share_sum f =
    List.fold_left (fun acc r -> acc +. f r) 0. report.Sim.Profiler.p_buckets
  in
  if total > 0. then
    Alcotest.(check (float 0.001)) "alloc shares sum to 1" 1.
      (share_sum (fun r -> r.Sim.Profiler.r_alloc_share))

let test_profiler_disabled_identical () =
  (* Attaching no profiler must not perturb the simulation: same seed
     with and without one agrees on every deterministic field. *)
  let bare =
    Workload.Builder.run
      (Workload.Builder.make ~seed:21 ~replicas:3 ~clients:2 ~spec:small_spec ())
      active_factory
  in
  let profiled, _ = run_profiled () in
  Alcotest.(check bool) "profiler leaves results identical" true
    (zero_wall bare = zero_wall profiled)

let test_tracing_off_preserves_schedule () =
  (* The tracing gate only suppresses span materialisation — it must not
     change what the simulation computes. Span-derived fields (phase_ms,
     span metrics) legitimately differ; everything the paper's numbers
     come from must not. *)
  let on, on_rep = run_profiled ~tracing:true () in
  let off, off_rep = run_profiled ~tracing:false () in
  Alcotest.(check int) "committed" on.Workload.Runner.committed
    off.Workload.Runner.committed;
  Alcotest.(check int) "messages" on.Workload.Runner.messages
    off.Workload.Runner.messages;
  Alcotest.(check int) "events executed" on.Workload.Runner.events
    off.Workload.Runner.events;
  Alcotest.(check bool) "latencies identical" true
    (on.Workload.Runner.latency_ms = off.Workload.Runner.latency_ms);
  Alcotest.(check int) "no spans with tracing off" 0
    off_rep.Sim.Profiler.p_spans_created;
  Alcotest.(check bool) "spans with tracing on" true
    (on_rep.Sim.Profiler.p_spans_created > 0)

let test_profile_json_normalized_deterministic () =
  (* Same seed twice: raw profile JSON may differ in timing fields, but
     after normalization the two must be byte-identical. *)
  let json () =
    let _, report = run_profiled () in
    Sim.Profiler.report_to_json report
  in
  let a = json () and b = json () in
  let na = Sim.Profiler.normalize_json a
  and nb = Sim.Profiler.normalize_json b in
  Alcotest.(check string) "normalized profiles byte-identical" na nb;
  (match Workload.Bench_out.parse na with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "normalized profile not valid JSON: %s" e);
  (* Normalization really did clear the wall-derived fields. *)
  List.iter
    (fun field ->
      let re = Printf.sprintf "\"%s\":0" field in
      Alcotest.(check bool) (field ^ " zeroed") true
        (let len = String.length na and plen = String.length re in
         let rec scan i =
           if i + plen > len then false
           else if String.sub na i plen = re then true
           else scan (i + 1)
         in
         scan 0))
    Sim.Profiler.nondeterministic_fields

let test_engine_summary_wall () =
  let result, _ = run_profiled () in
  let with_wall = { result with Workload.Runner.wall_s = 2.0; events = 1000 } in
  Alcotest.(check string) "events/s summary"
    "1000 events in 2.000 s wall (500 events/s)"
    (Workload.Report.engine_summary with_wall);
  let no_wall = { result with Workload.Runner.wall_s = 0.; events = 42 } in
  Alcotest.(check string) "n/a on zero wall" "42 events (wall n/a)"
    (Workload.Report.engine_summary no_wall)

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          tc "respects spec" test_generator_respects_spec;
          tc "read-only mix" test_generator_read_only_mix;
          tc "ratio statistics" test_generator_ratio_statistics;
          tc "zipf skew" test_generator_skew;
        ] );
      ( "stats",
        [
          tc "empty" test_stats_empty;
          tc "known values" test_stats_known_values;
          tc "order independent" test_stats_order_independent;
          tc "recorder" test_stats_recorder;
        ] );
      ( "runner",
        [
          tc "completes" test_runner_completes;
          tc "deterministic" test_runner_deterministic;
          tc "failure schedule" test_runner_failure_schedule;
          tc "latency split" test_runner_latency_split;
          tc "poisson arrivals" test_runner_poisson_arrivals;
        ] );
      ( "report",
        [ tc "csv" test_report_csv; tc "engine summary" test_engine_summary_wall ]
      );
      ( "profiler",
        [
          tc "counters match engine" test_profiler_counters_match;
          tc "gc accounting" test_profiler_gc_accounting;
          tc "disabled is identical" test_profiler_disabled_identical;
          tc "tracing off preserves schedule" test_tracing_off_preserves_schedule;
          tc "normalized json deterministic"
            test_profile_json_normalized_deterministic;
        ] );
    ]
