(* Tests for the workload library: spec, generator, statistics, and the
   closed-loop runner (incl. determinism and failure schedules). *)

open Sim

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Generator                                                          *)
(* ------------------------------------------------------------------ *)

let test_generator_respects_spec () =
  let spec =
    {
      Workload.Spec.default with
      n_keys = 10;
      ops_per_txn = 3;
      update_ratio = 1.0;
    }
  in
  let gen = Workload.Generator.create ~seed:1 spec in
  for _ = 1 to 50 do
    let update, req = Workload.Generator.request gen ~client:7 in
    Alcotest.(check bool) "all updates at ratio 1.0" true update;
    Alcotest.(check int) "ops per txn" 3 (List.length req.Store.Operation.ops);
    Alcotest.(check int) "client" 7 req.Store.Operation.client;
    List.iter
      (fun op ->
        match op with
        | Store.Operation.Incr (k, 1) ->
            let idx = int_of_string (String.sub k 1 (String.length k - 1)) in
            Alcotest.(check bool) "key in range" true (idx >= 0 && idx < 10)
        | _ -> Alcotest.fail "update mix must produce Incr operations")
      req.Store.Operation.ops
  done

let test_generator_read_only_mix () =
  let spec = { Workload.Spec.default with update_ratio = 0.0 } in
  let gen = Workload.Generator.create ~seed:2 spec in
  for _ = 1 to 50 do
    let update, req = Workload.Generator.request gen ~client:1 in
    Alcotest.(check bool) "no updates" false update;
    Alcotest.(check bool) "request is read-only" false
      (Store.Operation.request_is_update req)
  done

let test_generator_ratio_statistics () =
  let spec = { Workload.Spec.default with update_ratio = 0.3 } in
  let gen = Workload.Generator.create ~seed:3 spec in
  let updates = ref 0 in
  for _ = 1 to 1000 do
    let update, _ = Workload.Generator.request gen ~client:1 in
    if update then incr updates
  done;
  Alcotest.(check bool) "≈30% updates" true (!updates > 230 && !updates < 370)

let test_generator_skew () =
  let spec = { Workload.Spec.default with key_skew = 0.99; n_keys = 100 } in
  let gen = Workload.Generator.create ~seed:4 spec in
  let counts = Hashtbl.create 16 in
  for _ = 1 to 2000 do
    let _, req = Workload.Generator.request gen ~client:1 in
    List.iter
      (fun op ->
        List.iter
          (fun k ->
            Hashtbl.replace counts k
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          (Store.Operation.read_keys op @ Store.Operation.write_keys op))
      req.Store.Operation.ops
  done;
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool) "hot key dominates" true (hottest > 100)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Workload.Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.Workload.Stats.count

let test_stats_known_values () =
  let values = List.init 100 (fun i -> float_of_int (i + 1)) in
  let s = Workload.Stats.summarize values in
  Alcotest.(check int) "count" 100 s.Workload.Stats.count;
  Alcotest.(check (float 0.001)) "mean" 50.5 s.Workload.Stats.mean;
  Alcotest.(check (float 1.5)) "p50" 50.0 s.Workload.Stats.p50;
  Alcotest.(check (float 1.5)) "p90" 90.0 s.Workload.Stats.p90;
  Alcotest.(check (float 1.5)) "p99" 99.0 s.Workload.Stats.p99;
  Alcotest.(check (float 0.001)) "min" 1.0 s.Workload.Stats.min;
  Alcotest.(check (float 0.001)) "max" 100.0 s.Workload.Stats.max

let test_stats_order_independent () =
  let a = Workload.Stats.summarize [ 3.; 1.; 2. ] in
  let b = Workload.Stats.summarize [ 1.; 2.; 3. ] in
  Alcotest.(check (float 0.001)) "same p50" a.Workload.Stats.p50 b.Workload.Stats.p50

let test_stats_recorder () =
  let r = Workload.Stats.recorder () in
  Workload.Stats.record r 5.0;
  Workload.Stats.record r 15.0;
  let s = Workload.Stats.summary r in
  Alcotest.(check int) "count" 2 s.Workload.Stats.count;
  Alcotest.(check (float 0.001)) "mean" 10.0 s.Workload.Stats.mean

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let active_factory net ~replicas ~clients =
  Protocols.Active.create net ~replicas ~clients ()

let small_spec = { Workload.Spec.default with txns_per_client = 10 }

let test_runner_completes () =
  let result =
    Workload.Runner.run ~n_clients:2 ~spec:small_spec active_factory
  in
  Alcotest.(check int) "all committed" 20 result.Workload.Runner.committed;
  Alcotest.(check int) "no aborts" 0 result.Workload.Runner.aborted;
  Alcotest.(check int) "all answered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check bool) "converged" true result.Workload.Runner.converged;
  Alcotest.(check bool) "serializable" true result.Workload.Runner.serializable;
  Alcotest.(check bool) "throughput positive" true
    (result.Workload.Runner.throughput > 0.);
  Alcotest.(check int) "latency count = committed" 20
    result.Workload.Runner.latency_ms.Workload.Stats.count

let test_runner_deterministic () =
  let run () = Workload.Runner.run ~seed:77 ~spec:small_spec active_factory in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical results for identical seeds" true (a = b);
  let c = Workload.Runner.run ~seed:78 ~spec:small_spec active_factory in
  Alcotest.(check bool) "different seed differs" true
    (a.Workload.Runner.latency_ms <> c.Workload.Runner.latency_ms)

let test_runner_failure_schedule () =
  let fail_early = [ Workload.Runner.crash_at ~at:(Simtime.of_ms 10) 2 ] in
  let smooth = Workload.Runner.run ~seed:5 ~spec:small_spec active_factory in
  let crashed =
    Workload.Runner.run ~seed:5 ~spec:small_spec ~failures:fail_early
      active_factory
  in
  Alcotest.(check int) "still all committed" 40 crashed.Workload.Runner.committed;
  Alcotest.(check bool) "crash visible as a response gap" true
    Simtime.(
      crashed.Workload.Runner.max_response_gap
      > smooth.Workload.Runner.max_response_gap);
  Alcotest.(check bool) "survivors converged" true
    crashed.Workload.Runner.converged

let test_runner_latency_split () =
  let spec = { small_spec with update_ratio = 0.5 } in
  let result = Workload.Runner.run ~n_clients:2 ~spec active_factory in
  let r = result.Workload.Runner.read_latency_ms.Workload.Stats.count in
  let u = result.Workload.Runner.update_latency_ms.Workload.Stats.count in
  Alcotest.(check int) "read+update = committed" result.Workload.Runner.committed
    (r + u);
  Alcotest.(check bool) "both kinds present" true (r > 0 && u > 0)


(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let test_report_csv () =
  let result = Workload.Runner.run ~n_clients:1 ~spec:small_spec active_factory in
  let header_cols = String.split_on_char ',' Workload.Report.csv_header in
  let row = Workload.Report.csv_row ~label:"test" result in
  let row_cols = String.split_on_char ',' row in
  Alcotest.(check int) "row matches header arity" (List.length header_cols)
    (List.length row_cols);
  Alcotest.(check string) "label first" "test" (List.hd row_cols);
  Alcotest.(check string) "committed column" "10" (List.nth row_cols 1);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Workload.Report.to_csv ppf [ ("a", result); ("b", result) ];
  Format.pp_print_flush ppf ();
  Alcotest.(check int) "header + two rows" 3
    (List.length
       (List.filter
          (fun l -> String.length l > 0)
          (String.split_on_char '\n' (Buffer.contents buf))))


let test_runner_poisson_arrivals () =
  (* Open-loop submission: all transactions go out regardless of replies,
     and all are eventually answered. *)
  let result =
    Workload.Runner.run ~n_clients:2 ~spec:small_spec
      ~arrival:(`Poisson 200.) active_factory
  in
  Alcotest.(check int) "all committed" 20 result.Workload.Runner.committed;
  Alcotest.(check int) "none unanswered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check bool) "converged" true result.Workload.Runner.converged;
  (* Same seed, same arrival process: deterministic too. *)
  let again =
    Workload.Runner.run ~n_clients:2 ~spec:small_spec
      ~arrival:(`Poisson 200.) active_factory
  in
  Alcotest.(check bool) "deterministic" true (result = again)

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          tc "respects spec" test_generator_respects_spec;
          tc "read-only mix" test_generator_read_only_mix;
          tc "ratio statistics" test_generator_ratio_statistics;
          tc "zipf skew" test_generator_skew;
        ] );
      ( "stats",
        [
          tc "empty" test_stats_empty;
          tc "known values" test_stats_known_values;
          tc "order independent" test_stats_order_independent;
          tc "recorder" test_stats_recorder;
        ] );
      ( "runner",
        [
          tc "completes" test_runner_completes;
          tc "deterministic" test_runner_deterministic;
          tc "failure schedule" test_runner_failure_schedule;
          tc "latency split" test_runner_latency_split;
          tc "poisson arrivals" test_runner_poisson_arrivals;
        ] );
      ("report", [ tc "csv" test_report_csv ]);
    ]
