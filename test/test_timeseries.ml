(* Tests for the sampled time-series subsystem: sampler determinism,
   point ordering, saturation detectors, the shared summary edge cases,
   and the 2PC in-doubt gauge under a coordinator crash. *)

open Sim

let tc name f = Alcotest.test_case name `Quick f

let locking_factory net ~replicas ~clients =
  Protocols.Eager_ue_locking.create net ~replicas ~clients ()

let certification_factory net ~replicas ~clients =
  Protocols.Certification_based.create net ~replicas ~clients ()

let small_spec =
  {
    Workload.Spec.default with
    update_ratio = 1.0;
    txns_per_client = 10;
    think_time = Simtime.of_ms 2;
  }

let sampled_run ?(seed = 11) ?failures factory =
  Workload.Runner.run ~seed ?failures ~n_clients:2 ~spec:small_spec
    ~sample:(Simtime.of_ms 5)
    ~deadline:(Simtime.of_sec 5.) factory

(* ------------------------------------------------------------------ *)
(* Sampler                                                            *)
(* ------------------------------------------------------------------ *)

let test_sampler_determinism () =
  let render (r : Workload.Runner.result) =
    String.concat "\n"
      (List.map Timeseries.series_to_json r.Workload.Runner.series)
  in
  let a = render (sampled_run certification_factory) in
  let b = render (sampled_run certification_factory) in
  Alcotest.(check bool) "series non-empty" true (String.length a > 0);
  Alcotest.(check string) "same seed, byte-identical series" a b

let test_points_monotonic () =
  let result = sampled_run locking_factory in
  Alcotest.(check bool) "some series sampled" true
    (result.Workload.Runner.series <> []);
  List.iter
    (fun (s : Timeseries.series) ->
      let pts = Timeseries.points s in
      Alcotest.(check int)
        (s.Timeseries.name ^ " n_points consistent")
        (List.length pts) s.Timeseries.n_points;
      ignore
        (List.fold_left
           (fun prev (p : Timeseries.point) ->
             (match prev with
             | Some (at : Simtime.t) ->
                 Alcotest.(check bool)
                   (s.Timeseries.name ^ " strictly increasing sim time")
                   true
                   Simtime.(p.Timeseries.at > at)
             | None -> ());
             Some p.Timeseries.at)
           None pts))
    result.Workload.Runner.series

let test_duplicate_registration_sums () =
  let engine = Engine.create ~seed:1 () in
  let ts = Timeseries.create ~interval:(Simtime.of_ms 1) engine in
  Timeseries.register ts ~name:"g" ~replica:0 ~kind:Timeseries.Level (fun () ->
      1.);
  Timeseries.register ts ~name:"g" ~replica:0 ~kind:Timeseries.Level (fun () ->
      2.);
  ignore (Engine.run ~until:(Simtime.of_ms 3) engine);
  match Timeseries.find ts ~name:"g" ~replica:0 with
  | None -> Alcotest.fail "series missing"
  | Some s ->
      Alcotest.(check int) "one series" 1 (List.length (Timeseries.series ts));
      List.iter
        (fun (p : Timeseries.point) ->
          Alcotest.(check (float 0.0)) "thunks summed" 3. p.Timeseries.value)
        (Timeseries.points s)

(* ------------------------------------------------------------------ *)
(* Saturation detectors (synthetic series)                            *)
(* ------------------------------------------------------------------ *)

let synthetic ~kind values =
  let points_rev =
    List.rev
      (List.mapi
         (fun i v -> { Timeseries.at = Simtime.of_ms (5 * i); value = v })
         values)
  in
  {
    Timeseries.name = "synthetic";
    replica = 0;
    kind;
    unit_ = "count";
    points_rev;
    n_points = List.length values;
    thunks = [];
  }

let detectors findings = List.map (fun f -> f.Saturation.detector) findings

let test_queue_growth_detector () =
  (* 12 monotonically growing samples, net rise 11: fires. *)
  let growing =
    synthetic ~kind:Timeseries.Queue (List.init 12 float_of_int)
  in
  Alcotest.(check (list string))
    "sustained growth fires" [ "queue_growth" ]
    (detectors (Saturation.analyze [ growing ]));
  (* A short burst that drains: stays quiet. *)
  let burst =
    synthetic ~kind:Timeseries.Queue [ 0.; 4.; 8.; 6.; 2.; 0.; 0.; 0. ]
  in
  Alcotest.(check (list string))
    "draining burst is quiet" []
    (detectors (Saturation.analyze [ burst ]));
  (* The same growth on a Level series is ignored (monotone by design). *)
  let level = synthetic ~kind:Timeseries.Level (List.init 12 float_of_int) in
  Alcotest.(check (list string))
    "level series ignored" []
    (detectors (Saturation.analyze [ level ]))

let test_waiter_convoy_detector () =
  let convoy =
    synthetic ~kind:Timeseries.Waiters (List.init 12 (fun _ -> 3.))
  in
  Alcotest.(check (list string))
    "sustained waiters fire" [ "waiter_convoy" ]
    (detectors (Saturation.analyze [ convoy ]));
  let brief = synthetic ~kind:Timeseries.Waiters [ 0.; 3.; 3.; 0.; 0. ] in
  Alcotest.(check (list string))
    "brief wait is quiet" []
    (detectors (Saturation.analyze [ brief ]))

let test_window_overrun_detector () =
  (* Positive for 250ms of 5ms samples: over the 200ms budget. *)
  let stuck = synthetic ~kind:Timeseries.Window (List.init 51 (fun _ -> 1.)) in
  Alcotest.(check (list string))
    "overlong in-doubt fires" [ "window_overrun" ]
    (detectors (Saturation.analyze [ stuck ]));
  let quick = synthetic ~kind:Timeseries.Window [ 0.; 1.; 1.; 0.; 0. ] in
  Alcotest.(check (list string))
    "round-trip-sized window is quiet" []
    (detectors (Saturation.analyze [ quick ]))

(* ------------------------------------------------------------------ *)
(* Shared summary edge cases                                          *)
(* ------------------------------------------------------------------ *)

let finite f = Float.is_finite f

let test_summary_empty () =
  let s = Workload.Stats.summarize [] in
  Alcotest.(check int) "count sentinel" 0 s.Workload.Stats.count;
  List.iter
    (fun (label, v) ->
      Alcotest.(check bool) (label ^ " finite") true (finite v))
    [
      ("mean", s.Workload.Stats.mean);
      ("p50", s.Workload.Stats.p50);
      ("p99", s.Workload.Stats.p99);
      ("min", s.Workload.Stats.min);
      ("max", s.Workload.Stats.max);
    ];
  Alcotest.(check bool) "recorder agrees" true
    (Workload.Stats.summary (Workload.Stats.recorder ()) = s);
  Alcotest.(check bool) "empty_summary agrees" true
    (Workload.Stats.empty_summary = s)

let test_summary_single_sample () =
  let s = Workload.Stats.summarize [ 42. ] in
  Alcotest.(check int) "count" 1 s.Workload.Stats.count;
  List.iter
    (fun (label, v) ->
      Alcotest.(check (float 0.0)) label 42. v)
    [
      ("mean", s.Workload.Stats.mean);
      ("p50", s.Workload.Stats.p50);
      ("p90", s.Workload.Stats.p90);
      ("p95", s.Workload.Stats.p95);
      ("p99", s.Workload.Stats.p99);
      ("min", s.Workload.Stats.min);
      ("max", s.Workload.Stats.max);
    ]

let test_hist_summary_empty () =
  let h =
    {
      Metrics.count = 0;
      sum = 0.;
      min = Float.infinity;
      max = Float.neg_infinity;
      bucket_counts = Array.make 64 0;
    }
  in
  let s = Metrics.hist_summary h in
  Alcotest.(check int) "count sentinel" 0 s.Summary.count;
  Alcotest.(check bool) "mean finite" true (finite s.Summary.mean);
  Alcotest.(check bool) "equals Summary.empty" true (s = Summary.empty)

(* ------------------------------------------------------------------ *)
(* 2PC in-doubt gauge under a coordinator crash                       *)
(* ------------------------------------------------------------------ *)

let test_in_doubt_rises_and_clears () =
  (* Crash replica 0 mid-run with update traffic in flight: some
     participant is left in doubt (prepared, no decision) until the
     coordinator recovers and cooperative termination (Decision_req)
     drains the prepared table. *)
  let result =
    sampled_run
      ~failures:
        [
          Workload.Runner.crash_recover ~at:(Simtime.of_ms 100)
            ~recover_at:(Simtime.of_ms 600) 0;
        ]
      locking_factory
  in
  let in_doubt =
    List.filter
      (fun (s : Timeseries.series) -> s.Timeseries.name = "tpc_in_doubt")
      result.Workload.Runner.series
  in
  Alcotest.(check bool) "in-doubt gauge registered" true (in_doubt <> []);
  let peak =
    List.fold_left
      (fun acc s -> Stdlib.max acc (Timeseries.max_value s))
      0. in_doubt
  in
  Alcotest.(check bool) "some replica goes in doubt during the crash" true
    (peak > 0.);
  List.iter
    (fun (s : Timeseries.series) ->
      match List.rev (Timeseries.points s) with
      | [] -> ()
      | last :: _ ->
          Alcotest.(check (float 0.0))
            "in-doubt drains to zero after recovery" 0. last.Timeseries.value)
    in_doubt

let () =
  Alcotest.run "timeseries"
    [
      ( "sampler",
        [
          tc "determinism" test_sampler_determinism;
          tc "monotonic points" test_points_monotonic;
          tc "duplicate registration sums" test_duplicate_registration_sums;
        ] );
      ( "saturation",
        [
          tc "queue growth" test_queue_growth_detector;
          tc "waiter convoy" test_waiter_convoy_detector;
          tc "window overrun" test_window_overrun_detector;
        ] );
      ( "summary",
        [
          tc "empty" test_summary_empty;
          tc "single sample" test_summary_single_sample;
          tc "empty histogram" test_hist_summary_empty;
        ] );
      ( "in-doubt",
        [ tc "rises under coordinator crash" test_in_doubt_rises_and_clears ] );
    ]
