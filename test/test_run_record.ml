(* The cross-run observability stack: run-record byte-determinism and
   schema round-trips, the sweep grid algebra, the compare engine's
   regression/improvement verdicts, and the zipf key-popularity sampler
   (theta = 0 must be uniform, and every draw deterministic per seed). *)

let tc name f = Alcotest.test_case name `Quick f

(* One small audited run distilled into a normalized record. *)
let record_of ?(seed = 11) ?shape ?flash ?router
    (entry : Protocols.Registry.entry) =
  let factory = Protocols.Registry.configure_exn entry [] in
  let spec =
    Workload.Builder.spec ~updates:0.5 ~txns:5 ~keys:40 ?shape ?flash ()
  in
  let builder =
    Workload.Builder.make ~seed ~replicas:3 ~clients:2 ~spec ~audit:true
      ?router ()
  in
  let result = Workload.Builder.run builder factory in
  Workload.Run_record.normalize
    (Workload.Run_record.of_run ~technique:entry.key ~config:[] ~seed
       ~n_replicas:3 ~n_clients:2 ~arrival:`Closed ~spec result)

(* ---- record determinism and round-trip ------------------------------- *)

(* The property the committed baseline relies on: a same-seed re-run
   renders byte-identically once the wall-clock field is normalized. *)
let test_record_deterministic () =
  let entry = Option.get (Protocols.Registry.find "active") in
  let a = Workload.Run_record.to_json (record_of entry) in
  let b = Workload.Run_record.to_json (record_of entry) in
  Alcotest.(check string) "same seed renders byte-identically" a b;
  let c = Workload.Run_record.to_json (record_of ~seed:12 entry) in
  Alcotest.(check bool) "different seed differs" false (String.equal a c)

let test_record_roundtrip_all_techniques () =
  List.iter
    (fun (entry : Protocols.Registry.entry) ->
      let r = record_of entry in
      let json = Workload.Run_record.to_json r in
      match Workload.Run_record.of_string json with
      | Error msg -> Alcotest.failf "%s: round-trip failed: %s" entry.key msg
      | Ok r' ->
          Alcotest.(check string)
            (entry.key ^ ": parse . print is the identity")
            json
            (Workload.Run_record.to_json r');
          Alcotest.(check string)
            (entry.key ^ ": cell identity survives the round-trip")
            (Workload.Run_record.cell_id r)
            (Workload.Run_record.cell_id r'))
    Protocols.Registry.all

(* A stale baseline written by another schema version must fail loudly,
   not parse into garbage — in particular the v1 records this repo's
   pre-router baselines were written in. *)
let test_record_rejects_other_versions () =
  let entry = Option.get (Protocols.Registry.find "active") in
  let json = Workload.Run_record.to_json (record_of entry) in
  let needle =
    Printf.sprintf "\"record_version\":%d" Workload.Run_record.schema_version
  in
  let i =
    let rec find i =
      if String.sub json i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let rewrite_to v =
    String.sub json 0 i
    ^ Printf.sprintf "\"record_version\":%d" v
    ^ String.sub json
        (i + String.length needle)
        (String.length json - i - String.length needle)
  in
  List.iter
    (fun v ->
      match Workload.Run_record.of_string (rewrite_to v) with
      | Ok _ -> Alcotest.failf "record from schema version %d parsed" v
      | Error msg ->
          Alcotest.(check bool)
            "the error names the version mismatch" true
            (String.length msg > 0))
    [ 1; Workload.Run_record.schema_version + 1 ]

(* The v2 additions — session shape, flash crowd, router section —
   survive the round-trip and surface in the cell identity and the flat
   metric view. *)
let test_record_v2_router_roundtrip () =
  let entry = Option.get (Protocols.Registry.find "lazy-primary") in
  let r =
    record_of ~shape:Workload.Spec.Tpcb
      ~flash:Workload.Spec.default_flash_crowd
      ~router:
        { Workload.Router.default_config with Workload.Router.sticky = true }
      entry
  in
  let json = Workload.Run_record.to_json r in
  Alcotest.(check bool) "record carries a router section" true
    (r.Workload.Run_record.router <> None);
  (match Workload.Run_record.of_string json with
  | Error msg -> Alcotest.failf "v2 round-trip failed: %s" msg
  | Ok r' ->
      Alcotest.(check string) "parse . print is the identity" json
        (Workload.Run_record.to_json r');
      Alcotest.(check string) "cell identity survives"
        (Workload.Run_record.cell_id r)
        (Workload.Run_record.cell_id r'));
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "cell id names the shape" true
    (contains (Workload.Run_record.cell_id r) "shape=tpcb");
  Alcotest.(check bool) "cell id names the sticky router" true
    (contains (Workload.Run_record.cell_id r) "router=sticky");
  Alcotest.(check bool) "cell id names the flash phase" true
    (contains (Workload.Run_record.cell_id r) "flash[");
  Alcotest.(check (option (float 1e-9)))
    "router metrics surface in the flat view" (Some 1.)
    (Workload.Run_record.metric r "router_sticky")

let test_metric_view () =
  let entry = Option.get (Protocols.Registry.find "lazy-primary") in
  let r = record_of entry in
  Alcotest.(check (option (float 1e-9)))
    "flat view indexes the latency field"
    (Some r.Workload.Run_record.latency_p95_ms)
    (Workload.Run_record.metric r "latency_p95");
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (name ^ " is a declared metric name")
        true
        (List.mem name Workload.Run_record.metric_names))
    (Workload.Run_record.metrics r)

(* ---- sweep grid algebra ---------------------------------------------- *)

let test_sweep_cells () =
  let axes =
    {
      Workload.Sweep.default_axes with
      techniques = [ "active"; "lazy-primary" ];
      loads = [ 0.; 200. ];
      zipfs = [ 0.; 0.9 ];
      seeds = [ 11; 12 ];
      vary = [ ("active", "batch_window", [ "0ms"; "5ms" ]) ];
    }
  in
  let cells = Workload.Sweep.cells axes in
  (* active gets the vary axis (2×), lazy-primary does not:
     2 loads × 2 zipfs × 2 seeds = 8 base cells per technique. *)
  Alcotest.(check int) "vary applies only to its technique" 24
    (List.length cells);
  let again = Workload.Sweep.cells axes in
  Alcotest.(check bool) "expansion order is deterministic" true (cells = again);
  Alcotest.(check bool) "every active cell binds the vary key" true
    (List.for_all
       (fun (c : Workload.Sweep.cell) ->
         c.technique <> "active" || List.mem_assoc "batch_window" c.vary)
       cells)

(* ---- compare verdicts ------------------------------------------------ *)

let base_set = [ ("cell-a", [ ("latency_p95", 10.); ("throughput", 100.) ]) ]

let compare_with cand =
  Workload.Compare.compare_sets ~base:base_set ~cand ()

let test_compare_unchanged () =
  let report = compare_with base_set in
  Alcotest.(check int) "no regressions" 0
    (Workload.Compare.count Workload.Compare.Regressed report);
  Alcotest.(check bool) "identical sets pass" true
    (Workload.Compare.ok report)

(* The CI contract from the issue: an injected >=20% latency regression
   must trip the gate. *)
let test_compare_catches_regression () =
  let report =
    compare_with
      [ ("cell-a", [ ("latency_p95", 12.5); ("throughput", 100.) ]) ]
  in
  Alcotest.(check int) "one regression" 1
    (Workload.Compare.count Workload.Compare.Regressed report);
  Alcotest.(check bool) "gate trips" false (Workload.Compare.ok report)

let test_compare_blesses_improvement () =
  let report =
    compare_with
      [ ("cell-a", [ ("latency_p95", 6.); ("throughput", 150.) ]) ]
  in
  Alcotest.(check int) "both metrics improved" 2
    (Workload.Compare.count Workload.Compare.Improved report);
  Alcotest.(check bool) "improvements pass" true (Workload.Compare.ok report)

(* Direction is per-metric: a throughput drop is the regression even
   though the number went down. *)
let test_compare_throughput_direction () =
  let report =
    compare_with
      [ ("cell-a", [ ("latency_p95", 10.); ("throughput", 70.) ]) ]
  in
  let f =
    List.find
      (fun (f : Workload.Compare.finding) -> f.metric = "throughput")
      report.Workload.Compare.findings
  in
  Alcotest.(check bool) "the throughput drop is a regression" true
    (f.Workload.Compare.verdict = Workload.Compare.Regressed);
  Alcotest.(check int) "and the only one" 1
    (Workload.Compare.count Workload.Compare.Regressed report)

let test_compare_missing_cell_fails () =
  let report = compare_with [] in
  Alcotest.(check (list string))
    "baseline cell reported missing" [ "cell-a" ]
    report.Workload.Compare.missing;
  Alcotest.(check bool) "missing cells fail the gate" false
    (Workload.Compare.ok report)

(* ---- zipf key popularity --------------------------------------------- *)

let draw_counts ~seed ~theta ~n ~draws =
  let rng = Sim.Rng.create ~seed in
  let z = Sim.Rng.Zipf.make ~n ~theta in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Sim.Rng.Zipf.draw rng z in
    counts.(k) <- counts.(k) + 1
  done;
  counts

(* theta = 0 is uniform by construction: every key's weight is 1. *)
let test_zipf_theta_zero_uniform () =
  let counts = draw_counts ~seed:7 ~theta:0. ~n:10 ~draws:10_000 in
  Array.iteri
    (fun k c ->
      if c < 800 || c > 1200 then
        Alcotest.failf "theta=0 not uniform: key %d drawn %d/10000 times" k c)
    counts

let test_zipf_skew_concentrates () =
  let counts = draw_counts ~seed:7 ~theta:1.2 ~n:10 ~draws:10_000 in
  Alcotest.(check bool) "hot key dominates the coldest under theta=1.2" true
    (counts.(0) > 3 * counts.(9))

let test_zipf_deterministic_per_seed () =
  let a = draw_counts ~seed:42 ~theta:0.9 ~n:20 ~draws:1_000 in
  let b = draw_counts ~seed:42 ~theta:0.9 ~n:20 ~draws:1_000 in
  let c = draw_counts ~seed:43 ~theta:0.9 ~n:20 ~draws:1_000 in
  Alcotest.(check bool) "same seed, same draws" true (a = b);
  Alcotest.(check bool) "different seed, different draws" false (a = c)

let () =
  Alcotest.run "run_record"
    [
      ( "record",
        [
          tc "same-seed normalized records are byte-identical"
            test_record_deterministic;
          tc "to_json/of_string round-trips for every technique"
            test_record_roundtrip_all_techniques;
          tc "other schema versions (incl. v1 baselines) are rejected"
            test_record_rejects_other_versions;
          tc "v2 shape/flash/router fields round-trip"
            test_record_v2_router_roundtrip;
          tc "flat metric view matches the fields" test_metric_view;
        ] );
      ( "sweep",
        [ tc "grid expansion: cartesian, deterministic, vary scoped"
            test_sweep_cells ] );
      ( "compare",
        [
          tc "identical sets pass" test_compare_unchanged;
          tc "injected 25% latency regression trips the gate"
            test_compare_catches_regression;
          tc "improvements are blessed" test_compare_blesses_improvement;
          tc "throughput drop is a regression" test_compare_throughput_direction;
          tc "missing baseline cell fails" test_compare_missing_cell_fails;
        ] );
      ( "zipf",
        [
          tc "theta=0 is uniform" test_zipf_theta_zero_uniform;
          tc "theta=1.2 concentrates on hot keys" test_zipf_skew_concentrates;
          tc "draws are deterministic per seed"
            test_zipf_deterministic_per_seed;
        ] );
    ]
