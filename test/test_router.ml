(* The client-side routing tier: router-off schedule preservation
   (pinned pre-refactor counters), read/write splitting and session
   accounting, the sticky read-your-writes property over lazy-primary
   (randomized), failover retry under a crash schedule, and the
   flash-crowd session phases. *)

let tc name f = Alcotest.test_case name `Quick f

let factory_of ?(config = []) name =
  let entry = Option.get (Protocols.Registry.find name) in
  Protocols.Registry.configure_exn entry config

let run_default ?router ?flash name =
  let spec = Workload.Builder.spec ?flash () in
  let builder = Workload.Builder.make ~spec ?router () in
  Workload.Builder.run builder (factory_of name)

(* ---- router off: the pre-refactor request path, byte for byte ------- *)

(* The refactor's contract: with no router configured, the Runner's
   dispatch IS the old direct inst.submit call and nothing new is
   scheduled, so the event schedule — and with it every deterministic
   counter — must match the pre-refactor binary exactly. These triples
   were recorded from the tree before the routing tier existed (defaults:
   seed 11, 3 replicas, 4 clients, 50 txns/client, closed loop). *)
let test_router_off_schedule_preserved () =
  List.iter
    (fun (name, committed, events, messages) ->
      let r = run_default name in
      Alcotest.(check int) (name ^ ": committed") committed
        r.Workload.Runner.committed;
      Alcotest.(check int) (name ^ ": engine events") events
        r.Workload.Runner.events;
      Alcotest.(check int) (name ^ ": network messages") messages
        r.Workload.Runner.messages;
      Alcotest.(check bool) (name ^ ": no router stats on the result") true
        (r.Workload.Runner.router = None))
    [
      ("lazy-primary", 200, 2352, 1848);
      ("eager-primary", 200, 5631, 3932);
      ("active", 200, 100844, 46050);
    ]

(* ---- read/write splitting and session accounting -------------------- *)

let test_router_splits_reads_and_writes () =
  let r =
    run_default ~router:Workload.Router.default_config "lazy-primary"
  in
  let st = Option.get r.Workload.Runner.router in
  Alcotest.(check int) "every request routed exactly once"
    (r.Workload.Runner.committed + r.Workload.Runner.aborted)
    (st.Workload.Router.reads_routed + st.Workload.Router.writes_routed
   + st.Workload.Router.fallback_reads);
  Alcotest.(check bool) "both classes present" true
    (st.Workload.Router.reads_routed > 0
    && st.Workload.Router.writes_routed > 0);
  Alcotest.(check bool) "non-sticky routes no sticky reads" true
    (st.Workload.Router.sticky_reads = 0);
  Alcotest.(check int) "one session per client" 4
    (List.length st.Workload.Router.sessions);
  let totals =
    List.fold_left
      (fun (rd, wr) (s : Workload.Router.session_view) ->
        (rd + s.v_reads, wr + s.v_writes))
      (0, 0) st.Workload.Router.sessions
  in
  Alcotest.(check (pair int int))
    "per-session counters sum to the totals"
    (st.Workload.Router.reads_routed, st.Workload.Router.writes_routed)
    totals;
  Alcotest.(check bool) "run outcome unharmed by routing" true
    (r.Workload.Runner.committed > 0
    && r.Workload.Runner.converged && r.Workload.Runner.serializable)

let test_sticky_pins_sessions () =
  let r =
    run_default
      ~router:
        { Workload.Router.default_config with Workload.Router.sticky = true }
      "lazy-primary"
  in
  let st = Option.get r.Workload.Runner.router in
  Alcotest.(check bool) "stats echo the sticky config" true
    st.Workload.Router.sticky;
  Alcotest.(check bool) "most reads hit the session pin" true
    (st.Workload.Router.sticky_reads > st.Workload.Router.reads_routed / 2);
  List.iter
    (fun (s : Workload.Router.session_view) ->
      Alcotest.(check bool)
        (Printf.sprintf "client %d ends pinned" s.v_client)
        true (s.v_pinned <> None))
    st.Workload.Router.sessions

(* ---- sticky => read-your-writes over lazy-primary (randomized) ------ *)

(* The headline property, as the issue states it: over lazy-primary with
   a propagation delay long enough to expose staleness, a sticky routed
   run measures zero read-your-writes violations for every seed and
   client count, while the same run without stickiness stays strictly
   positive — the audit layer is the checker for both sides. *)
let prop_sticky_restores_ryw =
  let factory =
    factory_of "lazy-primary" ~config:[ ("propagation_delay", "20ms") ]
  in
  let audited ~sticky ~seed ~clients ~txns =
    let spec = Workload.Builder.spec ~updates:0.5 ~txns ~keys:40 () in
    let builder =
      Workload.Builder.make ~seed ~replicas:3 ~clients ~spec ~audit:true
        ~router:{ Workload.Router.default_config with Workload.Router.sticky }
        ()
    in
    let result = Workload.Builder.run builder factory in
    Option.get result.Workload.Runner.audit
  in
  QCheck.Test.make
    ~name:
      "lazy-primary: sticky routing measures 0 ryw violations, non-sticky > 0"
    ~count:6
    QCheck.(pair (int_range 0 10_000) (pair (int_range 3 6) (int_range 20 40)))
    (fun (seed, (clients, txns)) ->
      let sticky = audited ~sticky:true ~seed ~clients ~txns in
      let loose = audited ~sticky:false ~seed ~clients ~txns in
      sticky.Workload.Audit.ryw_violations = 0
      && sticky.Workload.Audit.drained
      && loose.Workload.Audit.ryw_violations > 0)

(* ---- failover retry -------------------------------------------------- *)

(* A read in flight to a replica that crashes under it gets no reply;
   the router must resend it elsewhere after the timeout and the client
   still sees an answer. The schedule below is one (deterministic) such
   interleaving, found by scanning crash times. *)
let test_failover_retry_answers_reads () =
  let spec = Workload.Builder.spec () in
  let builder =
    Workload.Builder.make ~spec ~router:Workload.Router.default_config
      ~failures:
        [
          Workload.Runner.crash_recover ~at:(Sim.Simtime.of_ms 60)
            ~recover_at:(Sim.Simtime.of_ms 120) 0;
        ]
      ()
  in
  let r = Workload.Builder.run builder (factory_of "active") in
  let st = Option.get r.Workload.Runner.router in
  Alcotest.(check bool) "at least one retry fired" true
    (st.Workload.Router.retries >= 1);
  Alcotest.(check bool) "at least one read survived via failover" true
    (st.Workload.Router.failovers >= 1);
  Alcotest.(check int) "no read was abandoned" 0
    st.Workload.Router.gave_up;
  Alcotest.(check int) "every request answered" 0
    r.Workload.Runner.unanswered

(* ---- flash crowd ------------------------------------------------------ *)

(* The spike must be visible in the schedule: a flash-crowd run executes
   more events in the same virtual span (compressed think times) than
   the steady run, and stays deterministic per seed. *)
let test_flash_crowd_spikes_load () =
  let steady = run_default "lazy-primary" in
  let flashed =
    run_default ~flash:Workload.Spec.default_flash_crowd "lazy-primary"
  in
  let again =
    run_default ~flash:Workload.Spec.default_flash_crowd "lazy-primary"
  in
  Alcotest.(check int) "flash-crowd run is deterministic"
    flashed.Workload.Runner.events again.Workload.Runner.events;
  Alcotest.(check bool) "spike compresses the makespan" true
    Sim.Simtime.(
      flashed.Workload.Runner.makespan < steady.Workload.Runner.makespan);
  Alcotest.(check int) "same work still completes" 200
    flashed.Workload.Runner.committed

let test_in_flash_window () =
  let fc = Workload.Spec.default_flash_crowd in
  let spec =
    Workload.Builder.spec ~flash:fc ()
  in
  let open Sim.Simtime in
  Alcotest.(check bool) "before the window" false
    (Workload.Spec.in_flash spec ~at:(of_ms 49));
  Alcotest.(check bool) "at onset" true
    (Workload.Spec.in_flash spec ~at:fc.Workload.Spec.fc_at);
  Alcotest.(check bool) "inside" true
    (Workload.Spec.in_flash spec ~at:(of_ms 100));
  Alcotest.(check bool) "at the end (exclusive)" false
    (Workload.Spec.in_flash spec ~at:(of_ms 150));
  let plain = Workload.Builder.spec () in
  Alcotest.(check bool) "no declared flash crowd: never" false
    (Workload.Spec.in_flash plain ~at:(of_ms 100))

let () =
  Alcotest.run "router"
    [
      ( "identity",
        [
          tc "router off preserves the pre-refactor schedule"
            test_router_off_schedule_preserved;
        ] );
      ( "routing",
        [
          tc "read/write splitting and session accounting"
            test_router_splits_reads_and_writes;
          tc "sticky pins sessions to their write replica"
            test_sticky_pins_sessions;
          QCheck_alcotest.to_alcotest prop_sticky_restores_ryw;
          tc "failover retry answers reads under a crash"
            test_failover_retry_answers_reads;
        ] );
      ( "flash-crowd",
        [
          tc "spike compresses the schedule deterministically"
            test_flash_crowd_spikes_load;
          tc "in_flash window arithmetic" test_in_flash_window;
        ] );
    ]
