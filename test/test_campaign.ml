(* Campaign-level conformance: every registered technique, driven through
   the core failure scenarios with a fixed seed, must satisfy its
   per-technique oracle expectations (1-copy serializability, convergence
   after recovery, Figure-16 signature conformance, liveness,
   failure transparency). This is the top of the fault-injection test
   pyramid; the per-protocol tests cover the failure-free paths. *)

let scenario name =
  match Workload.Scenario.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scenario %s" name

(* Tuple view of the registry under default configuration, for the
   sweeps below. *)
let registry_entries =
  List.map
    (fun (e : Protocols.Registry.entry) ->
      (e.Protocols.Registry.key, e.info, Protocols.Registry.default_factory e))
    Protocols.Registry.all

let conformance () =
  let scenarios =
    List.map scenario [ "crash"; "crash-recover"; "partition-heal"; "loss" ]
  in
  List.iter
    (fun (key, info, factory) ->
      List.iter
        (fun (sc : Workload.Scenario.t) ->
          let outcome =
            Workload.Scenario.run_one ~seed:11 ~key ~info ~factory sc
          in
          List.iter
            (fun (v : Workload.Scenario.verdict) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s under %s, oracle %s: %s" key sc.name
                   v.oracle v.detail)
                true v.ok)
            outcome.Workload.Scenario.verdicts)
        scenarios)
    registry_entries

let passive_factory () =
  match Protocols.Registry.find "passive" with
  | Some entry -> Protocols.Registry.default_factory entry
  | None -> Alcotest.fail "passive not registered"

let spec =
  {
    Workload.Spec.default with
    update_ratio = 1.0;
    txns_per_client = 20;
    think_time = Sim.Simtime.of_ms 2;
  }

(* Regression: the ex-primary recovers while the survivors are still
   reconfiguring (down 100..250 ms). It must rejoin through a view jump,
   agree with the survivors on the member order (primaryship is derived
   from the view head), discard its tentative pre-crash writes, and
   rebuild from a state transfer — historically this wedged the group
   with a zombie primary and two permanently unanswered requests. *)
let recovered_replica_converges () =
  let result =
    Workload.Runner.run ~seed:11 ~n_clients:2 ~spec
      ~failures:
        [
          Workload.Runner.crash_recover ~at:(Sim.Simtime.of_ms 100)
            ~recover_at:(Sim.Simtime.of_ms 250) 0;
        ]
      ~deadline:(Sim.Simtime.of_sec 120.)
      (passive_factory ())
  in
  Alcotest.(check int) "all answered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check int) "all committed" 40 result.Workload.Runner.committed;
  Alcotest.(check bool) "converged" true result.Workload.Runner.converged;
  Alcotest.(check bool) "serializable" true result.Workload.Runner.serializable

(* Regression: a crash-recover faster than the failure detector. The
   group never excluded the replica, so its rejoin request arrives from a
   current member; the membership protocol must still run a view change
   for it to re-establish view synchrony. *)
let quick_crash_recover () =
  let result =
    Workload.Runner.run ~seed:11 ~n_clients:2 ~spec
      ~failures:
        [
          Workload.Runner.crash_recover ~at:(Sim.Simtime.of_ms 100)
            ~recover_at:(Sim.Simtime.of_ms 130) 0;
        ]
      ~deadline:(Sim.Simtime.of_sec 120.)
      (passive_factory ())
  in
  Alcotest.(check int) "all answered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check bool) "converged" true result.Workload.Runner.converged;
  Alcotest.(check bool) "serializable" true result.Workload.Runner.serializable

let () =
  Alcotest.run "campaign"
    [
      ( "campaign",
        [
          Alcotest.test_case "oracle conformance" `Slow conformance;
          Alcotest.test_case "recovered replica converges" `Quick
            recovered_replica_converges;
          Alcotest.test_case "quick crash-recover" `Quick quick_crash_recover;
        ] );
    ]
