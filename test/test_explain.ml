(* Message-cost measurement: golden traces for the §5 matrix and the
   structural soundness of the causal message DAG. Mirrors the harness
   behind `replisim explain`: constant 1 ms links, one client, one
   update transaction, everything measured from message spans. *)

(* Tuple view of the registry under default configuration, for the
   sweeps below. *)
let registry_entries =
  List.map
    (fun (e : Protocols.Registry.entry) ->
      (e.Protocols.Registry.key, e.info, Protocols.Registry.default_factory e))
    Protocols.Registry.all

let run_one ?(n = 3) ?(seed = 7) ?(drop = 0.0) key =
  let _, info, factory =
    List.find (fun (k, _, _) -> k = key) registry_entries
  in
  let engine = Sim.Engine.create ~seed () in
  let config =
    {
      Sim.Network.latency = Sim.Network.Constant (Sim.Simtime.of_ms 1);
      drop_probability = drop;
    }
  in
  let net = Sim.Network.create engine ~n:(n + 1) config in
  let replicas = List.init n Fun.id in
  let client = n in
  let inst = factory net ~replicas ~clients:[ client ] in
  let request =
    Store.Operation.request ~client [ Store.Operation.Incr ("x", 1) ]
  in
  inst.Core.Technique.submit ~client request (fun _ -> ());
  ignore (Sim.Engine.run ~until:(Sim.Simtime.of_sec 2.) engine);
  let spans = inst.Core.Technique.spans in
  Core.Phase_span.finalize spans ~at:(Sim.Engine.now engine);
  let collector = Core.Phase_span.collector spans in
  let rid = request.Store.Operation.rid in
  (info, collector, rid, Sim.Msg_dag.analyze collector ~trace:rid ~clients:[ client ])

let labels (path : Sim.Msg_dag.msg list) =
  List.map (fun (m : Sim.Msg_dag.msg) -> m.Sim.Msg_dag.label) path

(* Golden trace: active replication at n=3, seed 7. The counts are exact
   — any change to the group stack's message pattern must show up here. *)
let test_golden_active () =
  let _, collector, rid, s = run_one "active" in
  Alcotest.(check bool) "replied" true s.Sim.Msg_dag.replied;
  Alcotest.(check int) "messages" 14 s.Sim.Msg_dag.messages;
  Alcotest.(check int) "steps" 4 s.Sim.Msg_dag.steps;
  Alcotest.(check (list string)) "critical path"
    [ "Data(Inject(Req))"; "Data(Order)"; "Data(Order_ack)"; "Reply" ]
    (labels s.Sim.Msg_dag.critical_path);
  Alcotest.(check bool) "causally sound" true
    (Sim.Msg_dag.causally_sound collector ~trace:rid)

(* Golden trace: eager primary copy — deeper chain (propagation plus 2PC
   before the reply). *)
let test_golden_eager_primary () =
  let _, collector, rid, s = run_one "eager-primary" in
  Alcotest.(check bool) "replied" true s.Sim.Msg_dag.replied;
  Alcotest.(check int) "messages" 16 s.Sim.Msg_dag.messages;
  Alcotest.(check int) "steps" 6 s.Sim.Msg_dag.steps;
  Alcotest.(check (list string)) "critical path"
    [
      "Data(Ereq)";
      "Data(Rb(Fifo(Propagate)))";
      "Data(Propagate_ack)";
      "Data(Prepare)";
      "Data(Vote)";
      "Reply";
    ]
    (labels s.Sim.Msg_dag.critical_path);
  Alcotest.(check bool) "causally sound" true
    (Sim.Msg_dag.causally_sound collector ~trace:rid)

(* The full matrix: every technique's observed message count and step
   depth matches its expected_messages/expected_steps claim — the same
   conformance `ci/check.sh` enforces through `replisim explain --check`,
   here across two cluster sizes. *)
let test_matrix () =
  List.iter
    (fun n ->
      List.iter
        (fun (key, _, _) ->
          let info, _, _, s = run_one ~n key in
          Alcotest.(check bool) (Printf.sprintf "%s n=%d replied" key n) true
            s.Sim.Msg_dag.replied;
          Alcotest.(check int)
            (Printf.sprintf "%s n=%d messages" key n)
            (info.Core.Technique.expected_messages ~n)
            s.Sim.Msg_dag.messages;
          Alcotest.(check int)
            (Printf.sprintf "%s n=%d steps" key n)
            info.Core.Technique.expected_steps s.Sim.Msg_dag.steps)
        registry_entries)
    [ 3; 4 ]

(* Property: whatever the seed, technique and loss rate, the message DAG
   stays structurally sound — every delivered message span has a parent
   in its own trace, and a dropped message causes nothing. With loss
   the transaction may never resolve; soundness must hold regardless. *)
let prop_causally_sound =
  QCheck.Test.make ~count:40 ~name:"message DAG causally sound"
    QCheck.(
      triple (int_bound 9999)
        (int_bound (List.length registry_entries - 1))
        (int_bound 25))
    (fun (seed, ti, drop_pct) ->
      let key, _, _ = List.nth registry_entries ti in
      let drop = float_of_int drop_pct /. 100. in
      let _, collector, rid, s = run_one ~seed ~drop key in
      Sim.Msg_dag.causally_sound collector ~trace:rid
      && (not (drop = 0.) || s.Sim.Msg_dag.replied))

(* Drops really appear in the DAG as terminal nodes: with certain loss,
   every message span is dropped and none resolves the transaction. *)
let test_total_loss () =
  let _, collector, rid, s = run_one ~drop:1.0 "active" in
  Alcotest.(check bool) "no reply" false s.Sim.Msg_dag.replied;
  Alcotest.(check int) "no delivery" 0 s.Sim.Msg_dag.messages;
  Alcotest.(check bool) "dropped some" true (s.Sim.Msg_dag.dropped > 0);
  Alcotest.(check int) "no critical path" 0
    (List.length s.Sim.Msg_dag.critical_path);
  Alcotest.(check bool) "causally sound" true
    (Sim.Msg_dag.causally_sound collector ~trace:rid)

let () =
  Alcotest.run "explain"
    [
      ( "golden",
        [
          Alcotest.test_case "active n=3 seed=7" `Quick test_golden_active;
          Alcotest.test_case "eager-primary n=3 seed=7" `Quick
            test_golden_eager_primary;
          Alcotest.test_case "matrix n=3,4" `Quick test_matrix;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_causally_sound;
          Alcotest.test_case "total loss" `Quick test_total_loss;
        ] );
    ]
