(* The sharding layer: deterministic key placement, the shards=1
   byte-identity invariant, shard-aware workload generation, oracle
   (1SR/convergence) conformance of sharded runs, and cross-shard 2PC
   atomicity under crash and partition. *)

let tc name f = Alcotest.test_case name `Quick f

(* ---- shard map ------------------------------------------------------ *)

let test_placement_deterministic () =
  let a = Store.Shard_map.create ~shards:4 () in
  let b = Store.Shard_map.create ~shards:4 () in
  for i = 0 to 199 do
    let key = Printf.sprintf "k%04d" i in
    let sa = Store.Shard_map.shard_of_key a key in
    Alcotest.(check int)
      (key ^ " places identically on two maps")
      sa
      (Store.Shard_map.shard_of_key b key);
    Alcotest.(check bool)
      (key ^ " in range") true
      (sa >= 0 && sa < 4)
  done

let test_hash_covers_all_shards () =
  let map = Store.Shard_map.create ~shards:4 () in
  let hit = Array.make 4 false in
  for i = 0 to 199 do
    hit.(Store.Shard_map.shard_of_key map (Printf.sprintf "k%04d" i)) <- true
  done;
  Array.iteri
    (fun s h -> Alcotest.(check bool) (Printf.sprintf "shard %d hit" s) true h)
    hit

let test_range_bands () =
  let map =
    Store.Shard_map.create ~strategy:(Store.Shard_map.Range { space = 100 })
      ~shards:4 ()
  in
  (* key i of a 100-key space lands in band i*4/100, and bands are
     monotone in i *)
  Alcotest.(check int) "k0000 in band 0" 0
    (Store.Shard_map.shard_of_key map "k0000");
  Alcotest.(check int) "k0099 in band 3" 3
    (Store.Shard_map.shard_of_key map "k0099");
  let prev = ref 0 in
  for i = 0 to 99 do
    let s = Store.Shard_map.shard_of_key map (Printf.sprintf "k%04d" i) in
    Alcotest.(check bool) "bands monotone" true (s >= !prev);
    prev := s
  done

let test_request_classification () =
  let map = Store.Shard_map.create ~shards:4 () in
  (* find two keys in distinct shards *)
  let k0 = "k0000" in
  let s0 = Store.Shard_map.shard_of_key map k0 in
  let k1 =
    let rec go i =
      let k = Printf.sprintf "k%04d" i in
      if Store.Shard_map.shard_of_key map k <> s0 then k else go (i + 1)
    in
    go 1
  in
  let s1 = Store.Shard_map.shard_of_key map k1 in
  let single =
    Store.Operation.request ~client:9 [ Store.Operation.Incr (k0, 1) ]
  in
  Alcotest.(check (list int))
    "single-shard request" [ s0 ]
    (Store.Shard_map.shards_of_request map single);
  let cross =
    Store.Operation.request ~client:9
      [ Store.Operation.Incr (k0, 1); Store.Operation.Read (k1) ]
  in
  Alcotest.(check (list int))
    "cross-shard request"
    (List.sort compare [ s0; s1 ])
    (Store.Shard_map.shards_of_request map cross);
  let parts = Store.Shard_map.split_request map cross in
  Alcotest.(check int) "two parts" 2 (List.length parts);
  List.iter
    (fun (s, ops) ->
      List.iter
        (fun op ->
          List.iter
            (fun k ->
              Alcotest.(check int) "op lands on its own shard" s
                (Store.Shard_map.shard_of_key map k))
            (Store.Operation.read_keys op @ Store.Operation.write_keys op))
        ops)
    parts;
  Alcotest.(check (option int))
    "last read's shard" (Some s1)
    (Store.Shard_map.shard_of_last_read map cross);
  let opless = Store.Operation.request ~client:9 [] in
  Alcotest.(check (list int))
    "op-less request maps to shard 0" [ 0 ]
    (Store.Shard_map.shards_of_request map opless)

let test_partition_groups () =
  let groups = Protocols.Sharded.partition ~shards:3 (List.init 8 Fun.id) in
  Alcotest.(check (list (list int)))
    "contiguous, sizes differ by at most one"
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7 ] ]
    groups;
  Alcotest.(check int) "probe group size" 3
    (Protocols.Sharded.probe_group_size ~n:8 ~shards:3);
  match Protocols.Sharded.partition ~shards:4 [ 0; 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards > replicas accepted"

(* ---- generator shard-awareness -------------------------------------- *)

let shards_touched spec request =
  let map = Store.Shard_map.create ~shards:spec.Workload.Spec.shards () in
  List.length (Store.Shard_map.shards_of_request map request)

let test_generator_single_shard () =
  let spec =
    { Workload.Spec.default with ops_per_txn = 4; shards = 4; cross_shard = 0. }
  in
  let gen = Workload.Generator.create ~seed:5 spec in
  for _ = 1 to 100 do
    let _, request = Workload.Generator.request gen ~client:9 in
    Alcotest.(check int) "confined to one shard" 1 (shards_touched spec request)
  done

let test_generator_cross_shard () =
  let spec =
    { Workload.Spec.default with ops_per_txn = 2; shards = 4; cross_shard = 1. }
  in
  let gen = Workload.Generator.create ~seed:5 spec in
  let crossing = ref 0 in
  for _ = 1 to 100 do
    let _, request = Workload.Generator.request gen ~client:9 in
    if shards_touched spec request >= 2 then incr crossing
  done;
  (* rejection sampling can fall back on a hot shard, so not every
     transaction crosses — but the vast majority must *)
  Alcotest.(check bool)
    (Printf.sprintf "most transactions cross shards (%d/100)" !crossing)
    true (!crossing > 80)

(* ---- shards=1 byte-identity ----------------------------------------- *)

(* Request ids come from a process-global counter; normalize them away
   (same scheme as test_config.ml) so traces compare byte for byte. *)
let normalize_traces s =
  let pat = {|"trace":|} in
  let pl = String.length pat in
  let n = String.length s in
  let buf = Buffer.create n in
  let map = Hashtbl.create 16 in
  let next = ref 0 in
  let i = ref 0 in
  while !i < n do
    if !i + pl <= n && String.sub s !i pl = pat then begin
      Buffer.add_string buf pat;
      i := !i + pl;
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      let id = String.sub s !i (!j - !i) in
      let r =
        match Hashtbl.find_opt map id with
        | Some r -> r
        | None ->
            let r = Printf.sprintf "R%d" !next in
            incr next;
            Hashtbl.add map id r;
            r
      in
      Buffer.add_string buf r;
      i := !j
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let trace_of factory =
  let spec = Workload.Builder.spec ~txns:10 ~ops:2 () in
  let builder = Workload.Builder.make ~seed:23 ~clients:3 ~spec () in
  let result, inst = Workload.Builder.run_with_instance builder factory in
  Alcotest.(check int) "no unanswered" 0 result.Workload.Runner.unanswered;
  normalize_traces
    (Sim.Trace_export.to_jsonl
       (Core.Phase_span.collector inst.Core.Technique.spans))

let test_shards1_byte_identical () =
  List.iter
    (fun key ->
      let entry = Option.get (Protocols.Registry.find key) in
      let unsharded = trace_of (Protocols.Registry.default_factory entry) in
      let sharded1 =
        trace_of (Protocols.Registry.configure_exn entry [ ("shards", "1") ])
      in
      Alcotest.(check string)
        (key ^ ": shards=1 trace byte-identical to unsharded")
        unsharded sharded1)
    [ "active"; "eager-primary"; "certification" ]

(* ---- sharded runs: commit, converge, 1SR ----------------------------- *)

let sharded_factory key =
  let entry = Option.get (Protocols.Registry.find key) in
  Protocols.Registry.configure_exn entry [ ("shards", "2") ]

let sharded_spec ~cross =
  Workload.Builder.spec ~ops:2 ~txns:20 ~shards:2 ~cross ()

let counter result name =
  Option.value ~default:0
    (Sim.Metrics.counter_value result.Workload.Runner.metrics name)

let run_sharded ?(seed = 11) ?(cross = 0.3) ?failures ?partitions key =
  let builder =
    Workload.Builder.make ~seed ~replicas:4 ~clients:2
      ~spec:(sharded_spec ~cross) ?failures ?partitions ()
  in
  Workload.Builder.run builder (sharded_factory key)

let test_oracles_sharded () =
  List.iter
    (fun key ->
      let result = run_sharded key in
      Alcotest.(check bool) (key ^ " commits") true
        (result.Workload.Runner.committed > 0);
      Alcotest.(check int) (key ^ " all answered") 0
        result.Workload.Runner.unanswered;
      Alcotest.(check bool) (key ^ " per-group convergence") true
        result.Workload.Runner.converged;
      Alcotest.(check bool) (key ^ " 1SR") true
        result.Workload.Runner.serializable;
      Alcotest.(check bool)
        (key ^ " saw cross-shard traffic") true
        (counter result "cross_shard_commit_total"
         + counter result "cross_shard_abort_total"
         > 0))
    [ "active"; "passive"; "eager-primary" ]

(* Message cost of a single-shard transaction must depend on the group
   size, not the cluster size: the probe transaction's causal message
   count (the `replisim explain` measurement, which excludes background
   traffic like heartbeats) must be the same whether the cluster holds
   4 or 8 groups of the same size. *)
let test_group_local_cost () =
  let probe_msgs ~n ~shards =
    let entry = Option.get (Protocols.Registry.find "active") in
    let factory =
      Protocols.Registry.configure_exn entry
        [ ("shards", string_of_int shards); ("passthrough", "true") ]
    in
    let p = Workload.Builder.probe ~n factory in
    let msgs, _, summary = Workload.Builder.probe_summary p in
    Alcotest.(check bool) "probe replied" true summary.Sim.Msg_dag.replied;
    List.length msgs
  in
  let small = probe_msgs ~n:8 ~shards:4 in
  let large = probe_msgs ~n:16 ~shards:8 in
  (* group size is 2 in both clusters *)
  Alcotest.(check int)
    (Printf.sprintf
       "single-shard msgs/txn independent of cluster size (n=8: %d, n=16: %d)"
       small large)
    small large

(* ---- cross-shard 2PC atomicity under faults -------------------------- *)

(* Active replication never refuses a sub-transaction, so every
   cross-shard transaction that passes the 2PC round must commit in all
   of its groups: the partial-commit counter has to stay zero, crash or
   no crash. *)
let test_atomicity_under_crash () =
  let result =
    run_sharded ~cross:1.0
      ~failures:
        [
          Workload.Runner.crash_recover ~at:(Sim.Simtime.of_ms 30)
            ~recover_at:(Sim.Simtime.of_ms 300) 0;
        ]
      "active"
  in
  Alcotest.(check int) "all answered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check bool) "per-group convergence" true
    result.Workload.Runner.converged;
  Alcotest.(check int) "no partial commits" 0
    (counter result "cross_shard_partial_total");
  Alcotest.(check bool) "some transactions went atomic" true
    (counter result "cross_shard_atomic_total" > 0)

let test_atomicity_under_partition () =
  let result =
    run_sharded ~cross:1.0
      ~partitions:
        [
          {
            Workload.Runner.at = Sim.Simtime.of_ms 30;
            group = [ 2 ];
            heal_at = Sim.Simtime.of_ms 300;
          };
        ]
      "active"
  in
  Alcotest.(check int) "all answered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check bool) "per-group convergence" true
    result.Workload.Runner.converged;
  Alcotest.(check int) "no partial commits" 0
    (counter result "cross_shard_partial_total")

(* A sharded campaign run must pass the standard oracles too. *)
let test_campaign_sharded () =
  let outcome =
    Workload.Scenario.run_one ~n_replicas:4 ~key:"active"
      ~info:(Option.get (Protocols.Registry.find "active")).info
      ~factory:(sharded_factory "active")
      (Option.get (Workload.Scenario.find "crash-recover"))
  in
  Alcotest.(check bool)
    ("sharded campaign ok: "
    ^ String.concat "; "
        (List.filter_map
           (fun (v : Workload.Scenario.verdict) ->
             if v.ok then None else Some (v.oracle ^ ": " ^ v.detail))
           outcome.verdicts))
    true outcome.ok

let () =
  Alcotest.run "shard"
    [
      ( "map",
        [
          tc "deterministic placement" test_placement_deterministic;
          tc "hash covers all shards" test_hash_covers_all_shards;
          tc "range bands" test_range_bands;
          tc "request classification" test_request_classification;
          tc "replica partition" test_partition_groups;
        ] );
      ( "generator",
        [
          tc "single-shard confinement" test_generator_single_shard;
          tc "cross-shard spread" test_generator_cross_shard;
        ] );
      ( "identity", [ tc "shards=1 byte-identical" test_shards1_byte_identical ] );
      ( "oracles",
        [
          tc "sharded runs converge + 1SR" test_oracles_sharded;
          tc "group-local message cost" test_group_local_cost;
          tc "sharded campaign" test_campaign_sharded;
        ] );
      ( "atomicity",
        [
          tc "under crash-recover" test_atomicity_under_crash;
          tc "under partition-heal" test_atomicity_under_partition;
        ] );
    ]
