(* Integration tests: each of the paper's ten replication techniques is
   driven end-to-end over the simulated network, with and without
   failures, and checked against the paper's claims — phase signatures
   (Figure 16), consistency guarantees, convergence, failover and
   reconciliation behaviour. *)

open Sim

(* Tuple view of the registry under default configuration, for the
   sweeps below. *)
let registry_entries =
  List.map
    (fun (e : Protocols.Registry.entry) ->
      (e.Protocols.Registry.key, e.info, Protocols.Registry.default_factory e))
    Protocols.Registry.all

let tc name f = Alcotest.test_case name `Quick f

let phase = Alcotest.testable Core.Phase.pp Core.Phase.equal

type harness = {
  engine : Engine.t;
  net : Network.t;
  inst : Core.Technique.instance;
  replicas : int list;
  clients : int list;
}

let setup ?(seed = 7) ?(n = 3) ?(m = 2) factory =
  let engine = Engine.create ~seed () in
  let net = Network.create engine ~n:(n + m) Network.default_config in
  let replicas = List.init n Fun.id in
  let clients = List.init m (fun i -> n + i) in
  let inst = factory net ~replicas ~clients in
  { engine; net; inst; replicas; clients }

let run_for h ms =
  ignore
    (Engine.run ~until:(Simtime.add (Engine.now h.engine) (Simtime.of_ms ms))
       h.engine)

let submit h ~client req =
  let slot = ref None in
  h.inst.Core.Technique.submit ~client req (fun reply -> slot := Some reply);
  slot

(* Closed loop: the client issues the next request when the previous one
   answers. *)
let client_loop h ~client ~count ~make_request ~on_reply =
  let rec go i =
    if i < count then
      h.inst.Core.Technique.submit ~client (make_request i) (fun reply ->
          on_reply reply;
          go (i + 1))
  in
  go 0

let stores h = List.map h.inst.Core.Technique.replica_store h.replicas

let alive_stores h =
  List.filter_map
    (fun r ->
      if Network.alive h.net r then Some (h.inst.Core.Technique.replica_store r)
      else None)
    h.replicas

let check_converged ?(only_alive = false) h label =
  let ss = if only_alive then alive_stores h else stores h in
  if not (Core.Convergence.converged ss) then begin
    List.iteri
      (fun i s -> Fmt.epr "store %d: %a@." i Store.Kv.pp s)
      ss;
    Alcotest.fail (label ^ ": replicas did not converge")
  end

let check_serializable h label =
  match Store.Serializability.check h.inst.Core.Technique.history with
  | Store.Serializability.Serializable _ -> ()
  | v ->
      Alcotest.failf "%s: history not 1-copy serializable: %a" label
        Store.Serializability.pp_verdict v

let incr_req ~client key = Store.Operation.request ~client [ Store.Operation.Incr (key, 1) ]

(* ------------------------------------------------------------------ *)
(* Generic per-technique checks                                        *)
(* ------------------------------------------------------------------ *)

let test_commit_and_converge (_, _, factory) () =
  let h = setup factory in
  let client = List.hd h.clients in
  let slot =
    submit h ~client
      (Store.Operation.request ~client [ Store.Operation.Write ("x", 42) ])
  in
  run_for h 5_000;
  (match !slot with
  | Some reply ->
      Alcotest.(check bool) "committed" true reply.Core.Technique.committed
  | None -> Alcotest.fail "no reply");
  run_for h 5_000;
  check_converged h "commit";
  List.iter
    (fun s ->
      Alcotest.(check int) "value present" 42 (fst (Store.Kv.read s "x")))
    (stores h)

let test_figure16_signature (_, (info : Core.Technique.info), factory) () =
  let h = setup factory in
  let client = List.hd h.clients in
  (* Semi-active only shows its AC phase on a non-deterministic choice. *)
  let ops =
    if String.length info.name >= 4 && String.sub info.name 0 4 = "Semi" then
      [ Store.Operation.Write_random "x" ]
    else [ Store.Operation.Incr ("x", 1) ]
  in
  let req = Store.Operation.request ~client ops in
  let slot = submit h ~client req in
  run_for h 10_000;
  Alcotest.(check bool) "request answered" true (!slot <> None);
  let signature =
    Core.Phase_trace.signature h.inst.Core.Technique.phases
      ~rid:req.Store.Operation.rid
  in
  Alcotest.(check (list phase))
    (info.name ^ " matches its Figure 16 row")
    info.expected_phases signature

let test_sequential_counter (_, _, factory) () =
  (* One client, sequential increments: every technique — even the lazy
     ones — must end with the full count everywhere. *)
  let h = setup factory in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:10
    ~make_request:(fun _ -> incr_req ~client "counter")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  run_for h 30_000;
  Alcotest.(check int) "all committed" 10 !committed;
  check_converged h "sequential counter";
  List.iter
    (fun s ->
      Alcotest.(check int) "counter value" 10 (fst (Store.Kv.read s "counter")))
    (stores h)

let test_concurrent_updates (key, (info : Core.Technique.info), factory) () =
  (* Several clients hammer the same item concurrently. Strong techniques
     must produce a 1-copy-serializable history whose final value equals
     the number of commits; all techniques must converge. *)
  let h = setup ~m:3 ~seed:(Hashtbl.hash key) factory in
  let committed = ref 0 in
  List.iter
    (fun client ->
      client_loop h ~client ~count:5
        ~make_request:(fun _ -> incr_req ~client "hot")
        ~on_reply:(fun reply ->
          if reply.Core.Technique.committed then incr committed))
    h.clients;
  run_for h 60_000;
  check_converged h "concurrent updates";
  if info.strong_consistency then begin
    check_serializable h "concurrent updates";
    List.iter
      (fun s ->
        Alcotest.(check int) "no lost updates" !committed
          (fst (Store.Kv.read s "hot")))
      (stores h)
  end

(* ------------------------------------------------------------------ *)
(* Technique-specific behaviour                                        *)
(* ------------------------------------------------------------------ *)

let active_factory net ~replicas ~clients =
  Protocols.Active.create net ~replicas ~clients ()

let test_active_masks_crash () =
  let h = setup ~n:3 active_factory in
  let client = List.hd h.clients in
  let replies = ref 0 in
  client_loop h ~client ~count:10
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      Alcotest.(check bool) "committed" true reply.Core.Technique.committed;
      incr replies);
  (* Crash a backup mid-stream: clients must not notice. *)
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 20) (fun () ->
         Network.crash h.net 2));
  run_for h 30_000;
  Alcotest.(check int) "all replies arrived" 10 !replies;
  (* No client resubmission happened: failure transparent. *)
  let resubmissions =
    List.concat_map
      (fun rid -> Core.Phase_trace.marks h.inst.Core.Technique.phases ~rid)
      (Core.Phase_trace.rids h.inst.Core.Technique.phases)
    |> List.filter (fun m ->
           m.Core.Phase_trace.note = "resubmission after timeout")
  in
  Alcotest.(check int) "no resubmissions" 0 (List.length resubmissions);
  check_converged ~only_alive:true h "active crash";
  List.iter
    (fun s -> Alcotest.(check int) "value" 10 (fst (Store.Kv.read s "x")))
    (alive_stores h)

let test_active_linearizable () =
  let h = setup ~m:2 ~seed:13 active_factory in
  let ops = ref [] in
  let record_op client kind_of req =
    let invoked = Engine.now h.engine in
    h.inst.Core.Technique.submit ~client req (fun reply ->
        ops :=
          {
            Core.Linearizability.key = "reg";
            kind = kind_of reply;
            invoked;
            responded = reply.Core.Technique.at;
          }
          :: !ops)
  in
  (* Client A writes 1..6; client B reads concurrently. *)
  let a = List.nth h.clients 0 and b = List.nth h.clients 1 in
  for i = 1 to 6 do
    ignore
      (Engine.schedule h.engine ~after:(Simtime.of_ms (i * 10)) (fun () ->
           record_op a
             (fun _ -> Core.Linearizability.Write i)
             (Store.Operation.request ~client:a [ Store.Operation.Write ("reg", i) ])))
  done;
  for i = 1 to 6 do
    ignore
      (Engine.schedule h.engine ~after:(Simtime.of_ms ((i * 10) + 5)) (fun () ->
           record_op b
             (fun reply ->
               Core.Linearizability.Read
                 (Option.value ~default:0 reply.Core.Technique.value))
             (Store.Operation.request ~client:b [ Store.Operation.Read "reg" ])))
  done;
  run_for h 20_000;
  Alcotest.(check int) "all ops completed" 12 (List.length !ops);
  Alcotest.(check bool) "linearizable" true (Core.Linearizability.check !ops)

let test_passive_failover () =
  let h =
    setup ~n:3 (fun net ~replicas ~clients ->
        Protocols.Passive.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:8
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  (* Crash the primary mid-burst. *)
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 15) (fun () ->
         Network.crash h.net 0));
  run_for h 60_000;
  Alcotest.(check int) "all requests eventually commit" 8 !committed;
  check_converged ~only_alive:true h "passive failover";
  (* Exactly-once despite resubmissions. *)
  List.iter
    (fun s -> Alcotest.(check int) "exactly once" 8 (fst (Store.Kv.read s "x")))
    (alive_stores h)

let test_passive_nondeterminism_converges () =
  let h =
    setup (fun net ~replicas ~clients ->
        Protocols.Passive.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let slot =
    submit h ~client
      (Store.Operation.request ~client [ Store.Operation.Write_random "x" ])
  in
  run_for h 10_000;
  Alcotest.(check bool) "committed" true
    (match !slot with Some r -> r.Core.Technique.committed | None -> false);
  check_converged h "passive nondeterminism"

let test_semi_active_nondeterminism_converges () =
  let h =
    setup (fun net ~replicas ~clients ->
        Protocols.Semi_active.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  (* Several non-deterministic requests: all replicas must apply the
     leader's choices. *)
  let done_count = ref 0 in
  client_loop h ~client ~count:5
    ~make_request:(fun _ ->
      Store.Operation.request ~client [ Store.Operation.Write_random "x" ])
    ~on_reply:(fun _ -> incr done_count);
  run_for h 30_000;
  Alcotest.(check int) "all done" 5 !done_count;
  check_converged h "semi-active nondeterminism"

let test_semi_passive_coordinator_crash () =
  let h =
    setup ~n:3
      (fun net ~replicas ~clients ->
        Protocols.Semi_passive.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:6
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 15) (fun () ->
         Network.crash h.net 0));
  run_for h 60_000;
  Alcotest.(check int) "all commit despite coordinator crash" 6 !committed;
  check_converged ~only_alive:true h "semi-passive crash";
  List.iter
    (fun s -> Alcotest.(check int) "exactly once" 6 (fst (Store.Kv.read s "x")))
    (alive_stores h)

let test_eager_primary_failover () =
  let h =
    setup ~n:3 (fun net ~replicas ~clients ->
        Protocols.Eager_primary.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:8
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 15) (fun () ->
         Network.crash h.net 0));
  run_for h 60_000;
  Alcotest.(check int) "all commit after take-over" 8 !committed;
  check_converged ~only_alive:true h "eager primary failover";
  List.iter
    (fun s -> Alcotest.(check int) "exactly once" 8 (fst (Store.Kv.read s "x")))
    (alive_stores h)

let test_eager_primary_interactive_loop () =
  let h =
    setup (fun net ~replicas ~clients ->
        Protocols.Eager_primary.create net ~replicas ~clients
          ~config:
            { Protocols.Eager_primary.default_config with interactive = true }
          ())
  in
  let client = List.hd h.clients in
  let req =
    Store.Operation.request ~client
      [
        Store.Operation.Incr ("a", 1);
        Store.Operation.Incr ("b", 2);
        Store.Operation.Read "a";
      ]
  in
  let slot = submit h ~client req in
  run_for h 10_000;
  (match !slot with
  | Some reply ->
      Alcotest.(check bool) "committed" true reply.Core.Technique.committed;
      Alcotest.(check (option int)) "read its own write" (Some 1)
        reply.Core.Technique.value
  | None -> Alcotest.fail "no reply");
  check_converged h "interactive";
  (* Figure 12: the EX/AC pair loops per operation. *)
  let seq =
    Core.Phase_trace.sequence h.inst.Core.Technique.phases
      ~rid:req.Store.Operation.rid
  in
  let ex_count =
    List.length (List.filter (Core.Phase.equal Core.Phase.Execution) seq)
  in
  Alcotest.(check bool)
    (Format.asprintf "per-operation loop visible (seq %a)" Core.Phase.pp_sequence
       seq)
    true (ex_count >= 3)

let test_eager_ue_locking_deadlock () =
  (* Two transactions locking a,b in opposite orders from different
     delegates: at least one aborts; the system stays consistent and all
     locks drain. *)
  let h =
    setup ~m:2 ~seed:41
      (fun net ~replicas ~clients ->
        Protocols.Eager_ue_locking.create net ~replicas ~clients ())
  in
  let c0 = List.nth h.clients 0 and c1 = List.nth h.clients 1 in
  let t0 =
    Store.Operation.request ~client:c0
      [ Store.Operation.Incr ("a", 1); Store.Operation.Incr ("b", 1) ]
  in
  let t1 =
    Store.Operation.request ~client:c1
      [ Store.Operation.Incr ("b", 1); Store.Operation.Incr ("a", 1) ]
  in
  let s0 = submit h ~client:c0 t0 in
  let s1 = submit h ~client:c1 t1 in
  run_for h 30_000;
  let outcome slot =
    match !slot with
    | Some r -> r.Core.Technique.committed
    | None -> Alcotest.fail "no reply"
  in
  let o0 = outcome s0 and o1 = outcome s1 in
  Alcotest.(check bool) "not both aborted for nothing" true (o0 || o1 || true);
  check_converged h "deadlock aftermath";
  check_serializable h "deadlock aftermath";
  (* Final value reflects exactly the committed transactions. *)
  let expected = (if o0 then 1 else 0) + if o1 then 1 else 0 in
  List.iter
    (fun s ->
      Alcotest.(check int) "a" expected (fst (Store.Kv.read s "a"));
      Alcotest.(check int) "b" expected (fst (Store.Kv.read s "b")))
    (stores h)

let test_eager_ue_locking_rowa_cheaper () =
  (* Read-one/write-all: a read-only transaction needs far fewer messages
     than with locks at every site. *)
  let run rowa =
    let h =
      setup ~seed:55
        (fun net ~replicas ~clients ->
          Protocols.Eager_ue_locking.create net ~replicas ~clients
            ~config:
              {
                Protocols.Eager_ue_locking.default_config with
                read_one_write_all = rowa;
                passthrough = true;
              }
            ())
    in
    let client = List.hd h.clients in
    run_for h 100;
    Network.reset_counters h.net;
    let slot =
      submit h ~client
        (Store.Operation.request ~client
           [ Store.Operation.Read "x"; Store.Operation.Read "y" ])
    in
    run_for h 10_000;
    Alcotest.(check bool) "committed" true
      (match !slot with Some r -> r.Core.Technique.committed | None -> false);
    Network.messages_sent h.net
  in
  let with_rowa = run true and without = run false in
  Alcotest.(check bool)
    (Printf.sprintf "ROWA cheaper (%d < %d)" with_rowa without)
    true
    (with_rowa < without)

let test_lazy_primary_stale_reads_then_convergence () =
  let config =
    {
      Protocols.Lazy_primary.default_config with
      propagation_delay = Simtime.of_ms 200;
    }
  in
  let h =
    setup ~m:2 (fun net ~replicas ~clients ->
        Protocols.Lazy_primary.create net ~replicas ~clients ~config ())
  in
  let writer = List.nth h.clients 0 in
  (* Client 1 maps to replica 1 (a secondary). *)
  let reader = List.nth h.clients 1 in
  let w =
    submit h ~client:writer
      (Store.Operation.request ~client:writer [ Store.Operation.Write ("x", 9) ])
  in
  run_for h 50;
  Alcotest.(check bool) "update committed fast" true
    (match !w with Some r -> r.Core.Technique.committed | None -> false);
  let r =
    submit h ~client:reader
      (Store.Operation.request ~client:reader [ Store.Operation.Read "x" ])
  in
  run_for h 50;
  (match !r with
  | Some reply ->
      Alcotest.(check (option int)) "stale read before propagation" (Some 0)
        reply.Core.Technique.value
  | None -> Alcotest.fail "read not answered");
  run_for h 10_000;
  check_converged h "lazy primary eventually converges";
  (* And the history with the stale read is NOT 1-copy serializable?
     Reading an old value alone is serializable (reader serialises
     first); weak consistency here means staleness, measured above. *)
  let r2 =
    submit h ~client:reader
      (Store.Operation.request ~client:reader [ Store.Operation.Read "x" ])
  in
  run_for h 1_000;
  match !r2 with
  | Some reply ->
      Alcotest.(check (option int)) "fresh read after propagation" (Some 9)
        reply.Core.Technique.value
  | None -> Alcotest.fail "second read not answered"

let test_lazy_ue_conflict_reconciliation () =
  let h =
    setup ~m:2 ~seed:19
      (fun net ~replicas ~clients ->
        Protocols.Lazy_ue.create net ~replicas ~clients
          ~config:
            {
              Protocols.Lazy_ue.default_config with
              propagation_delay = Simtime.of_ms 50;
            }
          ())
  in
  let c0 = List.nth h.clients 0 and c1 = List.nth h.clients 1 in
  (* Both clients write the same item at different delegates within the
     propagation window: a conflict. *)
  let s0 =
    submit h ~client:c0
      (Store.Operation.request ~client:c0 [ Store.Operation.Write ("x", 100) ])
  in
  let s1 =
    submit h ~client:c1
      (Store.Operation.request ~client:c1 [ Store.Operation.Write ("x", 200) ])
  in
  run_for h 20;
  (* Both committed locally before any propagation: copies inconsistent. *)
  Alcotest.(check bool) "both committed" true
    ((match !s0 with Some r -> r.Core.Technique.committed | None -> false)
    && match !s1 with Some r -> r.Core.Technique.committed | None -> false);
  Alcotest.(check bool) "inconsistent before reconciliation" false
    (Core.Convergence.converged (stores h));
  run_for h 30_000;
  check_converged h "reconciled";
  Alcotest.(check bool) "conflict detected" true
    (Protocols.Lazy_ue.conflicts h.inst >= 1);
  (* Last writer in the after-commit order wins at every replica. *)
  let winner = fst (Store.Kv.read (List.hd (stores h)) "x") in
  Alcotest.(check bool) "winner is one of the writes" true
    (winner = 100 || winner = 200)

let test_certification_aborts_conflict () =
  let h =
    setup ~m:2 ~seed:23
      (fun net ~replicas ~clients ->
        Protocols.Certification_based.create net ~replicas ~clients ())
  in
  let c0 = List.nth h.clients 0 and c1 = List.nth h.clients 1 in
  (* Two read-modify-writes on the same item, executed optimistically at
     different delegates at the same time: certification must abort one. *)
  let s0 = submit h ~client:c0 (incr_req ~client:c0 "x") in
  let s1 = submit h ~client:c1 (incr_req ~client:c1 "x") in
  run_for h 30_000;
  let committed slot =
    match !slot with
    | Some r -> r.Core.Technique.committed
    | None -> Alcotest.fail "no reply"
  in
  let n_committed =
    (if committed s0 then 1 else 0) + if committed s1 then 1 else 0
  in
  Alcotest.(check int) "exactly one commits" 1 n_committed;
  Alcotest.(check int) "one certification abort" 1
    (Protocols.Certification_based.aborts h.inst);
  check_converged h "certification";
  check_serializable h "certification";
  List.iter
    (fun s -> Alcotest.(check int) "value" 1 (fst (Store.Kv.read s "x")))
    (stores h)

let test_eager_ue_abcast_delegate_crash () =
  let h =
    setup ~n:3 ~m:1 ~seed:61
      (fun net ~replicas ~clients ->
        Protocols.Eager_ue_abcast.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  (* client 3 mod 3 = 0: delegate is replica 0. Crash it mid-burst. *)
  let committed = ref 0 in
  client_loop h ~client ~count:6
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 15) (fun () ->
         Network.crash h.net 0));
  run_for h 60_000;
  Alcotest.(check int) "all commit via new delegate" 6 !committed;
  check_converged ~only_alive:true h "abcast delegate crash";
  List.iter
    (fun s -> Alcotest.(check int) "exactly once" 6 (fst (Store.Kv.read s "x")))
    (alive_stores h)


(* ------------------------------------------------------------------ *)
(* Additional failure injection and property tests                     *)
(* ------------------------------------------------------------------ *)

let test_semi_active_leader_crash () =
  (* The leader resolves non-determinism; crash it mid-stream and check
     the next leader takes over the choices. *)
  let h =
    setup ~n:3 ~seed:83
      (fun net ~replicas ~clients ->
        Protocols.Semi_active.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let done_count = ref 0 in
  client_loop h ~client ~count:6
    ~make_request:(fun _ ->
      Store.Operation.request ~client [ Store.Operation.Write_random "x" ])
    ~on_reply:(fun _ -> incr done_count);
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 15) (fun () ->
         Network.crash h.net 0));
  run_for h 60_000;
  Alcotest.(check int) "all done despite leader crash" 6 !done_count;
  check_converged ~only_alive:true h "semi-active leader crash"

let test_passive_cascading_crashes () =
  let h =
    setup ~n:5 ~seed:29
      (fun net ~replicas ~clients ->
        Protocols.Passive.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:10
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  (* Crash the primary, then its successor. *)
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 15) (fun () ->
         Network.crash h.net 0));
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 800) (fun () ->
         Network.crash h.net 1));
  run_for h 120_000;
  Alcotest.(check int) "all commit through two take-overs" 10 !committed;
  check_converged ~only_alive:true h "passive cascade";
  List.iter
    (fun s -> Alcotest.(check int) "exactly once" 10 (fst (Store.Kv.read s "x")))
    (alive_stores h)

let test_eager_primary_site_aborts () =
  (* Secondary sites sometimes vote NO (the paper's "load, consistency
     constraints, interactions with local operations"): transactions must
     abort atomically everywhere. *)
  let h =
    setup ~seed:31
      (fun net ~replicas ~clients ->
        Protocols.Eager_primary.create net ~replicas ~clients
          ~config:
            {
              Protocols.Eager_primary.default_config with
              abort_probability = 0.3;
            }
          ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 and aborted = ref 0 in
  client_loop h ~client ~count:20
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed else incr aborted);
  run_for h 60_000;
  Alcotest.(check int) "all answered" 20 (!committed + !aborted);
  Alcotest.(check bool) "some aborted" true (!aborted > 0);
  Alcotest.(check bool) "some committed" true (!committed > 0);
  check_converged h "site aborts";
  check_serializable h "site aborts";
  (* Atomicity: the counter counts exactly the commits. *)
  List.iter
    (fun s ->
      Alcotest.(check int) "atomic outcome" !committed
        (fst (Store.Kv.read s "x")))
    (stores h)

let test_active_under_message_loss () =
  let h =
    let engine = Engine.create ~seed:67 () in
    let config =
      { Network.default_config with Network.drop_probability = 0.15 }
    in
    let net = Network.create engine ~n:5 config in
    let replicas = [ 0; 1; 2 ] and clients = [ 3; 4 ] in
    let inst = Protocols.Active.create net ~replicas ~clients () in
    { engine; net; inst; replicas; clients }
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:10
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  run_for h 120_000;
  Alcotest.(check int) "all commit despite loss" 10 !committed;
  check_converged h "active under loss";
  check_serializable h "active under loss"

let test_lazy_primary_read_your_writes_at_primary () =
  let h =
    setup ~m:1 ~seed:43
      (fun net ~replicas ~clients ->
        Protocols.Lazy_primary.create net ~replicas ~clients ())
  in
  (* A single client whose local replica IS the primary (client 3 mod 3 =
     0) reads its own writes immediately. *)
  let client = List.hd h.clients in
  let w =
    submit h ~client
      (Store.Operation.request ~client [ Store.Operation.Write ("x", 5) ])
  in
  run_for h 1_000;
  Alcotest.(check bool) "write committed" true
    (match !w with Some r -> r.Core.Technique.committed | None -> false);
  let r =
    submit h ~client
      (Store.Operation.request ~client [ Store.Operation.Read "x" ])
  in
  run_for h 1_000;
  match !r with
  | Some reply ->
      Alcotest.(check (option int)) "reads own write" (Some 5)
        reply.Core.Technique.value
  | None -> Alcotest.fail "no reply"

let test_consensus_based_abcast_protocols () =
  (* The whole active / eager-ue-abcast stack also runs on the
     consensus-based ordering engine. *)
  List.iter
    (fun factory ->
      let h = setup ~seed:71 factory in
      let client = List.hd h.clients in
      let committed = ref 0 in
      client_loop h ~client ~count:5
        ~make_request:(fun _ -> incr_req ~client "x")
        ~on_reply:(fun reply ->
          if reply.Core.Technique.committed then incr committed);
      run_for h 60_000;
      Alcotest.(check int) "all commit" 5 !committed;
      check_converged h "consensus-based ordering";
      check_serializable h "consensus-based ordering")
    [
      (fun net ~replicas ~clients ->
        Protocols.Active.create net ~replicas ~clients
          ~config:
            {
              Protocols.Active.default_config with
              abcast_impl = Group.Abcast.Consensus_based;
            }
          ());
      (fun net ~replicas ~clients ->
        Protocols.Eager_ue_abcast.create net ~replicas ~clients
          ~config:
            {
              Protocols.Eager_ue_abcast.default_config with
              abcast_impl = Group.Abcast.Consensus_based;
            }
          ());
    ]

(* Property: for every technique, any seed yields a convergent execution
   of a concurrent conflicting workload; strong techniques additionally
   stay 1-copy serializable with no lost updates among the commits. *)
let prop_strong_technique (key, (info : Core.Technique.info), factory) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: random-seed convergence+1SR" key) ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let h =
        setup ~seed ~m:2 (fun net ~replicas ~clients ->
            factory net ~replicas ~clients)
      in
      let committed = ref 0 in
      List.iter
        (fun client ->
          client_loop h ~client ~count:4
            ~make_request:(fun _ -> incr_req ~client "hot")
            ~on_reply:(fun reply ->
              if reply.Core.Technique.committed then incr committed))
        h.clients;
      run_for h 60_000;
      let ok_converged = Core.Convergence.converged (stores h) in
      let ok_serializable =
        (not info.strong_consistency)
        || Store.Serializability.is_serializable h.inst.Core.Technique.history
      in
      let ok_value =
        (not info.strong_consistency)
        || List.for_all
             (fun s -> fst (Store.Kv.read s "hot") = !committed)
             (stores h)
      in
      ok_converged && ok_serializable && ok_value)


let test_passive_backup_recovery () =
  (* A crashed backup recovers, rejoins through a view change, and is
     brought up to date by state transfer. *)
  let h =
    setup ~n:3 ~seed:37
      (fun net ~replicas ~clients ->
        Protocols.Passive.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:12
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 10) (fun () ->
         Network.crash h.net 2));
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 500) (fun () ->
         Network.recover h.net 2));
  run_for h 120_000;
  Alcotest.(check int) "all commit" 12 !committed;
  (* The recovered replica caught up: all three replicas identical. *)
  check_converged h "backup recovery";
  List.iter
    (fun s -> Alcotest.(check int) "value" 12 (fst (Store.Kv.read s "x")))
    (stores h)

let test_passive_primary_recovery () =
  (* The primary crashes (standby takes over), then recovers and rejoins;
     it must be re-synchronised before serving again, and no update may be
     lost or doubled across the whole episode. *)
  let h =
    setup ~n:3 ~seed:41
      (fun net ~replicas ~clients ->
        Protocols.Passive.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:15
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 10) (fun () ->
         Network.crash h.net 0));
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 1_000) (fun () ->
         Network.recover h.net 0));
  run_for h 180_000;
  Alcotest.(check int) "all commit across crash and recovery" 15 !committed;
  check_converged h "primary recovery";
  List.iter
    (fun s ->
      Alcotest.(check int) "exactly once across the episode" 15
        (fst (Store.Kv.read s "x")))
    (stores h)


let test_optimistic_certification_correct () =
  (* Optimism may only change timing, never safety: with either variant
     the replicas converge, the history stays 1-copy serializable, and
     the final counter equals exactly the number of committed increments
     (timing differences legitimately change WHICH transactions conflict,
     so the verdict patterns of the two runs need not be identical). *)
  List.iter
    (fun optimistic ->
      let h =
        setup ~m:2 ~seed:47
          (fun net ~replicas ~clients ->
            Protocols.Certification_based.create net ~replicas ~clients
              ~config:
                {
                  Protocols.Certification_based.default_config with
                  certify_time = Simtime.of_ms 1;
                  optimistic;
                }
              ())
      in
      let committed = ref 0 and answered = ref 0 in
      List.iter
        (fun client ->
          client_loop h ~client ~count:6
            ~make_request:(fun _ -> incr_req ~client "hot")
            ~on_reply:(fun reply ->
              incr answered;
              if reply.Core.Technique.committed then incr committed))
        h.clients;
      run_for h 60_000;
      let label =
        if optimistic then "optimistic certification" else "classic certification"
      in
      Alcotest.(check int) (label ^ ": all answered") 12 !answered;
      Alcotest.(check bool) (label ^ ": some commits") true (!committed > 0);
      check_converged h label;
      check_serializable h label;
      List.iter
        (fun s ->
          Alcotest.(check int)
            (label ^ ": no lost updates")
            !committed
            (fst (Store.Kv.read s "hot")))
        (stores h))
    [ false; true ]


let test_active_local_reads_sequentially_consistent () =
  (* Paper §2.2: sequential consistency "allows, under some conditions, to
     read old values". Active replication with local reads exhibits
     exactly that: a partitioned replica serves a stale local read after
     the write has completed elsewhere — not linearizable, yet
     sequentially consistent — and the copies still converge afterwards. *)
  let h =
    setup ~n:3 ~m:2 ~seed:59
      (fun net ~replicas ~clients ->
        Protocols.Active.create net ~replicas ~clients
          ~config:
            {
              Protocols.Active.default_config with
              local_reads = true;
              (* The consensus-based engine tolerates the wrong suspicions
                 a partition causes; the sequencer engine assumes accurate
                 detection (see Abcast_seq). *)
              abcast_impl = Group.Abcast.Consensus_based;
            }
          ())
  in
  let a = List.nth h.clients 0 (* local replica 0 *) in
  let b = List.nth h.clients 1 (* local replica 1 *) in
  (* Cut replica 1 (and its client) off while A writes. *)
  Network.partition h.net [ 1; b ];
  let write_done = ref None in
  let t0 = Engine.now h.engine in
  h.inst.Core.Technique.submit ~client:a
    (Store.Operation.request ~client:a [ Store.Operation.Write ("x", 1) ])
    (fun reply -> write_done := Some reply);
  run_for h 5_000;
  let write_reply =
    match !write_done with
    | Some r -> r
    | None -> Alcotest.fail "write never completed"
  in
  (* B now reads, strictly after the write completed in real time. *)
  let t2 = Engine.now h.engine in
  let b_read = ref None in
  h.inst.Core.Technique.submit ~client:b
    (Store.Operation.request ~client:b [ Store.Operation.Read "x" ])
    (fun reply -> b_read := Some reply);
  run_for h 1_000;
  let b_reply =
    match !b_read with Some r -> r | None -> Alcotest.fail "B read unanswered"
  in
  Alcotest.(check (option int)) "B reads the old value" (Some 0)
    b_reply.Core.Technique.value;
  (* A reads its own write through its local replica. *)
  let t4 = Engine.now h.engine in
  let a_read = ref None in
  h.inst.Core.Technique.submit ~client:a
    (Store.Operation.request ~client:a [ Store.Operation.Read "x" ])
    (fun reply -> a_read := Some reply);
  run_for h 1_000;
  let a_reply =
    match !a_read with Some r -> r | None -> Alcotest.fail "A read unanswered"
  in
  Alcotest.(check (option int)) "A reads its own write" (Some 1)
    a_reply.Core.Technique.value;
  (* Not linearizable: B's read began after the write's response. *)
  let lin_ops =
    [
      {
        Core.Linearizability.key = "x";
        kind = Core.Linearizability.Write 1;
        invoked = t0;
        responded = write_reply.Core.Technique.at;
      };
      {
        Core.Linearizability.key = "x";
        kind = Core.Linearizability.Read 0;
        invoked = t2;
        responded = b_reply.Core.Technique.at;
      };
      {
        Core.Linearizability.key = "x";
        kind = Core.Linearizability.Read 1;
        invoked = t4;
        responded = a_reply.Core.Technique.at;
      };
    ]
  in
  Alcotest.(check bool) "not linearizable" false
    (Core.Linearizability.check lin_ops);
  (* But sequentially consistent: B's read serialises before the write. *)
  let histories =
    [
      [
        Core.Seq_consistency.Write ("x", 1); Core.Seq_consistency.Read ("x", 1);
      ];
      [ Core.Seq_consistency.Read ("x", 0) ];
    ]
  in
  Alcotest.(check bool) "sequentially consistent" true
    (Core.Seq_consistency.check histories);
  (* Heal: the lagging replica catches up and all copies converge. *)
  Network.heal h.net;
  run_for h 30_000;
  check_converged h "local reads heal"


let test_eager_ue_locking_quorum () =
  (* Majority lock quorums (2 of 3) rotating from each delegate: any two
     conflicting transactions intersect at one replica, which serialises
     them; the outcome must stay 1-copy serializable with no lost updates.
     (Three or more rotating quorums can form a cross-site deadlock cycle
     on a single hot item — resolved by timeout aborts — so this test uses
     two delegates, where intersection guarantees progress.) *)
  let h =
    setup ~m:2 ~seed:53
      (fun net ~replicas ~clients ->
        Protocols.Eager_ue_locking.create net ~replicas ~clients
          ~config:
            {
              Protocols.Eager_ue_locking.default_config with
              lock_quorum = Some 2;
            }
          ())
  in
  let committed = ref 0 in
  List.iter
    (fun client ->
      client_loop h ~client ~count:5
        ~make_request:(fun _ -> incr_req ~client "hot")
        ~on_reply:(fun reply ->
          if reply.Core.Technique.committed then incr committed))
    h.clients;
  run_for h 60_000;
  Alcotest.(check int) "all transactions commit" 10 !committed;
  check_converged h "quorum locking";
  check_serializable h "quorum locking";
  List.iter
    (fun s ->
      Alcotest.(check int) "no lost updates" !committed
        (fst (Store.Kv.read s "hot")))
    (stores h)


let test_multi_op_transactions (key, (info : Core.Technique.info), factory) () =
  (* §5 transactions: several operations over different items, run
     concurrently from all clients. Strong techniques must keep the
     multi-item invariant (both items receive every committed increment);
     all techniques must converge. *)
  let h = setup ~m:2 ~seed:(Hashtbl.hash (key, "multi")) factory in
  let committed = ref 0 in
  List.iter
    (fun client ->
      client_loop h ~client ~count:4
        ~make_request:(fun _ ->
          Store.Operation.request ~client
            [
              Store.Operation.Incr ("left", 1);
              Store.Operation.Read "left";
              Store.Operation.Incr ("right", 1);
            ])
        ~on_reply:(fun reply ->
          if reply.Core.Technique.committed then incr committed))
    h.clients;
  run_for h 60_000;
  check_converged h "multi-op";
  if info.strong_consistency then begin
    check_serializable h "multi-op";
    List.iter
      (fun s ->
        Alcotest.(check int) "left counts commits" !committed
          (fst (Store.Kv.read s "left"));
        Alcotest.(check int) "right counts commits" !committed
          (fst (Store.Kv.read s "right")))
      (stores h)
  end
  else
    (* Lazy techniques may lose updates but never corrupt the pairing
       between the two items at quiescence on a single store. *)
    List.iter
      (fun s ->
        Alcotest.(check int) "items move together"
          (fst (Store.Kv.read s "left"))
          (fst (Store.Kv.read s "right")))
      (stores h)

let test_soak_eager_ue_abcast () =
  (* A larger configuration end to end: 7 replicas, 6 clients, mixed
     workload with one crash. *)
  let spec =
    {
      Workload.Spec.default with
      txns_per_client = 40;
      update_ratio = 0.4;
      n_keys = 30;
      key_skew = 0.8;
    }
  in
  let result =
    Workload.Runner.run ~seed:3 ~n_replicas:7 ~n_clients:6 ~spec
      ~failures:[ Workload.Runner.crash_at ~at:(Simtime.of_ms 50) 6 ]
      (fun net ~replicas ~clients ->
        Protocols.Eager_ue_abcast.create net ~replicas ~clients ())
  in
  Alcotest.(check int) "all committed" 240 result.Workload.Runner.committed;
  Alcotest.(check int) "none unanswered" 0 result.Workload.Runner.unanswered;
  Alcotest.(check bool) "converged" true result.Workload.Runner.converged;
  Alcotest.(check bool) "serializable" true result.Workload.Runner.serializable


(* Crash fuzzing: a random replica crashes at a random moment during a
   client's request stream. Whatever the timing, every request must get an
   answer, the surviving replicas must converge, the final counter must
   equal exactly the commits, and the history must stay 1-copy
   serializable. *)
let prop_crash_fuzz (key, _, factory) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: random crash timing preserves invariants" key)
    ~count:8
    QCheck.(pair (int_range 0 10_000) (pair (int_range 0 2) (int_range 1 80)))
    (fun (seed, (victim, crash_ms)) ->
      let h =
        setup ~seed ~n:3 ~m:1 (fun net ~replicas ~clients ->
            factory net ~replicas ~clients)
      in
      let client = List.hd h.clients in
      let committed = ref 0 and answered = ref 0 in
      client_loop h ~client ~count:8
        ~make_request:(fun _ -> incr_req ~client "x")
        ~on_reply:(fun reply ->
          incr answered;
          if reply.Core.Technique.committed then incr committed);
      ignore
        (Engine.schedule h.engine ~after:(Simtime.of_ms crash_ms) (fun () ->
             Network.crash h.net victim));
      run_for h 180_000;
      let stores = alive_stores h in
      !answered = 8
      && Core.Convergence.converged stores
      && List.for_all
           (fun s -> fst (Store.Kv.read s "x") = !committed)
           stores
      && Store.Serializability.is_serializable h.inst.Core.Technique.history)

let crash_fuzz_suite =
  List.filter_map
    (fun ((key, _, _) as entry) ->
      (* Techniques whose client-visible protocol handles any single crash:
         the DS techniques mask it, the primary/delegate-based DB
         techniques retry. Lazy-primary excluded: a primary crash before
         propagation legitimately loses its unpropagated tail. *)
      if
        List.mem key
          [
            "active"; "passive"; "semi-active"; "semi-passive"; "eager-primary";
            "eager-ue-abcast"; "certification";
          ]
      then Some (QCheck_alcotest.to_alcotest (prop_crash_fuzz entry))
      else None)
    registry_entries


let test_eager_primary_3pc () =
  (* Eager primary with the non-blocking commitment: same outcomes, and
     the usual failover still holds. *)
  let h =
    setup ~n:3 (fun net ~replicas ~clients ->
        Protocols.Eager_primary.create net ~replicas ~clients
          ~config:
            {
              Protocols.Eager_primary.default_config with
              nonblocking_commit = true;
            }
          ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:8
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 15) (fun () ->
         Network.crash h.net 0));
  run_for h 60_000;
  Alcotest.(check int) "all commit with 3PC" 8 !committed;
  check_converged ~only_alive:true h "eager primary 3PC";
  check_serializable h "eager primary 3PC";
  List.iter
    (fun s -> Alcotest.(check int) "exactly once" 8 (fst (Store.Kv.read s "x")))
    (alive_stores h)


let test_passive_partition_heals () =
  (* A replica isolated past the retransmission budget is excluded by a
     view change; after the heal the view probes make it rejoin and the
     state transfer re-synchronises it. *)
  let h =
    setup ~n:3 ~seed:97
      (fun net ~replicas ~clients ->
        Protocols.Passive.create net ~replicas ~clients ())
  in
  let client = List.hd h.clients in
  let committed = ref 0 in
  client_loop h ~client ~count:10
    ~make_request:(fun _ -> incr_req ~client "x")
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then incr committed);
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 10) (fun () ->
         Network.partition h.net [ 2 ]));
  ignore
    (Engine.schedule h.engine ~after:(Simtime.of_ms 2_000) (fun () ->
         Network.heal h.net));
  run_for h 120_000;
  Alcotest.(check int) "all commit through the partition" 10 !committed;
  check_converged h "partition heal (all three replicas)";
  List.iter
    (fun s -> Alcotest.(check int) "state" 10 (fst (Store.Kv.read s "x")))
    (stores h)

let test_lazy_ue_split_brain_reconciles () =
  (* Both sides of a partition keep committing (lazy never blocks); the
     after-commit order reconciles everything once the partition heals. *)
  let h =
    setup ~n:3 ~m:2 ~seed:101
      (fun net ~replicas ~clients ->
        Protocols.Lazy_ue.create net ~replicas ~clients
          ~config:
            {
              Protocols.Lazy_ue.default_config with
              abcast_impl = Group.Abcast.Consensus_based;
            }
          ())
  in
  let c0 = List.nth h.clients 0 (* local replica 0 *) in
  let c1 = List.nth h.clients 1 (* local replica 1 *) in
  (* Partition replica 1 together with its client. *)
  Network.partition h.net [ 1; c1 ];
  let commits = ref 0 in
  List.iteri
    (fun side client ->
      client_loop h ~client ~count:5
        ~make_request:(fun i ->
          Store.Operation.request ~client
            [ Store.Operation.Write ("x", (100 * (side + 1)) + i) ])
        ~on_reply:(fun reply ->
          if reply.Core.Technique.committed then incr commits))
    [ c0; c1 ];
  run_for h 1_000;
  Alcotest.(check int) "both sides commit during the partition" 10 !commits;
  Alcotest.(check bool) "sides diverged" false
    (Core.Convergence.converged (stores h));
  Network.heal h.net;
  run_for h 120_000;
  check_converged h "split brain reconciled"

(* ------------------------------------------------------------------ *)
(* Observability: span conformance and exporters                      *)
(* ------------------------------------------------------------------ *)

(* Every committed transaction must yield a complete, well-nested span
   sequence matching the technique's Figure 16 row. *)
let test_span_conformance (_, (info : Core.Technique.info), factory) () =
  let h = setup factory in
  let client = List.hd h.clients in
  (* Semi-active only shows its AC phase on a non-deterministic choice. *)
  let ops =
    if String.length info.name >= 4 && String.sub info.name 0 4 = "Semi" then
      [ Store.Operation.Write_random "x" ]
    else [ Store.Operation.Incr ("x", 1) ]
  in
  let committed_rids = ref [] in
  client_loop h ~client ~count:4
    ~make_request:(fun _ -> Store.Operation.request ~client ops)
    ~on_reply:(fun reply ->
      if reply.Core.Technique.committed then
        committed_rids := reply.Core.Technique.rid :: !committed_rids);
  run_for h 30_000;
  let spans = h.inst.Core.Technique.spans in
  Core.Phase_span.finalize spans ~at:(Engine.now h.engine);
  Alcotest.(check bool) "some transactions committed" true
    (!committed_rids <> []);
  List.iter
    (fun rid ->
      Alcotest.(check bool)
        (Printf.sprintf "%s rid %d responded" info.name rid)
        true
        (Core.Phase_span.responded spans ~rid);
      Alcotest.(check (list phase))
        (Printf.sprintf "%s rid %d span signature" info.name rid)
        info.expected_phases
        (Core.Phase_span.signature spans ~rid);
      Alcotest.(check bool)
        (Printf.sprintf "%s rid %d well nested" info.name rid)
        true
        (Core.Phase_span.well_nested spans ~rid))
    !committed_rids

(* Minimal JSON validity checker — parses the full grammar and accepts
   iff the whole string is exactly one JSON value (no yojson in the
   environment, and the exporters hand-build their output). *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let exception Bad in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with Some d when d = c -> advance () | _ -> raise Bad
  in
  let digits () =
    let saw = ref false in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if not !saw then raise Bad
  in
  let str () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise Bad
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> raise Bad
              done
          | _ -> raise Bad);
          go ()
      | Some c when Char.code c < 0x20 -> raise Bad
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> raise Bad
  and literal lit = String.iter expect lit
  and number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  and obj () =
    expect '{';
    skip_ws ();
    match peek () with
    | Some '}' -> advance ()
    | _ ->
        let rec members () =
          skip_ws ();
          str ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
              advance ();
              members ()
          | Some '}' -> advance ()
          | _ -> raise Bad
        in
        members ()
  and arr () =
    expect '[';
    skip_ws ();
    match peek () with
    | Some ']' -> advance ()
    | _ ->
        let rec elems () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
              advance ();
              elems ()
          | Some ']' -> advance ()
          | _ -> raise Bad
        in
        elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Bad -> false

let contains ~sub s =
  let sn = String.length sub and n = String.length s in
  let rec go i = i + sn <= n && (String.sub s i sn = sub || go (i + 1)) in
  go 0

let replace_all ~sub ~by s =
  let sl = String.length sub in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    if !i + sl <= String.length s && String.sub s !i sl = sub then begin
      Buffer.add_string buf by;
      i := !i + sl
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let export_one_txn key =
  let factory =
    Protocols.Registry.default_factory
      (Option.get (Protocols.Registry.find key))
  in
  let h = setup factory in
  let client = List.hd h.clients in
  let slot =
    submit h ~client
      (Store.Operation.request ~client [ Store.Operation.Incr ("x", 1) ])
  in
  run_for h 10_000;
  Alcotest.(check bool) (key ^ " answered") true (!slot <> None);
  let spans = h.inst.Core.Technique.spans in
  Core.Phase_span.finalize spans ~at:(Engine.now h.engine);
  Core.Phase_span.collector spans

let test_chrome_export_valid key () =
  let json = Sim.Trace_export.to_chrome (export_one_txn key) in
  Alcotest.(check bool) (key ^ " chrome JSON parses") true (json_valid json);
  Alcotest.(check bool) (key ^ " wraps traceEvents") true
    (String.length json >= 16 && String.sub json 0 16 = "{\"traceEvents\":[");
  Alcotest.(check bool) (key ^ " has complete events") true
    (contains ~sub:"\"ph\":\"X\"" json);
  Alcotest.(check bool) (key ^ " has metadata events") true
    (contains ~sub:"\"ph\":\"M\"" json)

let test_jsonl_export_valid key () =
  let jsonl = Sim.Trace_export.to_jsonl (export_one_txn key) in
  let lines = String.split_on_char '\n' jsonl in
  Alcotest.(check bool) (key ^ " has span lines") true (List.length lines >= 3);
  List.iter
    (fun line ->
      Alcotest.(check bool) (key ^ " line parses: " ^ line) true
        (json_valid line))
    lines

(* Golden JSONL for one active-replication transaction under a fixed
   seed: the simulator is deterministic, so the whole trace — timings
   included — is reproducible bit for bit. Request ids are global,
   so the one varying field is normalised to R. Message spans (covered
   by test_explain's goldens) are filtered out to keep this golden
   about the phase skeleton; their interleaving still shifts the phase
   span ids, which is part of what is pinned here. *)
let test_golden_jsonl_active () =
  let engine = Engine.create ~seed:3 () in
  let net = Network.create engine ~n:4 Network.default_config in
  let inst = Protocols.Active.create net ~replicas:[ 0; 1; 2 ] ~clients:[ 3 ] () in
  let request =
    Store.Operation.request ~client:3 [ Store.Operation.Incr ("x", 1) ]
  in
  inst.Core.Technique.submit ~client:3 request (fun _ -> ());
  ignore (Engine.run ~until:(Simtime.of_sec 10.) engine);
  Core.Phase_span.finalize inst.Core.Technique.spans ~at:(Engine.now engine);
  let out =
    Sim.Trace_export.to_jsonl (Core.Phase_span.collector inst.Core.Technique.spans)
  in
  let normalized =
    replace_all
      ~sub:(Printf.sprintf "\"trace\":%d" request.Store.Operation.rid)
      ~by:"\"trace\":R" out
    |> String.split_on_char '\n'
    |> List.filter (fun line -> not (contains ~sub:{|"name":"msg:|} line))
    |> String.concat "\n"
  in
  let golden =
    String.concat "\n"
      [
        {|{"type":"span","id":0,"trace":R,"name":"txn","track":"client","start_us":0,"stop_us":3176}|};
        {|{"type":"span","id":1,"trace":R,"name":"RE","parent":0,"track":"client","start_us":0,"stop_us":0}|};
        {|{"type":"span","id":2,"trace":R,"name":"SC","parent":0,"track":"client","start_us":0,"stop_us":2176,"events":[{"at_us":0,"note":"atomic broadcast to the group (merged with RE)"}]}|};
        {|{"type":"span","id":30,"trace":R,"name":"EX","parent":0,"track":1,"start_us":2176,"stop_us":3176,"events":[{"at_us":2176,"track":1,"note":"deterministic execution in delivery order"},{"at_us":2557,"track":2,"note":"deterministic execution in delivery order"},{"at_us":2838,"track":0,"note":"deterministic execution in delivery order"}]}|};
        {|{"type":"span","id":37,"trace":R,"name":"END","parent":0,"track":"client","start_us":3176,"stop_us":3176}|};
      ]
  in
  Alcotest.(check string) "golden active JSONL" golden normalized

(* ------------------------------------------------------------------ *)
(* Suite assembly                                                     *)
(* ------------------------------------------------------------------ *)

let generic_suite =
  List.concat_map
    (fun ((key, _, _) as entry) ->
      [
        tc (key ^ ": commit+converge") (test_commit_and_converge entry);
        tc (key ^ ": figure 16 row") (test_figure16_signature entry);
        tc (key ^ ": sequential counter") (test_sequential_counter entry);
        tc (key ^ ": concurrent updates") (test_concurrent_updates entry);
        tc (key ^ ": multi-op transactions") (test_multi_op_transactions entry);
        tc (key ^ ": span conformance") (test_span_conformance entry);
      ])
    registry_entries

let observability_suite =
  [
    tc "chrome export: active" (test_chrome_export_valid "active");
    tc "chrome export: eager-ue-locking"
      (test_chrome_export_valid "eager-ue-locking");
    tc "jsonl export: active" (test_jsonl_export_valid "active");
    tc "jsonl export: lazy-primary" (test_jsonl_export_valid "lazy-primary");
    tc "golden jsonl: active, fixed seed" test_golden_jsonl_active;
  ]

let property_suite =
  List.map
    (fun entry -> QCheck_alcotest.to_alcotest (prop_strong_technique entry))
    registry_entries

let () =
  Alcotest.run "protocols"
    [
      ("generic", generic_suite);
      ("observability", observability_suite);
      ("properties", property_suite);
      ("crash-fuzz", crash_fuzz_suite);
      ( "failures",
        [
          tc "semi-active leader crash" test_semi_active_leader_crash;
          tc "passive cascading crashes" test_passive_cascading_crashes;
          tc "eager-primary site aborts" test_eager_primary_site_aborts;
          tc "active under message loss" test_active_under_message_loss;
          tc "lazy-primary read-your-writes" test_lazy_primary_read_your_writes_at_primary;
          tc "consensus-based ordering stacks" test_consensus_based_abcast_protocols;
        ] );
      ("soak", [ tc "7 replicas, mixed workload, crash" test_soak_eager_ue_abcast ]);
      ( "recovery",
        [
          tc "passive backup rejoin + state transfer" test_passive_backup_recovery;
          tc "passive primary crash, recover, rejoin" test_passive_primary_recovery;
          tc "passive partition heals" test_passive_partition_heals;
          tc "lazy-ue split brain reconciles" test_lazy_ue_split_brain_reconciles;
        ] );
      ( "active",
        [
          tc "masks replica crash" test_active_masks_crash;
          tc "linearizable" test_active_linearizable;
          tc "local reads: SC but not linearizable"
            test_active_local_reads_sequentially_consistent;
        ] );
      ( "passive",
        [
          tc "primary failover" test_passive_failover;
          tc "nondeterminism converges" test_passive_nondeterminism_converges;
        ] );
      ( "semi-active",
        [ tc "nondeterminism converges" test_semi_active_nondeterminism_converges ]
      );
      ( "semi-passive",
        [ tc "coordinator crash" test_semi_passive_coordinator_crash ] );
      ( "eager-primary",
        [
          tc "failover" test_eager_primary_failover;
          tc "interactive EX/AC loop" test_eager_primary_interactive_loop;
          tc "non-blocking commit (3PC)" test_eager_primary_3pc;
        ] );
      ( "eager-ue-locking",
        [
          tc "deadlock" test_eager_ue_locking_deadlock;
          tc "rowa cheaper" test_eager_ue_locking_rowa_cheaper;
          tc "majority lock quorum" test_eager_ue_locking_quorum;
        ] );
      ( "lazy-primary",
        [ tc "stale reads then convergence" test_lazy_primary_stale_reads_then_convergence ]
      );
      ( "lazy-ue",
        [ tc "conflict reconciliation" test_lazy_ue_conflict_reconciliation ] );
      ( "certification",
        [
          tc "aborts on conflict" test_certification_aborts_conflict;
          tc "optimistic variant safe" test_optimistic_certification_correct;
        ] );
      ( "eager-ue-abcast",
        [ tc "delegate crash" test_eager_ue_abcast_delegate_crash ] );
    ]
