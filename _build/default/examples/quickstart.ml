(* Quickstart: a replicated counter under active replication.

   Build a simulated cluster, pick a technique from the registry, submit
   transactions from a client, read the replies, and check that all
   replicas converged.

     dune exec examples/quickstart.exe
*)

open Sim

let () =
  (* 1. A deterministic simulation: engine + network with 3 replicas and
        1 client (node ids 0,1,2 and 3). *)
  let engine = Engine.create ~seed:2024 () in
  let net = Network.create engine ~n:4 Network.default_config in
  let replicas = [ 0; 1; 2 ] and clients = [ 3 ] in

  (* 2. Instantiate a replication technique. Every technique exposes the
        same [Core.Technique.instance] interface. *)
  let counter = Protocols.Active.create net ~replicas ~clients () in
  Fmt.pr "technique: %a@.@." Core.Technique.pp_info counter.info;

  (* 3. Submit ten increments and one read, closed loop. *)
  let client = 3 in
  let rec increment i =
    if i < 10 then
      counter.submit ~client
        (Store.Operation.request ~client [ Store.Operation.Incr ("hits", 1) ])
        (fun reply ->
          Fmt.pr "increment %d -> committed=%b at %a@." (i + 1)
            reply.Core.Technique.committed Simtime.pp reply.at;
          increment (i + 1))
    else
      counter.submit ~client
        (Store.Operation.request ~client [ Store.Operation.Read "hits" ])
        (fun reply ->
          Fmt.pr "@.read hits = %d@."
            (Option.value ~default:0 reply.Core.Technique.value))
  in
  increment 0;

  (* 4. Run the simulation to quiescence. *)
  ignore (Engine.run ~until:(Simtime.of_sec 5.) engine);

  (* 5. Every replica holds the same state. *)
  let stores = List.map counter.replica_store replicas in
  Fmt.pr "replicas converged: %b@." (Core.Convergence.converged stores);
  List.iter (fun s -> Fmt.pr "  %a@." Store.Kv.pp s) stores;

  (* 6. And the phase trace of the last request matches Figure 16. *)
  let rid = List.hd (List.rev (Core.Phase_trace.rids counter.phases)) in
  Fmt.pr "@.phase signature of the read: %a@." Core.Phase.pp_sequence
    (Core.Phase_trace.signature counter.phases ~rid)
