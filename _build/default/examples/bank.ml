(* A replicated bank: concurrent transfers between accounts on an eager
   update-everywhere (ABCAST) database — the §4.4.2 technique.

   Invariants demonstrated:
   - money is conserved (the sum of balances never changes),
   - the global history is 1-copy serializable,
   - every replica ends with identical balances.

     dune exec examples/bank.exe
*)

open Sim

let n_accounts = 8
let initial_balance = 1_000
let account i = Printf.sprintf "acct%02d" i

let () =
  let engine = Engine.create ~seed:99 () in
  let net = Network.create engine ~n:7 Network.default_config in
  let replicas = [ 0; 1; 2 ] and clients = [ 3; 4; 5; 6 ] in
  let bank = Protocols.Eager_ue_abcast.create net ~replicas ~clients () in

  (* Fund the accounts through a single setup transaction. *)
  let funds =
    List.init n_accounts (fun i -> Store.Operation.Write (account i, initial_balance))
  in
  bank.submit ~client:3 (Store.Operation.request ~client:3 funds) (fun _ -> ());
  ignore (Engine.run ~until:(Simtime.of_ms 100) engine);

  (* Four tellers issue random transfers concurrently. A transfer is a
     multi-operation transaction: debit one account, credit another. *)
  let rng = Rng.create ~seed:7 in
  let transfers = ref 0 in
  List.iter
    (fun client ->
      let rec transfer i =
        if i < 25 then begin
          let from_acct = Rng.int rng n_accounts in
          let to_acct = (from_acct + 1 + Rng.int rng (n_accounts - 1)) mod n_accounts in
          let amount = 1 + Rng.int rng 50 in
          let ops =
            [
              Store.Operation.Incr (account from_acct, -amount);
              Store.Operation.Incr (account to_acct, amount);
            ]
          in
          bank.submit ~client (Store.Operation.request ~client ops)
            (fun reply ->
              if reply.Core.Technique.committed then incr transfers;
              transfer (i + 1))
        end
      in
      transfer 0)
    clients;
  ignore (Engine.run ~until:(Simtime.of_sec 30.) engine);

  Fmt.pr "transfers committed: %d@." !transfers;

  (* Audit each replica. *)
  List.iter
    (fun r ->
      let kv = bank.replica_store r in
      let total =
        List.fold_left
          (fun acc i -> acc + fst (Store.Kv.read kv (account i)))
          0
          (List.init n_accounts Fun.id)
      in
      Fmt.pr "replica %d: total balance = %d (expected %d) %s@." r total
        (n_accounts * initial_balance)
        (if total = n_accounts * initial_balance then "OK" else "** LOST MONEY **"))
    replicas;

  Fmt.pr "replicas converged: %b@."
    (Core.Convergence.converged (List.map bank.replica_store replicas));
  Fmt.pr "history: %a@." Store.Serializability.pp_verdict
    (Store.Serializability.check bank.history)
