(* Blocking vs non-blocking atomic commitment (paper §2.1).

   "Databases accept to live with blocking protocols ... distributed
   systems usually look for non-blocking protocols."

   The same scenario twice: three sites prepare a transaction and the
   coordinator crashes before announcing the outcome.

   - With two-phase commit the prepared participants are wedged: they can
     never learn the decision (in a real database an operator must
     intervene — exactly the paper's remark).
   - With three-phase commit the survivors elect a recovery coordinator,
     exchange their states, and terminate on their own (all still
     uncertain, so they abort — safely, since nobody could have
     committed).

     dune exec examples/nonblocking_commit.exe
*)

open Sim

let scenario name run_protocol =
  Fmt.pr "=== %s ===@." name;
  let engine = Engine.create ~seed:8 () in
  let net = Network.create engine ~n:3 Network.default_config in
  let decisions = ref [] in
  let learn ~me ~txn:_ decision =
    decisions := (me, decision) :: !decisions;
    Fmt.pr "  site %d learned %s at %a@." me decision Simtime.pp
      (Engine.now engine)
  in
  run_protocol net ~learn;
  (* The coordinator (site 0) crashes while the votes are in flight:
     every participant has prepared, nobody knows the outcome. *)
  ignore
    (Engine.schedule engine ~after:(Simtime.of_us 1_500) (fun () ->
         Fmt.pr "  *** coordinator (site 0) crashes ***@.";
         Network.crash net 0));
  ignore (Engine.run ~until:(Simtime.of_sec 10.) engine);
  let survivors_decided =
    List.filter (fun (me, _) -> me <> 0) !decisions |> List.length
  in
  if survivors_decided = 0 then
    Fmt.pr "  outcome: survivors BLOCKED — nobody ever decided@."
  else Fmt.pr "  outcome: survivors terminated on their own@.";
  Fmt.pr "@."

let () =
  scenario "two-phase commit (the blocking protocol databases accept)"
    (fun net ~learn ->
      let group =
        Core.Two_phase_commit.create_group net ~nodes:[ 0; 1; 2 ]
          ~vote:(fun ~me:_ ~txn:_ -> true)
          ~learn:(fun ~me ~txn d ->
            learn ~me ~txn
              (match d with
              | Core.Two_phase_commit.Commit -> "COMMIT"
              | Core.Two_phase_commit.Abort -> "ABORT"))
          ()
      in
      Core.Two_phase_commit.start group ~coordinator:0
        ~participants:[ 0; 1; 2 ] ~txn:1
        ~on_complete:(fun _ -> ()));
  scenario "three-phase commit (the non-blocking alternative)"
    (fun net ~learn ->
      let group =
        Core.Three_phase_commit.create_group net ~nodes:[ 0; 1; 2 ]
          ~vote:(fun ~me:_ ~txn:_ -> true)
          ~learn:(fun ~me ~txn d ->
            learn ~me ~txn
              (match d with
              | Core.Three_phase_commit.Commit -> "COMMIT"
              | Core.Three_phase_commit.Abort -> "ABORT"))
          ()
      in
      Core.Three_phase_commit.start group ~coordinator:0
        ~participants:[ 0; 1; 2 ] ~txn:1
        ~on_complete:(fun _ -> ()))
