examples/quickstart.ml: Core Engine Fmt List Network Option Protocols Sim Simtime Store
