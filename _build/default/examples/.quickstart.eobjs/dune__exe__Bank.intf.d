examples/bank.mli:
