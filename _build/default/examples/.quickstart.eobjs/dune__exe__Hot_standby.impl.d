examples/hot_standby.ml: Core Engine Fmt List Network Protocols Sim Simtime Store
