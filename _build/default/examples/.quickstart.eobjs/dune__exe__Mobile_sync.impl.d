examples/mobile_sync.ml: Core Engine Fmt List Network Protocols Sim Simtime Store
