examples/mobile_sync.mli:
