examples/nonblocking_commit.ml: Core Engine Fmt List Network Sim Simtime
