examples/bank.ml: Core Engine Fmt Fun List Network Printf Protocols Rng Sim Simtime Store
