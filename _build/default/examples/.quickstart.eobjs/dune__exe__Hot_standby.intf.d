examples/hot_standby.mli:
