examples/nonblocking_commit.mli:
