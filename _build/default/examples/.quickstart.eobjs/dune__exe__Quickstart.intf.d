examples/quickstart.mli:
