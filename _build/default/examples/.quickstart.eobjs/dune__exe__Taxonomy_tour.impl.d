examples/taxonomy_tour.ml: Core Fmt Format List Protocols Workload
