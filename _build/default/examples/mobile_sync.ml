(* Mobile users on a lazy update-everywhere database (§4.6).

   The paper motivates lazy replication with "the proliferation of
   applications for mobile users, where a copy is not always connected to
   the rest of the system". Here two field agents update the same
   customer record at different sites while the propagation link is slow;
   both get an immediate commit, the copies diverge, and reconciliation
   in the after-commit order makes everybody agree on a single winner.

     dune exec examples/mobile_sync.exe
*)

open Sim

let () =
  let engine = Engine.create ~seed:3 () in
  let net = Network.create engine ~n:5 Network.default_config in
  let replicas = [ 0; 1; 2 ] and clients = [ 3; 4 ] in
  (* A long propagation delay stands in for the disconnected period. *)
  let crm =
    Protocols.Lazy_ue.create net ~replicas ~clients
      ~config:
        {
          Protocols.Lazy_ue.default_config with
          propagation_delay = Simtime.of_ms 500;
        }
      ()
  in
  let show_copies label =
    Fmt.pr "%s@." label;
    List.iter
      (fun r ->
        let v, _ = Store.Kv.read (crm.replica_store r) "customer.phone" in
        Fmt.pr "  site %d sees customer.phone = %d@." r v)
      replicas
  in

  (* Agent A (client 3, local site 0) and agent B (client 4, local site 1)
     both update the same record while "offline". *)
  let update client value =
    crm.submit ~client
      (Store.Operation.request ~client
         [ Store.Operation.Write ("customer.phone", value) ])
      (fun reply ->
        Fmt.pr "agent %d: update to %d committed locally at %a@." client value
          Simtime.pp reply.Core.Technique.at)
  in
  update 3 5551111;
  update 4 5552222;

  ignore (Engine.run ~until:(Simtime.of_ms 100) engine);
  show_copies "\nwhile disconnected (copies inconsistent — the paper's \"not only stale but inconsistent\"):";

  ignore (Engine.run ~until:(Simtime.of_sec 10.) engine);
  show_copies "\nafter reconciliation (after-commit order decides the winner):";

  Fmt.pr "@.conflicts detected and resolved: %d@."
    (Protocols.Lazy_ue.conflicts crm);
  Fmt.pr "replicas converged: %b@."
    (Core.Convergence.converged (List.map crm.replica_store replicas))
