(* Hot-standby failover with eager primary copy (§4.3).

   The paper: eager primary copy "is only used for fault-tolerance in
   order to implement a hot-standby backup mechanism where a primary site
   executes all operations and a secondary site is ready to immediately
   take over in case the primary fails".

   We run a stream of updates, crash the primary mid-stream, and watch the
   client re-submit to the standby: every request commits exactly once and
   the survivors stay identical.

     dune exec examples/hot_standby.exe
*)

open Sim

let () =
  let engine = Engine.create ~seed:12 () in
  let net = Network.create engine ~n:4 Network.default_config in
  let replicas = [ 0; 1; 2 ] and clients = [ 3 ] in
  let db = Protocols.Eager_primary.create net ~replicas ~clients () in

  let client = 3 in
  let committed = ref 0 in
  let rec order i =
    if i < 12 then
      db.submit ~client
        (Store.Operation.request ~client
           [ Store.Operation.Incr ("orders", 1) ])
        (fun reply ->
          Fmt.pr "order %2d committed by replica %d at %a%s@." (i + 1)
            reply.Core.Technique.replica Simtime.pp reply.at
            (if reply.Core.Technique.replica <> 0 then "   <- standby" else "");
          if reply.Core.Technique.committed then incr committed;
          order (i + 1))
  in
  order 0;

  (* Pull the plug on the primary after 40 ms. *)
  ignore
    (Engine.schedule engine ~after:(Simtime.of_ms 40) (fun () ->
         Fmt.pr "@.*** primary (replica 0) crashes ***@.@.";
         Network.crash net 0));

  ignore (Engine.run ~until:(Simtime.of_sec 30.) engine);

  Fmt.pr "@.orders committed: %d / 12 (exactly-once despite retries)@."
    !committed;
  let survivors =
    List.filter_map
      (fun r -> if Network.alive net r then Some (db.replica_store r) else None)
      replicas
  in
  Fmt.pr "surviving replicas converged: %b@."
    (Core.Convergence.converged survivors);
  List.iter (fun s -> Fmt.pr "  %a@." Store.Kv.pp s) survivors;
  (* The client saw the failure: resubmissions appear in the phase trace
     (this is the "failure NOT transparent" half of Figure 5). *)
  let resubmissions =
    List.concat_map
      (fun rid -> Core.Phase_trace.marks db.phases ~rid)
      (Core.Phase_trace.rids db.phases)
    |> List.filter (fun m ->
           m.Core.Phase_trace.note = "resubmission after timeout")
    |> List.length
  in
  Fmt.pr "client resubmissions observed: %d@." resubmissions
