bench/micro.ml: Analyze Bechamel Benchmark Core Fmt Group Hashtbl Instance Int List Measure Printf Sim Staged Store String Test Time Toolkit
