bench/main.ml: Ablations Array Figures Fmt List Micro Perf String Sys
