bench/ablations.ml: Array Engine Fmt Group Hashtbl List Msg Network Protocols Sim Simtime String Workload
