bench/figures.ml: Bytes Core Engine Fmt Fun Int List Network Printf Protocols Sim Simtime Store String
