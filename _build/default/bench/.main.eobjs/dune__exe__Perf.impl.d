bench/perf.ml: Core Engine Fmt Group Hashtbl List Network Option Printf Protocols Sim Simtime Store String Workload
