bench/main.mli:
