(* Bechamel micro-benchmarks of the substrates every experiment rests on:
   event engine, RNG, heap, lock table, serializability checker,
   certification, and a full ABCAST round in the simulator. One
   [Test.make] per substrate, all grouped in one run. *)

open Bechamel
open Toolkit

let bench_engine =
  Test.make ~name:"engine: schedule+run 1000 events"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create ~seed:1 () in
         for i = 1 to 1000 do
           ignore (Sim.Engine.schedule e ~after:(Sim.Simtime.of_us i) (fun () -> ()))
         done;
         ignore (Sim.Engine.run e)))

let bench_rng =
  let rng = Sim.Rng.create ~seed:7 in
  let sampler = Sim.Rng.Zipf.make ~n:1000 ~theta:0.9 in
  Test.make ~name:"rng: 1000 zipf draws"
    (Staged.stage (fun () ->
         for _ = 1 to 1000 do
           ignore (Sim.Rng.Zipf.draw rng sampler)
         done))

let bench_heap =
  Test.make ~name:"heap: push/pop 1000"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create ~cmp:Int.compare in
         for i = 1000 downto 1 do
           Sim.Heap.push h i
         done;
         while not (Sim.Heap.is_empty h) do
           ignore (Sim.Heap.pop h)
         done))

let bench_locks =
  Test.make ~name:"locks: 100 acquire/release rounds"
    (Staged.stage (fun () ->
         let lt = Store.Lock_table.create () in
         for txn = 1 to 100 do
           ignore
             (Store.Lock_table.acquire lt ~txn ~key:"a" Store.Lock_table.X
                ~granted:ignore);
           ignore
             (Store.Lock_table.acquire lt ~txn ~key:"b" Store.Lock_table.S
                ~granted:ignore);
           Store.Lock_table.release_all lt ~txn
         done))

let bench_serializability =
  let history = Store.History.create () in
  let () =
    let kv = Store.Kv.create () in
    for tid = 1 to 100 do
      let key = Printf.sprintf "k%d" (tid mod 10) in
      let result =
        Store.Apply.execute kv
          [ Store.Operation.Read key; Store.Operation.Write (key, tid) ]
      in
      Store.History.add_result history ~tid ~replica:0 ~at:Sim.Simtime.zero
        result
    done
  in
  Test.make ~name:"serializability: check 100-txn history"
    (Staged.stage (fun () -> ignore (Store.Serializability.check history)))

let bench_certification =
  Test.make ~name:"certification: 100 offers"
    (Staged.stage (fun () ->
         let kv = Store.Kv.create () in
         let cert = Core.Certification.create kv in
         for i = 1 to 100 do
           let v = Store.Kv.version kv "x" in
           ignore
             (Core.Certification.offer cert ~reads:[ ("x", v) ]
                ~writes:[ ("x", i, 0) ])
         done))

let bench_abcast =
  Test.make ~name:"abcast: full broadcast round (3 replicas, simulated)"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create ~seed:5 () in
         let net = Sim.Network.create e ~n:3 Sim.Network.default_config in
         let group =
           Group.Abcast.create_group net ~members:[ 0; 1; 2 ] ~passthrough:true ()
         in
         let delivered = ref 0 in
         List.iter
           (fun m ->
             Group.Abcast.on_deliver
               (Group.Abcast.handle group ~me:m)
               (fun ~origin:_ _ -> incr delivered))
           [ 0; 1; 2 ];
         Group.Abcast.broadcast (Group.Abcast.handle group ~me:0) (Sim.Msg.Ping 1);
         ignore (Sim.Engine.run ~until:(Sim.Simtime.of_ms 100) e)))

let tests =
  Test.make_grouped ~name:"substrates"
    [
      bench_engine;
      bench_rng;
      bench_heap;
      bench_locks;
      bench_serializability;
      bench_certification;
      bench_abcast;
    ]

let run () =
  Fmt.pr "%s@." (String.make 78 '-');
  Fmt.pr "micro — Bechamel benchmarks of the substrates@.";
  Fmt.pr "%s@." (String.make 78 '-');
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Printf.sprintf "%12.0f ns/run" e
            | _ -> "            n/a"
          in
          Fmt.pr "  %-55s %s@." name estimate)
        tbl)
    results
