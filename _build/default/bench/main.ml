(* Benchmark harness entry point.

   With no arguments, regenerates every figure of the paper (fig1..fig16)
   and runs the §6 performance study (perf1..perf5) plus the Bechamel
   micro-benchmarks. Individual experiments can be selected by id:

     dune exec bench/main.exe -- fig16 perf2

   The experiment ids match the index in DESIGN.md and EXPERIMENTS.md. *)

let registry =
  Figures.all @ Perf.all @ Ablations.all @ [ ("micro", Micro.run) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] -> registry
    | ids ->
        List.map
          (fun id ->
            match List.assoc_opt id registry with
            | Some f -> (id, f)
            | None ->
                Fmt.epr "unknown experiment %S; known: %s@." id
                  (String.concat " " (List.map fst registry));
                exit 1)
          ids
  in
  List.iter
    (fun (_, f) ->
      f ();
      Fmt.pr "@.")
    selected
