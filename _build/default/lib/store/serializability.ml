type verdict =
  | Serializable of int list
  | Cyclic of int list
  | Ambiguous_versions of Operation.key * int

exception Ambiguous of Operation.key * int

let build_edges records =
  (* (key, version) -> writer tid *)
  let writer = Hashtbl.create 64 in
  List.iter
    (fun (r : History.record) ->
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt writer (k, v) with
          | Some tid when tid <> r.tid -> raise (Ambiguous (k, v))
          | _ -> Hashtbl.replace writer (k, v) r.tid)
        r.writes)
    records;
  (* per-key sorted list of written versions *)
  let versions_of = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (k, v) _ ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt versions_of k) in
      Hashtbl.replace versions_of k (v :: cur))
    writer;
  let edges = ref [] in
  let add_edge a b = if a <> b then edges := (a, b) :: !edges in
  (* ww: consecutive version order per key *)
  Hashtbl.iter
    (fun k versions ->
      let sorted = List.sort Int.compare versions in
      let rec pair = function
        | v1 :: (v2 :: _ as rest) ->
            add_edge (Hashtbl.find writer (k, v1)) (Hashtbl.find writer (k, v2));
            pair rest
        | _ -> ()
      in
      pair sorted)
    versions_of;
  (* wr and rw *)
  List.iter
    (fun (r : History.record) ->
      List.iter
        (fun (k, v) ->
          (* wr: the writer of the version we read precedes us *)
          (match Hashtbl.find_opt writer (k, v) with
          | Some w -> add_edge w r.tid
          | None -> () (* initial version 0 *));
          (* rw: we precede the writer of the next version *)
          let next_writer =
            match Hashtbl.find_opt versions_of k with
            | None -> None
            | Some versions ->
                List.filter (fun v' -> v' > v) versions
                |> List.sort Int.compare
                |> function
                | [] -> None
                | v' :: _ -> Some (Hashtbl.find writer (k, v'))
          in
          match next_writer with
          | Some w when w <> r.tid -> add_edge r.tid w
          | _ -> ())
        r.reads)
    records;
  !edges

let check history =
  let records = History.records history in
  match build_edges records with
  | exception Ambiguous (k, v) -> Ambiguous_versions (k, v)
  | edges ->
      let tids =
        List.map (fun (r : History.record) -> r.tid) records
        |> List.sort_uniq Int.compare
      in
      let adj = Hashtbl.create 64 in
      List.iter
        (fun (a, b) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt adj a) in
          if not (List.mem b cur) then Hashtbl.replace adj a (b :: cur))
        edges;
      (* DFS cycle detection with an explicit path for the witness. *)
      let state = Hashtbl.create 64 in
      (* 0 = in progress, 1 = done *)
      let order = ref [] in
      let exception Cycle of int list in
      let rec visit path tid =
        match Hashtbl.find_opt state tid with
        | Some 1 -> ()
        | Some _ ->
            (* Found a back edge: extract the cycle from the path. *)
            let rec cut = function
              | [] -> [ tid ]
              | x :: rest -> if x = tid then [ x ] else x :: cut rest
            in
            raise (Cycle (List.rev (cut path)))
        | None ->
            Hashtbl.replace state tid 0;
            let succs = Option.value ~default:[] (Hashtbl.find_opt adj tid) in
            List.iter (fun s -> visit (s :: path) s) succs;
            Hashtbl.replace state tid 1;
            order := tid :: !order
      in
      (try
         List.iter (fun tid -> visit [ tid ] tid) tids;
         Serializable !order
       with Cycle c -> Cyclic c)

let pp_verdict ppf = function
  | Serializable order ->
      Format.fprintf ppf "serializable (order: %s)"
        (String.concat " " (List.map (fun t -> "T" ^ string_of_int t) order))
  | Cyclic cycle ->
      Format.fprintf ppf "NOT serializable (cycle: %s)"
        (String.concat " -> " (List.map (fun t -> "T" ^ string_of_int t) cycle))
  | Ambiguous_versions (k, v) ->
      Format.fprintf ppf "replica divergence: two writers installed %s@v%d" k v

let is_serializable history =
  match check history with Serializable _ -> true | _ -> false
