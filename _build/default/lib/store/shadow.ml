type t = {
  base : Kv.t;
  overlay : (Operation.key, int) Hashtbl.t;
  mutable rev_reads : (Operation.key * int * int) list;
  mutable rev_write_order : Operation.key list; (* first-write order *)
  mutable n_ops : int;
  mutable last_read_value : int option;
}

let create base =
  {
    base;
    overlay = Hashtbl.create 8;
    rev_reads = [];
    rev_write_order = [];
    n_ops = 0;
    last_read_value = None;
  }

let read t k =
  match Hashtbl.find_opt t.overlay k with
  | Some v ->
      t.last_read_value <- Some v;
      v
  | None ->
      let v, version = Kv.read t.base k in
      t.rev_reads <- (k, v, version) :: t.rev_reads;
      t.last_read_value <- Some v;
      v

let write t k v =
  if not (Hashtbl.mem t.overlay k) then
    t.rev_write_order <- k :: t.rev_write_order;
  Hashtbl.replace t.overlay k v

let exec_op ?(choose = fun _ -> 0) t op =
  t.n_ops <- t.n_ops + 1;
  match op with
  | Operation.Read k -> ignore (read t k)
  | Operation.Write (k, v) -> write t k v
  | Operation.Incr (k, delta) ->
      let v = read t k in
      write t k (v + delta)
  | Operation.Write_random k -> write t k (choose k)

let exec_ops ?choose t ops = List.iter (fun op -> exec_op ?choose t op) ops

let reads t = List.rev t.rev_reads

let writes t =
  List.rev_map (fun k -> (k, Hashtbl.find t.overlay k)) t.rev_write_order

let ops_executed t = t.n_ops

let install t =
  List.map
    (fun (k, v) ->
      let version = Kv.write t.base k v in
      (k, v, version))
    (writes t)

let last_read t = t.last_read_value

let result t ~installed = { Apply.reads = reads t; writes = installed }
