(** 1-copy serializability checker (paper §2.2, §4.1, [BHG87]).

    Builds the direct serialization graph over the committed transactions
    of a {!History}: write–write edges follow per-item version order,
    write–read edges connect a version's writer to its readers, and
    read–write (anti-dependency) edges connect a reader to the writers of
    later versions. The history is 1-copy serializable iff the graph is
    acyclic; an acyclic graph yields an equivalent serial order as witness.

    Two committed writers installing the {e same} version of the same item
    is a replica-divergence anomaly (possible under lazy update-everywhere
    before reconciliation) and is reported as such. *)

type verdict =
  | Serializable of int list
      (** equivalent serial order (transaction ids) *)
  | Cyclic of int list  (** transaction ids forming a cycle *)
  | Ambiguous_versions of Operation.key * int
      (** two transactions installed the same version of this item *)

val check : History.t -> verdict

val is_serializable : History.t -> bool
val pp_verdict : Format.formatter -> verdict -> unit
