type entry = { tid : int; writes : (Operation.key * int * int) list }
type t = { mutable rev_entries : entry list; mutable size : int }

let create () = { rev_entries = []; size = 0 }

let append t e =
  t.rev_entries <- e :: t.rev_entries;
  t.size <- t.size + 1

let entries t = List.rev t.rev_entries
let length t = t.size

let replay t kv =
  List.iter (fun e -> Apply.apply_writes kv e.writes) (entries t)
