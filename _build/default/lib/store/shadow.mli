(** Shadow-copy (overlay) transaction execution.

    The paper's certification-based technique executes on shadow copies
    (§5.4.2), and every technique that can abort after executing (2PC
    voting, certification) needs writes that are invisible until commit.
    A shadow buffers a transaction's writes over a base store: reads see
    the transaction's own writes first, then the base; nothing touches the
    base until [install]. *)

type t

val create : Kv.t -> t

(** Execute one operation. [choose] resolves [Write_random] (default
    constant 0). *)
val exec_op : ?choose:(Operation.key -> int) -> t -> Operation.op -> unit

val exec_ops : ?choose:(Operation.key -> int) -> t -> Operation.op list -> unit

(** Reads performed so far: (key, value, base-store version). Reads of the
    transaction's own writes are not listed (they create no inter-
    transaction dependency). *)
val reads : t -> (Operation.key * int * int) list

(** Buffered writes, in program order, last write per key:
    (key, value). *)
val writes : t -> (Operation.key * int) list

(** Number of operations executed so far. *)
val ops_executed : t -> int

(** Install the buffered writes into the base store with freshly assigned
    versions; returns them as (key, value, version) for history
    recording. The shadow must not be used afterwards. *)
val install : t -> (Operation.key * int * int) list

(** The value the client response carries: last read value, if any. *)
val last_read : t -> int option

(** The full execution result (reads + writes as installed); only valid
    after [install]. *)
val result : t -> installed:(Operation.key * int * int) list -> Apply.result
