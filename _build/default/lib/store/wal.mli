(** Redo log. The eager-primary protocol of the paper (§4.3) executes at
    the primary "to generate the corresponding log records which are then
    sent to the secondary and applied" — this is that log. *)

type entry = {
  tid : int;
  writes : (Operation.key * int * int) list;  (** key, value, version *)
}

type t

val create : unit -> t
val append : t -> entry -> unit
val entries : t -> entry list
val length : t -> int

(** Re-apply the whole log to a (possibly empty) store. *)
val replay : t -> Kv.t -> unit
