lib/store/serializability.mli: Format History Operation
