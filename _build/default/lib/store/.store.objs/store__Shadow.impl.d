lib/store/shadow.ml: Apply Hashtbl Kv List Operation
