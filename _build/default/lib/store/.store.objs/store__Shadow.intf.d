lib/store/shadow.mli: Apply Kv Operation
