lib/store/apply.mli: Kv Operation
