lib/store/serializability.ml: Format Hashtbl History Int List Operation Option String
