lib/store/wal.ml: Apply List Operation
