lib/store/kv.mli: Format Operation
