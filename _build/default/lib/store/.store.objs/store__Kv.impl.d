lib/store/kv.ml: Format Hashtbl List Operation String
