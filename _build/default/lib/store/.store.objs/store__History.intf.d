lib/store/history.mli: Apply Format Operation Sim
