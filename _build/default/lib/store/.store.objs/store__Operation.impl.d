lib/store/operation.ml: Format List String
