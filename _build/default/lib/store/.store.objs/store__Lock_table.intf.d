lib/store/lock_table.mli: Operation
