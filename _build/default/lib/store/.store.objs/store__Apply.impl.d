lib/store/apply.ml: Kv List Operation
