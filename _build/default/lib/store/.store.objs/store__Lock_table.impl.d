lib/store/lock_table.ml: Hashtbl Int List Operation Option
