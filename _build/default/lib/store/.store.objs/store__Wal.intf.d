lib/store/wal.mli: Kv Operation
