lib/store/history.ml: Apply Format List Operation Sim
