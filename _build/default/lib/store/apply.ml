type result = {
  reads : (Operation.key * int * int) list;
  writes : (Operation.key * int * int) list;
}

let empty = { reads = []; writes = [] }

let merge a b = { reads = a.reads @ b.reads; writes = a.writes @ b.writes }

let execute ?(choose = fun _ -> 0) kv ops =
  let reads = ref [] and writes = ref [] in
  let do_write k v =
    let version = Kv.write kv k v in
    writes := (k, v, version) :: !writes
  in
  List.iter
    (fun op ->
      match op with
      | Operation.Read k ->
          let v, version = Kv.read kv k in
          reads := (k, v, version) :: !reads
      | Operation.Write (k, v) -> do_write k v
      | Operation.Incr (k, delta) ->
          let v, version = Kv.read kv k in
          reads := (k, v, version) :: !reads;
          do_write k (v + delta)
      | Operation.Write_random k -> do_write k (choose k))
    ops;
  { reads = List.rev !reads; writes = List.rev !writes }

let apply_writes kv writes =
  List.iter
    (fun (k, value, version) -> Kv.install kv k ~value ~version)
    writes
