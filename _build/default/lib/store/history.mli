(** Global history of committed transactions (paper §5.1).

    Each record notes, for one committed transaction, the versions of the
    logical items it read and the versions its writes installed. Protocol
    implementations report these from the replica where the transaction
    executed; {!Serializability.check} decides whether the resulting
    history is 1-copy serializable. *)

type record = {
  tid : int;
  reads : (Operation.key * int) list;  (** version read *)
  writes : (Operation.key * int) list;  (** version installed *)
  replica : int;  (** where the transaction executed *)
  committed_at : Sim.Simtime.t;
}

type t

val create : unit -> t
val add : t -> record -> unit

(** Convenience: record a commit from an {!Apply.result}. *)
val add_result :
  t -> tid:int -> replica:int -> at:Sim.Simtime.t -> Apply.result -> unit

val records : t -> record list
val length : t -> int
val pp_record : Format.formatter -> record -> unit
