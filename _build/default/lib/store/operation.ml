(** The transaction model (paper §4.1 and §5.1).

    A transaction is a sequence of read and write operations over logical
    data items. A one-operation transaction (a single [op]) models the
    stored-procedure interface of §2.2/§4.1; a longer list models the
    interactive transactions of §5. [Write_random] marks a
    non-deterministic choice: executing it picks a fresh value, so replicas
    that execute it independently diverge — exactly the situation
    semi-active and passive replication exist to handle (§3.3, §3.4). *)

type key = string

type op =
  | Read of key
  | Write of key * int
  | Incr of key * int  (** read-modify-write: add the delta to the item *)
  | Write_random of key
      (** non-deterministic write; the executing replica chooses the value *)

(** A client request: one transaction. *)
type request = { rid : int; client : int; ops : op list }

let next_rid = ref 0

let request ~client ops =
  incr next_rid;
  { rid = !next_rid; client; ops }

(** Keys read by an operation (for lock acquisition). *)
let read_keys = function
  | Read k -> [ k ]
  | Incr (k, _) -> [ k ]
  | Write _ | Write_random _ -> []

(** Keys written by an operation. *)
let write_keys = function
  | Read _ -> []
  | Write (k, _) | Incr (k, _) | Write_random k -> [ k ]

let is_update = function Read _ -> false | Write _ | Incr _ | Write_random _ -> true
let request_is_update r = List.exists is_update r.ops

let read_set r = List.concat_map read_keys r.ops |> List.sort_uniq String.compare
let write_set r = List.concat_map write_keys r.ops |> List.sort_uniq String.compare

let pp_op ppf = function
  | Read k -> Format.fprintf ppf "r(%s)" k
  | Write (k, v) -> Format.fprintf ppf "w(%s:=%d)" k v
  | Incr (k, d) -> Format.fprintf ppf "incr(%s,%+d)" k d
  | Write_random k -> Format.fprintf ppf "w(%s:=?)" k

let pp_request ppf r =
  Format.fprintf ppf "T%d[%a]" r.rid
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_op)
    r.ops
