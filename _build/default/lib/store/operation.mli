(** The transaction model (paper §4.1 and §5.1).

    A transaction is a sequence of read and write operations over logical
    data items. A one-operation transaction (a single [op]) models the
    stored-procedure interface of §2.2/§4.1; a longer list models the
    interactive transactions of §5. *)

type key = string

type op =
  | Read of key
  | Write of key * int
  | Incr of key * int  (** read-modify-write: add the delta to the item *)
  | Write_random of key
      (** a non-deterministic write: the executing replica chooses the
          value, so replicas that execute it independently diverge —
          exactly what semi-active and passive replication exist to
          handle (§3.3, §3.4) *)

(** A client request: one transaction, with a globally unique id. *)
type request = { rid : int; client : int; ops : op list }

(** Allocate a request with a fresh [rid]. *)
val request : client:int -> op list -> request

(** Keys read by an operation (for lock acquisition). *)
val read_keys : op -> key list

(** Keys written by an operation. *)
val write_keys : op -> key list

val is_update : op -> bool
val request_is_update : request -> bool

(** Sorted, de-duplicated read/write key sets of a whole request. *)
val read_set : request -> key list

val write_set : request -> key list
val pp_op : Format.formatter -> op -> unit
val pp_request : Format.formatter -> request -> unit
