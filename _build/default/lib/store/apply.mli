(** Executing transaction operations against a replica's store (the EX
    phase of the functional model).

    Execution records the versions read and written so the global history
    can be checked for 1-copy serializability, and produces the writeset
    that eager/lazy protocols propagate to the other copies. *)

type result = {
  reads : (Operation.key * int * int) list;  (** key, value, version read *)
  writes : (Operation.key * int * int) list;
      (** key, value, version written *)
}

(** [execute ?choose kv ops] runs [ops] in order against [kv].
    [choose] resolves each [Write_random] operation (default: the constant
    0, which makes execution deterministic). *)
val execute :
  ?choose:(Operation.key -> int) -> Kv.t -> Operation.op list -> result

(** Install a writeset produced elsewhere, version numbers included. *)
val apply_writes : Kv.t -> (Operation.key * int * int) list -> unit

val empty : result
val merge : result -> result -> result
