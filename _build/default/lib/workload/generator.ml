(** Transaction generator: zipfian key choice, configurable update mix.
    Updates are read-modify-writes ([Incr]) so that every update creates a
    real conflict on its item — the worst case the paper's techniques are
    designed around. *)

type t = { spec : Spec.t; rng : Sim.Rng.t; sampler : Sim.Rng.Zipf.sampler }

let create ?(seed = 42) spec =
  {
    spec;
    rng = Sim.Rng.create ~seed;
    sampler = Sim.Rng.Zipf.make ~n:spec.Spec.n_keys ~theta:spec.Spec.key_skew;
  }

let key t = Printf.sprintf "k%04d" (Sim.Rng.Zipf.draw t.rng t.sampler)

let operation t ~update =
  if update then Store.Operation.Incr (key t, 1) else Store.Operation.Read (key t)

(** One transaction for [client]. A transaction is all-update or all-read
    (the usual OLTP mix model). *)
let request t ~client =
  let update = Sim.Rng.float t.rng 1.0 < t.spec.Spec.update_ratio in
  let ops =
    List.init t.spec.Spec.ops_per_txn (fun _ -> operation t ~update)
  in
  (update, Store.Operation.request ~client ops)
