(** Transaction generator: zipfian key choice, configurable update mix.
    Updates are read-modify-writes ([Incr]) so that every update creates
    a real conflict on its item — the worst case the paper's techniques
    are designed around. *)

type t

val create : ?seed:int -> Spec.t -> t

(** One transaction for [client]; the boolean flags whether it is an
    update transaction. A transaction is all-update or all-read (the
    usual OLTP mix model). *)
val request : t -> client:int -> bool * Store.Operation.request
