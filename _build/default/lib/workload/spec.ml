(** Workload parameters for the performance study the paper announces in
    §6 ("taking into account different workloads and failures
    assumptions"). *)

type t = {
  n_keys : int;  (** size of the logical database *)
  key_skew : float;  (** zipfian skew; 0.0 = uniform access *)
  update_ratio : float;  (** fraction of transactions that write *)
  ops_per_txn : int;  (** operations per transaction (§5 model when > 1) *)
  txns_per_client : int;
  think_time : Sim.Simtime.t;  (** client pause between transactions *)
}

let default =
  {
    n_keys = 100;
    key_skew = 0.6;
    update_ratio = 0.5;
    ops_per_txn = 1;
    txns_per_client = 50;
    think_time = Sim.Simtime.of_ms 1;
  }

let pp ppf t =
  Format.fprintf ppf
    "keys=%d skew=%.2f updates=%.0f%% ops/txn=%d txns/client=%d" t.n_keys
    t.key_skew (100. *. t.update_ratio) t.ops_per_txn t.txns_per_client
