lib/workload/generator.ml: List Printf Sim Spec Store
