lib/workload/spec.mli: Format Sim
