lib/workload/report.ml: Format List Printf Runner Sim Stats
