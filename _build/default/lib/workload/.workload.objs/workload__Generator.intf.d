lib/workload/generator.mli: Spec Store
