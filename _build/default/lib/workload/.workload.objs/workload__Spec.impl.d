lib/workload/spec.ml: Format Sim
