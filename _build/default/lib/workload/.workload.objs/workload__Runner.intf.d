lib/workload/runner.mli: Core Format Sim Spec Stats
