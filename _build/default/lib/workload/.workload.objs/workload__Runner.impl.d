lib/workload/runner.ml: Core Engine Format Fun Generator List Network Sim Simtime Spec Stats Store
