(** CSV export of experiment results, for plotting the performance-study
    figures outside the harness. *)

(** Header row matching {!row}. *)
val csv_header : string

(** One result as a CSV row. [label] identifies the configuration (e.g.
    "active,n=3,upd=0.5"). *)
val csv_row : label:string -> Runner.result -> string

(** Print header + rows to a formatter. *)
val to_csv : Format.formatter -> (string * Runner.result) list -> unit
