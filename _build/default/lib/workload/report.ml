let csv_header =
  "label,committed,aborted,unanswered,throughput_tps,lat_mean_ms,lat_p50_ms,\
   lat_p90_ms,lat_p99_ms,lat_max_ms,upd_lat_mean_ms,read_lat_mean_ms,\
   makespan_ms,messages,messages_per_txn,max_response_gap_ms,converged,\
   serializable"

let csv_row ~label (r : Runner.result) =
  Printf.sprintf "%s,%d,%d,%d,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%d,%.2f,%.2f,%b,%b"
    label r.committed r.aborted r.unanswered r.throughput
    r.latency_ms.Stats.mean r.latency_ms.Stats.p50 r.latency_ms.Stats.p90
    r.latency_ms.Stats.p99 r.latency_ms.Stats.max
    r.update_latency_ms.Stats.mean r.read_latency_ms.Stats.mean
    (Sim.Simtime.to_ms r.makespan)
    r.messages r.messages_per_txn
    (Sim.Simtime.to_ms r.max_response_gap)
    r.converged r.serializable

let to_csv ppf rows =
  Format.fprintf ppf "%s@." csv_header;
  List.iter
    (fun (label, result) -> Format.fprintf ppf "%s@." (csv_row ~label result))
    rows
