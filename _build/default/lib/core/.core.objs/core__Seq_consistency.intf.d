lib/core/seq_consistency.mli: Store
