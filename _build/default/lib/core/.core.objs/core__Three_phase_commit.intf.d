lib/core/three_phase_commit.mli: Group Sim
