lib/core/phase_trace.mli: Format Phase Sim
