lib/core/convergence.ml: Format List Option Store String
