lib/core/certification.ml: List Store
