lib/core/seq_consistency.ml: Array Buffer Hashtbl List Option Store
