lib/core/classify.ml: Format List Phase Technique
