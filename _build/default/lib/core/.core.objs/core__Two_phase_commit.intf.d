lib/core/two_phase_commit.mli: Sim
