lib/core/technique.ml: Format Phase Phase_trace Sim Store
