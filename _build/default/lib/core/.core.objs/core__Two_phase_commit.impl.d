lib/core/two_phase_commit.ml: Engine Group Hashtbl List Msg Network Sim Simtime
