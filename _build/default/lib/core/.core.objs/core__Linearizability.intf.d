lib/core/linearizability.mli: Sim Store
