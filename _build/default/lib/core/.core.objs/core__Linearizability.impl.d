lib/core/linearizability.ml: Array Hashtbl List Option Sim Store
