lib/core/phase.mli: Format
