lib/core/certification.mli: Store
