lib/core/reconciliation.mli: Store
