lib/core/classify.mli: Format Phase Technique
