lib/core/reconciliation.ml: Hashtbl List Option Store
