lib/core/phase.ml: Format Stdlib
