lib/core/three_phase_commit.ml: Engine Group Hashtbl List Msg Network Option Sim Simtime
