lib/core/convergence.mli: Format Store
