lib/core/phase_trace.ml: Format Hashtbl List Phase Sim
