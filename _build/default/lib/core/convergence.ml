(** Replica-state convergence checks.

    Eager techniques must leave all replicas identical at quiescence; lazy
    techniques may diverge while propagation is outstanding but must
    converge once reconciliation has drained. *)

(** [converged stores] is true when all stores hold identical snapshots. *)
let converged = function
  | [] | [ _ ] -> true
  | first :: rest -> List.for_all (Store.Kv.equal first) rest

(** Items on which two stores disagree: (key, (value, version) of a,
    (value, version) of b). *)
let diff a b =
  let sa = Store.Kv.snapshot a and sb = Store.Kv.snapshot b in
  let find k l = List.assoc_opt k l in
  let keys =
    List.sort_uniq String.compare (List.map fst sa @ List.map fst sb)
  in
  List.filter_map
    (fun k ->
      let va = Option.value ~default:(0, 0) (find k sa) in
      let vb = Option.value ~default:(0, 0) (find k sb) in
      if va = vb then None else Some (k, va, vb))
    keys

(** Number of items whose value differs between [a] and [b] — the
    staleness measure used in the eager-vs-lazy experiment. *)
let stale_items a b =
  List.length
    (List.filter (fun (_, (va, _), (vb, _)) -> va <> vb) (diff a b))

let pp_diff ppf diffs =
  List.iter
    (fun (k, (va, vera), (vb, verb)) ->
      Format.fprintf ppf "%s: %d@v%d vs %d@v%d@." k va vera vb verb)
    diffs
