(** Replica-state convergence checks.

    Eager techniques must leave all replicas identical at quiescence; lazy
    techniques may diverge while propagation is outstanding but must
    converge once reconciliation has drained. *)

(** [converged stores] is true when all stores hold identical
    (value, version) snapshots. *)
val converged : Store.Kv.t list -> bool

(** Items on which two stores disagree:
    (key, (value, version) in the first, (value, version) in the second). *)
val diff :
  Store.Kv.t ->
  Store.Kv.t ->
  (Store.Operation.key * (int * int) * (int * int)) list

(** Number of items whose {e value} differs — the staleness measure used
    by the eager-vs-lazy experiment (perf4). *)
val stale_items : Store.Kv.t -> Store.Kv.t -> int

val pp_diff :
  Format.formatter ->
  (Store.Operation.key * (int * int) * (int * int)) list ->
  unit
