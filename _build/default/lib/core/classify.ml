(** Deriving the paper's classification figures from technique metadata
    and {e observed} phase traces, so the taxonomy is checked against the
    running protocols rather than transcribed. *)

(* ---- Figure 5: replication in distributed systems ------------------- *)

(** Cells of the (failure transparency × determinism) matrix. *)
let fig5_cells infos =
  let ds =
    List.filter
      (fun (i : Technique.info) -> i.community = Technique.Distributed_systems)
      infos
  in
  let cell ~transparent ~needs_det =
    List.filter_map
      (fun (i : Technique.info) ->
        if
          i.failure_transparent = transparent
          && i.requires_determinism = needs_det
        then Some i.name
        else None)
      ds
  in
  [
    ((true, true), cell ~transparent:true ~needs_det:true);
    ((true, false), cell ~transparent:true ~needs_det:false);
    ((false, true), cell ~transparent:false ~needs_det:true);
    ((false, false), cell ~transparent:false ~needs_det:false);
  ]

(* ---- Figure 6: replication in database systems ---------------------- *)

(** Cells of the Gray et al. (propagation × ownership) matrix. *)
let fig6_cells infos =
  let db =
    List.filter
      (fun (i : Technique.info) -> i.community = Technique.Databases)
      infos
  in
  let cell ~propagation ~ownership =
    List.filter_map
      (fun (i : Technique.info) ->
        if i.propagation = propagation && i.ownership = ownership then
          Some i.name
        else None)
      db
  in
  [
    ((Technique.Eager, Technique.Primary), cell ~propagation:Eager ~ownership:Primary);
    ( (Technique.Eager, Technique.Update_everywhere),
      cell ~propagation:Eager ~ownership:Update_everywhere );
    ((Technique.Lazy, Technique.Primary), cell ~propagation:Lazy ~ownership:Primary);
    ( (Technique.Lazy, Technique.Update_everywhere),
      cell ~propagation:Lazy ~ownership:Update_everywhere );
  ]

(* ---- Figure 15: possible combinations of phases --------------------- *)

(** Distinct phase signatures among the observed ones, de-duplicated,
    strong-consistency techniques only (that is what Figure 15 shows). *)
let fig15_combinations observed =
  List.fold_left
    (fun acc seq -> if List.mem seq acc then acc else acc @ [ seq ])
    [] observed

(** The paper's claim below Figure 15: every strong-consistency technique
    has an SC and/or AC step before END. *)
let has_sync_before_response seq =
  let rec scan = function
    | [] -> false
    | Phase.Response :: _ -> false
    | (Phase.Server_coordination | Phase.Agreement_coordination) :: _ -> true
    | _ :: rest -> scan rest
  in
  scan seq

(* ---- Figure 16: synthetic view of approaches ------------------------ *)

type synthetic_row = {
  technique : string;
  observed : Phase.t list;  (** signature observed in execution *)
  expected : Phase.t list;  (** the paper's row *)
  matches : bool;
  strong : bool;
}

let synthetic_rows pairs =
  List.map
    (fun ((info : Technique.info), observed) ->
      {
        technique = info.name;
        observed;
        expected = info.expected_phases;
        matches = observed = info.expected_phases;
        strong = info.strong_consistency;
      })
    pairs

let pp_synthetic ppf rows =
  Format.fprintf ppf "%-42s %-22s %-22s %s@." "Technique" "Observed" "Paper"
    "Consistency";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-42s %-22s %-22s %s%s@." r.technique
        (Format.asprintf "%a" Phase.pp_sequence r.observed)
        (Format.asprintf "%a" Phase.pp_sequence r.expected)
        (if r.strong then "strong" else "weak")
        (if r.matches then "" else "  <-- MISMATCH"))
    rows
