(** Certification of optimistically-executed transactions
    (paper §5.4.2, [KA98]).

    In certification-based replication a transaction executes on shadow
    copies at one site; its readset (with the versions read) and writeset
    are then atomically broadcast. Upon delivery, {e every} replica runs
    the same deterministic test against its local copies: the transaction
    commits iff no item it read has been overwritten by a transaction that
    certified earlier in the total order. Because all replicas evaluate the
    same test in the same ABCAST order against identically-evolving
    copies, they reach the same verdict without an extra agreement round —
    which is why the technique has no separate AC phase in Figure 16. *)

(** [certify kv ~reads] is [true] when every version in [reads] is still
    the current version of the item in [kv]. *)
let certify kv ~reads =
  List.for_all
    (fun (key, version) -> Store.Kv.version kv key = version)
    reads

(** Writesets certified against a store, applied in delivery order. Keeps
    commit/abort counters (abort rate is part of the promised performance
    study). *)
type t = { kv : Store.Kv.t; mutable committed : int; mutable aborted : int }

let create kv = { kv; committed = 0; aborted = 0 }

(** [offer t ~reads ~writes] certifies and, on success, applies, assigning
    fresh version numbers in certification order (all replicas certify in
    the same ABCAST order against identical stores, so the numbering
    agrees everywhere). Returns [Some installed_writes] on commit, [None]
    on abort. *)
let offer t ~reads ~writes =
  if certify t.kv ~reads then begin
    let installed =
      List.map
        (fun (k, value, _delegate_version) ->
          let version = Store.Kv.write t.kv k value in
          (k, value, version))
        writes
    in
    t.committed <- t.committed + 1;
    Some installed
  end
  else begin
    t.aborted <- t.aborted + 1;
    None
  end

let committed t = t.committed
let aborted t = t.aborted
