(** Reconciliation for lazy update-everywhere replication (paper §4.6).

    Replicas commit locally and propagate writesets only after the fact,
    so two sites may commit conflicting transactions concurrently: the
    copies are then "not only stale but inconsistent". The paper's
    "straightforward solution in the case of our simple model" is adopted
    here: run an atomic broadcast and determine the {e after-commit order}
    from its delivery order. Every replica applies writesets in that
    order, re-versioning writes with a shared counter, so all copies
    converge to identical (value, version) pairs. The loser of a conflict
    is the transaction delivered earlier (its write is overwritten — a
    transaction "that must be undone"); conflicts are counted when a
    delivered foreign writeset overlaps a local commit that has not yet
    been delivered. *)

type t = {
  kv : Store.Kv.t;
  (* Per-item version counter advancing in after-commit order — identical
     at every replica because deliveries are totally ordered. *)
  next_version : (Store.Operation.key, int) Hashtbl.t;
  (* Local commits whose writesets have not yet come back through the
     after-commit order, in commit order. *)
  mutable outstanding : (int * (Store.Operation.key * int * int) list) list;
  mutable applied : int;
  mutable conflicts : int;
}

let create kv =
  {
    kv;
    next_version = Hashtbl.create 32;
    outstanding = [];
    applied = 0;
    conflicts = 0;
  }

let bump t k =
  let v = 1 + Option.value ~default:0 (Hashtbl.find_opt t.next_version k) in
  Hashtbl.replace t.next_version k v;
  v

(** Register a transaction committed locally at this replica, awaiting its
    slot in the after-commit order. *)
let local_commit t ~tid ~writes = t.outstanding <- t.outstanding @ [ (tid, writes) ]

(** Apply one transaction's writeset in after-commit (ABCAST delivery)
    order. The delivery order is authoritative for the replicated prefix;
    local commits still awaiting their slot are newer than anything
    delivered, so their values are re-applied on top (a replica never sees
    its own committed state regress). Returns the re-versioned writes. *)
let deliver t ~tid ~writes =
  t.applied <- t.applied + 1;
  let local = List.mem_assoc tid t.outstanding in
  t.outstanding <- List.remove_assoc tid t.outstanding;
  if not local then begin
    (* A foreign transaction conflicts with any outstanding local commit
       touching the same items: one of the two must be undone. *)
    let keys = List.map (fun (k, _, _) -> k) writes in
    let clash =
      List.exists
        (fun (_, local_writes) ->
          List.exists (fun (k, _, _) -> List.mem k keys) local_writes)
        t.outstanding
    in
    if clash then t.conflicts <- t.conflicts + 1
  end;
  let installed =
    List.map
      (fun (k, value, _local_version) ->
        let version = bump t k in
        Store.Kv.force t.kv k ~value ~version;
        (k, value, version))
      writes
  in
  (* Outstanding local commits win locally until globally ordered. *)
  List.iter
    (fun (_, local_writes) ->
      List.iter
        (fun (k, value, _) ->
          let current = Option.value ~default:0 (Hashtbl.find_opt t.next_version k) in
          Store.Kv.force t.kv k ~value ~version:current)
        local_writes)
    t.outstanding;
  installed

let applied t = t.applied
let conflicts t = t.conflicts
let outstanding_count t = List.length t.outstanding
