(** Reconciliation for lazy update-everywhere replication (paper §4.6).

    Replicas commit locally and propagate writesets only after the fact,
    so two sites may commit conflicting transactions concurrently: the
    copies are then "not only stale but inconsistent". The paper's
    "straightforward solution in the case of our simple model" is adopted
    here: run an atomic broadcast and determine the {e after-commit
    order} from its delivery order. Every replica applies writesets in
    that order with a shared re-versioning counter, so all copies
    converge; local commits still awaiting their slot stay visible
    locally (a replica never sees its own committed state regress). The
    loser of a conflict is the transaction delivered earlier — a
    transaction "that must be undone". *)

type t

val create : Store.Kv.t -> t

(** Register a transaction committed locally at this replica, awaiting
    its slot in the after-commit order. *)
val local_commit :
  t -> tid:int -> writes:(Store.Operation.key * int * int) list -> unit

(** Apply one transaction's writeset in after-commit (ABCAST delivery)
    order; returns the writes as re-versioned. A foreign writeset that
    overlaps an outstanding local commit counts as one conflict. *)
val deliver :
  t ->
  tid:int ->
  writes:(Store.Operation.key * int * int) list ->
  (Store.Operation.key * int * int) list

val applied : t -> int
val conflicts : t -> int
val outstanding_count : t -> int
