(** The five generic phases of the abstract replication protocol
    (paper §2.2, Figure 1). Techniques are compared by the order in which
    they pass through these phases — skipping, merging or looping some of
    them (Figure 16). *)

type t =
  | Request  (** RE: the client submits an operation *)
  | Server_coordination  (** SC: replicas synchronise/order the operation *)
  | Execution  (** EX: the operation is executed *)
  | Agreement_coordination  (** AC: replicas agree on the result *)
  | Response  (** END: the outcome is transmitted back to the client *)

(** All five phases in canonical order. *)
val all : t list

(** Short code as used in the paper's figures: RE, SC, EX, AC, END. *)
val code : t -> string

val long_name : t -> string
val of_code : string -> t option
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Print a phase sequence, space-separated (a Figure 16 row). *)
val pp_sequence : Format.formatter -> t list -> unit
