(** The five generic phases of the abstract replication protocol
    (paper §2.2, Figure 1). *)

type t =
  | Request  (** RE: the client submits an operation *)
  | Server_coordination  (** SC: replicas synchronise/order the operation *)
  | Execution  (** EX: the operation is executed *)
  | Agreement_coordination  (** AC: replicas agree on the result *)
  | Response  (** END: the outcome is transmitted back to the client *)

let all =
  [ Request; Server_coordination; Execution; Agreement_coordination; Response ]

let code = function
  | Request -> "RE"
  | Server_coordination -> "SC"
  | Execution -> "EX"
  | Agreement_coordination -> "AC"
  | Response -> "END"

let long_name = function
  | Request -> "Client Request"
  | Server_coordination -> "Server Coordination"
  | Execution -> "Execution"
  | Agreement_coordination -> "Agreement Coordination"
  | Response -> "Client Response"

let of_code = function
  | "RE" -> Some Request
  | "SC" -> Some Server_coordination
  | "EX" -> Some Execution
  | "AC" -> Some Agreement_coordination
  | "END" -> Some Response
  | _ -> None

let compare = Stdlib.compare
let equal = Stdlib.( = )
let pp ppf t = Format.pp_print_string ppf (code t)

let pp_sequence ppf seq =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
    pp ppf seq
