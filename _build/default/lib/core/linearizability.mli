(** Linearizability checker (paper §2.2; Herlihy–Wing, checked with the
    Wing–Gong algorithm).

    Takes a complete history of register operations with real-time
    invocation/response intervals and decides whether some linearization
    exists: a total order that respects real time (if op A responded
    before op B was invoked, A orders first) in which every read returns
    the value of the latest preceding write (or the initial value 0).

    Linearizability is local (composable), so each key is checked
    independently. The distributed-systems techniques of the paper
    (active, passive, semi-active, semi-passive) must all pass this. *)

type kind = Read of int  (** value returned *) | Write of int

type op = {
  key : Store.Operation.key;
  kind : kind;
  invoked : Sim.Simtime.t;
  responded : Sim.Simtime.t;
}

(** [check ops] decides linearizability of the complete history [ops].
    Histories of a few hundred operations per key are fine; the search is
    exponential in the worst case but memoised. *)
val check : op list -> bool

(** Check a single key's sub-history. *)
val check_key : op list -> bool
