(** Three-phase commit — the {e non-blocking} atomic commitment protocol
    (Skeen), included as the distributed-systems counterpart to the
    blocking {!Two_phase_commit} the databases accept (paper §2.1:
    "database protocols are blocking ... distributed systems usually look
    for non-blocking protocols").

    The coordinator first collects votes (as in 2PC), then disseminates a
    PRE-COMMIT and waits for acknowledgements before the final COMMIT.
    The extra round buys crash resilience: no participant can commit while
    another is still {e uncertain} (has not seen the pre-commit), so when
    the coordinator crashes the survivors can always finish on their own —
    a recovery coordinator (the lowest alive participant, per the failure
    detector) polls the survivors' states and decides:

    - some participant committed or pre-committed → COMMIT everywhere;
    - otherwise (all uncertain or aborted) → ABORT everywhere.

    Safe under crash-stop failures with accurate detection (no partitions
    — the classic 3PC caveat). Costs three rounds instead of two; the
    trade-off is quantified in ablation abl8. *)

type decision = Commit | Abort

type group

val create_group :
  Sim.Network.t ->
  nodes:int list ->
  ?fd:Group.Fd.group ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  ?decision_timeout:Sim.Simtime.t ->
  vote:(me:int -> txn:int -> bool) ->
  learn:(me:int -> txn:int -> decision -> unit) ->
  unit ->
  group

(** Run one 3PC round. [on_complete] fires at the node that decides —
    normally the coordinator, or the recovery coordinator after a crash. *)
val start :
  group ->
  coordinator:int ->
  participants:int list ->
  txn:int ->
  on_complete:(decision -> unit) ->
  unit

val commits : group -> int
val aborts : group -> int
