(** Certification of optimistically-executed transactions
    (paper §5.4.2, [KA98]).

    In certification-based replication a transaction executes on shadow
    copies at one site; its readset (with the versions read) and writeset
    are then atomically broadcast. Upon delivery, {e every} replica runs
    the same deterministic test against its local copies: the transaction
    commits iff no item it read has been overwritten by a transaction
    certified earlier in the total order. Because all replicas evaluate
    the same test in the same ABCAST order against identically-evolving
    copies, they reach the same verdict without an extra agreement
    round — which is why the technique has no separate AC phase in
    Figure 16. *)

(** [certify kv ~reads] is [true] when every version in [reads] is still
    the current version of the item in [kv]. *)
val certify : Store.Kv.t -> reads:(Store.Operation.key * int) list -> bool

(** Stateful certifier over one replica's store, with commit/abort
    counters (the abort rate is part of the §6 performance study). *)
type t

val create : Store.Kv.t -> t

(** [offer t ~reads ~writes] certifies and, on success, applies the
    writeset with fresh version numbers assigned in certification order
    (identical at every replica, since all certify in the same ABCAST
    order against identical stores). [Some installed_writes] on commit,
    [None] on abort. *)
val offer :
  t ->
  reads:(Store.Operation.key * int) list ->
  writes:(Store.Operation.key * int * int) list ->
  (Store.Operation.key * int * int) list option

val committed : t -> int
val aborted : t -> int
