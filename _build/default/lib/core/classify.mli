(** Deriving the paper's classification figures from technique metadata
    and {e observed} phase traces, so the taxonomy is checked against the
    running protocols rather than transcribed.

    Figure 5 classifies the distributed-systems techniques by failure
    transparency × determinism requirement; Figure 6 is Gray et al.'s
    propagation × ownership matrix for databases; Figure 15 enumerates
    the possible phase combinations of strong-consistency techniques;
    Figure 16 is the synthetic per-technique table. *)

(** Cells of the Figure 5 matrix, keyed by
    (failure_transparent, requires_determinism). *)
val fig5_cells : Technique.info list -> ((bool * bool) * string list) list

(** Cells of the Figure 6 matrix, keyed by (propagation, ownership). *)
val fig6_cells :
  Technique.info list ->
  ((Technique.propagation * Technique.ownership) * string list) list

(** Distinct phase signatures among the observed ones, first-seen order. *)
val fig15_combinations : Phase.t list list -> Phase.t list list

(** The paper's claim below Figure 15: strong consistency requires an SC
    and/or AC step before END. *)
val has_sync_before_response : Phase.t list -> bool

type synthetic_row = {
  technique : string;
  observed : Phase.t list;  (** signature observed in execution *)
  expected : Phase.t list;  (** the paper's Figure 16 row *)
  matches : bool;
  strong : bool;
}

val synthetic_rows :
  (Technique.info * Phase.t list) list -> synthetic_row list

val pp_synthetic : Format.formatter -> synthetic_row list -> unit
