type mark = {
  rid : int;
  phase : Phase.t;
  replica : int option;
  time : Sim.Simtime.t;
  note : string;
}

type t = { by_rid : (int, mark list ref) Hashtbl.t; mutable rev_rids : int list }

let create () = { by_rid = Hashtbl.create 64; rev_rids = [] }

let mark t ~rid ?replica ?(note = "") phase time =
  let cell =
    match Hashtbl.find_opt t.by_rid rid with
    | Some cell -> cell
    | None ->
        let cell = ref [] in
        Hashtbl.replace t.by_rid rid cell;
        t.rev_rids <- rid :: t.rev_rids;
        cell
  in
  cell := { rid; phase; replica; time; note } :: !cell

let marks t ~rid =
  match Hashtbl.find_opt t.by_rid rid with
  | None -> []
  | Some cell -> List.rev !cell

let sequence t ~rid =
  let ms = marks t ~rid in
  let rec collapse = function
    | a :: (b :: _ as rest) ->
        if Phase.equal a.phase b.phase then collapse rest
        else a.phase :: collapse rest
    | [ a ] -> [ a.phase ]
    | [] -> []
  in
  collapse ms

let signature t ~rid =
  let seq = sequence t ~rid in
  List.fold_left
    (fun acc p -> if List.exists (Phase.equal p) acc then acc else acc @ [ p ])
    [] seq

let rids t = List.rev t.rev_rids
let clear t =
  Hashtbl.reset t.by_rid;
  t.rev_rids <- []

let pp_marks ppf ms =
  List.iter
    (fun m ->
      let replica =
        match m.replica with None -> "client" | Some r -> "replica " ^ string_of_int r
      in
      Format.fprintf ppf "%8s  %-3s  %-10s %s@."
        (Sim.Simtime.to_string m.time)
        (Phase.code m.phase) replica m.note)
    ms
