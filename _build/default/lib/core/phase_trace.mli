(** Per-request phase traces.

    Every protocol implementation marks the start of each functional-model
    phase as it processes a request. Figures 1–4 and 7–16 of the paper are
    regenerated from these marks, and the tests check each technique's
    observed phase sequence against the paper's synthetic view
    (Figure 16). *)

type mark = {
  rid : int;  (** request id *)
  phase : Phase.t;
  replica : int option;  (** None when it is a client-side event *)
  time : Sim.Simtime.t;
  note : string;
}

type t

val create : unit -> t

val mark :
  t ->
  rid:int ->
  ?replica:int ->
  ?note:string ->
  Phase.t ->
  Sim.Simtime.t ->
  unit

(** All marks of a request, in chronological (recording) order. *)
val marks : t -> rid:int -> mark list

(** The request's phase sequence: phases ordered by first occurrence.
    A second occurrence after a different phase (the §5 per-operation
    loops) appears again. Consecutive duplicates are collapsed. *)
val sequence : t -> rid:int -> Phase.t list

(** Like [sequence] but collapsing any repetition, giving the canonical
    Figure-16 row (first occurrence order only). *)
val signature : t -> rid:int -> Phase.t list

val rids : t -> int list
val clear : t -> unit
val pp_marks : Format.formatter -> mark list -> unit
