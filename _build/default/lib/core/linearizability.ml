type kind = Read of int | Write of int

type op = {
  key : Store.Operation.key;
  kind : kind;
  invoked : Sim.Simtime.t;
  responded : Sim.Simtime.t;
}

(* Wing–Gong style search: repeatedly pick a "minimal" remaining operation
   (one whose invocation precedes every remaining response) and try to
   linearize it next; a read is admissible only if it returns the current
   register value. Memoised on (remaining set, register value). *)
let check_key ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  if n > 62 then
    invalid_arg "Linearizability.check_key: more than 62 ops per key";
  let full_mask = if n = 0 then 0 else (1 lsl n) - 1 in
  let memo = Hashtbl.create 1024 in
  let rec search remaining value =
    if remaining = 0 then true
    else
      let key = (remaining, value) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          (* Earliest response among remaining ops bounds which operations
             may linearize next. *)
          let min_response = ref Sim.Simtime.infinity in
          for i = 0 to n - 1 do
            if remaining land (1 lsl i) <> 0 then
              min_response := Sim.Simtime.min !min_response arr.(i).responded
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let bit = 1 lsl !i in
            if
              remaining land bit <> 0
              && Sim.Simtime.(arr.(!i).invoked <= !min_response)
            then begin
              match arr.(!i).kind with
              | Write w -> if search (remaining lxor bit) w then ok := true
              | Read r ->
                  if r = value && search (remaining lxor bit) value then
                    ok := true
            end;
            incr i
          done;
          Hashtbl.replace memo key !ok;
          !ok
  in
  search full_mask 0

let check ops =
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun op ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_key op.key) in
      Hashtbl.replace by_key op.key (op :: cur))
    ops;
  Hashtbl.fold (fun _ key_ops acc -> acc && check_key (List.rev key_ops)) by_key true
