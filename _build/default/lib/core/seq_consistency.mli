(** Sequential-consistency checker (paper §2.2, [AW94]).

    Sequential consistency requires some total order of all operations
    that (a) respects each process's program order and (b) makes every
    read return the latest preceding write. Unlike linearizability it
    ignores real time, so it is strictly weaker — the paper notes it
    "allows, under some conditions, to read old values", which is also
    why it is not composable and must be checked over all keys at once. *)

type op = Read of Store.Operation.key * int | Write of Store.Operation.key * int

(** [check histories] — one operation list per process, in program order.
    Exponential in the worst case (memoised); intended for test-sized
    histories. *)
val check : op list list -> bool
