type op = Read of Store.Operation.key * int | Write of Store.Operation.key * int

let check histories =
  let procs = Array.of_list (List.map Array.of_list histories) in
  let n = Array.length procs in
  let memo = Hashtbl.create 1024 in
  (* State: per-process next-op indices plus current store contents. *)
  let encode indices store =
    let buf = Buffer.create 32 in
    Array.iter (fun i -> Buffer.add_string buf (string_of_int i ^ ",")) indices;
    List.iter
      (fun (k, v) -> Buffer.add_string buf (k ^ "=" ^ string_of_int v ^ ";"))
      (List.sort compare store);
    Buffer.contents buf
  in
  let read store k = Option.value ~default:0 (List.assoc_opt k store) in
  let rec search indices store =
    let all_done = ref true in
    Array.iteri
      (fun p i -> if i < Array.length procs.(p) then all_done := false)
      indices;
    if !all_done then true
    else
      let key = encode indices store in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          let ok = ref false in
          let p = ref 0 in
          while (not !ok) && !p < n do
            let i = indices.(!p) in
            if i < Array.length procs.(!p) then begin
              match procs.(!p).(i) with
              | Write (k, v) ->
                  let indices' = Array.copy indices in
                  indices'.(!p) <- i + 1;
                  if search indices' ((k, v) :: List.remove_assoc k store) then
                    ok := true
              | Read (k, v) ->
                  if read store k = v then begin
                    let indices' = Array.copy indices in
                    indices'.(!p) <- i + 1;
                    if search indices' store then ok := true
                  end
            end;
            incr p
          done;
          Hashtbl.replace memo key !ok;
          !ok
  in
  search (Array.make n 0) []
