(** All implemented techniques, for the benches, the CLI and the tests
    that sweep the whole taxonomy. Order follows Figure 16. *)

type factory =
  Sim.Network.t ->
  replicas:int list ->
  clients:int list ->
  Core.Technique.instance

(** (cli key, classification metadata, constructor with default
    configuration), one entry per technique. *)
val all : (string * Core.Technique.info * factory) list

val find : string -> (string * Core.Technique.info * factory) option
val keys : string list
val infos : Core.Technique.info list
