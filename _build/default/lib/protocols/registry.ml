(** All implemented techniques, for the benches, the CLI and the tests
    that sweep the whole taxonomy. Order follows Figure 16. *)

type factory =
  Sim.Network.t -> replicas:int list -> clients:int list -> Core.Technique.instance

(** [all] lists (key, info, factory) with default configurations. The key
    is the CLI/bench identifier. *)
let all : (string * Core.Technique.info * factory) list =
  [
    ( "active",
      Active.info,
      fun net ~replicas ~clients -> Active.create net ~replicas ~clients () );
    ( "passive",
      Passive.info,
      fun net ~replicas ~clients -> Passive.create net ~replicas ~clients () );
    ( "semi-active",
      Semi_active.info,
      fun net ~replicas ~clients -> Semi_active.create net ~replicas ~clients ()
    );
    ( "semi-passive",
      Semi_passive.info,
      fun net ~replicas ~clients ->
        Semi_passive.create net ~replicas ~clients () );
    ( "eager-primary",
      Eager_primary.info,
      fun net ~replicas ~clients ->
        Eager_primary.create net ~replicas ~clients () );
    ( "eager-ue-locking",
      Eager_ue_locking.info,
      fun net ~replicas ~clients ->
        Eager_ue_locking.create net ~replicas ~clients () );
    ( "eager-ue-abcast",
      Eager_ue_abcast.info,
      fun net ~replicas ~clients ->
        Eager_ue_abcast.create net ~replicas ~clients () );
    ( "lazy-primary",
      Lazy_primary.info,
      fun net ~replicas ~clients -> Lazy_primary.create net ~replicas ~clients ()
    );
    ( "lazy-ue",
      Lazy_ue.info,
      fun net ~replicas ~clients -> Lazy_ue.create net ~replicas ~clients () );
    ( "certification",
      Certification_based.info,
      fun net ~replicas ~clients ->
        Certification_based.create net ~replicas ~clients () );
  ]

let find key =
  List.find_opt (fun (k, _, _) -> String.equal k key) all

let keys = List.map (fun (k, _, _) -> k) all
let infos = List.map (fun (_, i, _) -> i) all
