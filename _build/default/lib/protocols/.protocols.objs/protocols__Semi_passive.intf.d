lib/protocols/semi_passive.mli: Core Sim
