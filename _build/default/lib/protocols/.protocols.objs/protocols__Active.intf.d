lib/protocols/active.mli: Core Group Sim
