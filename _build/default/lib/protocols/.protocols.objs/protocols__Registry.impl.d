lib/protocols/registry.ml: Active Certification_based Core Eager_primary Eager_ue_abcast Eager_ue_locking Lazy_primary Lazy_ue List Passive Semi_active Semi_passive Sim String
