lib/protocols/semi_active.mli: Core Group Sim
