lib/protocols/registry.mli: Core Sim
