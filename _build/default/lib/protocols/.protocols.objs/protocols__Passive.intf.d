lib/protocols/passive.mli: Core Sim
