lib/protocols/lazy_ue.mli: Core Group Sim
