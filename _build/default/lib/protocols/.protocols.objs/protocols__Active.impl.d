lib/protocols/active.ml: Common Core Group List Msg Sim Store
