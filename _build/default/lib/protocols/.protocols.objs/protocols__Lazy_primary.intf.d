lib/protocols/lazy_primary.mli: Core Sim
