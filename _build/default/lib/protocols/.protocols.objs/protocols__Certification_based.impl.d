lib/protocols/certification_based.ml: Common Core Engine Group Hashtbl List Msg Network Sim Simtime Store
