lib/protocols/eager_ue_locking.ml: Array Common Core Engine Group Hashtbl Int List Msg Network Option Sim Simtime Store
