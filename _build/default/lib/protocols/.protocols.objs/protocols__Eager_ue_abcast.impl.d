lib/protocols/eager_ue_abcast.ml: Common Core Group Hashtbl List Msg Network Sim Simtime Store
