lib/protocols/lazy_ue.ml: Common Core Engine Group Hashtbl List Msg Network Sim Simtime Store
