lib/protocols/semi_passive.ml: Common Core Engine Group Hashtbl List Msg Network Sim Simtime Store
