lib/protocols/eager_primary.mli: Core Sim
