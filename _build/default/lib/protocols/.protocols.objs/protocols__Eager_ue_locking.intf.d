lib/protocols/eager_ue_locking.mli: Core Sim
