lib/protocols/certification_based.mli: Core Group Sim
