lib/protocols/common.ml: Core Engine Hashtbl Int List Msg Network Rng Sim Store
