lib/protocols/eager_ue_abcast.mli: Core Group Sim
