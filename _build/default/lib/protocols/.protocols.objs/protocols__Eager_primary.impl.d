lib/protocols/eager_primary.ml: Common Core Group Hashtbl Int List Msg Network Option Sim Simtime Store
