lib/protocols/lazy_primary.ml: Common Core Engine Group Hashtbl List Msg Network Sim Simtime Store
