lib/protocols/semi_active.ml: Common Core Engine Group Hashtbl List Msg Network Option Sim Simtime Store String
