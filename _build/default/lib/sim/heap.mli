(** Mutable binary min-heap, ordered by a user-supplied comparison. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** Smallest element, or [None] when empty. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element. *)
val pop : 'a t -> 'a option

val clear : 'a t -> unit

(** Iterate over elements in unspecified order. *)
val iter : 'a t -> ('a -> unit) -> unit
