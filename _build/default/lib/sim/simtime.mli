(** Virtual time for the discrete-event simulator.

    Time is an integer number of microseconds since the start of the
    simulation. Integer time keeps runs exactly deterministic and replayable
    (no floating-point drift in event ordering). *)

type t = private int

val zero : t
val infinity : t

(** Constructors. *)

val of_us : int -> t
val of_ms : int -> t
val of_sec : float -> t

(** Accessors. *)

val to_us : t -> int
val to_ms : t -> float
val to_sec : t -> float

(** Arithmetic. [sub] saturates at [zero]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> int -> t
val div : t -> int -> t
val max : t -> t -> t
val min : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
