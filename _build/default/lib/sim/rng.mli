(** Deterministic pseudo-random number generation (splitmix64).

    Every source of randomness in the simulator flows through one of these
    generators so that a run is a pure function of its seed. *)

type t

val create : seed:int -> t

(** [split t] derives an independent generator from [t]; [t] advances. *)
val split : t -> t

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)
val range : t -> int -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

val bool : t -> bool

(** [exponential t ~mean] draws from Exp(1/mean). *)
val exponential : t -> mean:float -> float

(** [pick t arr] is a uniformly random element of [arr]. *)
val pick : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Zipfian sampler over [\[0, n)] with skew [theta] (0 = uniform). *)
module Zipf : sig
  type sampler

  val make : n:int -> theta:float -> sampler
  val draw : t -> sampler -> int
end
