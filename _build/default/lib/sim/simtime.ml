type t = int

let zero = 0
let infinity = max_int
let of_us us = us
let of_ms ms = ms * 1_000
let of_sec s = int_of_float (s *. 1_000_000.)
let to_us t = t
let to_ms t = float_of_int t /. 1_000.
let to_sec t = float_of_int t /. 1_000_000.
let add a b = if a = max_int || b = max_int then max_int else a + b
let sub a b = Stdlib.max 0 (a - b)
let mul a k = a * k
let div a k = a / k
let max = Stdlib.max
let min = Stdlib.min
let compare = Int.compare
let equal = Int.equal
let ( < ) = Stdlib.( < )
let ( <= ) = Stdlib.( <= )
let ( > ) = Stdlib.( > )
let ( >= ) = Stdlib.( >= )

let pp ppf t =
  if t = max_int then Format.fprintf ppf "+inf"
  else if t >= 1_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if t >= 1_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%dus" t

let to_string t = Format.asprintf "%a" pp t
