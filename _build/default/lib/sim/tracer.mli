(** Structured trace of simulation events.

    Protocols record labelled entries (message sends, deliveries, phase
    transitions, crashes); figures and tests are derived from the resulting
    log rather than from protocol internals. *)

type entry = {
  time : Simtime.t;
  node : int option;  (** replica id, when attributable to one *)
  label : string;  (** machine-matchable category, e.g. "abcast.deliver" *)
  info : string;  (** free-form detail *)
}

type t

val create : unit -> t

val record : t -> time:Simtime.t -> ?node:int -> label:string -> string -> unit

(** Entries in recording (= chronological) order. *)
val entries : t -> entry list

(** Entries whose label equals [label]. *)
val with_label : t -> string -> entry list

val count : t -> label:string -> int
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
