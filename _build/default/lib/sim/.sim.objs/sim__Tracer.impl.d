lib/sim/tracer.ml: Format List Simtime String
