lib/sim/rng.mli:
