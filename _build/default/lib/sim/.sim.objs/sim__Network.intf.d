lib/sim/network.mli: Engine Msg Rng Simtime Tracer
