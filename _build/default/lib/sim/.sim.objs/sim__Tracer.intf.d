lib/sim/tracer.mli: Format Simtime
