lib/sim/msg.ml:
