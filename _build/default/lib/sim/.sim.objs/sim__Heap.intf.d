lib/sim/heap.mli:
