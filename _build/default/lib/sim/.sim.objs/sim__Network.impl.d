lib/sim/network.ml: Array Engine Hashtbl List Msg Printf Rng Simtime String Tracer
