lib/sim/msg.mli:
