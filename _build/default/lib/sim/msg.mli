(** Extensible message payload type.

    Each protocol layer extends [t] with its own constructors; a node's
    handler stack pattern-matches on the constructors it owns and leaves
    the rest to lower layers (see {!Network.add_handler}). Instances of
    the same module are distinguished by an instance id carried inside
    the constructor (conventionally [gid] or [cid]). *)

type t = ..

(** Constructors used by the simulator's own tests. *)
type t += Ping of int | Pong of int
