type entry = {
  time : Simtime.t;
  node : int option;
  label : string;
  info : string;
}

type t = { mutable rev_entries : entry list; mutable size : int }

let create () = { rev_entries = []; size = 0 }

let record t ~time ?node ~label info =
  t.rev_entries <- { time; node; label; info } :: t.rev_entries;
  t.size <- t.size + 1

let entries t = List.rev t.rev_entries

let with_label t label =
  List.rev (List.filter (fun e -> String.equal e.label label) t.rev_entries)

let count t ~label =
  List.fold_left
    (fun acc e -> if String.equal e.label label then acc + 1 else acc)
    0 t.rev_entries

let clear t =
  t.rev_entries <- [];
  t.size <- 0

let pp_entry ppf e =
  let node = match e.node with None -> "-" | Some n -> string_of_int n in
  Format.fprintf ppf "%8s  n%-3s %-24s %s" (Simtime.to_string e.time) node
    e.label e.info
