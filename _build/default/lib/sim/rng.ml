type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create ~seed = { state = mix64 (Int64.of_int seed) }
let split t = { state = mix64 (next_int64 t) }

let int t bound =
  assert (bound > 0);
  (* Keep the value strictly below 2^61 so it fits OCaml's native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 3) in
  r mod bound

let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits -> [0, 1) *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (float_of_int bits /. 9007199254740992.)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

module Zipf = struct
  (* Inverse-CDF sampling from a precomputed cumulative distribution. *)
  type sampler = { cdf : float array }

  let make ~n ~theta =
    assert (n > 0);
    let weights = Array.init n (fun i -> 1.0 /. ((float_of_int (i + 1)) ** theta)) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (weights.(i) /. total);
      cdf.(i) <- !acc
    done;
    cdf.(n - 1) <- 1.0;
    { cdf }

  let draw t { cdf } =
    let u = float t 1.0 in
    let n = Array.length cdf in
    (* Binary search for the first index whose cdf exceeds u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) > u then search lo mid else search (mid + 1) hi
    in
    search 0 (n - 1)
end
