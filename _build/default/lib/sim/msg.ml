(** Extensible message payload type.

    Each protocol layer extends [t] with its own constructors; a node's
    handler stack pattern-matches on the constructors it owns and passes the
    rest down (see {!Network.add_handler}). *)

type t = ..

(* Constructors used by the simulator's own tests. *)
type t += Ping of int | Pong of int
