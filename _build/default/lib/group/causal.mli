(** Causally-ordered reliable broadcast using vector clocks: if the
    broadcast of [m] causally precedes the broadcast of [m'], no member
    delivers [m'] before [m] (paper §2.2, "from causality ... to total
    order"). *)

type t
type group

val create_group :
  Sim.Network.t ->
  members:int list ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  unit ->
  group

val handle : group -> me:int -> t
val broadcast : t -> Sim.Msg.t -> unit
val on_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Current vector clock, indexed like [members] (for tests). *)
val clock : t -> int array
