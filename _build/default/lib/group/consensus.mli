(** Chandra–Toueg ◇S consensus with a rotating coordinator.

    Solves a sequence of independently-numbered consensus instances among a
    fixed member set, tolerating [f < n/2] crashes, using the {!Fd} failure
    detector for liveness and {!Rchan} stubborn channels for lossy links.

    Guarantees per instance: {e agreement} (no two members decide
    differently), {e validity} (the decision is some member's proposal) and
    {e termination} (every correct member eventually decides, provided a
    majority is correct and the detector is eventually accurate).

    The module is a functor so that each instantiation gets its own private
    message constructors and its own value type (message batches for atomic
    broadcast, view descriptors for view-synchronous membership, ...). *)

module Make (V : sig
  type t
end) : sig
  type t
  type group

  val create_group :
    Sim.Network.t ->
    members:int list ->
    fd:Fd.group ->
    ?rto:Sim.Simtime.t ->
    ?poll_every:Sim.Simtime.t ->
    ?passthrough:bool ->
    unit ->
    group

  val handle : group -> me:int -> t

  (** [propose t ~instance v]: contribute [v] as this member's initial value
      for [instance]. At most the first proposal per member counts. *)
  val propose : t -> instance:int -> V.t -> unit

  (** [participate t ~instance]: join [instance] without contributing a
      value (the member's estimate stays ⊥ until it either adopts a
      coordinator proposal or proposes itself later). Needed by
      deferred-initial-value usages (semi-passive replication, paper
      §3.5) where only the coordinator materialises a value but a
      majority must still take part in every round. *)
  val participate : t -> instance:int -> unit

  (** [on_decide t f] calls [f ~instance v] exactly once per decided
      instance. Register before proposing. *)
  val on_decide : t -> (instance:int -> V.t -> unit) -> unit

  (** The decision of [instance], if this member has learned it. *)
  val decision : t -> instance:int -> V.t option
end
