(** Heartbeat failure detector.

    Every member multicasts heartbeats; a peer silent for [timeout] becomes
    suspected. A message from a suspected peer removes the suspicion, so in
    runs where suspicion was premature the detector behaves like an
    eventually-accurate (◇S-style) detector, which is what the
    consensus-based protocols require. *)

type t
type group

val create_group :
  Sim.Network.t ->
  members:int list ->
  ?heartbeat_every:Sim.Simtime.t ->
  ?timeout:Sim.Simtime.t ->
  unit ->
  group

(** The handle of member [me]. Raises [Not_found] for non-members. *)
val handle : group -> me:int -> t

val me : t -> int
val members : t -> int list
val suspected : t -> int -> bool

(** Members not currently suspected (always includes [me]). *)
val trusted : t -> int list

(** [on_suspect t f] calls [f peer] whenever [peer] becomes suspected. *)
val on_suspect : t -> (int -> unit) -> unit

(** [on_trust t f] calls [f peer] when a suspicion is revoked. *)
val on_trust : t -> (int -> unit) -> unit
