(** Atomic broadcast built on Chandra–Toueg consensus (the transformation of
    [HT93], which the paper cites for ABCAST): pending messages are agreed
    upon in numbered batches; batch [k] is delivered, in a deterministic
    order, once consensus instance [k] decides.

    Tolerates [f < n/2] member crashes and message loss, including crashes
    of the member that initiated a broadcast. Clients listed in [clients]
    may inject broadcasts without being members (paper §4.4.2: the client
    sends to one server which forwards to all — here the forwarding is the
    stubborn multicast of the injection). *)

type t
type group

val create_group :
  Sim.Network.t ->
  members:int list ->
  ?clients:int list ->
  ?fd:Fd.group ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  unit ->
  group

val handle : group -> me:int -> t

(** Broadcast from a member. *)
val broadcast : t -> Sim.Msg.t -> unit

(** Broadcast from a non-member client declared in [clients]. *)
val broadcast_from : group -> src:int -> Sim.Msg.t -> unit

(** Total-order delivery callback ([origin] is the injecting node). *)
val on_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Optimistic delivery in spontaneous receipt order (see
    {!Abcast_seq.on_opt_deliver}). *)
val on_opt_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Ids (origin, per-origin seq) delivered so far, oldest first (tests). *)
val delivered : t -> (int * int) list

(** Ids optimistically delivered so far, in spontaneous order. *)
val opt_delivered : t -> (int * int) list
