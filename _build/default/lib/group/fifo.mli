(** FIFO-ordered reliable broadcast: if a member broadcasts [m] before [m'],
    no member delivers [m'] before [m] (paper §3.1). *)

type t
type group

val create_group :
  Sim.Network.t ->
  members:int list ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  unit ->
  group

val handle : group -> me:int -> t
val broadcast : t -> Sim.Msg.t -> unit
val on_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit
