lib/group/view.mli: Format
