lib/group/rchan.mli: Sim
