lib/group/fifo.mli: Sim
