lib/group/abcast.ml: Abcast_ct Abcast_seq
