lib/group/causal.ml: Array Hashtbl List Msg Rbcast Sim
