lib/group/abcast_seq.ml: Engine Fd Hashtbl Int List Msg Network Rchan Set Sim Simtime
