lib/group/abcast_ct.ml: Consensus Engine Fd Hashtbl Int List Msg Network Rchan Sim Simtime
