lib/group/rbcast.mli: Sim
