lib/group/view.ml: Format Int List String
