lib/group/fifo.ml: Hashtbl List Msg Option Rbcast Sim
