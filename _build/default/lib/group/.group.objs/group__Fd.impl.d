lib/group/fd.ml: Engine Hashtbl Int List Msg Network Set Sim Simtime Tracer
