lib/group/causal.mli: Sim
