lib/group/fd.mli: Sim
