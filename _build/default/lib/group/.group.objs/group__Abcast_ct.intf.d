lib/group/abcast_ct.mli: Fd Sim
