lib/group/abcast.mli: Fd Sim
