lib/group/vscast.mli: Fd Sim View
