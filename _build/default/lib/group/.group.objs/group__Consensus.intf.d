lib/group/consensus.mli: Fd Sim
