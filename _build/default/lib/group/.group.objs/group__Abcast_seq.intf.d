lib/group/abcast_seq.mli: Fd Sim
