lib/group/consensus.ml: Array Engine Fd Hashtbl Int List Msg Network Rchan Set Sim Simtime
