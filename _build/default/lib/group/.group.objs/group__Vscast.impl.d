lib/group/vscast.ml: Consensus Engine Fd Format Hashtbl Int List Msg Network Option Rchan Set Sim Simtime Tracer View
