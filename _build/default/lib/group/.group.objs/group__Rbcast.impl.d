lib/group/rbcast.ml: Hashtbl List Msg Rchan Sim
