lib/group/rchan.ml: Engine Hashtbl List Msg Network Sim Simtime
