(** Reliable broadcast.

    Guarantees {e validity} (a correct sender's message is delivered),
    {e agreement} (if any correct member delivers a message, all correct
    members do — achieved by relaying on first delivery) and {e integrity}
    (at-most-once delivery). No ordering guarantee. *)

type t
type group

val create_group :
  Sim.Network.t ->
  members:int list ->
  ?rto:Sim.Simtime.t ->
  ?passthrough:bool ->
  unit ->
  group

val handle : group -> me:int -> t

(** Broadcast to the whole group, including the sender itself. *)
val broadcast : t -> Sim.Msg.t -> unit

val on_deliver : t -> (origin:int -> Sim.Msg.t -> unit) -> unit

(** Per-origin sequence number of the last message broadcast by [me]. *)
val last_seq : t -> int
