(** Stubborn point-to-point channels: retransmit until acknowledged,
    deduplicate on delivery.

    All higher group-communication layers send through these channels so
    that message loss never violates their guarantees. When the run is known
    to be loss-free, [passthrough:true] skips acks and retransmission, which
    keeps message counts equal to the protocol-level pattern (used by the
    benches that reproduce the paper's message diagrams). *)

type t
type group

val create_group :
  Sim.Network.t ->
  nodes:int list ->
  ?rto:Sim.Simtime.t ->
  ?max_retries:int ->
  ?passthrough:bool ->
  unit ->
  group

val handle : group -> me:int -> t
val send : t -> dst:int -> Sim.Msg.t -> unit
val mcast : t -> dsts:int list -> Sim.Msg.t -> unit

(** Delivery callback; each payload is delivered at most once per receiver. *)
val on_deliver : t -> (src:int -> Sim.Msg.t -> unit) -> unit
