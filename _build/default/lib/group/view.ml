(** A group view: the composition of the group as perceived at some time
    (paper §3.1). Views are installed in sequence v0, v1, ... *)

type t = { id : int; members : int list }

let initial members = { id = 0; members = List.sort_uniq Int.compare members }

let next view ~members =
  { id = view.id + 1; members = List.sort_uniq Int.compare members }

let is_member view node = List.mem node view.members
let size view = List.length view.members

let pp ppf { id; members } =
  Format.fprintf ppf "v%d{%s}" id
    (String.concat "," (List.map string_of_int members))

let equal a b = a.id = b.id && a.members = b.members
