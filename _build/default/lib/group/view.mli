(** A group view: the composition of the group as perceived at some time
    (paper §3.1). Views are installed in sequence [v0, v1, ...]; members
    are kept sorted. *)

type t = { id : int; members : int list }

(** The initial view [v0] over [members]. *)
val initial : int list -> t

(** The successor view with the given membership. *)
val next : t -> members:int list -> t

val is_member : t -> int -> bool
val size : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
