(* Tests for the group-communication substrate: failure detector, stubborn
   channels, reliable/FIFO/causal broadcast, consensus, atomic broadcast and
   view-synchronous broadcast. *)

open Sim
open Group

let tc name f = Alcotest.test_case name `Quick f

type Msg.t += Payload of int

let payload_of = function Payload k -> k | _ -> Alcotest.fail "bad payload"

let make ?(seed = 21) ?(n = 3) ?(drop = 0.0) () =
  let e = Engine.create ~seed () in
  let config =
    { Network.default_config with Network.drop_probability = drop }
  in
  let net = Network.create e ~n config in
  (e, net)

let run_ms e ms = ignore (Engine.run ~until:(Simtime.of_ms ms) e)

(* ------------------------------------------------------------------ *)
(* Failure detector                                                   *)
(* ------------------------------------------------------------------ *)

let test_fd_suspects_crashed () =
  let e, net = make () in
  let members = [ 0; 1; 2 ] in
  let group = Fd.create_group net ~members () in
  let fd0 = Fd.handle group ~me:0 in
  let suspected_events = ref [] in
  Fd.on_suspect fd0 (fun p -> suspected_events := p :: !suspected_events);
  run_ms e 200;
  Alcotest.(check bool) "nobody suspected yet" false
    (Fd.suspected fd0 1 || Fd.suspected fd0 2);
  Network.crash net 2;
  run_ms e 600;
  Alcotest.(check bool) "crashed is suspected" true (Fd.suspected fd0 2);
  Alcotest.(check bool) "alive is trusted" false (Fd.suspected fd0 1);
  Alcotest.(check (list int)) "callback fired" [ 2 ] !suspected_events;
  Alcotest.(check (list int)) "trusted" [ 0; 1 ] (Fd.trusted fd0)

let test_fd_trust_restored () =
  let e, net = make () in
  let members = [ 0; 1 ] in
  let group = Fd.create_group net ~members () in
  let fd0 = Fd.handle group ~me:0 in
  let trust_events = ref [] in
  Fd.on_trust fd0 (fun p -> trust_events := p :: !trust_events);
  Network.crash net 1;
  run_ms e 400;
  Alcotest.(check bool) "suspected while down" true (Fd.suspected fd0 1);
  Network.recover net 1;
  run_ms e 800;
  Alcotest.(check bool) "trusted again" false (Fd.suspected fd0 1);
  Alcotest.(check (list int)) "trust callback" [ 1 ] !trust_events

(* ------------------------------------------------------------------ *)
(* Stubborn channels                                                  *)
(* ------------------------------------------------------------------ *)

let test_rchan_lossy_delivery () =
  let e, net = make ~drop:0.4 () in
  let group = Rchan.create_group net ~nodes:[ 0; 1 ] ~rto:(Simtime.of_ms 5) () in
  let c0 = Rchan.handle group ~me:0 in
  let c1 = Rchan.handle group ~me:1 in
  let got = ref [] in
  Rchan.on_deliver c1 (fun ~src msg ->
      Alcotest.(check int) "src" 0 src;
      got := payload_of msg :: !got);
  for k = 1 to 50 do
    Rchan.send c0 ~dst:1 (Payload k)
  done;
  run_ms e 5_000;
  let got = List.sort Int.compare !got in
  Alcotest.(check (list int)) "all delivered exactly once"
    (List.init 50 (fun i -> i + 1))
    got

let test_rchan_passthrough_no_overhead () =
  let e, net = make () in
  let group = Rchan.create_group net ~nodes:[ 0; 1 ] ~passthrough:true () in
  let c0 = Rchan.handle group ~me:0 in
  let c1 = Rchan.handle group ~me:1 in
  let got = ref 0 in
  Rchan.on_deliver c1 (fun ~src:_ _ -> incr got);
  Rchan.send c0 ~dst:1 (Payload 1);
  run_ms e 100;
  Alcotest.(check int) "delivered" 1 !got;
  (* passthrough: exactly one wire message, no acks *)
  Alcotest.(check int) "one message" 1 (Network.messages_sent net)

(* ------------------------------------------------------------------ *)
(* Reliable broadcast                                                 *)
(* ------------------------------------------------------------------ *)

let test_rbcast_all_deliver () =
  let e, net = make () in
  let members = [ 0; 1; 2 ] in
  let group = Rbcast.create_group net ~members () in
  let logs = Array.make 3 [] in
  List.iter
    (fun m ->
      let h = Rbcast.handle group ~me:m in
      Rbcast.on_deliver h (fun ~origin msg ->
          logs.(m) <- (origin, payload_of msg) :: logs.(m)))
    members;
  Rbcast.broadcast (Rbcast.handle group ~me:0) (Payload 7);
  Rbcast.broadcast (Rbcast.handle group ~me:1) (Payload 8);
  run_ms e 1_000;
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member %d" i)
        [ (0, 7); (1, 8) ]
        (List.sort compare log))
    logs

let test_rbcast_no_duplicates_under_loss () =
  let e, net = make ~drop:0.3 () in
  let members = [ 0; 1; 2 ] in
  let group = Rbcast.create_group net ~members ~rto:(Simtime.of_ms 5) () in
  let count = Array.make 3 0 in
  List.iter
    (fun m ->
      let h = Rbcast.handle group ~me:m in
      Rbcast.on_deliver h (fun ~origin:_ _ -> count.(m) <- count.(m) + 1))
    members;
  for k = 1 to 20 do
    Rbcast.broadcast (Rbcast.handle group ~me:(k mod 3)) (Payload k)
  done;
  run_ms e 10_000;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "member %d" i) 20 c)
    count

(* ------------------------------------------------------------------ *)
(* FIFO broadcast                                                     *)
(* ------------------------------------------------------------------ *)

let test_fifo_order () =
  let e, net = make ~seed:3 () in
  let members = [ 0; 1; 2 ] in
  let group = Fifo.create_group net ~members () in
  let logs = Array.make 3 [] in
  List.iter
    (fun m ->
      let h = Fifo.handle group ~me:m in
      Fifo.on_deliver h (fun ~origin msg ->
          logs.(m) <- (origin, payload_of msg) :: logs.(m)))
    members;
  (* Two concurrent senders, interleaved sends. *)
  let h0 = Fifo.handle group ~me:0 and h1 = Fifo.handle group ~me:1 in
  for k = 0 to 9 do
    Fifo.broadcast h0 (Payload k);
    Fifo.broadcast h1 (Payload (100 + k))
  done;
  run_ms e 2_000;
  Array.iteri
    (fun i log ->
      let log = List.rev log in
      let from o = List.filter_map (fun (o', k) -> if o = o' then Some k else None) log in
      Alcotest.(check (list int))
        (Printf.sprintf "member %d: fifo from 0" i)
        (List.init 10 Fun.id) (from 0);
      Alcotest.(check (list int))
        (Printf.sprintf "member %d: fifo from 1" i)
        (List.init 10 (fun k -> 100 + k))
        (from 1))
    logs

(* ------------------------------------------------------------------ *)
(* Causal broadcast                                                   *)
(* ------------------------------------------------------------------ *)

let test_causal_order () =
  let e, net = make ~seed:17 () in
  let members = [ 0; 1; 2 ] in
  let group = Causal.create_group net ~members () in
  let logs = Array.make 3 [] in
  List.iter
    (fun m ->
      let h = Causal.handle group ~me:m in
      Causal.on_deliver h (fun ~origin:_ msg ->
          logs.(m) <- payload_of msg :: logs.(m));
      (* Member 1 replies causally to message 1. *)
      if m = 1 then
        Causal.on_deliver h (fun ~origin:_ msg ->
            if payload_of msg = 1 then Causal.broadcast h (Payload 2)))
    members;
  Causal.broadcast (Causal.handle group ~me:0) (Payload 1);
  run_ms e 2_000;
  Array.iteri
    (fun i log ->
      Alcotest.(check (list int))
        (Printf.sprintf "member %d causal order" i)
        [ 1; 2 ] (List.rev log))
    logs

let test_causal_concurrent_allowed () =
  let e, net = make () in
  let members = [ 0; 1 ] in
  let group = Causal.create_group net ~members () in
  let log = ref [] in
  let h0 = Causal.handle group ~me:0 in
  let h1 = Causal.handle group ~me:1 in
  Causal.on_deliver h0 (fun ~origin:_ msg -> log := payload_of msg :: !log);
  Causal.broadcast h0 (Payload 1);
  Causal.broadcast h1 (Payload 2);
  run_ms e 2_000;
  Alcotest.(check int) "both delivered" 2 (List.length !log)

(* ------------------------------------------------------------------ *)
(* Consensus                                                          *)
(* ------------------------------------------------------------------ *)

module Cint = Consensus.Make (struct
  type t = int
end)

let consensus_setup ?(seed = 4) ?(n = 3) () =
  let e, net = make ~seed ~n () in
  let members = List.init n Fun.id in
  let fd = Fd.create_group net ~members () in
  let group = Cint.create_group net ~members ~fd () in
  (e, net, members, group)

let test_consensus_agreement () =
  let e, _net, members, group = consensus_setup () in
  let decisions = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let h = Cint.handle group ~me:m in
      Cint.on_decide h (fun ~instance v -> Hashtbl.replace decisions (m, instance) v);
      Cint.propose h ~instance:0 (100 + m))
    members;
  run_ms e 3_000;
  let vals =
    List.map (fun m -> Hashtbl.find_opt decisions (m, 0)) members
  in
  (match vals with
  | [ Some a; Some b; Some c ] ->
      Alcotest.(check bool) "agreement" true (a = b && b = c);
      Alcotest.(check bool) "validity" true (List.mem a [ 100; 101; 102 ])
  | _ -> Alcotest.fail "not all members decided");
  Alcotest.(check (option int))
    "decision accessor" (List.nth vals 0)
    (Cint.decision (Cint.handle group ~me:0) ~instance:0)

let test_consensus_multiple_instances () =
  let e, _net, members, group = consensus_setup () in
  let decisions = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let h = Cint.handle group ~me:m in
      Cint.on_decide h (fun ~instance v -> Hashtbl.replace decisions (m, instance) v))
    members;
  List.iter
    (fun m ->
      let h = Cint.handle group ~me:m in
      for inst = 0 to 4 do
        Cint.propose h ~instance:inst ((10 * inst) + m)
      done)
    members;
  run_ms e 5_000;
  for inst = 0 to 4 do
    let v0 = Hashtbl.find_opt decisions (0, inst) in
    Alcotest.(check bool)
      (Printf.sprintf "instance %d decided" inst)
      true (v0 <> None);
    List.iter
      (fun m ->
        Alcotest.(check (option int))
          (Printf.sprintf "instance %d member %d" inst m)
          v0
          (Hashtbl.find_opt decisions (m, inst)))
      members
  done

let test_consensus_coordinator_crash () =
  let e, net, members, group = consensus_setup ~n:5 () in
  let decisions = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let h = Cint.handle group ~me:m in
      Cint.on_decide h (fun ~instance v -> Hashtbl.replace decisions (m, instance) v))
    members;
  (* Coordinator of round 0 is member 0: crash it before anyone proposes. *)
  Network.crash net 0;
  run_ms e 10;
  List.iter
    (fun m ->
      if m <> 0 then Cint.propose (Cint.handle group ~me:m) ~instance:0 (200 + m))
    members;
  run_ms e 10_000;
  let vals =
    List.filter_map (fun m -> Hashtbl.find_opt decisions (m, 0))
      (List.filter (fun m -> m <> 0) members)
  in
  Alcotest.(check int) "all survivors decided" 4 (List.length vals);
  (match vals with
  | v :: rest ->
      List.iter (fun v' -> Alcotest.(check int) "agreement" v v') rest;
      Alcotest.(check bool) "validity" true (v >= 201 && v <= 204)
  | [] -> Alcotest.fail "no decisions")

let test_consensus_under_loss () =
  let e, _net, members, group =
    let e, net = make ~seed:9 ~n:3 ~drop:0.2 () in
    let members = [ 0; 1; 2 ] in
    let fd = Fd.create_group net ~members () in
    let group = Cint.create_group net ~members ~fd ~rto:(Simtime.of_ms 5) () in
    (e, net, members, group)
  in
  let decisions = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let h = Cint.handle group ~me:m in
      Cint.on_decide h (fun ~instance v -> Hashtbl.replace decisions (m, instance) v);
      Cint.propose h ~instance:0 m)
    members;
  run_ms e 20_000;
  let vals = List.filter_map (fun m -> Hashtbl.find_opt decisions (m, 0)) members in
  Alcotest.(check int) "all decided despite loss" 3 (List.length vals);
  match vals with
  | v :: rest -> List.iter (fun v' -> Alcotest.(check int) "agreement" v v') rest
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Atomic broadcast                                                   *)
(* ------------------------------------------------------------------ *)

let abcast_setup ~impl ?(seed = 33) ?(n = 3) ?(clients = []) () =
  let e, net = make ~seed ~n:(n + List.length clients) () in
  let members = List.init n Fun.id in
  let group = Abcast.create_group net ~members ~clients ~impl () in
  (e, net, members, group)

let check_total_order ~logs members =
  (* Every member must deliver the same sequence. *)
  match members with
  | [] -> ()
  | first :: rest ->
      let reference = List.rev logs.(first) in
      List.iter
        (fun m ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "member %d same sequence" m)
            reference
            (List.rev logs.(m)))
        rest

let test_abcast_total_order impl () =
  let e, _net, members, group = abcast_setup ~impl () in
  let logs = Array.make 3 [] in
  List.iter
    (fun m ->
      let h = Abcast.handle group ~me:m in
      Abcast.on_deliver h (fun ~origin msg ->
          logs.(m) <- (origin, payload_of msg) :: logs.(m)))
    members;
  List.iter
    (fun m ->
      let h = Abcast.handle group ~me:m in
      for k = 0 to 9 do
        Abcast.broadcast h (Payload ((m * 100) + k))
      done)
    members;
  run_ms e 20_000;
  Alcotest.(check int) "member 0 got all" 30 (List.length logs.(0));
  check_total_order ~logs members

let test_abcast_client_inject impl () =
  let e, _net, members, group = abcast_setup ~impl ~clients:[ 3 ] () in
  let logs = Array.make 3 [] in
  List.iter
    (fun m ->
      let h = Abcast.handle group ~me:m in
      Abcast.on_deliver h (fun ~origin msg ->
          logs.(m) <- (origin, payload_of msg) :: logs.(m)))
    members;
  Abcast.broadcast_from group ~src:3 (Payload 55);
  run_ms e 10_000;
  List.iter
    (fun m ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member %d" m)
        [ (3, 55) ]
        (List.rev logs.(m)))
    members

let test_abcast_member_crash impl () =
  let e, net, members, group = abcast_setup ~impl ~n:5 ~seed:77 () in
  let logs = Array.make 5 [] in
  List.iter
    (fun m ->
      let h = Abcast.handle group ~me:m in
      Abcast.on_deliver h (fun ~origin msg ->
          logs.(m) <- (origin, payload_of msg) :: logs.(m)))
    members;
  (* Everyone broadcasts; member 0 (the initial sequencer / first
     coordinator) crashes mid-stream. *)
  List.iter
    (fun m ->
      let h = Abcast.handle group ~me:m in
      for k = 0 to 4 do
        ignore
          (Engine.schedule e ~after:(Simtime.of_ms (1 + k))
             (Network.guard net m (fun () -> Abcast.broadcast h (Payload ((m * 10) + k)))))
      done)
    members;
  ignore (Engine.schedule e ~after:(Simtime.of_ms 3) (fun () -> Network.crash net 0));
  run_ms e 30_000;
  let survivors = List.filter (fun m -> m <> 0) members in
  check_total_order ~logs survivors;
  (* All messages from correct members must be delivered. *)
  let delivered1 = List.rev_map snd logs.(1) in
  List.iter
    (fun m ->
      for k = 0 to 4 do
        Alcotest.(check bool)
          (Printf.sprintf "msg %d delivered" ((m * 10) + k))
          true
          (List.mem ((m * 10) + k) delivered1)
      done)
    survivors

let prop_abcast_random_schedules impl =
  QCheck.Test.make ~name:"abcast total order under random seeds" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let e, _net, members, group = abcast_setup ~impl ~seed () in
      let logs = Array.make 3 [] in
      List.iter
        (fun m ->
          let h = Abcast.handle group ~me:m in
          Abcast.on_deliver h (fun ~origin msg ->
              logs.(m) <- (origin, payload_of msg) :: logs.(m)))
        members;
      List.iter
        (fun m ->
          let h = Abcast.handle group ~me:m in
          for k = 0 to 4 do
            Abcast.broadcast h (Payload ((m * 10) + k))
          done)
        members;
      run_ms e 20_000;
      List.length logs.(0) = 15
      && List.rev logs.(0) = List.rev logs.(1)
      && List.rev logs.(1) = List.rev logs.(2))

(* ------------------------------------------------------------------ *)
(* View-synchronous broadcast                                         *)
(* ------------------------------------------------------------------ *)

let test_vscast_basic_delivery () =
  let e, _net, members, group =
    let e, net = make ~seed:51 () in
    let members = [ 0; 1; 2 ] in
    (e, net, members, Vscast.create_group net ~members ())
  in
  let logs = Array.make 3 [] in
  List.iter
    (fun m ->
      let h = Vscast.handle group ~me:m in
      Vscast.on_deliver h (fun ~origin msg ->
          logs.(m) <- (origin, payload_of msg) :: logs.(m)))
    members;
  let h0 = Vscast.handle group ~me:0 in
  for k = 0 to 4 do
    Vscast.broadcast h0 (Payload k)
  done;
  run_ms e 5_000;
  List.iter
    (fun m ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "member %d delivers in sender order" m)
        (List.init 5 (fun k -> (0, k)))
        (List.rev logs.(m)))
    members

let test_vscast_view_change_on_crash () =
  let e, net = make ~seed:52 () in
  let members = [ 0; 1; 2 ] in
  let group = Vscast.create_group net ~members () in
  let views = ref [] in
  let h0 = Vscast.handle group ~me:0 in
  let h1 = Vscast.handle group ~me:1 in
  Vscast.on_view_change h0 (fun v -> views := v :: !views);
  Network.crash net 2;
  run_ms e 5_000;
  (match !views with
  | [ v ] ->
      Alcotest.(check int) "view id" 1 v.View.id;
      Alcotest.(check (list int)) "members" [ 0; 1 ] v.View.members
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 view change, got %d" (List.length vs)));
  Alcotest.(check int) "other member agrees" 1 (Vscast.current_view h1).View.id;
  (* Broadcasts still work in the new view. *)
  let got = ref [] in
  Vscast.on_deliver h1 (fun ~origin:_ msg -> got := payload_of msg :: !got);
  Vscast.broadcast h0 (Payload 9);
  run_ms e 10_000;
  Alcotest.(check (list int)) "post-view-change delivery" [ 9 ] !got

let test_vscast_view_synchrony () =
  (* Sender crashes while broadcasting: survivors must deliver the same
     set of messages before installing the next view. *)
  let e, net = make ~seed:53 ~n:4 () in
  let members = [ 0; 1; 2; 3 ] in
  let group = Vscast.create_group net ~members () in
  let logs = Array.make 4 [] in
  List.iter
    (fun m ->
      let h = Vscast.handle group ~me:m in
      Vscast.on_deliver h (fun ~origin msg ->
          logs.(m) <- (origin, payload_of msg) :: logs.(m)))
    members;
  let h3 = Vscast.handle group ~me:3 in
  for k = 0 to 9 do
    ignore
      (Engine.schedule e ~after:(Simtime.of_us (200 * k))
         (Network.guard net 3 (fun () -> Vscast.broadcast h3 (Payload k))))
  done;
  (* Crash the sender mid-stream. *)
  ignore (Engine.schedule e ~after:(Simtime.of_ms 1) (fun () -> Network.crash net 3));
  run_ms e 10_000;
  let survivors = [ 0; 1; 2 ] in
  let sets =
    List.map
      (fun m -> List.sort compare (List.map snd logs.(m)))
      survivors
  in
  (match sets with
  | s0 :: rest ->
      List.iter
        (fun s -> Alcotest.(check (list int)) "same delivered set" s0 s)
        rest
  | [] -> ());
  List.iter
    (fun m ->
      let h = Vscast.handle group ~me:m in
      Alcotest.(check (list int)) "final view" [ 0; 1; 2 ]
        (Vscast.current_view h).View.members)
    survivors


(* ------------------------------------------------------------------ *)
(* Additional edge cases                                              *)
(* ------------------------------------------------------------------ *)

let test_fd_timing_parameters () =
  let e, net = make () in
  let members = [ 0; 1 ] in
  let group =
    Fd.create_group net ~members
      ~heartbeat_every:(Simtime.of_ms 10)
      ~timeout:(Simtime.of_ms 50)
      ()
  in
  let fd0 = Fd.handle group ~me:0 in
  let suspected_at = ref None in
  Fd.on_suspect fd0 (fun _ -> suspected_at := Some (Engine.now e));
  ignore (Engine.schedule e ~after:(Simtime.of_ms 100) (fun () -> Network.crash net 1));
  run_ms e 1_000;
  match !suspected_at with
  | None -> Alcotest.fail "never suspected"
  | Some t ->
      let delay = Simtime.to_ms (Simtime.sub t (Simtime.of_ms 100)) in
      Alcotest.(check bool)
        (Printf.sprintf "suspicion within [timeout, timeout+2hb+slack] (%.1fms)" delay)
        true
        (delay >= 45. && delay <= 90.)

let test_rchan_retries_exhaust () =
  (* Sending to a permanently dead node must not livelock the engine. *)
  let e, net = make () in
  let group =
    Rchan.create_group net ~nodes:[ 0; 1 ] ~rto:(Simtime.of_ms 5)
      ~max_retries:10 ()
  in
  Network.crash net 1;
  Rchan.send (Rchan.handle group ~me:0) ~dst:1 (Payload 1);
  let executed = Engine.run ~until:(Simtime.of_sec 60.) e in
  Alcotest.(check bool) "bounded retransmissions" true (executed < 100);
  Alcotest.(check bool) "engine drained" true (Engine.pending e = 0)

let test_consensus_even_membership () =
  let e, _net, members, group = consensus_setup ~n:4 () in
  let decisions = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let h = Cint.handle group ~me:m in
      Cint.on_decide h (fun ~instance v -> Hashtbl.replace decisions (m, instance) v);
      Cint.propose h ~instance:0 m)
    members;
  run_ms e 5_000;
  let vals = List.filter_map (fun m -> Hashtbl.find_opt decisions (m, 0)) members in
  Alcotest.(check int) "all four decide" 4 (List.length vals);
  match vals with
  | v :: rest -> List.iter (fun v2 -> Alcotest.(check int) "agreement" v v2) rest
  | [] -> ()

let test_consensus_max_crashes () =
  (* n=5 tolerates f=2: crash two members including two consecutive
     coordinators. *)
  let e, net, members, group = consensus_setup ~n:5 ~seed:8 () in
  let decisions = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let h = Cint.handle group ~me:m in
      Cint.on_decide h (fun ~instance v -> Hashtbl.replace decisions (m, instance) v))
    members;
  Network.crash net 0;
  Network.crash net 1;
  run_ms e 10;
  List.iter
    (fun m ->
      if m > 1 then Cint.propose (Cint.handle group ~me:m) ~instance:0 (300 + m))
    members;
  run_ms e 20_000;
  let vals =
    List.filter_map
      (fun m -> if m > 1 then Hashtbl.find_opt decisions (m, 0) else None)
      members
  in
  Alcotest.(check int) "three survivors decide" 3 (List.length vals);
  match vals with
  | v :: rest ->
      List.iter (fun v2 -> Alcotest.(check int) "agreement" v v2) rest;
      Alcotest.(check bool) "validity" true (v >= 302 && v <= 304)
  | [] -> ()

let test_vscast_double_crash () =
  let e, net = make ~seed:71 ~n:5 () in
  let members = [ 0; 1; 2; 3; 4 ] in
  let group = Vscast.create_group net ~members () in
  let h4 = Vscast.handle group ~me:4 in
  Network.crash net 0;
  run_ms e 3_000;
  Network.crash net 1;
  run_ms e 10_000;
  Alcotest.(check (list int)) "view shrinks twice" [ 2; 3; 4 ]
    (Vscast.current_view h4).View.members;
  (* Still delivers. *)
  let got = ref [] in
  let h2 = Vscast.handle group ~me:2 in
  Vscast.on_deliver h2 (fun ~origin:_ msg -> got := payload_of msg :: !got);
  Vscast.broadcast h4 (Payload 3);
  run_ms e 20_000;
  Alcotest.(check (list int)) "delivery in the shrunken view" [ 3 ] !got

let test_vscast_rejoin () =
  let e, net = make ~seed:72 () in
  let members = [ 0; 1; 2 ] in
  let group = Vscast.create_group net ~members () in
  let h0 = Vscast.handle group ~me:0 in
  let h2 = Vscast.handle group ~me:2 in
  Network.crash net 2;
  run_ms e 3_000;
  Alcotest.(check (list int)) "excluded" [ 0; 1 ]
    (Vscast.current_view h0).View.members;
  Network.recover net 2;
  run_ms e 1_000;
  Vscast.request_join h2;
  run_ms e 15_000;
  Alcotest.(check (list int)) "readmitted" [ 0; 1; 2 ]
    (Vscast.current_view h0).View.members;
  Alcotest.(check (list int)) "joiner agrees" [ 0; 1; 2 ]
    (Vscast.current_view h2).View.members;
  Alcotest.(check bool) "joiner back in view" true (Vscast.in_view h2);
  (* Post-rejoin broadcasts reach the joiner. *)
  let got = ref [] in
  Vscast.on_deliver h2 (fun ~origin:_ msg -> got := payload_of msg :: !got);
  Vscast.broadcast h0 (Payload 9);
  run_ms e 25_000;
  Alcotest.(check (list int)) "delivered to rejoined member" [ 9 ] !got

let test_abcast_bulk_exactly_once impl () =
  let e, _net, members, group = abcast_setup ~impl ~seed:90 () in
  let counts = Array.make 3 0 in
  List.iter
    (fun m ->
      let h = Abcast.handle group ~me:m in
      Abcast.on_deliver h (fun ~origin:_ _ -> counts.(m) <- counts.(m) + 1))
    members;
  let h0 = Abcast.handle group ~me:0 in
  for k = 0 to 99 do
    Abcast.broadcast h0 (Payload k)
  done;
  run_ms e 60_000;
  Array.iteri
    (fun m c ->
      Alcotest.(check int) (Printf.sprintf "member %d delivered all once" m) 100 c)
    counts


let test_abcast_optimistic_delivery impl () =
  let e, _net, members, group = abcast_setup ~impl ~seed:93 () in
  let opt_log = ref [] and final_log = ref [] in
  let h1 = Abcast.handle group ~me:1 in
  Abcast.on_opt_deliver h1 (fun ~origin:_ msg ->
      opt_log := payload_of msg :: !opt_log);
  Abcast.on_deliver h1 (fun ~origin:_ msg ->
      (* Every final delivery must have been optimistically delivered
         first (the payload is known before its order is fixed). *)
      let k = payload_of msg in
      Alcotest.(check bool)
        (Printf.sprintf "opt before final for %d" k)
        true
        (List.mem k !opt_log);
      final_log := k :: !final_log);
  List.iter
    (fun m ->
      let h = Abcast.handle group ~me:m in
      for k = 0 to 4 do
        Abcast.broadcast h (Payload ((m * 10) + k))
      done)
    members;
  run_ms e 20_000;
  Alcotest.(check int) "all finally delivered" 15 (List.length !final_log);
  Alcotest.(check int) "all optimistically delivered" 15 (List.length !opt_log);
  Alcotest.(check (list int)) "same sets"
    (List.sort Int.compare !opt_log)
    (List.sort Int.compare !final_log)

let prop_causal_never_reorders_chains =
  (* A chain of causally-dependent messages must always deliver in chain
     order, whatever the network timing. *)
  QCheck.Test.make ~name:"causal chains preserved under random seeds" ~count:20
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let e, net = make ~seed ~n:3 () in
      ignore net;
      let members = [ 0; 1; 2 ] in
      let group = Causal.create_group net ~members () in
      let logs = Array.make 3 [] in
      List.iter
        (fun m ->
          let h = Causal.handle group ~me:m in
          Causal.on_deliver h (fun ~origin:_ msg ->
              logs.(m) <- payload_of msg :: logs.(m));
          (* Each member extends the chain when it sees the previous link. *)
          Causal.on_deliver h (fun ~origin:_ msg ->
              let k = payload_of msg in
              if k < 5 && k mod 3 = m then () (* no-op: origin broadcasts *)))
        members;
      (* Chain: member (k mod 3) broadcasts k after delivering k-1. *)
      List.iter
        (fun m ->
          let h = Causal.handle group ~me:m in
          Causal.on_deliver h (fun ~origin:_ msg ->
              let k = payload_of msg in
              if k < 5 && (k + 1) mod 3 = m then Causal.broadcast h (Payload (k + 1))))
        members;
      Causal.broadcast (Causal.handle group ~me:0) (Payload 0);
      run_ms e 20_000;
      Array.for_all
        (fun log -> List.rev log = [ 0; 1; 2; 3; 4; 5 ])
        logs)


let prop_vscast_random_crash =
  (* Whatever the crash timing of one member during a broadcast stream,
     the survivors install the same final view and deliver the same set. *)
  QCheck.Test.make ~name:"vscast view synchrony under random crash timing"
    ~count:10
    QCheck.(pair (int_range 0 5_000) (int_range 0 3_000))
    (fun (seed, crash_us) ->
      let e, net = make ~seed ~n:4 () in
      let members = [ 0; 1; 2; 3 ] in
      let group = Vscast.create_group net ~members () in
      let logs = Array.make 4 [] in
      List.iter
        (fun m ->
          let h = Vscast.handle group ~me:m in
          Vscast.on_deliver h (fun ~origin msg ->
              logs.(m) <- (origin, payload_of msg) :: logs.(m)))
        members;
      let h0 = Vscast.handle group ~me:0 in
      for k = 0 to 9 do
        ignore
          (Engine.schedule e ~after:(Simtime.of_us (150 * k))
             (Network.guard net 0 (fun () -> Vscast.broadcast h0 (Payload k))))
      done;
      ignore
        (Engine.schedule e ~after:(Simtime.of_us crash_us) (fun () ->
             Network.crash net 3));
      run_ms e 30_000;
      let survivors = [ 0; 1; 2 ] in
      let views =
        List.map
          (fun m -> (Vscast.current_view (Vscast.handle group ~me:m)).View.members)
          survivors
      in
      let sets =
        List.map (fun m -> List.sort compare logs.(m)) survivors
      in
      List.for_all (fun v -> v = [ 0; 1; 2 ]) views
      && List.for_all (fun s -> s = List.hd sets) sets)

let prop_consensus_random_coordinator_crash =
  QCheck.Test.make
    ~name:"consensus agreement under random coordinator crash timing"
    ~count:10
    QCheck.(pair (int_range 0 5_000) (int_range 0 4_000))
    (fun (seed, crash_us) ->
      let e, net = make ~seed ~n:5 () in
      let members = [ 0; 1; 2; 3; 4 ] in
      let fd = Fd.create_group net ~members () in
      let group = Cint.create_group net ~members ~fd () in
      let decisions = Hashtbl.create 8 in
      List.iter
        (fun m ->
          let h = Cint.handle group ~me:m in
          Cint.on_decide h (fun ~instance v ->
              Hashtbl.replace decisions (m, instance) v);
          Cint.propose h ~instance:0 (100 + m))
        members;
      ignore
        (Engine.schedule e ~after:(Simtime.of_us crash_us) (fun () ->
             Network.crash net 0));
      run_ms e 30_000;
      let vals =
        List.filter_map
          (fun m -> if m <> 0 then Hashtbl.find_opt decisions (m, 0) else None)
          members
      in
      List.length vals = 4
      && List.for_all (fun v -> v = List.hd vals) vals
      && List.hd vals >= 100
      && List.hd vals <= 104)

let () =
  Alcotest.run "group"
    [
      ( "fd",
        [
          tc "suspects crashed" test_fd_suspects_crashed;
          tc "trust restored" test_fd_trust_restored;
        ] );
      ( "rchan",
        [
          tc "lossy delivery" test_rchan_lossy_delivery;
          tc "passthrough" test_rchan_passthrough_no_overhead;
        ] );
      ( "rbcast",
        [
          tc "all deliver" test_rbcast_all_deliver;
          tc "no duplicates under loss" test_rbcast_no_duplicates_under_loss;
        ] );
      ("fifo", [ tc "per-sender order" test_fifo_order ]);
      ( "causal",
        [
          tc "causal order" test_causal_order;
          tc "concurrent allowed" test_causal_concurrent_allowed;
        ] );
      ( "consensus",
        [
          tc "agreement+validity" test_consensus_agreement;
          tc "multiple instances" test_consensus_multiple_instances;
          tc "coordinator crash" test_consensus_coordinator_crash;
          tc "under message loss" test_consensus_under_loss;
        ] );
      ( "abcast-sequencer",
        [
          tc "total order" (test_abcast_total_order Abcast.Sequencer);
          tc "client inject" (test_abcast_client_inject Abcast.Sequencer);
          tc "member crash" (test_abcast_member_crash Abcast.Sequencer);
          QCheck_alcotest.to_alcotest
            (prop_abcast_random_schedules Abcast.Sequencer);
        ] );
      ( "abcast-consensus",
        [
          tc "total order" (test_abcast_total_order Abcast.Consensus_based);
          tc "client inject" (test_abcast_client_inject Abcast.Consensus_based);
          tc "member crash" (test_abcast_member_crash Abcast.Consensus_based);
          QCheck_alcotest.to_alcotest
            (prop_abcast_random_schedules Abcast.Consensus_based);
        ] );
      ( "vscast",
        [
          tc "basic delivery" test_vscast_basic_delivery;
          tc "view change on crash" test_vscast_view_change_on_crash;
          tc "view synchrony" test_vscast_view_synchrony;
          tc "double crash" test_vscast_double_crash;
          tc "rejoin" test_vscast_rejoin;
        ] );
      ( "edge-cases",
        [
          tc "fd timing" test_fd_timing_parameters;
          tc "rchan retries exhaust" test_rchan_retries_exhaust;
          tc "consensus even membership" test_consensus_even_membership;
          tc "consensus max crashes" test_consensus_max_crashes;
          tc "abcast bulk (sequencer)" (test_abcast_bulk_exactly_once Abcast.Sequencer);
          tc "abcast bulk (consensus)" (test_abcast_bulk_exactly_once Abcast.Consensus_based);
          tc "optimistic delivery (sequencer)" (test_abcast_optimistic_delivery Abcast.Sequencer);
          tc "optimistic delivery (consensus)" (test_abcast_optimistic_delivery Abcast.Consensus_based);
          QCheck_alcotest.to_alcotest prop_causal_never_reorders_chains;
          QCheck_alcotest.to_alcotest prop_vscast_random_crash;
          QCheck_alcotest.to_alcotest prop_consensus_random_coordinator_crash;
        ] );
    ]
