(* Tests for the core framework: phases, phase traces, 2PC, certification,
   reconciliation, convergence, and the consistency checkers. *)

open Sim

let tc name f = Alcotest.test_case name `Quick f

let phase = Alcotest.testable Core.Phase.pp Core.Phase.equal

(* ------------------------------------------------------------------ *)
(* Phase / Phase_trace                                                 *)
(* ------------------------------------------------------------------ *)

let test_phase_codes () =
  Alcotest.(check (list string)) "codes"
    [ "RE"; "SC"; "EX"; "AC"; "END" ]
    (List.map Core.Phase.code Core.Phase.all);
  List.iter
    (fun p ->
      Alcotest.(check (option phase)) "roundtrip" (Some p)
        (Core.Phase.of_code (Core.Phase.code p)))
    Core.Phase.all

let test_phase_trace_sequence () =
  let tr = Core.Phase_trace.create () in
  let at ms = Simtime.of_ms ms in
  Core.Phase_trace.mark tr ~rid:1 Core.Phase.Request (at 0);
  Core.Phase_trace.mark tr ~rid:1 ~replica:0 Core.Phase.Execution (at 1);
  Core.Phase_trace.mark tr ~rid:1 ~replica:1 Core.Phase.Execution (at 2);
  Core.Phase_trace.mark tr ~rid:1 ~replica:0 Core.Phase.Agreement_coordination (at 3);
  Core.Phase_trace.mark tr ~rid:1 Core.Phase.Response (at 4);
  Alcotest.(check (list phase)) "sequence collapses duplicates"
    [ Request; Execution; Agreement_coordination; Response ]
    (Core.Phase_trace.sequence tr ~rid:1);
  Alcotest.(check (list int)) "rids" [ 1 ] (Core.Phase_trace.rids tr)

let test_phase_trace_loop_and_signature () =
  (* The §5 per-operation loop: EX AC EX AC ... *)
  let tr = Core.Phase_trace.create () in
  let at ms = Simtime.of_ms ms in
  Core.Phase_trace.mark tr ~rid:2 Core.Phase.Request (at 0);
  Core.Phase_trace.mark tr ~rid:2 ~replica:0 Core.Phase.Execution (at 1);
  Core.Phase_trace.mark tr ~rid:2 ~replica:0 Core.Phase.Agreement_coordination (at 2);
  Core.Phase_trace.mark tr ~rid:2 ~replica:0 Core.Phase.Execution (at 3);
  Core.Phase_trace.mark tr ~rid:2 ~replica:0 Core.Phase.Agreement_coordination (at 4);
  Core.Phase_trace.mark tr ~rid:2 Core.Phase.Response (at 5);
  Alcotest.(check (list phase)) "sequence keeps the loop"
    [
      Request; Execution; Agreement_coordination; Execution;
      Agreement_coordination; Response;
    ]
    (Core.Phase_trace.sequence tr ~rid:2);
  Alcotest.(check (list phase)) "signature collapses the loop"
    [ Request; Execution; Agreement_coordination; Response ]
    (Core.Phase_trace.signature tr ~rid:2)

(* ------------------------------------------------------------------ *)
(* Two-phase commit                                                   *)
(* ------------------------------------------------------------------ *)

let tpc_setup ?(n = 3) ?(votes = fun ~me:_ ~txn:_ -> true) ?participant_timeout
    () =
  let e = Engine.create ~seed:5 () in
  let net = Network.create e ~n Network.default_config in
  let decisions = Hashtbl.create 8 in
  let group =
    Core.Two_phase_commit.create_group net ~nodes:(List.init n Fun.id)
      ?participant_timeout ~vote:votes
      ~learn:(fun ~me ~txn d -> Hashtbl.replace decisions (me, txn) d)
      ()
  in
  (e, net, group, decisions)

let test_2pc_all_yes_commits () =
  let e, _net, group, decisions = tpc_setup () in
  let outcome = ref None in
  Core.Two_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun d -> outcome := Some d);
  ignore (Engine.run ~until:(Simtime.of_sec 2.) e);
  Alcotest.(check bool) "committed" true
    (!outcome = Some Core.Two_phase_commit.Commit);
  List.iter
    (fun me ->
      Alcotest.(check bool)
        (Printf.sprintf "participant %d learned commit" me)
        true
        (Hashtbl.find_opt decisions (me, 1) = Some Core.Two_phase_commit.Commit))
    [ 0; 1; 2 ];
  Alcotest.(check (pair int int)) "counters" (1, 0)
    (Core.Two_phase_commit.commits group, Core.Two_phase_commit.aborts group)

let test_2pc_one_no_aborts () =
  let votes ~me ~txn:_ = me <> 2 in
  let e, _net, group, decisions = tpc_setup ~votes () in
  let outcome = ref None in
  Core.Two_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun d -> outcome := Some d);
  ignore (Engine.run ~until:(Simtime.of_sec 2.) e);
  Alcotest.(check bool) "aborted" true
    (!outcome = Some Core.Two_phase_commit.Abort);
  Alcotest.(check bool) "all learn abort" true
    (List.for_all
       (fun me ->
         Hashtbl.find_opt decisions (me, 1) = Some Core.Two_phase_commit.Abort)
       [ 0; 1; 2 ])

let test_2pc_participant_crash_timeout_aborts () =
  let e, net, group, _decisions =
    tpc_setup ~participant_timeout:(Simtime.of_ms 200) ()
  in
  Network.crash net 2;
  let outcome = ref None in
  Core.Two_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun d -> outcome := Some d);
  ignore (Engine.run ~until:(Simtime.of_sec 5.) e);
  Alcotest.(check bool) "presumed abort" true
    (!outcome = Some Core.Two_phase_commit.Abort)

let test_2pc_blocks_without_timeout () =
  (* The paper (§2.1): databases accept blocking protocols. Without a
     timeout, a crashed participant blocks the round forever. *)
  let e, net, group, _decisions = tpc_setup () in
  Network.crash net 2;
  let outcome = ref None in
  Core.Two_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun d -> outcome := Some d);
  ignore (Engine.run ~until:(Simtime.of_sec 5.) ~max_events:200_000 e);
  Alcotest.(check bool) "no decision" true (!outcome = None)

let test_2pc_coordinator_crash_blocks_participants () =
  let e, net, group, decisions = tpc_setup () in
  let outcome = ref None in
  Core.Two_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun d -> outcome := Some d);
  (* Crash the coordinator before any vote can reach it. *)
  Network.crash net 0;
  ignore (Engine.run ~until:(Simtime.of_sec 5.) ~max_events:200_000 e);
  Alcotest.(check bool) "blocked: nobody decided" true
    (!outcome = None
    && Hashtbl.find_opt decisions (1, 1) = None
    && Hashtbl.find_opt decisions (2, 1) = None)


(* ------------------------------------------------------------------ *)
(* Three-phase commit (non-blocking)                                  *)
(* ------------------------------------------------------------------ *)

let tpc3_setup ?(n = 3) ?(votes = fun ~me:_ ~txn:_ -> true) () =
  let e = Engine.create ~seed:5 () in
  let net = Network.create e ~n Network.default_config in
  let decisions = Hashtbl.create 8 in
  let group =
    Core.Three_phase_commit.create_group net ~nodes:(List.init n Fun.id)
      ~vote:votes
      ~learn:(fun ~me ~txn d -> Hashtbl.replace decisions (me, txn) d)
      ()
  in
  (e, net, group, decisions)

let test_3pc_all_yes_commits () =
  let e, _net, group, decisions = tpc3_setup () in
  let outcome = ref None in
  Core.Three_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun d -> outcome := Some d);
  ignore (Engine.run ~until:(Simtime.of_sec 2.) e);
  Alcotest.(check bool) "committed" true
    (!outcome = Some Core.Three_phase_commit.Commit);
  List.iter
    (fun me ->
      Alcotest.(check bool)
        (Printf.sprintf "participant %d learned commit" me)
        true
        (Hashtbl.find_opt decisions (me, 1)
        = Some Core.Three_phase_commit.Commit))
    [ 0; 1; 2 ]

let test_3pc_one_no_aborts () =
  let votes ~me ~txn:_ = me <> 2 in
  let e, _net, group, decisions = tpc3_setup ~votes () in
  let outcome = ref None in
  Core.Three_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun d -> outcome := Some d);
  ignore (Engine.run ~until:(Simtime.of_sec 2.) e);
  Alcotest.(check bool) "aborted" true
    (!outcome = Some Core.Three_phase_commit.Abort);
  Alcotest.(check bool) "all learn abort" true
    (List.for_all
       (fun me ->
         Hashtbl.find_opt decisions (me, 1) = Some Core.Three_phase_commit.Abort)
       [ 0; 1; 2 ])

let test_3pc_nonblocking_uncertain_aborts () =
  (* The coordinator crashes before any pre-commit: all survivors are
     uncertain, so — unlike 2PC, which blocks forever here — they elect a
     recovery coordinator and ABORT on their own. *)
  let e, net, group, decisions = tpc3_setup () in
  Core.Three_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun _ -> ());
  Network.crash net 0;
  ignore (Engine.run ~until:(Simtime.of_sec 10.) e);
  List.iter
    (fun me ->
      Alcotest.(check bool)
        (Printf.sprintf "survivor %d terminated with abort" me)
        true
        (Hashtbl.find_opt decisions (me, 1) = Some Core.Three_phase_commit.Abort))
    [ 1; 2 ]

let test_3pc_nonblocking_precommit_commits () =
  (* The coordinator crashes after pre-commits went out: survivors see a
     pre-committed state and terminate with COMMIT. *)
  let e, net, group, decisions = tpc3_setup () in
  Core.Three_phase_commit.start group ~coordinator:0 ~participants:[ 0; 1; 2 ]
    ~txn:1 ~on_complete:(fun _ -> ());
  (* Let votes and pre-commits flow, then kill the coordinator before it
     can send DoCommit. *)
  ignore
    (Engine.schedule e ~after:(Simtime.of_ms 3) (fun () -> Network.crash net 0));
  ignore (Engine.run ~until:(Simtime.of_sec 10.) e);
  match
    (Hashtbl.find_opt decisions (1, 1), Hashtbl.find_opt decisions (2, 1))
  with
  | Some d1, Some d2 ->
      Alcotest.(check bool) "both terminated" true true;
      Alcotest.(check bool) "agreement" true (d1 = d2)
  | _ -> Alcotest.fail "a survivor blocked — 3PC must not block"

(* ------------------------------------------------------------------ *)
(* Certification                                                      *)
(* ------------------------------------------------------------------ *)

let test_certification_commit_and_abort () =
  let kv = Store.Kv.create () in
  ignore (Store.Kv.write kv "x" 1);
  let cert = Core.Certification.create kv in
  (* T1 read x@1, writes y. Nothing changed x since: commits. *)
  (match
     Core.Certification.offer cert ~reads:[ ("x", 1) ]
       ~writes:[ ("y", 10, 0) ]
   with
  | Some installed ->
      Alcotest.(check (list (triple string int int)))
        "fresh version assigned" [ ("y", 10, 1) ] installed
  | None -> Alcotest.fail "expected commit");
  (* T2 also read x@1 and writes x: still current, commits, x -> v2. *)
  Alcotest.(check bool) "second commits" true
    (Core.Certification.offer cert ~reads:[ ("x", 1) ] ~writes:[ ("x", 5, 0) ]
    <> None);
  (* T3 read x@1, but x is now @2: aborts. *)
  Alcotest.(check bool) "stale read aborts" true
    (Core.Certification.offer cert ~reads:[ ("x", 1) ] ~writes:[ ("z", 1, 0) ]
    = None);
  Alcotest.(check (pair int int)) "counters" (2, 1)
    (Core.Certification.committed cert, Core.Certification.aborted cert)

(* ------------------------------------------------------------------ *)
(* Reconciliation                                                     *)
(* ------------------------------------------------------------------ *)

let test_reconciliation_converges_replicas () =
  (* Two replicas commit conflicting writes locally, then both apply the
     after-commit order: they must converge to identical stores. *)
  let kv_a = Store.Kv.create () and kv_b = Store.Kv.create () in
  let rc_a = Core.Reconciliation.create kv_a in
  let rc_b = Core.Reconciliation.create kv_b in
  (* Local commits diverge. *)
  ignore (Store.Kv.write kv_a "x" 10);
  Core.Reconciliation.local_commit rc_a ~tid:1 ~writes:[ ("x", 10, 1) ];
  ignore (Store.Kv.write kv_b "x" 20);
  Core.Reconciliation.local_commit rc_b ~tid:2 ~writes:[ ("x", 20, 1) ];
  Alcotest.(check bool) "diverged before reconciliation" false
    (Store.Kv.equal kv_a kv_b);
  (* Same after-commit order at both. *)
  List.iter
    (fun rc ->
      ignore (Core.Reconciliation.deliver rc ~tid:1 ~writes:[ ("x", 10, 1) ]);
      ignore (Core.Reconciliation.deliver rc ~tid:2 ~writes:[ ("x", 20, 1) ]))
    [ rc_a; rc_b ];
  Alcotest.(check bool) "converged" true (Store.Kv.equal kv_a kv_b);
  Alcotest.(check (pair int int)) "last writer wins" (20, 2)
    (Store.Kv.read kv_a "x");
  (* The conflict surfaces at B: T1 (foreign there) arrived while B's own
     T2 was still outstanding. A sees T2 only after its own T1 was already
     globally ordered, which is a plain overwrite, not a conflict. *)
  Alcotest.(check int) "conflict detected at B" 1
    (Core.Reconciliation.conflicts rc_b);
  Alcotest.(check int) "no conflict at A" 0 (Core.Reconciliation.conflicts rc_a)

let test_reconciliation_no_conflict_when_disjoint () =
  let kv = Store.Kv.create () in
  let rc = Core.Reconciliation.create kv in
  ignore (Store.Kv.write kv "x" 1);
  Core.Reconciliation.local_commit rc ~tid:1 ~writes:[ ("x", 1, 1) ];
  ignore (Core.Reconciliation.deliver rc ~tid:2 ~writes:[ ("y", 5, 1) ]);
  ignore (Core.Reconciliation.deliver rc ~tid:1 ~writes:[ ("x", 1, 1) ]);
  Alcotest.(check int) "no conflicts" 0 (Core.Reconciliation.conflicts rc);
  Alcotest.(check int) "outstanding drained" 0
    (Core.Reconciliation.outstanding_count rc)

(* ------------------------------------------------------------------ *)
(* Convergence                                                        *)
(* ------------------------------------------------------------------ *)

let test_convergence () =
  let a = Store.Kv.create () and b = Store.Kv.create () in
  ignore (Store.Kv.write a "x" 1);
  ignore (Store.Kv.write b "x" 1);
  Alcotest.(check bool) "converged" true (Core.Convergence.converged [ a; b ]);
  ignore (Store.Kv.write b "y" 2);
  Alcotest.(check bool) "not converged" false
    (Core.Convergence.converged [ a; b ]);
  Alcotest.(check int) "one stale item" 1 (Core.Convergence.stale_items a b);
  let diffs = Core.Convergence.diff a b in
  Alcotest.(check int) "one diff" 1 (List.length diffs)

(* ------------------------------------------------------------------ *)
(* Linearizability                                                    *)
(* ------------------------------------------------------------------ *)

let op key kind i r =
  {
    Core.Linearizability.key;
    kind;
    invoked = Simtime.of_ms i;
    responded = Simtime.of_ms r;
  }

let test_linearizable_history () =
  let h =
    [
      op "x" (Core.Linearizability.Write 1) 0 10;
      op "x" (Core.Linearizability.Read 1) 20 30;
      op "x" (Core.Linearizability.Write 2) 25 40;
      op "x" (Core.Linearizability.Read 2) 50 60;
    ]
  in
  Alcotest.(check bool) "linearizable" true (Core.Linearizability.check h)

let test_non_linearizable_stale_read () =
  (* The write of 2 completed before the read started, yet the read
     returns the old value: not linearizable. *)
  let h =
    [
      op "x" (Core.Linearizability.Write 1) 0 10;
      op "x" (Core.Linearizability.Write 2) 20 30;
      op "x" (Core.Linearizability.Read 1) 40 50;
    ]
  in
  Alcotest.(check bool) "stale read rejected" false
    (Core.Linearizability.check h)

let test_linearizable_concurrent_overlap () =
  (* Overlapping read may return either value. *)
  let h v =
    [
      op "x" (Core.Linearizability.Write 1) 0 10;
      op "x" (Core.Linearizability.Write 2) 20 40;
      op "x" (Core.Linearizability.Read v) 25 35;
    ]
  in
  Alcotest.(check bool) "old value ok while overlapping" true
    (Core.Linearizability.check (h 1));
  Alcotest.(check bool) "new value ok while overlapping" true
    (Core.Linearizability.check (h 2))

let test_linearizability_per_key () =
  let h =
    [
      op "x" (Core.Linearizability.Write 1) 0 10;
      op "y" (Core.Linearizability.Read 0) 20 30;
      op "x" (Core.Linearizability.Read 1) 20 30;
    ]
  in
  Alcotest.(check bool) "keys independent" true (Core.Linearizability.check h)


(* Cross-validation: Wing–Gong vs brute-force permutation search. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y != x) l)))
        l

let brute_force_linearizable (ops : Core.Linearizability.op list) =
  let respects_real_time order =
    let rec check = function
      | a :: rest ->
          List.for_all
            (fun b ->
              (* b may not have responded before a was invoked *)
              not Simtime.(b.Core.Linearizability.responded < a.Core.Linearizability.invoked))
            rest
          && check rest
      | [] -> true
    in
    check order
  in
  let register_ok order =
    let v = ref 0 in
    List.for_all
      (fun (op : Core.Linearizability.op) ->
        match op.kind with
        | Core.Linearizability.Write w ->
            v := w;
            true
        | Core.Linearizability.Read r -> r = !v)
      order
  in
  List.exists
    (fun order -> respects_real_time order && register_ok order)
    (permutations ops)

let prop_linearizability_matches_brute_force =
  QCheck.Test.make
    ~name:"Wing-Gong agrees with brute force on random histories" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let n = 3 + Sim.Rng.int rng 3 in
      let ops =
        List.init n (fun _ ->
            let invoked = Sim.Rng.int rng 50 in
            let responded = invoked + 1 + Sim.Rng.int rng 20 in
            {
              Core.Linearizability.key = "r";
              kind =
                (if Sim.Rng.bool rng then
                   Core.Linearizability.Write (1 + Sim.Rng.int rng 2)
                 else Core.Linearizability.Read (Sim.Rng.int rng 3));
              invoked = Simtime.of_ms invoked;
              responded = Simtime.of_ms responded;
            })
      in
      Core.Linearizability.check_key ops = brute_force_linearizable ops)

(* ------------------------------------------------------------------ *)
(* Sequential consistency                                             *)
(* ------------------------------------------------------------------ *)

let test_seq_consistent_but_not_linearizable () =
  (* Process 2 reads the old value after process 1's write completed in
     real time: sequentially consistent (real time is ignored). *)
  let histories =
    [
      [ Core.Seq_consistency.Write ("x", 1) ];
      [ Core.Seq_consistency.Read ("x", 0); Core.Seq_consistency.Read ("x", 1) ];
    ]
  in
  Alcotest.(check bool) "SC holds" true (Core.Seq_consistency.check histories)

let test_not_seq_consistent () =
  (* No interleaving lets both processes read each other's values in this
     pattern (classic SC violation). *)
  let histories =
    [
      [ Core.Seq_consistency.Write ("x", 1); Core.Seq_consistency.Read ("y", 0) ];
      [ Core.Seq_consistency.Write ("y", 1); Core.Seq_consistency.Read ("x", 0) ];
    ]
  in
  (* Note: this pattern IS actually SC-forbidden only with both reads
     returning 0 after both writes... verify our checker agrees with the
     exhaustive interleaving semantics. *)
  let expected =
    (* Brute force over interleavings of the 4 ops. *)
    let ops =
      [ `W ("x", 1, 0); `R ("y", 0, 0); `W ("y", 1, 1); `R ("x", 0, 1) ]
    in
    let rec interleavings acc rem =
      if rem = [] then [ List.rev acc ]
      else
        List.concat_map
          (fun op ->
            (* respect per-process order *)
            let proc = match op with `W (_, _, p) | `R (_, _, p) -> p in
            let earlier_same_proc =
              List.exists
                (fun op' ->
                  op' != op
                  && (match op' with `W (_, _, p) | `R (_, _, p) -> p) = proc
                  && List.exists (fun x -> x == op') rem
                  &&
                  (* op' comes before op in program order *)
                  let idx o = Option.get (List.find_index (fun x -> x == o) ops) in
                  idx op' < idx op)
                rem
            in
            if earlier_same_proc then []
            else interleavings (op :: acc) (List.filter (fun x -> x != op) rem))
          rem
    in
    List.exists
      (fun order ->
        let store = Hashtbl.create 4 in
        List.for_all
          (function
            | `W (k, v, _) ->
                Hashtbl.replace store k v;
                true
            | `R (k, v, _) ->
                Option.value ~default:0 (Hashtbl.find_opt store k) = v)
          order)
      (interleavings [] ops)
  in
  Alcotest.(check bool) "checker agrees with brute force" expected
    (Core.Seq_consistency.check histories)

(* ------------------------------------------------------------------ *)
(* Classify                                                           *)
(* ------------------------------------------------------------------ *)

let test_classify_matrices () =
  let infos = Protocols.Registry.infos in
  let ds_cells = Core.Classify.fig5_cells infos in
  let cell k = List.assoc k ds_cells in
  Alcotest.(check (list string)) "transparent+deterministic"
    [ "Active replication" ]
    (cell (true, true));
  Alcotest.(check bool) "semi-active transparent, no determinism" true
    (List.mem "Semi-active replication" (cell (true, false)));
  Alcotest.(check bool) "passive not transparent" true
    (List.mem "Passive replication" (cell (false, false)));
  let db_cells = Core.Classify.fig6_cells infos in
  let db k = List.assoc k db_cells in
  Alcotest.(check bool) "eager primary" true
    (List.mem "Eager primary copy" (db (Core.Technique.Eager, Core.Technique.Primary)));
  Alcotest.(check int) "eager update-everywhere cell has three entries" 3
    (List.length (db (Core.Technique.Eager, Core.Technique.Update_everywhere)));
  Alcotest.(check bool) "lazy ue" true
    (List.mem "Lazy update everywhere"
       (db (Core.Technique.Lazy, Core.Technique.Update_everywhere)))

let test_classify_sync_before_response () =
  List.iter
    (fun (i : Core.Technique.info) ->
      (* Paper, Figure 15 discussion: strong consistency iff an SC and/or
         AC step happens before END. *)
      Alcotest.(check bool)
        (i.name ^ " sync-before-response iff strong")
        i.strong_consistency
        (Core.Classify.has_sync_before_response i.expected_phases))
    Protocols.Registry.infos

let test_classify_fig15 () =
  let strong =
    List.filter
      (fun (i : Core.Technique.info) -> i.strong_consistency)
      Protocols.Registry.infos
  in
  let combos =
    Core.Classify.fig15_combinations
      (List.map (fun (i : Core.Technique.info) -> i.expected_phases) strong)
  in
  (* The paper's Figure 15: exactly three strong-consistency shapes. *)
  Alcotest.(check int) "three combinations" 3 (List.length combos)

let () =
  Alcotest.run "core"
    [
      ( "phase",
        [
          tc "codes" test_phase_codes;
          tc "trace sequence" test_phase_trace_sequence;
          tc "loops and signatures" test_phase_trace_loop_and_signature;
        ] );
      ( "2pc",
        [
          tc "all yes commits" test_2pc_all_yes_commits;
          tc "one no aborts" test_2pc_one_no_aborts;
          tc "participant crash + timeout" test_2pc_participant_crash_timeout_aborts;
          tc "blocks without timeout" test_2pc_blocks_without_timeout;
          tc "coordinator crash blocks" test_2pc_coordinator_crash_blocks_participants;
        ] );
      ( "3pc",
        [
          tc "all yes commits" test_3pc_all_yes_commits;
          tc "one no aborts" test_3pc_one_no_aborts;
          tc "non-blocking: uncertain -> abort" test_3pc_nonblocking_uncertain_aborts;
          tc "non-blocking: precommitted -> commit" test_3pc_nonblocking_precommit_commits;
        ] );
      ("certification", [ tc "commit and abort" test_certification_commit_and_abort ]);
      ( "reconciliation",
        [
          tc "converges replicas" test_reconciliation_converges_replicas;
          tc "disjoint no conflict" test_reconciliation_no_conflict_when_disjoint;
        ] );
      ("convergence", [ tc "basics" test_convergence ]);
      ( "linearizability",
        [
          tc "linearizable" test_linearizable_history;
          tc "stale read" test_non_linearizable_stale_read;
          tc "concurrent overlap" test_linearizable_concurrent_overlap;
          tc "per key" test_linearizability_per_key;
          QCheck_alcotest.to_alcotest prop_linearizability_matches_brute_force;
        ] );
      ( "seq-consistency",
        [
          tc "sc but not linearizable" test_seq_consistent_but_not_linearizable;
          tc "brute force agreement" test_not_seq_consistent;
        ] );
      ( "classify",
        [
          tc "matrices" test_classify_matrices;
          tc "sync before response" test_classify_sync_before_response;
          tc "figure 15" test_classify_fig15;
        ] );
    ]
