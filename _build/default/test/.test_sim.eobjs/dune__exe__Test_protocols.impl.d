test/test_protocols.ml: Alcotest Core Engine Fmt Format Fun Group Hashtbl List Network Option Printf Protocols QCheck QCheck_alcotest Sim Simtime Store String Workload
