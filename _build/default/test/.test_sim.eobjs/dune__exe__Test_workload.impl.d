test/test_workload.ml: Alcotest Buffer Format Hashtbl List Option Protocols Sim Simtime Store String Workload
