test/test_store.ml: Alcotest Apply Array Hashtbl History Int Kv List Lock_table Operation Option QCheck QCheck_alcotest Serializability Sim Store Wal
