test/test_sim.ml: Alcotest Array Engine Hashtbl Heap Int List Msg Network Option QCheck QCheck_alcotest Rng Sim Simtime Tracer
