test/test_core.ml: Alcotest Core Engine Fun Hashtbl List Network Option Printf Protocols QCheck QCheck_alcotest Sim Simtime Store
