test/test_group.ml: Abcast Alcotest Array Causal Consensus Engine Fd Fifo Fun Group Hashtbl Int List Msg Network Printf QCheck QCheck_alcotest Rbcast Rchan Sim Simtime View Vscast
