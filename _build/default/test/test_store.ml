(* Tests for the database substrate: versioned store, execution, WAL,
   strict-2PL lock table and the serializability checker. *)

open Store

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Kv                                                                 *)
(* ------------------------------------------------------------------ *)

let test_kv_read_write () =
  let kv = Kv.create () in
  Alcotest.(check (pair int int)) "missing reads as 0@v0" (0, 0) (Kv.read kv "x");
  let v1 = Kv.write kv "x" 10 in
  Alcotest.(check int) "first version" 1 v1;
  Alcotest.(check (pair int int)) "read back" (10, 1) (Kv.read kv "x");
  let v2 = Kv.write kv "x" 20 in
  Alcotest.(check int) "second version" 2 v2;
  Alcotest.(check int) "version accessor" 2 (Kv.version kv "x")

let test_kv_install () =
  let kv = Kv.create () in
  Kv.install kv "x" ~value:5 ~version:3;
  Alcotest.(check (pair int int)) "installed" (5, 3) (Kv.read kv "x");
  (* An older version must not regress the copy. *)
  Kv.install kv "x" ~value:99 ~version:2;
  Alcotest.(check (pair int int)) "stale install ignored" (5, 3) (Kv.read kv "x");
  Kv.install kv "x" ~value:7 ~version:4;
  Alcotest.(check (pair int int)) "newer install applies" (7, 4) (Kv.read kv "x")

let test_kv_snapshot_equal () =
  let a = Kv.create () and b = Kv.create () in
  ignore (Kv.write a "x" 1);
  ignore (Kv.write a "y" 2);
  ignore (Kv.write b "y" 2);
  ignore (Kv.write b "x" 1);
  Alcotest.(check bool) "equal stores" true (Kv.equal a b);
  ignore (Kv.write b "x" 9);
  Alcotest.(check bool) "diverged stores" false (Kv.equal a b);
  let c = Kv.copy a in
  Alcotest.(check bool) "copy equal" true (Kv.equal a c);
  ignore (Kv.write c "z" 1);
  Alcotest.(check bool) "copy independent" false (Kv.equal a c)

(* ------------------------------------------------------------------ *)
(* Operation                                                          *)
(* ------------------------------------------------------------------ *)

let test_operation_sets () =
  let r =
    Operation.request ~client:1
      [ Operation.Read "a"; Operation.Incr ("b", 2); Operation.Write ("c", 3) ]
  in
  Alcotest.(check (list string)) "read set" [ "a"; "b" ] (Operation.read_set r);
  Alcotest.(check (list string)) "write set" [ "b"; "c" ] (Operation.write_set r);
  Alcotest.(check bool) "is update" true (Operation.request_is_update r);
  let ro = Operation.request ~client:1 [ Operation.Read "a" ] in
  Alcotest.(check bool) "read only" false (Operation.request_is_update ro)

let test_operation_rids_unique () =
  let a = Operation.request ~client:0 [ Operation.Read "x" ] in
  let b = Operation.request ~client:0 [ Operation.Read "x" ] in
  Alcotest.(check bool) "fresh rids" true (a.Operation.rid <> b.Operation.rid)

(* ------------------------------------------------------------------ *)
(* Apply                                                              *)
(* ------------------------------------------------------------------ *)

let test_apply_execute () =
  let kv = Kv.create () in
  ignore (Kv.write kv "x" 10);
  let result =
    Apply.execute kv
      [ Operation.Read "x"; Operation.Incr ("x", 5); Operation.Write ("y", 1) ]
  in
  Alcotest.(check (list (triple string int int)))
    "reads with versions"
    [ ("x", 10, 1); ("x", 10, 1) ]
    result.Apply.reads;
  Alcotest.(check (list (triple string int int)))
    "writes with versions"
    [ ("x", 15, 2); ("y", 1, 1) ]
    result.Apply.writes;
  Alcotest.(check (pair int int)) "store updated" (15, 2) (Kv.read kv "x")

let test_apply_choose () =
  let kv = Kv.create () in
  let result =
    Apply.execute ~choose:(fun _ -> 42) kv [ Operation.Write_random "x" ]
  in
  Alcotest.(check (list (triple string int int)))
    "chosen value" [ ("x", 42, 1) ] result.Apply.writes

let test_apply_writes_to_other_replica () =
  let primary = Kv.create () and backup = Kv.create () in
  let result =
    Apply.execute primary [ Operation.Write ("x", 1); Operation.Write ("y", 2) ]
  in
  Apply.apply_writes backup result.Apply.writes;
  Alcotest.(check bool) "replicas converge" true (Kv.equal primary backup)

(* ------------------------------------------------------------------ *)
(* Wal                                                                *)
(* ------------------------------------------------------------------ *)

let test_wal_replay () =
  let kv = Kv.create () in
  let log = Wal.create () in
  let run ops tid =
    let result = Apply.execute kv ops in
    Wal.append log { Wal.tid; writes = result.Apply.writes }
  in
  run [ Operation.Write ("x", 1) ] 1;
  run [ Operation.Incr ("x", 10) ] 2;
  run [ Operation.Write ("y", 5) ] 3;
  Alcotest.(check int) "length" 3 (Wal.length log);
  let fresh = Kv.create () in
  Wal.replay log fresh;
  Alcotest.(check bool) "replay reproduces state" true (Kv.equal kv fresh)

(* ------------------------------------------------------------------ *)
(* Lock table                                                         *)
(* ------------------------------------------------------------------ *)

let test_lock_s_s_compatible () =
  let lt = Lock_table.create () in
  let g1 = ref false and g2 = ref false in
  let r1 = Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.S ~granted:(fun () -> g1 := true) in
  let r2 = Lock_table.acquire lt ~txn:2 ~key:"x" Lock_table.S ~granted:(fun () -> g2 := true) in
  Alcotest.(check bool) "both granted" true (r1 = `Granted && r2 = `Granted);
  Alcotest.(check bool) "callbacks ran" true (!g1 && !g2)

let test_lock_x_conflicts () =
  let lt = Lock_table.create () in
  let order = ref [] in
  let acquire txn mode =
    Lock_table.acquire lt ~txn ~key:"x" mode ~granted:(fun () ->
        order := txn :: !order)
  in
  Alcotest.(check bool) "t1 X granted" true (acquire 1 Lock_table.X = `Granted);
  Alcotest.(check bool) "t2 waits" true (acquire 2 Lock_table.X = `Waiting);
  Alcotest.(check bool) "t3 waits" true (acquire 3 Lock_table.S = `Waiting);
  Alcotest.(check int) "two waiting" 2 (Lock_table.waiting_count lt);
  Lock_table.release_all lt ~txn:1;
  Alcotest.(check (list int)) "fifo grant order" [ 1; 2 ] (List.rev !order);
  Lock_table.release_all lt ~txn:2;
  Alcotest.(check (list int)) "then t3" [ 1; 2; 3 ] (List.rev !order)

let test_lock_reentrant () =
  let lt = Lock_table.create () in
  let r1 = Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.X ~granted:ignore in
  let r2 = Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.S ~granted:ignore in
  let r3 = Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.X ~granted:ignore in
  Alcotest.(check bool) "all reentrant grants" true
    (r1 = `Granted && r2 = `Granted && r3 = `Granted)

let test_lock_upgrade () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.S ~granted:ignore);
  let r = Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.X ~granted:ignore in
  Alcotest.(check bool) "sole holder upgrades" true (r = `Granted);
  Alcotest.(check (list (pair int bool))) "holds X" [ (1, true) ]
    (List.map
       (fun (t, m) -> (t, m = Lock_table.X))
       (Lock_table.holders lt "x"))

let test_lock_deadlock_detected () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~txn:1 ~key:"a" Lock_table.X ~granted:ignore);
  ignore (Lock_table.acquire lt ~txn:2 ~key:"b" Lock_table.X ~granted:ignore);
  let r1 = Lock_table.acquire lt ~txn:1 ~key:"b" Lock_table.X ~granted:ignore in
  Alcotest.(check bool) "t1 waits for b" true (r1 = `Waiting);
  let r2 = Lock_table.acquire lt ~txn:2 ~key:"a" Lock_table.X ~granted:ignore in
  Alcotest.(check bool) "t2 -> a would deadlock" true (r2 = `Deadlock);
  (* After aborting t2, t1 gets the lock. *)
  let got = ref false in
  ignore got;
  Lock_table.release_all lt ~txn:2;
  Alcotest.(check (list (pair int bool))) "t1 now holds b" [ (1, true) ]
    (List.map (fun (t, m) -> (t, m = Lock_table.X)) (Lock_table.holders lt "b"))

let test_lock_upgrade_deadlock () =
  (* Two S holders both trying to upgrade: the second must be refused. *)
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.S ~granted:ignore);
  ignore (Lock_table.acquire lt ~txn:2 ~key:"x" Lock_table.S ~granted:ignore);
  let r1 = Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.X ~granted:ignore in
  Alcotest.(check bool) "first upgrade waits" true (r1 = `Waiting);
  let r2 = Lock_table.acquire lt ~txn:2 ~key:"x" Lock_table.X ~granted:ignore in
  Alcotest.(check bool) "second upgrade deadlocks" true (r2 = `Deadlock)

let test_lock_release_unblocks_sharers () =
  let lt = Lock_table.create () in
  let grants = ref 0 in
  ignore (Lock_table.acquire lt ~txn:1 ~key:"x" Lock_table.X ~granted:ignore);
  for txn = 2 to 4 do
    ignore
      (Lock_table.acquire lt ~txn ~key:"x" Lock_table.S ~granted:(fun () ->
           incr grants))
  done;
  Lock_table.release_all lt ~txn:1;
  Alcotest.(check int) "all sharers granted together" 3 !grants

(* Invariant: at any time, a key with an X holder has exactly one holder. *)
let prop_lock_exclusion =
  QCheck.Test.make ~name:"no conflicting lock grants" ~count:300
    QCheck.(list (triple (int_range 1 5) (int_range 0 2) bool))
    (fun script ->
      let lt = Lock_table.create () in
      let keys = [| "a"; "b"; "c" |] in
      let ok = ref true in
      let step (txn, key_idx, exclusive) =
        let key = keys.(key_idx) in
        let mode = if exclusive then Lock_table.X else Lock_table.S in
        (match Lock_table.acquire lt ~txn ~key mode ~granted:ignore with
        | `Granted | `Waiting | `Deadlock -> ());
        (* Randomly release some transaction to let the queue move. *)
        if txn mod 2 = 0 then Lock_table.release_all lt ~txn:(txn - 1);
        Array.iter
          (fun k ->
            let hs = Lock_table.holders lt k in
            let xs = List.filter (fun (_, m) -> m = Lock_table.X) hs in
            if xs <> [] && List.length hs > 1 then ok := false)
          keys
      in
      List.iter step script;
      !ok)

(* ------------------------------------------------------------------ *)
(* Serializability                                                    *)
(* ------------------------------------------------------------------ *)

let record tid ~reads ~writes =
  {
    History.tid;
    reads;
    writes;
    replica = 0;
    committed_at = Sim.Simtime.zero;
  }

let test_serializable_serial_history () =
  let h = History.create () in
  History.add h (record 1 ~reads:[] ~writes:[ ("x", 1) ]);
  History.add h (record 2 ~reads:[ ("x", 1) ] ~writes:[ ("x", 2) ]);
  History.add h (record 3 ~reads:[ ("x", 2) ] ~writes:[ ("y", 1) ]);
  match Serializability.check h with
  | Serializability.Serializable order ->
      Alcotest.(check (list int)) "witness order" [ 1; 2; 3 ] order
  | v ->
      Alcotest.failf "expected serializable, got %a" Serializability.pp_verdict v

let test_lost_update_cycle () =
  (* Classic lost update: both read x@0, then both write x. *)
  let h = History.create () in
  History.add h (record 1 ~reads:[ ("x", 0) ] ~writes:[ ("x", 1) ]);
  History.add h (record 2 ~reads:[ ("x", 0) ] ~writes:[ ("x", 2) ]);
  Alcotest.(check bool) "cycle detected" false (Serializability.is_serializable h)

let test_write_skew_cycle () =
  let h = History.create () in
  History.add h (record 1 ~reads:[ ("x", 0) ] ~writes:[ ("y", 1) ]);
  History.add h (record 2 ~reads:[ ("y", 0) ] ~writes:[ ("x", 1) ]);
  Alcotest.(check bool) "write skew detected" false
    (Serializability.is_serializable h)

let test_stale_read_is_serializable () =
  (* Reading an old value is fine if the reader serializes earlier. *)
  let h = History.create () in
  History.add h (record 1 ~reads:[] ~writes:[ ("x", 1) ]);
  History.add h (record 2 ~reads:[ ("x", 0) ] ~writes:[ ("z", 1) ]);
  match Serializability.check h with
  | Serializability.Serializable order ->
      let pos t = Option.get (List.find_index (Int.equal t) order) in
      Alcotest.(check bool) "reader before writer" true (pos 2 < pos 1)
  | v ->
      Alcotest.failf "expected serializable, got %a" Serializability.pp_verdict v

let test_divergence_detected () =
  let h = History.create () in
  History.add h (record 1 ~reads:[] ~writes:[ ("x", 1) ]);
  History.add h (record 2 ~reads:[] ~writes:[ ("x", 1) ]);
  match Serializability.check h with
  | Serializability.Ambiguous_versions (k, v) ->
      Alcotest.(check (pair string int)) "item and version" ("x", 1) (k, v)
  | v ->
      Alcotest.failf "expected divergence, got %a" Serializability.pp_verdict v

let test_read_own_write_no_self_cycle () =
  let h = History.create () in
  History.add h (record 1 ~reads:[ ("x", 1) ] ~writes:[ ("x", 1) ]);
  Alcotest.(check bool) "self edges ignored" true
    (Serializability.is_serializable h)

(* Serial executions against a single store are always serializable. *)
let prop_serial_executions_serializable =
  QCheck.Test.make ~name:"serial histories are serializable" ~count:100
    QCheck.(list (pair (int_range 0 2) (int_range 0 30)))
    (fun script ->
      let kv = Kv.create () in
      let h = History.create () in
      let keys = [| "x"; "y"; "z" |] in
      List.iteri
        (fun i (key_idx, v) ->
          let ops =
            [ Operation.Read keys.(key_idx); Operation.Write (keys.((key_idx + 1) mod 3), v) ]
          in
          let result = Apply.execute kv ops in
          History.add_result h ~tid:(i + 1) ~replica:0 ~at:Sim.Simtime.zero result)
        script;
      Serializability.is_serializable h)


(* ---- Cross-validation of the checker against first principles -------- *)

(* Replay a serial order of the history's transactions and check that every
   read sees the version installed by the latest preceding writer (0 if
   none) and that writers of each key appear in version order. *)
let order_is_valid records order =
  let by_tid = Hashtbl.create 16 in
  List.iter (fun (r : History.record) -> Hashtbl.replace by_tid r.tid r) records;
  let current = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (fun tid ->
      let r = Hashtbl.find by_tid tid in
      List.iter
        (fun (k, v) ->
          if Option.value ~default:0 (Hashtbl.find_opt current k) <> v then
            ok := false)
        r.History.reads;
      List.iter
        (fun (k, v) ->
          if v <= Option.value ~default:0 (Hashtbl.find_opt current k) then
            ok := false
          else Hashtbl.replace current k v)
        r.History.writes)
    order;
  !ok

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

(* Random interleaved executions over a shared store: transactions overlap,
   so some histories are serializable and some are not. *)
let random_history seed =
  let rng = Sim.Rng.create ~seed in
  let kv = Kv.create () in
  let n_txns = 2 + Sim.Rng.int rng 3 in
  let keys = [| "x"; "y" |] in
  let txns =
    Array.init n_txns (fun i ->
        (i + 1, ref [], ref []))
  in
  (* Each step: a random transaction performs one random operation. Reads
     of a key the transaction itself already wrote are internal (they see
     the transaction's own value) and are not part of the record model. *)
  for _ = 1 to 3 * n_txns do
    let tid, reads, writes = txns.(Sim.Rng.int rng n_txns) in
    ignore tid;
    let k = keys.(Sim.Rng.int rng 2) in
    if Sim.Rng.bool rng then begin
      if not (List.mem_assoc k !writes) then begin
        let _, version = Kv.read kv k in
        reads := (k, version) :: !reads
      end
    end
    else if not (List.mem_assoc k !writes) then begin
      (* One write per key per transaction: later writes would erase the
         version other transactions may already have read, which cannot
         happen in an isolated history. *)
      let version = Kv.write kv k (Sim.Rng.int rng 100) in
      writes := (k, version) :: !writes
    end
  done;
  let h = History.create () in
  Array.iter
    (fun (tid, reads, writes) ->
      (* Keep the first read per key (what the transaction observed from
         the outside world) and the last write (what it left installed). *)
      let dedup_first l =
        List.fold_left
          (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
          [] (List.rev l)
      in
      let dedup_last l = dedup_first (List.rev l) in
      History.add h
        {
          History.tid;
          reads = dedup_first !reads;
          writes = dedup_last !writes;
          replica = 0;
          committed_at = Sim.Simtime.zero;
        })
    txns;
  h

let prop_checker_witness_is_valid =
  QCheck.Test.make ~name:"serializability witness replays correctly" ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let h = random_history seed in
      match Serializability.check h with
      | Serializability.Serializable order ->
          order_is_valid (History.records h) order
      | Serializability.Cyclic _ | Serializability.Ambiguous_versions _ -> true)

let prop_checker_complete =
  QCheck.Test.make
    ~name:"histories with no valid serial order are rejected" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let h = random_history seed in
      let records = History.records h in
      let tids = List.map (fun (r : History.record) -> r.History.tid) records in
      let any_valid =
        List.exists (order_is_valid records) (permutations tids)
      in
      match Serializability.check h with
      | Serializability.Serializable _ -> any_valid
      | Serializability.Cyclic _ | Serializability.Ambiguous_versions _ ->
          (* Conflict serializability is conservative: rejecting a history
             that some order satisfies is allowed, the reverse is not. *)
          true)

let () =
  Alcotest.run "store"
    [
      ( "kv",
        [
          tc "read write" test_kv_read_write;
          tc "install" test_kv_install;
          tc "snapshot equal" test_kv_snapshot_equal;
        ] );
      ( "operation",
        [
          tc "read/write sets" test_operation_sets;
          tc "unique rids" test_operation_rids_unique;
        ] );
      ( "apply",
        [
          tc "execute" test_apply_execute;
          tc "choose" test_apply_choose;
          tc "apply writes" test_apply_writes_to_other_replica;
        ] );
      ("wal", [ tc "replay" test_wal_replay ]);
      ( "locks",
        [
          tc "s-s compatible" test_lock_s_s_compatible;
          tc "x conflicts + fifo" test_lock_x_conflicts;
          tc "reentrant" test_lock_reentrant;
          tc "upgrade" test_lock_upgrade;
          tc "deadlock" test_lock_deadlock_detected;
          tc "upgrade deadlock" test_lock_upgrade_deadlock;
          tc "release unblocks sharers" test_lock_release_unblocks_sharers;
          QCheck_alcotest.to_alcotest prop_lock_exclusion;
        ] );
      ( "serializability",
        [
          tc "serial history" test_serializable_serial_history;
          tc "lost update" test_lost_update_cycle;
          tc "write skew" test_write_skew_cycle;
          tc "stale read ok" test_stale_read_is_serializable;
          tc "divergence" test_divergence_detected;
          tc "read own write" test_read_own_write_no_self_cycle;
          QCheck_alcotest.to_alcotest prop_serial_executions_serializable;
          QCheck_alcotest.to_alcotest prop_checker_witness_is_valid;
          QCheck_alcotest.to_alcotest prop_checker_complete;
        ] );
    ]
