(* Regenerates every figure of the paper from executed protocol traces.
   Figures 1-4 and 7-14 are phase timelines of single requests; figures 5,
   6, 15 and 16 are the classification views, derived from the technique
   metadata plus the observed signatures. *)

open Sim

let hr () = Fmt.pr "%s@." (String.make 78 '-')

let section title =
  hr ();
  Fmt.pr "%s@." title;
  hr ()

(* Run one request through a freshly built instance; return the instance
   and the request id. *)
let run_single ?(n = 3) ?(ops = [ Store.Operation.Incr ("x", 1) ])
    ?(run_ms = 10_000) ~factory () =
  let engine = Engine.create ~seed:3 () in
  let net = Network.create engine ~n:(n + 1) Network.default_config in
  let replicas = List.init n Fun.id in
  let clients = [ n ] in
  let inst : Core.Technique.instance = factory net ~replicas ~clients in
  let request = Store.Operation.request ~client:n ops in
  let reply = ref None in
  inst.Core.Technique.submit ~client:n request (fun r -> reply := Some r);
  ignore (Engine.run ~until:(Simtime.of_ms run_ms) engine);
  (inst, request.Store.Operation.rid, !reply)

(* Lane diagram in the style of the paper's figures: one lane per actor,
   phase codes placed on a scaled time axis. *)
let render_lanes marks =
  match marks with
  | [] -> ()
  | _ ->
      let t_max =
        List.fold_left
          (fun acc (m : Core.Phase_trace.mark) -> max acc (Simtime.to_us m.time))
          1 marks
      in
      let width = 60 in
      let col t = t * (width - 4) / t_max in
      let actors =
        List.sort_uniq compare
          (List.map (fun (m : Core.Phase_trace.mark) -> m.replica) marks)
      in
      (* Actor order: client first, then replicas ascending. *)
      let actors =
        List.sort
          (fun a b ->
            match (a, b) with
            | None, None -> 0
            | None, _ -> -1
            | _, None -> 1
            | Some x, Some y -> Int.compare x y)
          actors
      in
      Fmt.pr "  %-10s 0%s%s@." "" (String.make (width - 8) ' ')
        (Simtime.to_string (Simtime.of_us t_max));
      List.iter
        (fun actor ->
          let lane = Bytes.make width '.' in
          List.iter
            (fun (m : Core.Phase_trace.mark) ->
              if m.replica = actor then begin
                let code = Core.Phase.code m.phase in
                let c = min (col (Simtime.to_us m.time)) (width - String.length code) in
                Bytes.blit_string code 0 lane c (String.length code)
              end)
            marks;
          let name =
            match actor with
            | None -> "client"
            | Some r -> Printf.sprintf "replica %d" r
          in
          Fmt.pr "  %-10s %s@." name (Bytes.to_string lane))
        actors;
      Fmt.pr "@."

let show_timeline ~(info : Core.Technique.info) inst rid =
  let marks = Core.Phase_trace.marks inst.Core.Technique.phases ~rid in
  let signature = Core.Phase_span.signature inst.Core.Technique.spans ~rid in
  let sequence = Core.Phase_trace.sequence inst.Core.Technique.phases ~rid in
  Fmt.pr "technique : %s (paper §%s)@." info.name info.section;
  Fmt.pr "sequence  : %a@." Core.Phase.pp_sequence sequence;
  Fmt.pr "signature : %a   [paper row: %a]  %s@." Core.Phase.pp_sequence
    signature Core.Phase.pp_sequence info.expected_phases
    (if signature = info.expected_phases then "OK" else "** MISMATCH **");
  Fmt.pr "@.";
  render_lanes marks;
  Fmt.pr "  %-10s %-4s %-10s %s@." "time" "ph" "actor" "note";
  List.iter
    (fun (m : Core.Phase_trace.mark) ->
      let actor =
        match m.replica with
        | None -> "client"
        | Some r -> Printf.sprintf "replica %d" r
      in
      Fmt.pr "  %-10s %-4s %-10s %s@."
        (Simtime.to_string m.time)
        (Core.Phase.code m.phase) actor m.note)
    marks;
  Fmt.pr "@."

(* Passthrough configurations keep the wire traffic equal to the message
   pattern the paper's diagrams draw. *)
let active net ~replicas ~clients =
  Protocols.Active.create net ~replicas ~clients
    ~config:{ Protocols.Active.default_config with passthrough = true }
    ()

let passive net ~replicas ~clients =
  Protocols.Passive.create net ~replicas ~clients
    ~config:{ Protocols.Passive.default_config with passthrough = true }
    ()

let semi_active net ~replicas ~clients =
  Protocols.Semi_active.create net ~replicas ~clients
    ~config:{ Protocols.Semi_active.default_config with passthrough = true }
    ()

let semi_passive net ~replicas ~clients =
  Protocols.Semi_passive.create net ~replicas ~clients
    ~config:{ Protocols.Semi_passive.passthrough = true }
    ()

let eager_primary ?(interactive = false) () net ~replicas ~clients =
  Protocols.Eager_primary.create net ~replicas ~clients
    ~config:
      {
        Protocols.Eager_primary.default_config with
        passthrough = true;
        interactive;
      }
    ()

let eager_ue_locking net ~replicas ~clients =
  Protocols.Eager_ue_locking.create net ~replicas ~clients
    ~config:
      { Protocols.Eager_ue_locking.default_config with passthrough = true }
    ()

let eager_ue_abcast net ~replicas ~clients =
  Protocols.Eager_ue_abcast.create net ~replicas ~clients
    ~config:
      { Protocols.Eager_ue_abcast.default_config with passthrough = true }
    ()

let lazy_primary net ~replicas ~clients =
  Protocols.Lazy_primary.create net ~replicas ~clients
    ~config:{ Protocols.Lazy_primary.default_config with passthrough = true }
    ()

let lazy_ue net ~replicas ~clients =
  Protocols.Lazy_ue.create net ~replicas ~clients
    ~config:{ Protocols.Lazy_ue.default_config with passthrough = true }
    ()

let certification net ~replicas ~clients =
  Protocols.Certification_based.create net ~replicas ~clients
    ~config:
      { Protocols.Certification_based.default_config with passthrough = true }
    ()

(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Figure 1 — Functional model with the five phases";
  List.iter
    (fun p ->
      Fmt.pr "  %-4s %s@." (Core.Phase.code p) (Core.Phase.long_name p))
    Core.Phase.all;
  Fmt.pr
    "@.An abstract replication protocol is a sequence RE SC EX AC END;@.\
     techniques differ by skipping, merging, reordering or looping phases@.\
     (compare the signatures printed by the other figures).@."

let timeline_figure ~title ~info ~factory ?ops ?n () =
  section title;
  let inst, rid, reply = run_single ~factory ?ops ?n () in
  (match reply with
  | Some r ->
      Fmt.pr "client reply: committed=%b value=%s@." r.Core.Technique.committed
        (match r.Core.Technique.value with
        | Some v -> string_of_int v
        | None -> "-")
  | None -> Fmt.pr "client reply: NONE@.");
  show_timeline ~info inst rid

let fig2 () =
  timeline_figure ~title:"Figure 2 — Active replication"
    ~info:Protocols.Active.info ~factory:active ()

let fig3 () =
  timeline_figure ~title:"Figure 3 — Passive replication"
    ~info:Protocols.Passive.info ~factory:passive ()

let fig4 () =
  timeline_figure ~title:"Figure 4 — Semi-active replication"
    ~info:Protocols.Semi_active.info ~factory:semi_active
    ~ops:[ Store.Operation.Write_random "x" ] ()

let render_matrix ~rows ~cols ~cell =
  let width = 34 in
  Fmt.pr "%-20s" "";
  List.iter (fun (_, label) -> Fmt.pr "| %-*s" width label) cols;
  Fmt.pr "@.";
  List.iter
    (fun (rk, rlabel) ->
      Fmt.pr "%-20s" rlabel;
      List.iter
        (fun (ck, _) ->
          let names = cell rk ck in
          Fmt.pr "| %-*s" width (String.concat ", " names))
        cols;
      Fmt.pr "@.")
    rows

let fig5 () =
  section "Figure 5 — Replication in distributed systems";
  let cells = Core.Classify.fig5_cells Protocols.Registry.infos in
  render_matrix
    ~rows:[ (true, "transparent"); (false, "not transparent") ]
    ~cols:[ (true, "determinism needed"); (false, "determinism not needed") ]
    ~cell:(fun transparent det ->
      match List.assoc_opt (transparent, det) cells with
      | Some names -> names
      | None -> [])

let fig6 () =
  section "Figure 6 — Replication in database systems (Gray et al.)";
  let cells = Core.Classify.fig6_cells Protocols.Registry.infos in
  render_matrix
    ~rows:
      [ (Core.Technique.Eager, "eager"); (Core.Technique.Lazy, "lazy") ]
    ~cols:
      [
        (Core.Technique.Primary, "primary copy");
        (Core.Technique.Update_everywhere, "update everywhere");
      ]
    ~cell:(fun prop own ->
      match List.assoc_opt (prop, own) cells with
      | Some names -> names
      | None -> [])

let fig7 () =
  timeline_figure ~title:"Figure 7 — Eager primary copy"
    ~info:Protocols.Eager_primary.info ~factory:(eager_primary ()) ()

let fig8 () =
  timeline_figure
    ~title:"Figure 8 — Eager update everywhere with distributed locking"
    ~info:Protocols.Eager_ue_locking.info ~factory:eager_ue_locking ()

let fig9 () =
  timeline_figure
    ~title:"Figure 9 — Eager update everywhere based on atomic broadcast"
    ~info:Protocols.Eager_ue_abcast.info ~factory:eager_ue_abcast ()

let fig10 () =
  timeline_figure ~title:"Figure 10 — Lazy primary copy"
    ~info:Protocols.Lazy_primary.info ~factory:lazy_primary ()

let fig11 () =
  section "Figure 11 — Lazy update everywhere (with reconciliation)";
  (* Two clients update the same item at different delegates inside the
     propagation window, forcing the reconciliation the figure shows. *)
  let engine = Engine.create ~seed:3 () in
  let net = Network.create engine ~n:5 Network.default_config in
  let replicas = [ 0; 1; 2 ] and clients = [ 3; 4 ] in
  let inst =
    Protocols.Lazy_ue.create net ~replicas ~clients
      ~config:
        {
          Protocols.Lazy_ue.default_config with
          passthrough = true;
          propagation_delay = Simtime.of_ms 20;
        }
      ()
  in
  let submit client v =
    let req =
      Store.Operation.request ~client [ Store.Operation.Write ("x", v) ]
    in
    inst.Core.Technique.submit ~client req (fun _ -> ());
    req.Store.Operation.rid
  in
  let rid_a = submit 3 100 in
  let rid_b = submit 4 200 in
  ignore (Engine.run ~until:(Simtime.of_sec 10.) engine);
  Fmt.pr "conflicting updates from two delegates; conflicts detected: %d@."
    (Protocols.Lazy_ue.conflicts inst);
  Fmt.pr "replicas converged after reconciliation: %b@.@."
    (Core.Convergence.converged
       (List.map inst.Core.Technique.replica_store replicas));
  List.iter
    (fun rid -> show_timeline ~info:Protocols.Lazy_ue.info inst rid)
    [ rid_a; rid_b ]

let fig12 () =
  timeline_figure
    ~title:"Figure 12 — Eager primary copy, multi-operation transaction"
    ~info:Protocols.Eager_primary.info
    ~factory:(eager_primary ~interactive:true ())
    ~ops:
      [ Store.Operation.Incr ("a", 1); Store.Operation.Incr ("b", 1) ]
    ()

let fig13 () =
  timeline_figure
    ~title:
      "Figure 13 — Eager update everywhere (locking), multi-operation \
       transaction"
    ~info:Protocols.Eager_ue_locking.info ~factory:eager_ue_locking
    ~ops:
      [ Store.Operation.Incr ("a", 1); Store.Operation.Incr ("b", 1) ]
    ()

let fig14 () =
  timeline_figure ~title:"Figure 14 — Certification-based replication"
    ~info:Protocols.Certification_based.info ~factory:certification ()

(* Observed signatures for all techniques, each run once with a request
   that exercises its distinctive path. *)
let observed_signatures () =
  List.map
    (fun (e : Protocols.Registry.entry) ->
      let key = e.key in
      let info = e.info in
      let factory =
        match key with
        | "active" -> active
        | "passive" -> passive
        | "semi-active" -> semi_active
        | "semi-passive" -> semi_passive
        | "eager-primary" -> eager_primary ()
        | "eager-ue-locking" -> eager_ue_locking
        | "eager-ue-abcast" -> eager_ue_abcast
        | "lazy-primary" -> lazy_primary
        | "lazy-ue" -> lazy_ue
        | "certification" -> certification
        | _ -> assert false
      in
      let ops =
        if key = "semi-active" then [ Store.Operation.Write_random "x" ]
        else [ Store.Operation.Incr ("x", 1) ]
      in
      let inst, rid, _ = run_single ~factory ~ops () in
      (* Signatures read off the span recorder, not the raw mark log. *)
      (info, Core.Phase_span.signature inst.Core.Technique.spans ~rid))
    Protocols.Registry.all

let fig15 () =
  section "Figure 15 — Possible combinations of phases (strong consistency)";
  let observed = observed_signatures () in
  let strong =
    List.filter_map
      (fun ((info : Core.Technique.info), signature) ->
        if info.strong_consistency then Some signature else None)
      observed
  in
  let combos = Core.Classify.fig15_combinations strong in
  List.iter
    (fun seq ->
      Fmt.pr "  %a   (SC/AC before END: %b)@." Core.Phase.pp_sequence seq
        (Core.Classify.has_sync_before_response seq))
    combos;
  Fmt.pr
    "@.Every strong-consistency technique synchronises (SC and/or AC) before@.\
     answering the client — the paper's claim below Figure 15.@."

let fig16 () =
  section "Figure 16 — Synthetic view of approaches";
  let observed = observed_signatures () in
  let rows = Core.Classify.synthetic_rows observed in
  Core.Classify.pp_synthetic Fmt.stdout rows;
  let mismatches = List.filter (fun r -> not r.Core.Classify.matches) rows in
  Fmt.pr "@.%d/%d observed signatures match the paper's table.@."
    (List.length rows - List.length mismatches)
    (List.length rows)

let all =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
  ]
